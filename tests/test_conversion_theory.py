"""Tests of the analytical conversion-error model (paper Eqs. 5-7)."""

import numpy as np
import pytest

from repro.conversion import (
    dnn_threshold_relu,
    empirical_output_gap,
    expected_difference,
    expected_difference_alpha_beta,
    g_i,
    h_prime_t_mu,
    h_t_mu,
    k_mu,
    snn_staircase,
)

MU = 2.0
UNIFORM = np.linspace(0.0, MU, 200_001)  # dense uniform grid on [0, mu]


def skewed_samples(n=100_000, seed=0):
    """Exponential-ish skew: most mass near zero, like real activations."""
    rng = np.random.default_rng(seed)
    return rng.exponential(scale=MU / 6.0, size=n)


class TestStaircase:
    def test_zero_input(self):
        np.testing.assert_allclose(snn_staircase(np.zeros(5), 4, 1.0), 0.0)

    def test_saturation(self):
        out = snn_staircase(np.array([100.0]), 4, 1.0)
        np.testing.assert_allclose(out, [1.0])

    def test_step_positions(self):
        # T=2, V^th=1: steps at 0.5 and 1.0.  Eq. 3's firing condition
        # is strict, so inputs exactly on an edge stay on the lower step.
        d = np.array([0.49, 0.5, 0.51, 0.99, 1.0, 1.01])
        np.testing.assert_allclose(
            snn_staircase(d, 2, 1.0), [0.0, 0.0, 0.5, 0.5, 0.5, 1.0]
        )

    def test_beta_scales_output(self):
        d = np.array([0.6])
        np.testing.assert_allclose(
            snn_staircase(d, 2, 1.0, beta=1.5), 1.5 * snn_staircase(d, 2, 1.0)
        )

    def test_bias_shift_moves_left(self):
        d = np.array([0.3])
        without = snn_staircase(d, 2, 1.0)
        with_shift = snn_staircase(d, 2, 1.0, bias_shift=0.25)
        assert with_shift[0] > without[0]

    def test_monotone_nondecreasing(self):
        d = np.linspace(-1.0, 5.0, 300)
        out = snn_staircase(d, 3, 1.3, beta=0.8)
        assert np.all(np.diff(out) >= -1e-12)

    def test_converges_to_clip_as_t_grows(self):
        d = np.linspace(0.0, 2.0 * MU, 500)
        coarse = np.abs(snn_staircase(d, 2, MU) - dnn_threshold_relu(d, MU)).mean()
        fine = np.abs(snn_staircase(d, 256, MU) - dnn_threshold_relu(d, MU)).mean()
        assert fine < coarse / 10.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            snn_staircase(np.zeros(1), 0, 1.0)
        with pytest.raises(ValueError):
            snn_staircase(np.zeros(1), 2, 0.0)


class TestKMu:
    def test_uniform_is_half(self):
        assert k_mu(UNIFORM, MU) == pytest.approx(0.5, abs=1e-3)

    def test_skewed_below_half(self):
        assert k_mu(skewed_samples(), MU) < 0.4

    def test_range(self):
        assert 0.0 <= k_mu(skewed_samples(), MU) <= 1.0

    def test_no_mass_returns_zero(self):
        assert k_mu(np.array([-1.0, -2.0]), MU) == 0.0

    def test_invalid_mu(self):
        with pytest.raises(ValueError):
            k_mu(UNIFORM, 0.0)


class TestGi:
    def test_uniform_bins_equal_one_over_t(self):
        for t in (2, 3, 5):
            for i in range(1, t):
                assert g_i(UNIFORM, t, MU, i) == pytest.approx(1.0 / t, abs=1e-3)

    def test_bins_sum_below_one(self):
        s = skewed_samples()
        total = sum(g_i(s, 4, MU, i) for i in range(1, 4))
        assert 0.0 <= total <= 1.0

    def test_invalid_index(self):
        with pytest.raises(ValueError):
            g_i(UNIFORM, 3, MU, 3)
        with pytest.raises(ValueError):
            g_i(UNIFORM, 3, MU, 0)


class TestHTMu:
    def test_uniform_is_half_for_all_t(self):
        # The paper's key algebraic identity (Section III-A).
        for t in (1, 2, 3, 4, 5):
            assert h_t_mu(UNIFORM, t, MU) == pytest.approx(0.5, abs=2e-3)

    def test_skewed_h_below_uniform(self):
        s = skewed_samples()
        for t in (2, 3):
            assert h_t_mu(s, t, MU) < 0.45

    def test_skewed_h_decreases_with_small_t(self):
        # The paper's Fig. 1(a) insert: h collapses as T drops below ~5.
        s = skewed_samples()
        h_values = [h_t_mu(s, t, MU) for t in (1, 2, 3, 4, 5)]
        assert h_values[0] < h_values[-1]

    def test_h_prime_uniform(self):
        # For the uniform density h' = (T-1)/(2T).
        for t in (2, 4, 8):
            expected = (t - 1) / (2.0 * t)
            assert h_prime_t_mu(UNIFORM, t, MU) == pytest.approx(expected, abs=2e-3)

    def test_empty_band(self):
        assert h_t_mu(np.array([-1.0]), 2, MU) == 0.0
        assert h_prime_t_mu(np.array([-1.0]), 2, MU) == 0.0

    def test_invalid_timesteps(self):
        with pytest.raises(ValueError):
            h_t_mu(UNIFORM, 0, MU)
        with pytest.raises(ValueError):
            h_prime_t_mu(UNIFORM, 0, MU)


class TestExpectedDifference:
    def test_uniform_error_vanishes(self):
        # Eq. 7 evaluates to 0 for uniform distributions — the result
        # of [15] that the paper revisits.
        for t in (2, 3, 5):
            delta = expected_difference(UNIFORM, UNIFORM, MU, t)
            assert abs(delta) < 0.01 * MU

    def test_skewed_error_positive_at_low_t(self):
        # Skew means h < K: the SNN under-counts spikes, Delta > 0.
        s = skewed_samples()
        delta = expected_difference(s, s, MU, 2)
        assert delta > 0.0

    def test_error_grows_as_t_shrinks(self):
        s = skewed_samples()
        d2 = expected_difference(s, s, MU, 1)
        d5 = expected_difference(s, s, MU, 5)
        assert d2 > d5

    def test_alpha_beta_can_reduce_error(self):
        s = skewed_samples()
        base = abs(expected_difference_alpha_beta(s, s, MU, 1.0, 1.0, 2))
        # A mild down-scale with amplified output should shrink |Delta|.
        candidates = [
            abs(expected_difference_alpha_beta(s, s, MU, a, b, 2))
            for a in (0.3, 0.5, 0.7)
            for b in (1.2, 1.5, 1.8)
        ]
        assert min(candidates) < base

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            expected_difference_alpha_beta(UNIFORM, UNIFORM, MU, 1.5, 1.0, 2)


class TestEmpiricalGap:
    def test_agrees_with_uniform_theory(self):
        # With the Deng bias shift the uniform-case gap is ~0.
        gap = empirical_output_gap(
            UNIFORM, MU, 4, MU, bias_shift=MU / 8.0
        )
        assert abs(gap) < 0.01 * MU

    def test_positive_for_skewed_low_t(self):
        gap = empirical_output_gap(skewed_samples(), MU, 2, MU)
        assert gap > 0.0

    def test_matches_direct_computation(self):
        d = skewed_samples(n=10_000)
        gap = empirical_output_gap(d, MU, 3, MU, beta=1.2)
        manual = (
            dnn_threshold_relu(d, MU).mean()
            - snn_staircase(d, 3, MU, beta=1.2).mean()
        )
        assert gap == pytest.approx(manual, abs=1e-12)
