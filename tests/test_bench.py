"""Benchmark subsystem: registry, runner, baseline files, comparator, CLI."""

import copy
import json
import os

import pytest

from repro import bench
from repro.bench import (
    BenchCase,
    compare_reports,
    find_baselines,
    iter_benches,
    load_report,
    next_seq,
    register_bench,
    run_benches,
    unregister_bench,
    validate_report,
    write_report,
)
from repro.bench.__main__ import main as bench_main


@pytest.fixture
def fast_bench():
    """A registered throwaway bench that runs in microseconds."""
    name = "test.fast_noop"

    @register_bench(name, group="test", repeats=2, warmup=0)
    def fast_noop():
        def run():
            return sum(range(50))

        return run

    yield name
    unregister_bench(name)


def _small_report(**medians) -> dict:
    results = {}
    for name, median in medians.items():
        results[name] = {
            "group": "test",
            "repeats": 3,
            "warmup": 0,
            "mean_s": median,
            "median_s": median,
            "std_s": 0.0,
            "min_s": median,
            "max_s": median,
            "p95_s": median,
        }
    return {
        "schema": bench.SCHEMA,
        "schema_version": bench.SCHEMA_VERSION,
        "seq": 0,
        "created_at": 0.0,
        "environment": {},
        "config": {},
        "results": results,
    }


def _v1_report(**medians) -> dict:
    """A legacy schema-v1 report: no per-result warmup, raw config."""
    report = _small_report(**medians)
    report["schema"] = "repro.bench/v1"
    report["schema_version"] = 1
    report["config"] = {"repeats": None, "warmup": None, "filter": None}
    for entry in report["results"].values():
        del entry["warmup"]
    return report


class TestRegistry:
    def test_standard_suite_registered(self):
        names = set(bench.bench_names())
        assert "nn.conv2d_forward" in names
        assert "conversion.algorithm1_search" in names
        assert "snn.full_forward_t2" in names

    def test_duplicate_name_rejected(self, fast_bench):
        with pytest.raises(ValueError):
            register_bench(fast_bench)(lambda: (lambda: None))

    def test_filter_and_group(self, fast_bench):
        filtered = list(iter_benches(filter_substring="fast_noop"))
        assert [case.name for case in filtered] == [fast_bench]
        grouped = list(iter_benches(group="test"))
        assert fast_bench in [case.name for case in grouped]

    def test_prepare_returns_callable(self, fast_bench):
        case = bench.get_bench(fast_bench)
        assert isinstance(case, BenchCase)
        assert case.prepare()() == sum(range(50))

    def test_unknown_bench(self):
        with pytest.raises(KeyError):
            bench.get_bench("no.such.bench")


class TestRunner:
    def test_run_benches_report_schema(self, fast_bench):
        report = run_benches(
            filter_substring="fast_noop", repeats=2, warmup=0, verbose=False
        )
        validate_report(report)
        entry = report["results"][fast_bench]
        assert entry["repeats"] == 2
        assert entry["warmup"] == 0
        assert entry["group"] == "test"
        assert entry["median_s"] >= 0.0
        assert entry["p95_s"] >= entry["median_s"] >= entry["min_s"]
        assert report["environment"]["python"]
        json.dumps(report)

    def test_effective_config_persisted(self, fast_bench):
        # No overrides: the case's own policy must land in the report
        # (v1 recorded only nulls here, leaving baselines undescribed).
        report = run_benches(filter_substring="fast_noop", verbose=False)
        assert report["schema"] == "repro.bench/v2"
        assert report["config"]["overrides"] == {
            "repeats": None, "warmup": None,
        }
        assert report["config"]["cases"][fast_bench] == {
            "repeats": 2, "warmup": 0,
        }
        assert report["results"][fast_bench]["repeats"] == 2
        assert report["results"][fast_bench]["warmup"] == 0

    def test_v1_reports_still_validate(self):
        report = _v1_report(k=1.0)
        assert validate_report(report) is report
        # A v2 report without per-result warmup is rejected…
        broken = _small_report(k=1.0)
        del broken["results"]["k"]["warmup"]
        with pytest.raises(ValueError):
            validate_report(broken)
        # …but the same shape under the v1 schema id is fine.
        broken["schema"] = "repro.bench/v1"
        validate_report(broken)

    def test_no_match_rejected(self):
        with pytest.raises(ValueError):
            run_benches(filter_substring="no-such-bench", verbose=False)

    def test_write_load_round_trip(self, tmp_path, fast_bench):
        report = run_benches(
            filter_substring="fast_noop", repeats=1, warmup=0, verbose=False
        )
        path = str(tmp_path / "BENCH_0.json")
        write_report(report, path)
        assert load_report(path)["results"] == report["results"]

    def test_validate_rejects_bad_schema(self):
        with pytest.raises(ValueError):
            validate_report({"schema": "other/v9", "results": {}})
        report = _small_report(k=1.0)
        del report["results"]["k"]["median_s"]
        with pytest.raises(ValueError):
            validate_report(report)
        with pytest.raises(ValueError):
            validate_report({"schema": bench.SCHEMA})

    def test_baseline_sequence(self, tmp_path):
        root = str(tmp_path)
        assert find_baselines(root) == []
        assert next_seq(root) == 0
        for seq in (0, 2):
            write_report(_small_report(k=1.0), str(tmp_path / f"BENCH_{seq}.json"))
        (tmp_path / "BENCH_x.json").write_text("{}")  # non-matching name
        baselines = find_baselines(root)
        assert [seq for seq, _path in baselines] == [0, 2]
        assert next_seq(root) == 3


class TestCompare:
    def test_identical_reports_ok(self):
        report = _small_report(a=0.01, b=0.5)
        comparison = compare_reports(report, copy.deepcopy(report))
        assert comparison.ok
        assert len(comparison.deltas) == 2
        assert all(d.ratio == pytest.approx(1.0) for d in comparison.deltas)
        assert "OK: no regressions" in comparison.render()

    def test_v1_baseline_vs_v2_candidate(self):
        # Migration path: the committed BENCH_0.json is v1; candidates
        # recorded by the current runner are v2.  Both directions work.
        baseline = _v1_report(k=0.010)
        candidate = _small_report(k=0.011)
        assert compare_reports(baseline, candidate).ok
        assert compare_reports(candidate, baseline).ok
        slow = _small_report(k=0.100)
        assert not compare_reports(baseline, slow).ok

    def test_regression_trips_threshold(self):
        baseline = _small_report(slow=0.010)
        candidate = _small_report(slow=0.016)  # +60% past the 50% default
        comparison = compare_reports(baseline, candidate, threshold=0.5)
        assert not comparison.ok
        (delta,) = comparison.regressions
        assert delta.name == "slow"
        assert delta.ratio == pytest.approx(1.6)
        assert "REGRESSED" in comparison.render()

    def test_noisy_median_with_fast_min_not_gated(self):
        # Median doubled, but the best-of-N repeat is as fast as the
        # baseline: scheduler interference, not a code regression.
        baseline = _small_report(k=0.010)
        candidate = _small_report(k=0.022)
        candidate["results"]["k"]["min_s"] = 0.010
        assert compare_reports(baseline, candidate).ok
        # A real regression slows the minimum too.
        candidate["results"]["k"]["min_s"] = 0.021
        assert not compare_reports(baseline, candidate).ok

    def test_speedup_never_trips(self):
        comparison = compare_reports(
            _small_report(k=0.010), _small_report(k=0.001)
        )
        assert comparison.ok

    def test_min_delta_noise_floor(self):
        # 3x relative slowdown, but only 20us absolute: below the floor.
        comparison = compare_reports(
            _small_report(tiny=1e-5), _small_report(tiny=3e-5),
            threshold=0.5, min_delta_s=1e-4,
        )
        assert comparison.ok
        # Drop the floor and the same slowdown trips.
        comparison = compare_reports(
            _small_report(tiny=1e-5), _small_report(tiny=3e-5),
            threshold=0.5, min_delta_s=0.0,
        )
        assert not comparison.ok

    def test_missing_and_added_benches(self):
        comparison = compare_reports(
            _small_report(old=0.01, shared=0.01),
            _small_report(new=0.01, shared=0.01),
        )
        assert comparison.missing == ["old"]
        assert comparison.added == ["new"]
        assert comparison.ok  # structural drift is reported, not gated

    def test_bad_threshold_rejected(self):
        report = _small_report(k=1.0)
        with pytest.raises(ValueError):
            compare_reports(report, report, threshold=-0.1)
        with pytest.raises(ValueError):
            compare_reports(report, report, min_delta_s=-1.0)


class TestCli:
    def test_run_writes_next_seq_baseline(self, tmp_path, fast_bench, capsys):
        root = str(tmp_path)
        write_report(_small_report(k=1.0), str(tmp_path / "BENCH_0.json"))
        code = bench_main([
            "--root", root, "run",
            "--filter", "fast_noop", "--repeats", "1", "--warmup", "0",
            "--quiet",
        ])
        assert code == 0
        path = tmp_path / "BENCH_1.json"
        assert path.exists()
        report = load_report(str(path))
        assert report["seq"] == 1
        assert fast_bench in report["results"]
        assert "BENCH_1.json" in capsys.readouterr().out

    def test_run_with_explicit_out(self, tmp_path, fast_bench):
        out = str(tmp_path / "candidate.json")
        code = bench_main([
            "run", "--out", out,
            "--filter", "fast_noop", "--repeats", "1", "--warmup", "0",
            "--quiet",
        ])
        assert code == 0
        assert load_report(out)["seq"] is None

    def test_compare_default_pair_and_gate(self, tmp_path, capsys):
        root = str(tmp_path)
        write_report(_small_report(k=0.010), str(tmp_path / "BENCH_0.json"))
        write_report(_small_report(k=0.011), str(tmp_path / "BENCH_1.json"))
        assert bench_main(["--root", root, "compare"]) == 0
        # Artificially slow the latest baseline past the gate.
        write_report(_small_report(k=0.100), str(tmp_path / "BENCH_2.json"))
        assert bench_main(["--root", root, "compare"]) == 1
        assert "REGRESSED" in capsys.readouterr().out
        # A tighter threshold makes even BENCH_1 (+10%) fail.
        assert bench_main([
            "--root", root, "compare",
            "--baseline", str(tmp_path / "BENCH_0.json"),
            "--candidate", str(tmp_path / "BENCH_1.json"),
            "--threshold", "0.05", "--min-delta", "0",
        ]) == 1

    def test_compare_needs_two_baselines(self, tmp_path):
        write_report(_small_report(k=1.0), str(tmp_path / "BENCH_0.json"))
        with pytest.raises(SystemExit):
            bench_main(["--root", str(tmp_path), "compare"])

    def test_list(self, fast_bench, capsys):
        assert bench_main(["list", "--filter", "fast_noop"]) == 0
        assert fast_bench in capsys.readouterr().out


class TestObsIntegration:
    def test_observed_run_records_spans_and_histograms(self, tmp_path, fast_bench):
        from repro import obs

        obs.shutdown()
        obs.reset_registry()
        try:
            with obs.observe(str(tmp_path)):
                run_benches(
                    filter_substring="fast_noop",
                    repeats=2, warmup=0, verbose=False,
                )
            run = obs.load_run(str(tmp_path))
            names = {span["name"] for span in run.spans}
            assert f"timed:bench.{fast_bench}" in names
            histograms = run.metrics["histograms"]
            key = [k for k in histograms if k.startswith("bench.test.fast_noop")]
            assert key and histograms[key[0]]["count"] == 2
        finally:
            obs.shutdown()
            obs.reset_registry()
