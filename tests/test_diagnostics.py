"""Tests of the per-layer conversion-error diagnostics."""

import numpy as np
import pytest

from repro.conversion import (
    ConversionConfig,
    convert_dnn_to_snn,
    diagnose_conversion,
    render_diagnosis,
)


@pytest.fixture(scope="module")
def diagnosis(tiny_context):
    conversion = convert_dnn_to_snn(
        tiny_context.model, tiny_context.calibration_loader(),
        ConversionConfig(timesteps=2, strategy="threshold_relu"),
    )
    reports = diagnose_conversion(
        conversion, tiny_context.model, tiny_context.test_loader(), max_batches=1
    )
    return conversion, reports


class TestDiagnoseConversion:
    def test_one_report_per_layer(self, diagnosis):
        conversion, reports = diagnosis
        assert len(reports) == len(conversion.specs)

    def test_skew_indicators(self, diagnosis):
        _conversion, reports = diagnosis
        for report in reports:
            assert 0.0 <= report.k_mu <= 1.0
            assert 0.0 <= report.h_t_mu <= 1.0
        # Trained-network activations are skewed: K below the uniform 1/2
        # for most layers.
        assert np.mean([r.k_mu for r in reports]) < 0.5

    def test_unscaled_low_t_gap_positive(self, diagnosis):
        """At T=2 with V^th=mu the SNN under-fires: predicted and
        measured gaps should be positive for most layers (the paper's
        central Section III-A observation)."""
        _conversion, reports = diagnosis
        predicted_positive = sum(1 for r in reports if r.predicted_gap > 0)
        measured_positive = sum(1 for r in reports if r.measured_gap > 0)
        assert predicted_positive >= len(reports) * 0.6
        assert measured_positive >= len(reports) * 0.6

    def test_prediction_correlates_with_measurement(self, diagnosis):
        _conversion, reports = diagnosis
        predicted = np.array([r.predicted_gap for r in reports])
        measured = np.array([r.measured_gap for r in reports])
        if predicted.std() > 0 and measured.std() > 0:
            correlation = np.corrcoef(predicted, measured)[0, 1]
            assert correlation > 0.0

    def test_relative_gap(self, diagnosis):
        _conversion, reports = diagnosis
        for report in reports:
            if report.dnn_mean != 0:
                assert report.relative_gap == pytest.approx(
                    report.measured_gap / report.dnn_mean
                )

    def test_render(self, diagnosis):
        _conversion, reports = diagnosis
        text = render_diagnosis(reports)
        assert "K(mu)" in text
        assert str(len(reports) - 1) in text

    def test_no_batches_rejected(self, diagnosis, tiny_context):
        conversion, _reports = diagnosis
        with pytest.raises(ValueError):
            diagnose_conversion(conversion, tiny_context.model, [])
