"""Property-based tests for the extension modules (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.hw import quantize_array
from repro.experiments import ascii_chart
from repro.snn import STDPConfig, STDPLearner
from repro.nn import Linear

finite = st.floats(min_value=-50.0, max_value=50.0,
                   allow_nan=False, allow_infinity=False)


class TestQuantizationProperties:
    @given(
        arrays(dtype=np.float64, shape=st.integers(1, 60), elements=finite),
        st.integers(min_value=2, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_error_bounded_by_half_delta(self, values, bits):
        quantized = quantize_array(values, bits)
        max_abs = np.abs(values).max()
        if max_abs == 0:
            np.testing.assert_allclose(quantized, 0.0)
            return
        delta = max_abs / (2 ** (bits - 1) - 1)
        assert np.abs(quantized - values).max() <= delta / 2 + 1e-12

    @given(
        arrays(dtype=np.float64, shape=st.integers(1, 60), elements=finite),
        st.integers(min_value=2, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_idempotent(self, values, bits):
        once = quantize_array(values, bits)
        twice = quantize_array(once, bits)
        np.testing.assert_allclose(twice, once, atol=1e-12)

    @given(
        arrays(dtype=np.float64, shape=st.integers(1, 60), elements=finite),
        st.integers(min_value=2, max_value=10),
    )
    @settings(max_examples=60, deadline=None)
    def test_range_preserved(self, values, bits):
        quantized = quantize_array(values, bits)
        assert np.abs(quantized).max() <= np.abs(values).max() + 1e-12


class TestAsciiChartProperties:
    @given(
        st.lists(finite, min_size=2, max_size=12),
        st.lists(finite, min_size=2, max_size=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_never_crashes_and_same_width_rows(self, xs, ys):
        n = min(len(xs), len(ys))
        text = ascii_chart(xs[:n], {"s": ys[:n]}, width=24, height=6)
        body = [l for l in text.splitlines() if "|" in l]
        assert body
        assert len({len(l) for l in body}) == 1  # aligned rows


class TestSTDPProperties:
    @given(
        st.integers(min_value=1, max_value=4),   # batch
        st.integers(min_value=1, max_value=10),  # steps
        st.floats(min_value=0.0, max_value=1.0), # firing prob
    )
    @settings(max_examples=30, deadline=None)
    def test_weights_always_within_bounds(self, batch, steps, prob):
        rng = np.random.default_rng(0)
        layer = Linear(5, 4, bias=False, rng=np.random.default_rng(1))
        config = STDPConfig(lr_plus=0.5, lr_minus=0.6, w_min=-0.4, w_max=0.4)
        np.clip(layer.weight.data, config.w_min, config.w_max,
                out=layer.weight.data)
        learner = STDPLearner(layer, config)
        for _ in range(steps):
            pre = (rng.random((batch, 5)) < prob).astype(float)
            post = (rng.random((batch, 4)) < prob).astype(float)
            learner.step(pre, post)
        assert layer.weight.data.max() <= config.w_max + 1e-12
        assert layer.weight.data.min() >= config.w_min - 1e-12

    @given(st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_silence_changes_nothing(self, steps):
        layer = Linear(3, 3, bias=False, rng=np.random.default_rng(0))
        config = STDPConfig()
        # Start inside the hard bounds so the post-step clip is a no-op
        # and any change could only come from the (zero) STDP update.
        np.clip(layer.weight.data, config.w_min, config.w_max,
                out=layer.weight.data)
        before = layer.weight.data.copy()
        learner = STDPLearner(layer, config)
        for _ in range(steps):
            learner.step(np.zeros((2, 3)), np.zeros((2, 3)))
        np.testing.assert_allclose(layer.weight.data, before)
