"""The documented quickstart snippets must actually work.

Runs the code shown in ``repro.__init__``'s docstring and the README's
in-code example (shared tiny context keeps it cheap).
"""

import repro


class TestPackageDocstringExample:
    def test_quickstart_snippet(self, tiny_config):
        """The exact snippet from repro/__init__.py."""
        from repro.experiments import run_pipeline

        result = run_pipeline(tiny_config)
        assert result.snn_accuracy >= result.conversion_accuracy - 0.15

    def test_readme_conversion_snippet(self, tiny_context):
        from repro.conversion import ConversionConfig, convert_dnn_to_snn
        from repro.train import SNNTrainer, SNNTrainConfig

        conversion = convert_dnn_to_snn(
            tiny_context.model, tiny_context.calibration_loader(),
            ConversionConfig(timesteps=2, strategy="proposed"),
        )
        SNNTrainer(SNNTrainConfig(epochs=1, lr=5e-4)).fit(
            conversion.snn,
            tiny_context.train_loader(seed=9),
            tiny_context.test_loader(),
        )

    def test_version_and_subpackages(self):
        assert repro.__version__
        for name in repro.__all__:
            __import__(f"repro.{name}")
