"""Temporal spike-analysis tests."""

import numpy as np
import pytest

from repro.conversion import ConversionConfig, convert_dnn_to_snn
from repro.data import DataLoader
from repro.models import vgg11
from repro.snn import (
    first_spike_latency,
    layer_summary,
    record_spike_raster,
    spikes_per_step,
    synchrony_index,
    temporal_sparsity,
)


@pytest.fixture(scope="module")
def snn_and_images():
    rng = np.random.default_rng(0)
    model = vgg11(
        num_classes=5, image_size=8, width_multiplier=0.125,
        rng=np.random.default_rng(1),
    )
    loader = DataLoader(rng.random((8, 3, 8, 8)), rng.integers(0, 5, 8), 8)
    snn = convert_dnn_to_snn(model, loader, ConversionConfig(timesteps=4)).snn
    return snn, rng.random((3, 3, 8, 8))


class TestRaster:
    def test_shapes(self, snn_and_images):
        snn, images = snn_and_images
        rasters = record_spike_raster(snn, images)
        assert len(rasters) == len(snn.spiking_neurons())
        for raster in rasters:
            assert raster.shape[0] == snn.timesteps
            assert raster.shape[1] == images.shape[0]

    def test_binary(self, snn_and_images):
        snn, images = snn_and_images
        for raster in record_spike_raster(snn, images):
            assert set(np.unique(raster)) <= {0.0, 1.0}

    def test_consistent_with_recording(self, snn_and_images):
        snn, images = snn_and_images
        rasters = record_spike_raster(snn, images)
        snn.reset_spike_stats()
        snn.set_recording(True)
        snn.eval()
        from repro.tensor import no_grad

        with no_grad():
            snn(images)
        snn.set_recording(False)
        for raster, neuron in zip(rasters, snn.spiking_neurons()):
            assert raster.sum() == pytest.approx(neuron.spike_count)


class TestStatistics:
    def test_spikes_per_step(self):
        raster = np.zeros((3, 1, 4))
        raster[0, 0, :2] = 1.0
        raster[2, 0, 0] = 1.0
        np.testing.assert_allclose(spikes_per_step(raster), [2, 0, 1])

    def test_first_spike_latency(self):
        raster = np.zeros((3, 2))
        raster[1, 0] = 1.0  # neuron 0 fires at t=1; neuron 1 never
        latency = first_spike_latency(raster)
        np.testing.assert_array_equal(latency, [1, 3])

    def test_temporal_sparsity_bounds(self, snn_and_images):
        snn, images = snn_and_images
        for raster in record_spike_raster(snn, images):
            assert 0.0 <= temporal_sparsity(raster) <= 1.0

    def test_synchrony_extremes(self):
        one_step = np.zeros((4, 5))
        one_step[2] = 1.0
        assert synchrony_index(one_step) == 1.0
        uniform = np.ones((4, 5))
        assert synchrony_index(uniform) == pytest.approx(0.25)
        assert synchrony_index(np.zeros((4, 5))) == 0.0

    def test_layer_summary(self, snn_and_images):
        snn, images = snn_and_images
        summary = layer_summary(snn, images)
        assert len(summary) == len(snn.spiking_neurons())
        for row in summary:
            assert 0.0 <= row["temporal_sparsity"] <= 1.0
            assert 0.0 <= row["fraction_firing"] <= 1.0
            assert row["spikes_per_neuron"] >= 0.0
