"""Neuromorphic core-mapping model tests."""

import math

import numpy as np
import pytest

from repro.conversion import ConversionConfig, convert_dnn_to_snn
from repro.data import DataLoader
from repro.energy import measure_spiking_activity
from repro.hw import CoreSpec, EnergyCoefficients, map_network
from repro.hw.mapping import _cores_for_layer, _layer_geometry
from repro.models import resnet20, vgg11
from repro.nn import Conv2d, Linear


@pytest.fixture(scope="module")
def mapped_vgg():
    rng = np.random.default_rng(0)
    model = vgg11(
        num_classes=5, image_size=8, width_multiplier=0.125,
        rng=np.random.default_rng(1),
    )
    loader = DataLoader(rng.random((8, 3, 8, 8)), rng.integers(0, 5, 8), 8)
    snn = convert_dnn_to_snn(model, loader, ConversionConfig(timesteps=2)).snn
    images = rng.random((4, 3, 8, 8))
    return snn, images


class TestCoreSpec:
    def test_defaults_truenorth_like(self):
        spec = CoreSpec()
        assert spec.neurons_per_core == 256
        assert spec.axons_per_core == 256

    def test_validation(self):
        with pytest.raises(ValueError):
            CoreSpec(neurons_per_core=0)

    def test_energy_coefficients_validation(self):
        with pytest.raises(ValueError):
            EnergyCoefficients(per_mesh_hop=-1.0)


class TestLayerGeometry:
    def test_conv_geometry(self):
        conv = Conv2d(3, 8, 3, stride=1, padding=1, rng=np.random.default_rng(0))
        neurons, inputs, fan_in, synapses, out_shape = _layer_geometry(
            conv, (3, 8, 8)
        )
        assert neurons == 8 * 8 * 8
        assert inputs == 3 * 8 * 8
        assert fan_in == 3 * 3 * 3
        assert synapses == neurons * fan_in
        assert out_shape == (8, 8, 8)

    def test_linear_geometry(self):
        layer = Linear(100, 10, rng=np.random.default_rng(0))
        neurons, inputs, fan_in, synapses, out_shape = _layer_geometry(
            layer, (100,)
        )
        assert (neurons, inputs, fan_in, synapses) == (10, 100, 100, 1000)


class TestCoresForLayer:
    def test_fits_one_core(self):
        assert _cores_for_layer(100, 100, CoreSpec()) == 1

    def test_neuron_tiling(self):
        assert _cores_for_layer(1000, 100, CoreSpec()) == math.ceil(1000 / 256)

    def test_fan_in_splitting(self):
        # fan-in 1000 > 256 axons -> 4 input slices per neuron tile.
        assert _cores_for_layer(100, 1000, CoreSpec()) == 4

    def test_both_limits(self):
        cores = _cores_for_layer(1000, 1000, CoreSpec())
        assert cores == math.ceil(1000 / 256) * 4


class TestMapNetwork:
    def test_layer_count_matches_weight_layers(self, mapped_vgg):
        snn, images = mapped_vgg
        report = map_network(snn, images)
        from repro.energy import trace_weight_layers

        dense = trace_weight_layers(snn.body, (3, 8, 8))
        assert len(report.layers) == len(dense)

    def test_total_cores_positive(self, mapped_vgg):
        snn, images = mapped_vgg
        report = map_network(snn, images)
        assert report.total_cores >= len(report.layers)

    def test_synapses_match_geometry(self, mapped_vgg):
        snn, images = mapped_vgg
        report = map_network(snn, images)
        for layer in report.layers:
            assert layer.synapses == layer.neurons * layer.fan_in

    def test_energy_components(self, mapped_vgg):
        snn, images = mapped_vgg
        report = map_network(snn, images)
        base = report.energy(EnergyCoefficients(1.0, 0.0, 0.0))
        with_static = report.energy(EnergyCoefficients(1.0, 0.0, 1.0))
        assert with_static == pytest.approx(
            base + report.total_cores * snn.timesteps
        )

    def test_silent_network_costs_static_plus_first_layer(self, mapped_vgg):
        snn, images = mapped_vgg
        report = map_network(snn, np.zeros_like(images))
        # Direct-encoded first layer still receives analog input.
        assert report.layers[0].synaptic_events > 0
        assert all(l.synaptic_events == 0 for l in report.layers[1:])

    def test_tighter_cores_need_more_of_them(self, mapped_vgg):
        snn, images = mapped_vgg
        big = map_network(snn, images, CoreSpec(256, 256))
        small = map_network(snn, images, CoreSpec(64, 64))
        assert small.total_cores > big.total_cores

    def test_resnet_maps_all_branches(self):
        rng = np.random.default_rng(2)
        model = resnet20(
            num_classes=5, width_multiplier=0.125, rng=np.random.default_rng(0)
        )
        loader = DataLoader(rng.random((8, 3, 8, 8)), rng.integers(0, 5, 8), 8)
        snn = convert_dnn_to_snn(model, loader, ConversionConfig(timesteps=2)).snn
        deployment = map_network(snn, rng.random((4, 3, 8, 8)))
        from repro.energy import trace_weight_layers

        dense = trace_weight_layers(snn.body, (3, 8, 8))
        assert len(deployment.layers) == len(dense)

    def test_silent_input_lower_energy(self, mapped_vgg):
        snn, images = mapped_vgg
        full = map_network(snn, images)
        silent = map_network(snn, np.zeros_like(images))
        assert silent.energy() < full.energy()

    def test_input_events_scale_with_t(self, mapped_vgg):
        snn, images = mapped_vgg
        report = map_network(snn, images)
        pixels = int(np.prod(images.shape[1:]))
        assert report.layers[0].input_spikes_per_inference == pytest.approx(
            pixels * snn.timesteps
        )
