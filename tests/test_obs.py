"""Observability layer: spans, metrics, logging, instruments, report."""

import json
import os

import numpy as np
import pytest

from repro import obs
from repro.nn import Linear
from repro.obs import metrics as obs_metrics
from repro.obs import trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.report import load_run, render_report
from repro.snn import SpikingNetwork, SpikingNeuron, SpikingSequential, StepWrapper


def _reset_obs():
    obs.shutdown()
    obs.reset_registry()
    trace.reset()
    obs.state().events.clear()
    obs.state().spans.clear()


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends with observability off and empty."""
    _reset_obs()
    yield
    _reset_obs()


def tiny_snn(timesteps=2, rng=None):
    rng = rng if rng is not None else np.random.default_rng(0)
    body = SpikingSequential(
        StepWrapper(Linear(4, 6, rng=rng)),
        SpikingNeuron(v_threshold=0.5, trainable=False),
        StepWrapper(Linear(6, 3, rng=rng)),
    )
    return SpikingNetwork(body, timesteps=timesteps)


class TestCore:
    def test_disabled_by_default(self):
        assert not obs.is_enabled()

    def test_configure_shutdown_cycle(self, tmp_path):
        state = obs.configure(run_dir=str(tmp_path), arch="vgg16")
        assert obs.is_enabled()
        assert state.run_id is not None
        obs.shutdown()
        assert not obs.is_enabled()
        # run_start + run_end both made it to disk.
        lines = (tmp_path / "events.jsonl").read_text().strip().splitlines()
        kinds = [json.loads(line)["kind"] for line in lines]
        assert kinds == ["run_start", "run_end"]
        # Context fields are merged into every record.
        assert all(json.loads(line)["arch"] == "vgg16" for line in lines)

    def test_observe_context_manager(self):
        with obs.observe():
            assert obs.is_enabled()
        assert not obs.is_enabled()

    def test_memory_only_run(self):
        with obs.observe():
            with trace.span("a"):
                pass
            assert len(obs.state().spans) == 1


class TestSpans:
    def test_null_span_singleton_when_disabled(self):
        assert trace.span("x") is trace.span("y")
        assert trace.span("x") is trace.NULL_SPAN
        with trace.span("x") as sp:
            sp.set(anything=1)  # no-op, no error

    def test_nesting_parent_ids_and_depth(self):
        with obs.observe():
            with trace.span("outer") as outer:
                with trace.span("inner") as inner:
                    assert trace.current_span() is inner
                    assert inner.parent_id == outer.span_id
                    assert inner.depth == 1
            assert trace.current_span() is None
        spans = {s["name"]: s for s in obs.state().spans}
        assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
        assert spans["outer"]["parent_id"] is None
        # Children close (and are emitted) before their parent.
        names = [s["name"] for s in obs.state().spans]
        assert names == ["inner", "outer"]

    def test_span_fields_and_duration(self):
        with obs.observe():
            with trace.span("work", layer=3) as sp:
                sp.set(alpha=0.5)
        (record,) = obs.state().spans
        assert record["fields"] == {"layer": 3, "alpha": 0.5}
        assert record["duration_s"] >= 0.0
        assert record["status"] == "ok"

    def test_error_status(self):
        with obs.observe():
            with pytest.raises(RuntimeError):
                with trace.span("doomed"):
                    raise RuntimeError("boom")
        (record,) = obs.state().spans
        assert record["status"] == "error"

    def test_jsonl_round_trip(self, tmp_path):
        with obs.observe(str(tmp_path)):
            with trace.span("outer"):
                with trace.span("inner", layer=1):
                    pass
        records = [
            json.loads(line)
            for line in (tmp_path / "trace.jsonl").read_text().strip().splitlines()
        ]
        assert [r["name"] for r in records] == ["inner", "outer"]
        assert records[0]["fields"] == {"layer": 1}
        assert all(r["kind"] == "span" for r in records)


class TestMetrics:
    def test_counter(self):
        registry = MetricsRegistry()
        registry.inc("spikes", 3)
        registry.inc("spikes", 2)
        assert registry.counter("spikes").value == 5
        with pytest.raises(ValueError):
            registry.counter("spikes").inc(-1)

    def test_gauge_trajectory(self):
        registry = MetricsRegistry()
        for mu in (1.0, 0.8, 0.6):
            registry.set_gauge("mu", mu, layer=0)
        gauge = registry.gauge("mu", layer=0)
        assert gauge.value == 0.6
        assert gauge.trajectory == [1.0, 0.8, 0.6]

    def test_histogram_aggregation(self):
        registry = MetricsRegistry()
        for value in (1.0, 2.0, 3.0, 4.0):
            registry.observe("lat", value)
        hist = registry.histogram("lat")
        assert hist.count == 4
        assert hist.mean == pytest.approx(2.5)
        assert hist.median == pytest.approx(2.5)
        assert hist.minimum == 1.0 and hist.maximum == 4.0
        assert hist.std == pytest.approx(np.std([1, 2, 3, 4]))
        assert hist.percentile(100.0) == 4.0
        with pytest.raises(ValueError):
            hist.percentile(101.0)

    def test_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.observe("rate", 0.1, layer=0)
        registry.observe("rate", 0.9, layer=1)
        assert registry.histogram("rate", layer=0).count == 1
        assert registry.histogram("rate", layer=1).count == 1

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.set_gauge("g", 2.0)
        registry.observe("h", 1.0, layer=2)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 1.0}
        assert snap["gauges"]["g"]["value"] == 2.0
        assert snap["histograms"]["h{layer=2}"]["count"] == 1
        json.dumps(snap)  # JSON-serialisable

    def test_empty_histogram_percentile_raises(self):
        registry = MetricsRegistry()
        hist = registry.histogram("empty")
        with pytest.raises(ValueError, match="empty histogram"):
            hist.percentile(50.0)
        with pytest.raises(ValueError, match="empty histogram"):
            hist.median
        # The aggregate accessors stay well-defined without samples.
        assert hist.mean == 0.0
        assert hist.std == 0.0

    def test_empty_histogram_snapshot_serialisable(self):
        registry = MetricsRegistry()
        registry.histogram("empty")
        snap = registry.snapshot()
        payload = snap["histograms"]["empty"]
        assert payload["count"] == 0
        assert payload["p50"] is None and payload["p95"] is None
        json.dumps(snap)

    def test_global_writers_noop_when_disabled(self):
        obs_metrics.inc("nope")
        obs_metrics.gauge("nope", 1.0)
        obs_metrics.observe("nope", 1.0)
        assert len(obs.get_registry()) == 0

    def test_global_writers_record_when_enabled(self):
        with obs.observe():
            obs_metrics.observe("yes", 1.0)
        assert obs.get_registry().histogram("yes").count == 1


class TestLogging:
    def test_info_prints_and_records(self, capsys, tmp_path):
        with obs.observe(str(tmp_path)):
            obs.get_logger("demo").info("hello", epoch=1)
        assert "[demo] hello" in capsys.readouterr().out
        records = [
            json.loads(line)
            for line in (tmp_path / "events.jsonl").read_text().strip().splitlines()
        ]
        logs = [r for r in records if r["kind"] == "log"]
        assert logs[0]["message"] == "hello"
        assert logs[0]["fields"] == {"epoch": 1}
        assert logs[0]["level"] == "info"

    def test_debug_silent_on_console_but_recorded(self, capsys):
        with obs.observe():
            obs.get_logger("demo").debug("quiet")
        assert capsys.readouterr().out == ""
        assert any(
            e.get("message") == "quiet" for e in obs.state().events
        )

    def test_console_level_adjustable(self, capsys):
        obs.set_console_level("error")
        try:
            obs.get_logger("demo").info("hidden")
            assert capsys.readouterr().out == ""
        finally:
            obs.set_console_level("info")

    def test_console_passthrough(self, capsys):
        with obs.observe():
            obs.console("| a | b |")
        assert "| a | b |" in capsys.readouterr().out
        assert any(e.get("kind") == "console" for e in obs.state().events)

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            obs.get_logger("demo").log("loud", "msg")


class TestInstruments:
    def test_monitored_records_per_layer_histograms(self):
        snn = tiny_snn()
        images = np.random.default_rng(3).random((5, 4))
        with obs.observe():
            with obs.monitored(snn) as monitor:
                snn(images)
            assert monitor.steps_seen == snn.timesteps
        registry = obs.get_registry()
        hist = registry.histogram("snn.spike_rate", layer=0)
        assert hist.count == snn.timesteps
        assert 0.0 <= hist.mean <= 1.0
        membrane = registry.histogram("snn.membrane_mean", layer=0)
        assert membrane.count == snn.timesteps

    def test_monitored_restores_state(self):
        snn = tiny_snn()
        images = np.zeros((2, 4))
        with obs.observe():
            with obs.monitored(snn):
                snn(images)
        assert snn._step_monitor is None
        assert all(not n.recording for n in snn.spiking_neurons())

    def test_monitored_noop_when_disabled(self):
        snn = tiny_snn()
        with obs.monitored(snn) as monitor:
            snn(np.zeros((2, 4)))
        assert monitor is None
        assert len(obs.get_registry()) == 0

    def test_record_spike_profile(self):
        snn = tiny_snn()
        registry = MetricsRegistry()
        snn.set_recording(True)
        snn(np.random.default_rng(0).random((4, 4)))
        rates = obs.record_spike_profile(snn, registry=registry)
        assert len(rates) == 1
        assert registry.gauge("snn.layer_spike_rate", layer=0).value == rates[0]

    def test_timed_uses_profiling_backend(self):
        with obs.observe():
            result = obs.timed("noop", lambda: None, repeats=2, warmup=0)
        assert len(result.samples) == 2
        assert obs.get_registry().histogram("noop.seconds").count == 2
        names = [s["name"] for s in obs.state().spans]
        assert "timed:noop" in names

    def test_measure_inference_memory_gauges(self):
        snn = tiny_snn()
        with obs.observe():
            report = obs.measure_inference_memory(snn, (4,), batch_size=2)
        assert report.total > 0
        gauge = obs.get_registry().gauge("inference_memory.total_bytes")
        assert gauge.value == report.total


class TestReport:
    def test_round_trip_and_render(self, tmp_path):
        with obs.observe(str(tmp_path)):
            with trace.span("outer", phase="x"):
                with trace.span("inner"):
                    pass
            obs_metrics.inc("events", 2)
            obs_metrics.gauge("acc", 0.75)
            obs_metrics.observe("lat", 0.5, layer=1)
            obs.get_logger("demo").error("bad thing")
        run = load_run(str(tmp_path))
        assert len(run.spans) == 2
        report = render_report(run)
        assert "outer" in report and "inner" in report
        assert "events" in report and "acc" in report and "lat{layer=1}" in report
        assert "bad thing" in report
        # inner is rendered indented under outer (tree order).
        assert report.index("outer") < report.index("&nbsp;&nbsp;inner")

    def test_missing_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_run(str(tmp_path / "nope"))

    def test_empty_dir_renders(self, tmp_path):
        report = render_report(load_run(str(tmp_path)))
        assert "no spans recorded" in report

    def test_partial_run_renders_with_warnings(self, tmp_path):
        """A run dir missing spans/metrics degrades to a partial report
        with one warning line per missing artefact, not an exception."""
        (tmp_path / "events.jsonl").write_text(
            json.dumps({"kind": "log", "level": "info", "message": "hi"}) + "\n"
        )
        run = load_run(str(tmp_path))
        assert len(run.events) == 1
        assert any("trace.jsonl" in w for w in run.warnings)
        assert any("metrics.json" in w for w in run.warnings)
        report = render_report(run)
        assert "⚠" in report
        assert "no spans recorded" in report
        assert "1 log" in report

    def test_corrupt_artefact_warns_instead_of_raising(self, tmp_path):
        (tmp_path / "trace.jsonl").write_text("{not json\n")
        (tmp_path / "metrics.json").write_text("{broken")
        run = load_run(str(tmp_path))
        assert run.spans == [] and run.metrics == {}
        # JSONL corruption degrades per line (torn tails keep good
        # records); the single-document metrics.json is all-or-nothing.
        assert any(
            "trace.jsonl" in w and "malformed" in w for w in run.warnings
        )
        assert any("metrics.json" in w and "unreadable" in w for w in run.warnings)
        render_report(run)  # still renders

    def test_missing_drift_is_not_a_warning(self, tmp_path):
        run = load_run(str(tmp_path))
        assert not any("drift" in w for w in run.warnings)
        assert "Conversion drift" not in render_report(run)


class TestPipelineTracing:
    def test_run_pipeline_writes_nested_trace(self, tmp_path):
        """Acceptance: a traced run_pipeline produces nested spans for
        calibration -> Algorithm 1 -> conversion -> SNN eval plus
        per-layer spike-rate histograms."""
        from dataclasses import replace

        from repro.experiments import ExperimentConfig, get_scale, run_pipeline
        from repro.experiments.context import clear_context_cache
        from repro.experiments.pipeline import clear_pipeline_cache

        scale = replace(
            get_scale("tiny"),
            name="obs-test",
            image_size=8,
            train_size=40,
            test_size=20,
            width_multiplier=0.125,
            batch_size=20,
            dnn_epochs=1,
            snn_epochs=1,
            calibration_batches=1,
        )
        config = ExperimentConfig(
            arch="vgg11", dataset="cifar10", timesteps=2, scale=scale
        )
        clear_context_cache()
        clear_pipeline_cache()
        try:
            with obs.observe(str(tmp_path)):
                run_pipeline(config, fine_tune=False)
        finally:
            clear_context_cache()
            clear_pipeline_cache()

        run = load_run(str(tmp_path))
        spans = {s["name"]: s for s in run.spans}
        for name in ("run_pipeline", "calibration", "algorithm1",
                     "conversion", "snn_eval"):
            assert name in spans, f"missing span {name}"
        root_id = spans["run_pipeline"]["span_id"]
        assert spans["run_pipeline"]["parent_id"] is None
        for child in ("calibration", "algorithm1", "conversion", "snn_eval"):
            assert spans[child]["parent_id"] == root_id
            assert spans[child]["depth"] == 1
        # One algorithm1 span per activation layer (VGG-11 has 9).
        assert sum(1 for s in run.spans if s["name"] == "algorithm1") == 9

        histograms = run.metrics["histograms"]
        spike_rates = [k for k in histograms if k.startswith("snn.spike_rate")]
        assert len(spike_rates) == 9  # one per spiking layer
        assert all(histograms[k]["count"] > 0 for k in spike_rates)
        # Scaling-factor trajectories were gauged per layer.
        assert "conversion.mu{layer=0}" in run.metrics["gauges"]
        assert "algorithm1.residual{layer=0}" in histograms


@pytest.fixture(scope="module")
def drift_setup():
    """A tiny (untrained) MLP conversion — enough for drift diagnosis."""
    from repro.conversion import ConversionConfig, convert_dnn_to_snn
    from repro.data import DataLoader
    from repro.nn import ReLU, Sequential

    rng = np.random.default_rng(7)
    model = Sequential(
        Linear(4, 8, rng=rng), ReLU(), Linear(8, 3, rng=rng), ReLU(),
        Linear(3, 2, rng=rng),
    )
    loader = DataLoader(rng.random((16, 4)), rng.integers(0, 2, 16), 8)
    conversion = convert_dnn_to_snn(model, loader, ConversionConfig(timesteps=2))
    return model, conversion, loader


class TestDriftMonitor:
    def test_jsonl_series_across_phases(self, tmp_path, drift_setup):
        model, conversion, loader = drift_setup
        registry = MetricsRegistry()
        with obs.DriftMonitor(
            conversion, model, loader, registry=registry, run_dir=str(tmp_path)
        ) as monitor:
            reports = monitor.snapshot("post_conversion")
            monitor.snapshot("epoch", epoch=1)
        layers = len(conversion.specs)
        assert len(reports) == layers
        records = [
            json.loads(line)
            for line in (tmp_path / "drift.jsonl").read_text().strip().splitlines()
        ]
        assert len(records) == 2 * layers
        assert all(r["kind"] == "drift" for r in records)
        assert {r["snapshot"] for r in records} == {0, 1}
        assert records[-1]["phase"] == "epoch"
        assert records[-1]["epoch"] == 1
        for key in ("mu", "alpha", "beta", "k_mu", "h_t_mu",
                    "predicted_gap", "measured_gap", "relative_gap"):
            assert key in records[0]
        # Gauges landed per layer with full trajectories (one per snapshot).
        gauge = registry.gauge("conversion.drift.measured_gap", layer=0)
        assert len(gauge.trajectory) == 2

    def test_worst_layer_callout(self, drift_setup):
        model, conversion, loader = drift_setup
        monitor = obs.DriftMonitor(
            conversion, model, loader, registry=MetricsRegistry()
        )
        assert monitor.worst() is None
        monitor.snapshot("post_conversion")
        worst = monitor.worst()
        assert worst is not None
        assert abs(worst["measured_gap"]) == max(
            abs(r["measured_gap"]) for r in monitor.snapshots
        )
        assert monitor.worst(phase="nope") is None

    def test_uses_active_run_dir_and_report_section(self, tmp_path, drift_setup):
        model, conversion, loader = drift_setup
        with obs.observe(str(tmp_path)):
            monitor = obs.DriftMonitor(conversion, model, loader)
            monitor.snapshot("post_conversion")
            monitor.close()
        run = load_run(str(tmp_path))
        assert len(run.drift) == len(conversion.specs)
        report = render_report(run)
        assert "## Conversion drift" in report
        assert "Worst layer" in report
        assert "post_conversion" in report
        # The global registry got the per-layer gauges while enabled.
        assert (
            obs.get_registry().gauge(
                "conversion.drift.predicted_gap", layer=0
            ).value is not None
        )

    def test_global_registry_untouched_when_disabled(self, tmp_path, drift_setup):
        model, conversion, loader = drift_setup
        monitor = obs.DriftMonitor(
            conversion, model, loader, run_dir=str(tmp_path)
        )
        monitor.snapshot("post_conversion")
        monitor.close()
        # JSONL still written (explicit run_dir)...
        assert (tmp_path / "drift.jsonl").exists()
        # ...but the disabled global registry stayed empty.
        assert len(obs.get_registry()) == 0

    def test_no_batches_rejected(self, drift_setup):
        model, conversion, _loader = drift_setup
        with pytest.raises(ValueError):
            obs.DriftMonitor(conversion, model, [])


class TestZeroOverheadWhenDisabled:
    def test_no_clock_reads_or_records(self):
        snn = tiny_snn()
        images = np.zeros((2, 4))
        snn(images)
        assert obs.state().spans == []
        assert obs.state().events == []
        assert len(obs.get_registry()) == 0
        assert snn._step_monitor is None

    def test_disabled_calls_are_cheap(self):
        """Disabled span/metric calls must stay at raw-function-call
        cost (a boolean check), not allocate or touch the clock."""
        import timeit

        calls = 20_000
        span_cost = min(
            timeit.repeat(
                lambda: trace.span("hot", layer=1), number=calls, repeat=3
            )
        ) / calls
        metric_cost = min(
            timeit.repeat(
                lambda: obs_metrics.observe("hot", 1.0, layer=1),
                number=calls,
                repeat=3,
            )
        ) / calls
        # Generous bound (a plain Python call is ~0.1 us): catches any
        # accidental work sneaking onto the disabled path.
        assert span_cost < 5e-6
        assert metric_cost < 5e-6
