"""Event-driven execution: exact accounting and sparse-kernel equivalence."""

import numpy as np
import pytest

from repro.conversion import ConversionConfig, convert_dnn_to_snn
from repro.data import DataLoader
from repro.models import vgg11
from repro.nn import Conv2d, Linear
from repro.snn import (
    EventDrivenNetwork,
    conv_fanout_map,
    sparse_conv2d,
    sparse_linear,
)
from repro.tensor import Tensor, no_grad


@pytest.fixture(scope="module")
def converted():
    rng = np.random.default_rng(0)
    model = vgg11(
        num_classes=5, image_size=8, width_multiplier=0.125,
        rng=np.random.default_rng(1),
    )
    loader = DataLoader(rng.random((16, 3, 8, 8)), rng.integers(0, 5, 16), 8)
    conversion = convert_dnn_to_snn(model, loader, ConversionConfig(timesteps=3))
    images = rng.random((4, 3, 8, 8))
    return conversion.snn, images


class TestFanoutMap:
    def test_interior_fanout(self):
        layer = Conv2d(2, 4, 3, stride=1, padding=1, rng=np.random.default_rng(0))
        fanout = conv_fanout_map((2, 6, 6), layer)
        # Interior positions are covered by all 9 kernel placements.
        assert fanout[0, 3, 3] == 9 * 4
        # Corners only by 4 placements.
        assert fanout[0, 0, 0] == 4 * 4

    def test_no_padding(self):
        layer = Conv2d(1, 1, 3, stride=1, padding=0, rng=np.random.default_rng(0))
        fanout = conv_fanout_map((1, 5, 5), layer)
        assert fanout[0, 2, 2] == 9
        assert fanout[0, 0, 0] == 1

    def test_total_equals_dense_macs_without_padding(self):
        # With no padding every kernel tap lands on a real input, so the
        # fan-out total equals the dense MAC count exactly.
        layer = Conv2d(3, 8, 3, stride=1, padding=0, rng=np.random.default_rng(0))
        fanout = conv_fanout_map((3, 6, 6), layer)
        dense_macs = 4 * 4 * 8 * 3 * 3 * 3  # out_hw * out_c * in_c * k * k
        assert fanout.sum() == dense_macs

    def test_padding_taps_excluded(self):
        # With padding, dense MACs include multiplications against the
        # zero pad; the event fan-out counts only real-input taps and is
        # therefore strictly smaller.
        layer = Conv2d(3, 8, 3, stride=1, padding=1, rng=np.random.default_rng(0))
        fanout = conv_fanout_map((3, 6, 6), layer)
        dense_macs = 6 * 6 * 8 * 3 * 3 * 3
        assert 0 < fanout.sum() < dense_macs

    def test_strided(self):
        layer = Conv2d(1, 2, 3, stride=2, padding=0, rng=np.random.default_rng(0))
        fanout = conv_fanout_map((1, 9, 9), layer)
        out_hw = 4 * 4
        assert fanout.sum() == out_hw * 2 * 1 * 3 * 3


class TestSparseKernels:
    def test_sparse_conv_matches_dense(self, rng):
        layer = Conv2d(3, 4, 3, stride=1, padding=1, rng=rng)
        spikes = (rng.random((2, 3, 6, 6)) < 0.3) * 1.7  # sparse, amp 1.7
        dense = layer(Tensor(spikes)).data
        sparse = sparse_conv2d(spikes, layer)
        np.testing.assert_allclose(sparse, dense, atol=1e-10)

    def test_sparse_conv_strided(self, rng):
        layer = Conv2d(2, 3, 3, stride=2, padding=1, rng=rng)
        spikes = (rng.random((1, 2, 8, 8)) < 0.2) * 1.0
        np.testing.assert_allclose(
            sparse_conv2d(spikes, layer), layer(Tensor(spikes)).data, atol=1e-10
        )

    def test_sparse_conv_all_silent(self, rng):
        layer = Conv2d(1, 2, 3, padding=1, rng=rng)
        out = sparse_conv2d(np.zeros((1, 1, 4, 4)), layer)
        np.testing.assert_allclose(out, 0.0)

    def test_sparse_linear_matches_dense(self, rng):
        layer = Linear(10, 4, rng=rng)
        spikes = (rng.random((3, 10)) < 0.4) * 0.9
        np.testing.assert_allclose(
            sparse_linear(spikes, layer), layer(Tensor(spikes)).data, atol=1e-12
        )


class TestEventDrivenNetwork:
    def test_outputs_match_dense_simulator(self, converted):
        snn, images = converted
        runner = EventDrivenNetwork(snn)
        logits, _counts = runner.run(images)
        snn.eval()
        with no_grad():
            reference = snn(images)
        np.testing.assert_allclose(logits.data, reference.data, atol=1e-10)

    def test_sparse_mode_matches_too(self, converted):
        snn, images = converted
        dense_logits, _ = EventDrivenNetwork(snn).run(images)
        sparse_logits, _ = EventDrivenNetwork(snn, sparse=True).run(images)
        np.testing.assert_allclose(
            sparse_logits.data, dense_logits.data, atol=1e-8
        )

    def test_counts_structure(self, converted):
        snn, images = converted
        _logits, counts = EventDrivenNetwork(snn).run(images)
        assert counts.images == images.shape[0]
        assert len(counts.layer_names) == len(counts.accumulates)
        assert counts.total > 0

    def test_first_layer_counts_scale_with_t_and_batch(self, converted):
        snn, images = converted
        from repro.snn import conv_fanout_map

        _logits, counts = EventDrivenNetwork(snn).run(images)
        first_conv = None
        from repro.nn import Conv2d
        from repro.snn import StepWrapper

        for module in snn.modules():
            if isinstance(module, StepWrapper) and isinstance(module.inner, Conv2d):
                first_conv = module.inner
                break
        expected = (
            conv_fanout_map(images.shape[1:], first_conv).sum()
            * snn.timesteps
            * images.shape[0]
        )
        assert counts.accumulates[0] == pytest.approx(expected)

    def test_rate_estimator_agrees_with_exact_counts(self):
        """The Fig. 4(b) estimator must track event-driven ground truth.

        The estimator assumes uniform fan-out (dense MACs x average
        rate); the exact count excludes padding taps and weights spike
        *positions*.  On realistically-sized feature maps (here 16x16,
        so no degenerate 1x1 stages) the totals must agree within a
        factor well below the order-of-magnitude claims of Fig. 4.
        """
        from repro.data import DataLoader
        from repro.energy import measure_spiking_activity, snn_layer_flops

        rng = np.random.default_rng(5)
        model = vgg11(
            num_classes=5, image_size=16, width_multiplier=0.125,
            rng=np.random.default_rng(1),
        )
        loader = DataLoader(rng.random((8, 3, 16, 16)), rng.integers(0, 5, 8), 8)
        snn = convert_dnn_to_snn(model, loader, ConversionConfig(timesteps=3)).snn
        images = rng.random((4, 3, 16, 16))
        labels = np.zeros(4, dtype=np.int64)
        _logits, counts = EventDrivenNetwork(snn).run(images)
        report = measure_spiking_activity(
            snn, DataLoader(images, labels, batch_size=4)
        )
        records = snn_layer_flops(
            snn, images.shape[1:], report.rates_by_neuron_id(snn)
        )
        estimated_total = sum(r.snn_ops for r in records)
        exact_total = counts.total / counts.images
        assert 0.5 < estimated_total / exact_total < 2.0

    def test_silent_network_counts_only_first_layer(self, converted):
        snn, images = converted
        _logits, counts = EventDrivenNetwork(snn).run(np.zeros_like(images))
        assert counts.accumulates[0] > 0
        assert all(c == 0 for c in counts.accumulates[1:])
