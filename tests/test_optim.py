"""Optimizer and LR-scheduler unit tests (exact step math)."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.optim import (
    SGD,
    Adam,
    CosineLR,
    MultiStepLR,
    StepLR,
    paper_milestones,
)


def make_param(value=1.0, grad=0.5):
    p = Parameter(np.array([value]))
    p.grad = np.array([grad])
    return p


class TestSGD:
    def test_vanilla_step(self):
        p = make_param(1.0, 0.5)
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95])

    def test_momentum_accumulates(self):
        p = make_param(0.0, 1.0)
        opt = SGD([p], lr=1.0, momentum=0.9)
        opt.step()  # v=1, p=-1
        p.grad = np.array([1.0])
        opt.step()  # v=1.9, p=-2.9
        np.testing.assert_allclose(p.data, [-2.9])

    def test_weight_decay(self):
        p = make_param(1.0, 0.0)
        SGD([p], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(p.data, [0.95])

    def test_nesterov(self):
        p = make_param(0.0, 1.0)
        opt = SGD([p], lr=1.0, momentum=0.5, nesterov=True)
        opt.step()  # v=1, update=g+0.5v=1.5
        np.testing.assert_allclose(p.data, [-1.5])

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD([make_param()], lr=0.1, nesterov=True)

    def test_none_grad_skipped(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_zero_grad(self):
        p = make_param()
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_rejects_empty_params(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_rejects_bad_lr(self):
        with pytest.raises(ValueError):
            SGD([make_param()], lr=0.0)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ValueError):
            SGD([make_param()], lr=0.1, momentum=1.0)


class TestAdam:
    def test_first_step_size_is_lr(self):
        # With bias correction the first Adam step is ~lr * sign(grad).
        p = make_param(0.0, 0.3)
        Adam([p], lr=0.01).step()
        np.testing.assert_allclose(p.data, [-0.01], atol=1e-6)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = Adam([p], lr=0.5)
        for _ in range(200):
            p.grad = 2.0 * p.data  # d/dx x^2
            opt.step()
        assert abs(p.data[0]) < 1e-2

    def test_weight_decay_applied(self):
        p = make_param(1.0, 0.0)
        Adam([p], lr=0.1, weight_decay=1.0).step()
        assert p.data[0] < 1.0

    def test_rejects_bad_betas(self):
        with pytest.raises(ValueError):
            Adam([make_param()], betas=(1.0, 0.9))


class TestSchedulers:
    def test_paper_milestones(self):
        assert paper_milestones(300) == [180, 240, 270]
        assert paper_milestones(10) == [6, 8, 9]

    def test_paper_milestones_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            paper_milestones(0)

    def test_multistep(self):
        opt = SGD([make_param()], lr=1.0)
        sched = MultiStepLR(opt, milestones=[2, 4], gamma=0.1)
        lrs = []
        for _ in range(5):
            sched.step()
            lrs.append(opt.lr)
        np.testing.assert_allclose(lrs, [1.0, 0.1, 0.1, 0.01, 0.01])

    def test_multistep_rejects_bad_milestones(self):
        with pytest.raises(ValueError):
            MultiStepLR(SGD([make_param()], lr=1.0), milestones=[0])

    def test_steplr(self):
        opt = SGD([make_param()], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.5)
        lrs = []
        for _ in range(4):
            sched.step()
            lrs.append(opt.lr)
        # epoch // step_size: epochs 1..4 -> exponents 0, 1, 1, 2
        np.testing.assert_allclose(lrs, [1.0, 0.5, 0.5, 0.25])

    def test_cosine_endpoints(self):
        opt = SGD([make_param()], lr=1.0)
        sched = CosineLR(opt, total_epochs=10, min_lr=0.0)
        for _ in range(10):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-12)

    def test_cosine_monotone_decrease(self):
        opt = SGD([make_param()], lr=1.0)
        sched = CosineLR(opt, total_epochs=5)
        previous = opt.lr
        for _ in range(5):
            sched.step()
            assert opt.lr <= previous
            previous = opt.lr
