"""Tiny-scale smoke tests of every table/figure driver.

These exercise the exact code paths the benchmark harness runs, on the
shared tiny context, asserting structure rather than accuracy levels.
"""

import numpy as np
import pytest

from repro.experiments import (
    render_fig1,
    render_fig2,
    render_fig3,
    render_fig4,
    render_table1,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig4,
    run_table1_cell,
)
from repro.experiments.config import get_scale


@pytest.fixture(scope="module", autouse=True)
def warm_tiny_vgg16(tiny_context):
    """Most drivers run VGG-16; warm a tiny VGG-16 context once.

    (The shared ``tiny_context`` fixture covers VGG-11 paths.)
    """
    from repro.experiments import ExperimentConfig, get_context

    return get_context(
        ExperimentConfig("vgg16", "cifar10", timesteps=2,
                         scale=get_scale("tiny"), seed=0)
    )


class TestFig1Driver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig1(scale_name="tiny", timesteps=2, max_batches=2)

    def test_structure(self, result):
        assert set(result) >= {
            "mu", "d_max", "alpha", "beta", "grid", "curves",
            "k_mu", "h_t_mu", "h_t_mu_uniform",
        }
        assert result["grid"].shape == result["curves"]["dnn_threshold_relu"].shape

    def test_uniform_h_is_half(self, result):
        for value in result["h_t_mu_uniform"].values():
            assert value == pytest.approx(0.5, abs=0.01)

    def test_empirical_h_below_half(self, result):
        assert all(h < 0.5 for h in result["h_t_mu"].values())

    def test_curves_bounded(self, result):
        dnn = result["curves"]["dnn_threshold_relu"]
        assert dnn.max() <= result["mu"] + 1e-9

    def test_render(self, result):
        text = render_fig1(result)
        assert "K(mu)" in text and "h(T, mu)" in text


class TestFig2Driver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig2(
            arch="vgg16", scale_name="tiny", timesteps=(2, 3),
            strategies=("threshold_relu", "proposed"),
        )

    def test_series_lengths(self, result):
        for series in result["series"].values():
            assert len(series) == 2

    def test_percentages(self, result):
        for series in result["series"].values():
            assert all(0.0 <= v <= 100.0 for v in series)

    def test_render(self, result):
        assert "Fig. 2" in render_fig2(result)


class TestFig3Driver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig3(scale_name="tiny", timesteps=(2, 3), repeats=1)

    def test_rows(self, result):
        assert [r["timesteps"] for r in result["rows"]] == [2, 3]

    def test_time_scales_with_t(self, result):
        t2, t3 = result["rows"]
        assert t3["train_seconds_per_epoch"] > t2["train_seconds_per_epoch"]

    def test_memory_scales_with_t(self, result):
        t2, t3 = result["rows"]
        assert t3["train_memory_mb"] > t2["train_memory_mb"]

    def test_render(self, result):
        assert "Fig. 3" in render_fig3(result)


class TestFig4Driver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4(scale_name="tiny", fine_tune=False)

    def test_profiles_present(self, result):
        labels = {p["label"] for p in result["profiles"]}
        assert labels == {
            "proposed T=2", "proposed T=3", "hybrid T=5 [7]",
            "conversion T=16 [15]",
        }

    def test_energy_positive(self, result):
        assert result["dnn_energy_joules"] > 0
        for profile in result["profiles"]:
            assert profile["energy_joules"] > 0

    def test_spike_rates_bounded(self, result):
        for profile in result["profiles"]:
            for rate in profile["per_layer_spike_rates"]:
                assert 0.0 <= rate <= profile["timesteps"] + 1e-9

    def test_render(self, result):
        assert "iso-arch DNN" in render_fig4(result)


class TestTable1Driver:
    def test_cell_contains_paper_reference(self):
        row = run_table1_cell("vgg11", "cifar10", 2, get_scale("tiny"))
        assert row["paper_dnn"] == 90.76
        assert 0.0 <= row["snn_accuracy"] <= 100.0
        assert "Table I" in render_table1([row])
