"""Property-based tests (hypothesis) on core data structures & invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.conversion import compute_loss, find_scaling_factors, snn_staircase
from repro.snn import IFNeuron, boxcar
from repro.tensor import Tensor, log_softmax, relu, threshold_relu, unbroadcast

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def small_arrays(min_dims=1, max_dims=3, max_side=5):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=min_dims, max_dims=max_dims, max_side=max_side),
        elements=finite_floats,
    )


class TestTensorProperties:
    @given(small_arrays(), small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_addition_matches_numpy_when_broadcastable(self, a, b):
        try:
            expected = a + b
        except ValueError:
            return  # not broadcastable; out of scope
        out = Tensor(a) + Tensor(b)
        np.testing.assert_allclose(out.data, expected)

    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_sum_backward_is_ones(self, a):
        t = Tensor(a, requires_grad=True)
        t.sum().backward()
        np.testing.assert_allclose(t.grad, np.ones_like(a))

    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_relu_idempotent(self, a):
        t = Tensor(a)
        once = relu(t).data
        twice = relu(relu(t)).data
        np.testing.assert_allclose(once, twice)

    @given(small_arrays(), st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=40, deadline=None)
    def test_threshold_relu_bounded(self, a, mu):
        out = threshold_relu(Tensor(a), Tensor(np.array([mu]))).data
        assert np.all(out >= 0.0)
        assert np.all(out <= mu + 1e-12)

    @given(small_arrays(min_dims=2, max_dims=2))
    @settings(max_examples=40, deadline=None)
    def test_log_softmax_normalised(self, a):
        out = log_softmax(Tensor(a), axis=1)
        np.testing.assert_allclose(np.exp(out.data).sum(axis=1), 1.0, atol=1e-9)

    @given(small_arrays())
    @settings(max_examples=40, deadline=None)
    def test_unbroadcast_roundtrip(self, a):
        # Broadcasting up then unbroadcasting a ones-gradient counts the
        # multiplicity of each source element.
        target_shape = (3,) + a.shape
        grad = np.ones(target_shape)
        back = unbroadcast(grad, a.shape)
        np.testing.assert_allclose(back, np.full(a.shape, 3.0))


class TestIFNeuronProperties:
    @given(
        arrays(
            dtype=np.float64,
            shape=st.integers(min_value=1, max_value=30),
            elements=st.floats(min_value=0.0, max_value=2.0),
        ),
        st.floats(min_value=0.2, max_value=3.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_charge_conservation(self, currents, v_th):
        """Eqs. 2-4 invariant: emitted charge + residual = injected."""
        neuron = IFNeuron(v_threshold=v_th)
        emitted = 0.0
        for current in currents:
            emitted += float(neuron(Tensor(np.array([current]))).data[0])
        residual = float(neuron.membrane.data[0])
        np.testing.assert_allclose(emitted + residual, currents.sum(), atol=1e-9)

    @given(
        st.floats(min_value=0.0, max_value=5.0),
        st.floats(min_value=0.2, max_value=2.0),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=40, deadline=None)
    def test_spike_count_bounded_by_charge(self, current, v_th, steps):
        """An IF neuron can never emit more than injected/v_th spikes."""
        neuron = IFNeuron(v_threshold=v_th)
        spikes = 0
        for _ in range(steps):
            if neuron(Tensor(np.array([current]))).data[0] > 0:
                spikes += 1
        assert spikes <= int(current * steps / v_th) + 1

    @given(st.floats(min_value=0.05, max_value=0.95), st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_if_rate_equals_staircase(self, fraction, timesteps):
        """T-step IF output equals the Eq. 5 staircase for constant input."""
        v_th = 1.0
        current = fraction * v_th
        neuron = IFNeuron(v_threshold=v_th)
        total = sum(
            float(neuron(Tensor(np.array([current]))).data[0])
            for _ in range(timesteps)
        )
        expected = snn_staircase(np.array([current]), timesteps, v_th)[0] * timesteps
        np.testing.assert_allclose(total, expected, atol=1e-9)


class TestStaircaseProperties:
    @given(
        arrays(dtype=np.float64, shape=20,
               elements=st.floats(min_value=-1.0, max_value=5.0)),
        st.integers(min_value=1, max_value=16),
        st.floats(min_value=0.2, max_value=3.0),
        st.floats(min_value=0.1, max_value=2.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_staircase_bounded(self, d, timesteps, v_th, beta):
        out = snn_staircase(d, timesteps, v_th, beta=beta)
        assert np.all(out >= 0.0)
        assert np.all(out <= beta * v_th + 1e-12)

    @given(
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=0.3, max_value=3.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_staircase_monotone(self, timesteps, v_th):
        d = np.linspace(-0.5, 2.0 * v_th, 200)
        out = snn_staircase(d, timesteps, v_th)
        assert np.all(np.diff(out) >= -1e-12)


class TestAlgorithm1Properties:
    @given(
        arrays(dtype=np.float64, shape=50,
               elements=st.floats(min_value=0.0, max_value=4.0)),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_search_never_worse_than_identity(self, samples, timesteps):
        mu = 2.0
        percentiles = np.percentile(samples, np.arange(0, 101, 10))
        identity = compute_loss(percentiles, mu, 1.0, 1.0, timesteps)
        result = find_scaling_factors(
            percentiles, mu, timesteps, beta_step=0.25
        )
        assert abs(result.loss) <= abs(identity) + 1e-12

    @given(
        arrays(dtype=np.float64, shape=30,
               elements=st.floats(min_value=0.0, max_value=4.0)),
        st.floats(min_value=0.1, max_value=1.0),
        st.floats(min_value=0.0, max_value=2.0),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_compute_loss_finite(self, percentiles, alpha, beta, timesteps):
        loss = compute_loss(percentiles, 2.0, alpha, beta, timesteps)
        assert np.isfinite(loss)


class TestSurrogateProperties:
    @given(
        arrays(dtype=np.float64, shape=30, elements=finite_floats),
        st.floats(min_value=0.1, max_value=5.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_boxcar_binary(self, u, v_th):
        out = boxcar(u, v_th)
        assert set(np.unique(out)) <= {0.0, 1.0}
