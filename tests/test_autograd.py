"""Autograd graph mechanics: accumulation, no_grad, deep unrolls."""

import numpy as np
import pytest

from repro.tensor import GradMode, Tensor, no_grad


class TestBackward:
    def test_scalar_backward(self):
        x = Tensor([2.0], requires_grad=True)
        (x * x).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_grad_accumulates_across_backwards(self):
        x = Tensor([3.0], requires_grad=True)
        (x * 2.0).sum().backward()
        (x * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, [4.0])

    def test_diamond_graph_accumulates(self):
        x = Tensor([1.0], requires_grad=True)
        y = x * 2.0
        z = (y + y * 3.0).sum()
        z.backward()
        np.testing.assert_allclose(x.grad, [8.0])

    def test_reused_leaf(self):
        x = Tensor([2.0], requires_grad=True)
        (x * x * x).sum().backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_non_scalar_requires_explicit_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError, match="non-scalar"):
            (x * 2.0).backward()

    def test_explicit_grad(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        (x * 3.0).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(x.grad, [3.0, 30.0])

    def test_wrong_grad_shape_rejected(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError, match="shape"):
            (x * 3.0).backward(np.array([1.0]))

    def test_no_grad_path_untouched(self):
        x = Tensor([1.0], requires_grad=True)
        y = Tensor([2.0], requires_grad=False)
        (x * y).sum().backward()
        np.testing.assert_allclose(x.grad, [2.0])
        assert y.grad is None

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2.0).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_deep_chain_does_not_recurse(self):
        # Deep SNN unrolls create graphs far beyond Python's default
        # recursion limit; the traversal must be iterative.
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(5000):
            y = y + 0.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])


class TestGradMode:
    def test_no_grad_context(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad
        assert y._node is None

    def test_no_grad_restores(self):
        assert GradMode.is_enabled()
        with no_grad():
            assert not GradMode.is_enabled()
        assert GradMode.is_enabled()

    def test_no_grad_decorator(self):
        @no_grad()
        def fn(t):
            return t * 3.0

        x = Tensor([1.0], requires_grad=True)
        assert not fn(x).requires_grad

    def test_nested_no_grad(self):
        with no_grad():
            with no_grad():
                assert not GradMode.is_enabled()
            assert not GradMode.is_enabled()
        assert GradMode.is_enabled()

    def test_detach(self):
        x = Tensor([1.0], requires_grad=True)
        d = (x * 2.0).detach()
        assert not d.requires_grad
        y = d * 3.0
        assert not y.requires_grad


class TestTensorBasics:
    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_item_and_numpy(self):
        t = Tensor([5.0])
        assert t.item() == 5.0
        assert t.numpy() is t.data

    def test_constructors(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert Tensor.ones(4).data.sum() == 4.0
        np.testing.assert_allclose(Tensor.full((2,), 7.0).data, [7.0, 7.0])

    def test_wraps_tensor(self):
        inner = Tensor([1.0])
        outer = Tensor(inner)
        np.testing.assert_allclose(outer.data, [1.0])

    def test_len_size_ndim(self, rng):
        t = Tensor(rng.normal(size=(3, 4)))
        assert len(t) == 3
        assert t.size == 12
        assert t.ndim == 2
        assert t.dtype == np.float64

    def test_comparisons_return_arrays(self):
        t = Tensor([1.0, 3.0])
        mask = t > 2.0
        assert isinstance(mask, np.ndarray)
        np.testing.assert_array_equal(mask, [False, True])
        np.testing.assert_array_equal(t >= 3.0, [False, True])
        np.testing.assert_array_equal(t < 2.0, [True, False])
        np.testing.assert_array_equal(t <= 1.0, [True, False])
