"""FGSM attacks, output-decoding modes, and avg-pool VGG variant."""

import numpy as np
import pytest

from repro.conversion import ConversionConfig, convert_dnn_to_snn
from repro.data import DataLoader
from repro.models import vgg11
from repro.nn import AvgPool2d, Conv2d, Flatten, Linear, MaxPool2d
from repro.snn import IFNeuron, SpikingNetwork, SpikingSequential, StepWrapper
from repro.tensor import Tensor
from repro.train import fgsm_accuracy, fgsm_attack


@pytest.fixture(scope="module")
def attack_setup(tiny_context):
    """Trained tiny DNN + converted SNN + a clean test batch."""
    conversion = convert_dnn_to_snn(
        tiny_context.model, tiny_context.calibration_loader(),
        ConversionConfig(timesteps=2),
    )
    images, labels = next(iter(tiny_context.test_loader()))
    return tiny_context.model, conversion.snn, images, labels


class TestFGSM:
    def test_zero_epsilon_identity(self, attack_setup):
        model, _snn, images, labels = attack_setup
        out = fgsm_attack(model, images, labels, epsilon=0.0)
        np.testing.assert_allclose(out, images)

    def test_perturbation_bounded(self, attack_setup):
        model, _snn, images, labels = attack_setup
        adversarial = fgsm_attack(model, images, labels, epsilon=0.1)
        assert np.abs(adversarial - images).max() <= 0.1 + 1e-12

    def test_attack_reduces_dnn_accuracy(self, attack_setup, tiny_context):
        model, _snn, _images, _labels = attack_setup
        clean = fgsm_accuracy(model, tiny_context.test_loader(), epsilon=0.0)
        attacked = fgsm_accuracy(model, tiny_context.test_loader(), epsilon=0.5)
        assert attacked <= clean

    def test_snn_input_gradient_flows(self, attack_setup):
        _model, snn, images, labels = attack_setup
        adversarial = fgsm_attack(snn, images, labels, epsilon=0.1)
        assert adversarial.shape == images.shape
        assert not np.allclose(adversarial, images)

    def test_snn_attack_accuracy_runs(self, attack_setup, tiny_context):
        _model, snn, _images, _labels = attack_setup
        accuracy = fgsm_accuracy(
            snn, tiny_context.test_loader(), epsilon=0.2, max_batches=1
        )
        assert 0.0 <= accuracy <= 1.0

    def test_negative_epsilon_rejected(self, attack_setup):
        model, _snn, images, labels = attack_setup
        with pytest.raises(ValueError):
            fgsm_attack(model, images, labels, epsilon=-0.1)

    def test_empty_batches_rejected(self, attack_setup):
        model, *_ = attack_setup
        with pytest.raises(ValueError):
            fgsm_accuracy(model, [], epsilon=0.1)


def tiny_snn(output_mode, rng=None):
    rng = rng or np.random.default_rng(0)
    body = SpikingSequential(
        StepWrapper(Conv2d(1, 2, 3, padding=1, rng=rng)),
        IFNeuron(v_threshold=0.5),
        StepWrapper(Flatten()),
        StepWrapper(Linear(2 * 4 * 4, 3, bias=False, rng=rng)),
    )
    return SpikingNetwork(body, timesteps=3, output_mode=output_mode)


class TestOutputModes:
    def test_modes_give_valid_shapes(self, rng):
        x = rng.random((2, 1, 4, 4))
        for mode in ("mean", "max", "last"):
            out = tiny_snn(mode, np.random.default_rng(1))(x)
            assert out.shape == (2, 3)

    def test_mean_is_average_of_steps(self, rng):
        # For a silent input all modes agree at zero.
        for mode in ("mean", "max", "last"):
            out = tiny_snn(mode, np.random.default_rng(1))(np.zeros((1, 1, 4, 4)))
            np.testing.assert_allclose(out.data, 0.0, atol=1e-12)

    def test_max_bounds_mean(self, rng):
        x = rng.random((2, 1, 4, 4))
        mean_out = tiny_snn("mean", np.random.default_rng(1))(x)
        max_out = tiny_snn("max", np.random.default_rng(1))(x)
        assert np.all(max_out.data >= mean_out.data - 1e-12)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            tiny_snn("median")


class TestAvgPoolVariant:
    def test_avg_pool_vgg_builds(self, rng):
        m = vgg11(
            num_classes=5, image_size=16, width_multiplier=0.125,
            pool="avg", rng=rng,
        )
        pools = [l for l in m.features if isinstance(l, AvgPool2d)]
        assert pools
        assert not any(isinstance(l, MaxPool2d) for l in m.features)
        assert m(Tensor(rng.normal(size=(1, 3, 16, 16)))).shape == (1, 5)

    def test_avg_pool_vgg_converts(self, rng):
        m = vgg11(
            num_classes=5, image_size=8, width_multiplier=0.125,
            pool="avg", rng=np.random.default_rng(0),
        )
        loader = DataLoader(rng.random((8, 3, 8, 8)), rng.integers(0, 5, 8), 8)
        conversion = convert_dnn_to_snn(m, loader, ConversionConfig(timesteps=2))
        images, _ = next(iter(loader))
        assert conversion.snn(images).shape == (8, 5)

    def test_invalid_pool_rejected(self, rng):
        with pytest.raises(ValueError):
            vgg11(pool="median", rng=rng)
