"""Fused (layer-major) vs stepwise (step-major) engine equivalence.

``SpikingNetwork`` executes the same temporal unroll two ways: the
classic step-major loop and the time-folded layer-major engine (PR 3).
These tests pin the contract from ``repro.snn.network``: identical
logits, spike counts and BPTT gradients for every ``output_mode``,
neuron configuration (IF/LIF, soft/hard reset, ``beta``, non-zero
initial potential), encoder, and probe (event counting, step monitors,
drift diagnosis) — or a documented stepwise fallback where per-step
semantics demand one.
"""

import numpy as np
import pytest

from repro.conversion import ConversionConfig, convert_dnn_to_snn
from repro.data import DataLoader
from repro.models import vgg11
from repro.nn import BatchNorm2d, Conv2d, Flatten, Linear
from repro.obs import DriftMonitor, monitored
from repro.obs.metrics import MetricsRegistry
from repro.snn import (
    EventDrivenNetwork,
    IFNeuron,
    LIFNeuron,
    PoissonEncoder,
    SpikingMaxPool,
    SpikingNetwork,
    SpikingResidualBlock,
    SpikingSequential,
    StepWrapper,
    TemporalDropout,
    fold_time,
    tile_time,
    unfold_time,
)
from repro.tensor import Tensor, no_grad

T = 3

# (constructor, kwargs) triples covering the neuron design space: plain
# IF, a leaky neuron with beta-scaled spikes and a bias-shift initial
# potential, and the hard-reset variant (detached reset branch).
NEURON_CONFIGS = [
    pytest.param(lambda: IFNeuron(v_threshold=0.6), id="if-soft"),
    pytest.param(
        lambda: LIFNeuron(v_threshold=0.6, leak=0.85, beta=1.3,
                          initial_potential=0.35),
        id="lif-beta-shift",
    ),
    pytest.param(
        lambda: LIFNeuron(v_threshold=0.6, leak=1.0, reset_mode="hard"),
        id="if-hard",
    ),
]


def build_net(neuron_fn, mode, timesteps=T, output_mode="mean",
              encoder=None, dropout=None, batchnorm=False, seed=0):
    """A tiny conv -> neuron -> pool -> linear network, seeded so two
    builds with the same ``seed`` are exact parameter twins."""
    rng = np.random.default_rng(seed)
    layers = [StepWrapper(Conv2d(1, 2, 3, padding=1, rng=rng))]
    if batchnorm:
        layers.append(StepWrapper(BatchNorm2d(2)))
    layers.append(neuron_fn())
    layers.append(SpikingMaxPool(2))
    if dropout is not None:
        layers.append(TemporalDropout(dropout, rng=np.random.default_rng(99)))
    layers += [
        StepWrapper(Flatten()),
        StepWrapper(Linear(2 * 2 * 2, 3, rng=rng)),
    ]
    body = SpikingSequential(*layers)
    return SpikingNetwork(
        body, timesteps=timesteps, encoder=encoder,
        output_mode=output_mode, mode=mode,
    )


def images_batch(n=4, seed=3):
    return np.random.default_rng(seed).random((n, 1, 4, 4))


def assert_logits_match(fused, stepwise):
    """Logit equality up to GEMM reduction order.

    BLAS may block a GEMM over the folded ``(T*N, ...)`` batch
    differently than T per-step GEMMs, so outputs agree to within a few
    ulp rather than bitwise.
    """
    np.testing.assert_allclose(fused, stepwise, rtol=1e-12, atol=1e-14)


def run_recorded(snn, images):
    """Eval-mode no-grad forward with spike recording; returns
    ``(logits, total spike count)``."""
    snn.eval()
    snn.reset_spike_stats()
    snn.set_recording(True)
    with no_grad():
        logits = snn(images)
    return logits.data, snn.total_spikes()


def backward_pass(snn, images, seed=11):
    """Forward + BPTT backward under a fixed projection loss; returns
    ``(logits, input gradient, {param name: gradient})``."""
    snn.eval()
    snn.zero_grad()
    x = Tensor(images, requires_grad=True)
    logits = snn(x)
    weights = Tensor(np.random.default_rng(seed).normal(size=logits.data.shape))
    (logits * weights).sum().backward()
    grads = {
        name: param.grad.copy()
        for name, param in snn.named_parameters()
        if param.grad is not None
    }
    return logits.data, x.grad.copy(), grads


class TestForwardEquivalence:
    @pytest.mark.parametrize("neuron_fn", NEURON_CONFIGS)
    @pytest.mark.parametrize("output_mode", SpikingNetwork.OUTPUT_MODES)
    def test_logits_and_spike_counts_match(self, neuron_fn, output_mode):
        images = images_batch()
        logits, spikes = {}, {}
        for mode in SpikingNetwork.MODES:
            snn = build_net(neuron_fn, mode, output_mode=output_mode)
            logits[mode], spikes[mode] = run_recorded(snn, images)
        assert_logits_match(logits["fused"], logits["stepwise"])
        assert spikes["fused"] == spikes["stepwise"] > 0

    def test_poisson_encoder_folds_frames(self):
        # Non-direct encoding takes the fold_time path (no prefix
        # caching); identical encoder seeds give identical frames.
        images = images_batch()
        logits = {}
        for mode in SpikingNetwork.MODES:
            snn = build_net(
                lambda: IFNeuron(v_threshold=0.6), mode,
                encoder=PoissonEncoder(rng=np.random.default_rng(5)),
            )
            logits[mode], _ = run_recorded(snn, images)
        assert_logits_match(logits["fused"], logits["stepwise"])

    def test_temporal_dropout_training(self):
        # The fused mask is sampled at frame shape from the same RNG
        # stream as the first step-major draw, then shared across the
        # T time blocks — so training forwards agree exactly.
        images = images_batch()
        logits = {}
        for mode in SpikingNetwork.MODES:
            snn = build_net(
                lambda: IFNeuron(v_threshold=0.6), mode, dropout=0.4,
            )
            snn.train()
            with no_grad():
                logits[mode] = snn(images).data
        assert_logits_match(logits["fused"], logits["stepwise"])

    def test_batchnorm_eval_folds(self):
        images = images_batch()
        logits = {}
        for mode in SpikingNetwork.MODES:
            snn = build_net(
                lambda: IFNeuron(v_threshold=0.6), mode, batchnorm=True,
            )
            logits[mode], _ = run_recorded(snn, images)
        assert_logits_match(logits["fused"], logits["stepwise"])

    def test_batchnorm_train_falls_back_per_step(self):
        # Train-mode BN computes batch statistics; a folded batch would
        # pool them across time steps, so the fused engine replays BN
        # per step.  Outputs and running-stat updates must both match.
        images = images_batch()
        logits, stats = {}, {}
        for mode in SpikingNetwork.MODES:
            snn = build_net(
                lambda: IFNeuron(v_threshold=0.6), mode, batchnorm=True,
            )
            snn.train()
            with no_grad():
                logits[mode] = snn(images).data
            bn = snn.body[1].inner
            stats[mode] = (bn.running_mean.copy(), bn.running_var.copy())
        assert_logits_match(logits["fused"], logits["stepwise"])
        # Running stats can differ by one ulp: numpy's pairwise mean
        # blocks differently over the tiled view than over the freshly
        # computed per-step activation.
        np.testing.assert_allclose(
            stats["fused"][0], stats["stepwise"][0], rtol=1e-14
        )
        np.testing.assert_allclose(
            stats["fused"][1], stats["stepwise"][1], rtol=1e-14
        )

    def test_residual_block_equivalence(self):
        images = np.random.default_rng(3).random((2, 2, 4, 4))
        logits = {}
        for mode in SpikingNetwork.MODES:
            rng = np.random.default_rng(7)
            block = SpikingResidualBlock(
                conv1=StepWrapper(Conv2d(2, 2, 3, padding=1, rng=rng)),
                neuron1=IFNeuron(v_threshold=0.5),
                conv2=StepWrapper(Conv2d(2, 2, 3, padding=1, rng=rng)),
                shortcut=StepWrapper(Conv2d(2, 2, 1, rng=rng)),
                neuron2=IFNeuron(v_threshold=0.5),
            )
            body = SpikingSequential(
                block,
                StepWrapper(Flatten()),
                StepWrapper(Linear(2 * 4 * 4, 3, bias=False, rng=rng)),
            )
            snn = SpikingNetwork(body, timesteps=T, mode=mode)
            logits[mode], _ = run_recorded(snn, images)
        assert_logits_match(logits["fused"], logits["stepwise"])


class TestGradientEquivalence:
    @pytest.mark.parametrize("neuron_fn", NEURON_CONFIGS)
    def test_bptt_gradients_match(self, neuron_fn):
        # The gradcheck of the tentpole: same surrogate-gradient BPTT
        # through both engines — weights, threshold, leak, and input.
        images = images_batch()
        results = {
            mode: backward_pass(build_net(neuron_fn, mode), images)
            for mode in SpikingNetwork.MODES
        }
        logits_f, gx_f, grads_f = results["fused"]
        logits_s, gx_s, grads_s = results["stepwise"]
        assert_logits_match(logits_f, logits_s)
        np.testing.assert_allclose(gx_f, gx_s, rtol=1e-9, atol=1e-12)
        assert set(grads_f) == set(grads_s)
        assert any("v_threshold" in name for name in grads_f)
        assert any("leak" in name for name in grads_f)
        for name in grads_s:
            np.testing.assert_allclose(
                grads_f[name], grads_s[name], rtol=1e-9, atol=1e-12,
                err_msg=f"gradient mismatch for {name}",
            )

    @pytest.mark.parametrize("output_mode", SpikingNetwork.OUTPUT_MODES)
    def test_output_mode_gradients_match(self, output_mode):
        images = images_batch()
        results = {
            mode: backward_pass(
                build_net(lambda: IFNeuron(v_threshold=0.6), mode,
                          output_mode=output_mode),
                images,
            )
            for mode in SpikingNetwork.MODES
        }
        _, gx_f, grads_f = results["fused"]
        _, gx_s, grads_s = results["stepwise"]
        np.testing.assert_allclose(gx_f, gx_s, rtol=1e-9, atol=1e-12)
        for name in grads_s:
            np.testing.assert_allclose(
                grads_f[name], grads_s[name], rtol=1e-9, atol=1e-12,
                err_msg=f"gradient mismatch for {name}",
            )


class TestEventDrivenEquivalence:
    def test_accumulate_counts_match(self):
        # EventDrivenNetwork instance-patches layer forwards to count
        # events per step; the fused engine detects the patch and
        # replays those modules per step, so exact accounting survives.
        images = images_batch()
        logits, counts = {}, {}
        for mode in SpikingNetwork.MODES:
            snn = build_net(lambda: IFNeuron(v_threshold=0.6), mode)
            snn.eval()
            logits[mode], counts[mode] = EventDrivenNetwork(snn).run(images)
        assert_logits_match(logits["fused"].data, logits["stepwise"].data)
        assert counts["fused"] == counts["stepwise"]
        assert counts["fused"].total > 0


class TestModePlumbing:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode must be one of"):
            build_net(lambda: IFNeuron(), "warp")
        snn = build_net(lambda: IFNeuron(), "fused")
        with pytest.raises(ValueError, match="mode must be one of"):
            with snn.using_mode("warp"):
                pass

    def test_using_mode_restores(self):
        snn = build_net(lambda: IFNeuron(v_threshold=0.6), "fused")
        images = images_batch()
        with no_grad():
            baseline = snn(images).data
        with snn.using_mode("stepwise"):
            assert snn.resolved_mode() == "stepwise"
            with no_grad():
                pinned = snn(images).data
        assert snn.mode == "fused"
        assert np.array_equal(baseline, pinned)

    def test_monitor_forces_stepwise(self):
        snn = build_net(lambda: IFNeuron(), "fused")
        assert snn.resolved_mode() == "fused"
        snn.attach_monitor(object())
        assert snn.resolved_mode() == "stepwise"
        snn.detach_monitor()
        assert snn.resolved_mode() == "fused"

    def test_fold_unfold_round_trip(self):
        frames = [Tensor(np.full((2, 3), float(t))) for t in range(T)]
        fused = fold_time(frames)
        assert fused.data.shape == (2 * T, 3)
        back = unfold_time(fused, T)
        for t in range(T):
            np.testing.assert_array_equal(back[t].data, frames[t].data)
        with pytest.raises(ValueError, match="not divisible"):
            unfold_time(fused, 4)

    def test_tile_time_gradient_sums_blocks(self):
        frame = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        tiled = tile_time(frame, T)
        assert tiled.data.shape == (2 * T, 3)
        for t in range(T):
            np.testing.assert_array_equal(tiled.data[2 * t:2 * t + 2], frame.data)
        tiled.sum().backward()
        np.testing.assert_array_equal(frame.grad, np.full((2, 3), float(T)))


@pytest.fixture(scope="module")
def converted():
    rng = np.random.default_rng(0)
    model = vgg11(
        num_classes=5, image_size=8, width_multiplier=0.125,
        rng=np.random.default_rng(1),
    )
    loader = DataLoader(rng.random((16, 3, 8, 8)), rng.integers(0, 5, 16), 8)
    conversion = convert_dnn_to_snn(model, loader, ConversionConfig(timesteps=2))
    return conversion, model, rng.random((4, 3, 8, 8))


class TestObsCompatibility:
    def test_step_monitor_series_identical(self):
        # A StepMonitor needs true step-boundary state, so a fused
        # network documents an explicit fallback: while attached,
        # resolved_mode() is stepwise and the recorded gauge
        # trajectories match a stepwise-pinned twin exactly.
        images = images_batch()
        snapshots, steps = {}, {}
        for mode in SpikingNetwork.MODES:
            snn = build_net(lambda: IFNeuron(v_threshold=0.6), mode)
            snn.eval()
            registry = MetricsRegistry()
            with monitored(snn, registry=registry) as monitor:
                assert snn.resolved_mode() == "stepwise"
                with no_grad():
                    snn(images)
                steps[mode] = monitor.steps_seen
            assert snn.resolved_mode() == mode
            snapshots[mode] = registry.snapshot()
        assert steps["fused"] == steps["stepwise"] == T
        assert snapshots["fused"] == snapshots["stepwise"]
        # The series is non-trivial: per-layer spike-rate and membrane
        # histograms plus spike counters were actually recorded.
        assert snapshots["fused"]["histograms"]
        assert snapshots["fused"]["counters"]

    def test_drift_monitor_same_series_under_both_modes(self, converted):
        # Conversion-drift diagnosis taps layer forwards per step; the
        # fused engine honours those probes, so drift records agree.
        conversion, model, images = converted
        records = {}
        for mode in SpikingNetwork.MODES:
            monitor = DriftMonitor(
                conversion, model, [(images, np.zeros(len(images)))],
                registry=MetricsRegistry(), run_dir=None,
            )
            with conversion.snn.using_mode(mode):
                monitor.snapshot(phase=mode)
            records[mode] = [
                {k: v for k, v in record.items() if k not in ("ts", "phase")}
                for record in monitor.snapshots
            ]
        assert records["fused"] == records["stepwise"]
        assert len(records["fused"]) > 0


class TestConvertedNetworkEquivalence:
    def test_converted_vgg_logits_and_grads(self, converted):
        conversion, _model, images = converted
        snn = conversion.snn
        outputs = {}
        for mode in SpikingNetwork.MODES:
            with snn.using_mode(mode):
                outputs[mode] = run_recorded(snn, images)
        assert_logits_match(outputs["fused"][0], outputs["stepwise"][0])
        assert outputs["fused"][1] == outputs["stepwise"][1] > 0

        grads = {}
        for mode in SpikingNetwork.MODES:
            with snn.using_mode(mode):
                grads[mode] = backward_pass(snn, images)
        for name in grads["stepwise"][2]:
            np.testing.assert_allclose(
                grads["fused"][2][name], grads["stepwise"][2][name],
                rtol=1e-9, atol=1e-12, err_msg=f"gradient mismatch for {name}",
            )
