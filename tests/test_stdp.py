"""Pair-based STDP tests."""

import numpy as np
import pytest

from repro.nn import Linear
from repro.snn import IFNeuron, STDPConfig, STDPLearner, run_stdp_session


def make_learner(in_features=4, out_features=3, **config_kwargs):
    layer = Linear(in_features, out_features, bias=False,
                   rng=np.random.default_rng(0))
    layer.weight.data[...] = 0.0
    return STDPLearner(layer, STDPConfig(**config_kwargs))


class TestSTDPConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            STDPConfig(lr_plus=-1.0)
        with pytest.raises(ValueError):
            STDPConfig(decay_pre=1.5)
        with pytest.raises(ValueError):
            STDPConfig(w_min=1.0, w_max=0.0)


class TestSTDPLearner:
    def test_coincident_pre_post_potentiates(self):
        learner = make_learner(lr_minus=0.0)
        pre = np.zeros((1, 4)); pre[0, 1] = 1.0
        post = np.zeros((1, 3)); post[0, 2] = 1.0
        learner.step(pre, post)
        assert learner.layer.weight.data[2, 1] > 0.0
        # untouched synapses stay zero
        assert learner.layer.weight.data[0, 0] == 0.0

    def test_post_before_pre_depresses(self):
        learner = make_learner(lr_plus=0.0)
        post = np.zeros((1, 3)); post[0, 0] = 1.0
        pre = np.zeros((1, 4)); pre[0, 2] = 1.0
        # post fires first, then pre: depression on the next step.
        learner.step(np.zeros((1, 4)), post)
        learner.step(pre, np.zeros((1, 3)))
        assert learner.layer.weight.data[0, 2] < 0.0

    def test_pre_before_post_potentiates_via_trace(self):
        learner = make_learner(lr_minus=0.0)
        pre = np.zeros((1, 4)); pre[0, 0] = 1.0
        learner.step(pre, np.zeros((1, 3)))
        post = np.zeros((1, 3)); post[0, 1] = 1.0
        learner.step(np.zeros((1, 4)), post)
        # pre trace decayed but non-zero at the post spike.
        assert learner.layer.weight.data[1, 0] > 0.0

    def test_weights_clipped(self):
        learner = make_learner(lr_plus=100.0, lr_minus=0.0, w_max=0.5)
        pre = np.ones((1, 4)); post = np.ones((1, 3))
        for _ in range(5):
            learner.step(pre, post)
        assert learner.layer.weight.data.max() <= 0.5 + 1e-12

    def test_reset_clears_traces(self):
        learner = make_learner()
        learner.step(np.ones((1, 4)), np.ones((1, 3)))
        learner.reset()
        assert learner._trace_pre is None

    def test_shape_validation(self):
        learner = make_learner()
        with pytest.raises(ValueError):
            learner.step(np.ones((1, 5)), np.ones((1, 3)))
        with pytest.raises(ValueError):
            learner.step(np.ones((1, 4)), np.ones((1, 2)))
        with pytest.raises(ValueError):
            learner.step(np.ones((2, 4)), np.ones((1, 3)))
        with pytest.raises(ValueError):
            learner.step(np.ones(4), np.ones(3))

    def test_rejects_non_linear(self):
        from repro.nn import Conv2d

        with pytest.raises(TypeError):
            STDPLearner(Conv2d(1, 1, 3, rng=np.random.default_rng(0)))


class TestSTDPSession:
    def test_session_shapes_and_learning(self):
        rng = np.random.default_rng(0)
        layer = Linear(6, 4, bias=False, rng=np.random.default_rng(1))
        layer.weight.data[...] = 0.3  # start with firing-capable weights
        learner = STDPLearner(layer, STDPConfig(lr_plus=5e-2, lr_minus=1e-2))
        neuron = IFNeuron(v_threshold=0.5)
        # Inputs where features 0-2 are co-active: their synapses onto
        # the neurons they drive should strengthen relative to 3-5.
        frames = np.zeros((20, 2, 6))
        frames[:, :, :3] = (rng.random((20, 2, 3)) < 0.8).astype(float)
        frames[:, :, 3:] = (rng.random((20, 2, 3)) < 0.05).astype(float)
        raster = run_stdp_session(learner, neuron, frames)
        assert raster.shape == (20, 2, 4)
        active_mean = layer.weight.data[:, :3].mean()
        silent_mean = layer.weight.data[:, 3:].mean()
        assert active_mean > silent_mean

    def test_session_rejects_bad_shape(self):
        learner = make_learner()
        neuron = IFNeuron()
        with pytest.raises(ValueError):
            run_stdp_session(learner, neuron, np.zeros((3, 4)))
