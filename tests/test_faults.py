"""Fault-injection subsystem: specs, injector, telemetry, sweep."""

import os
from dataclasses import replace

import numpy as np
import pytest

from repro.conversion import ConversionConfig, convert_dnn_to_snn
from repro.data import DataLoader
from repro.faults import (
    FAULTS_FILENAME,
    FaultSpec,
    FaultTelemetry,
    NeuronFaults,
    TransmissionFaults,
    WeightFaults,
    inject_faults,
)
from repro.models import vgg11
from repro.tensor import no_grad


@pytest.fixture(scope="module")
def snn_setup():
    rng = np.random.default_rng(3)
    model = vgg11(
        num_classes=5, image_size=8, width_multiplier=0.125,
        rng=np.random.default_rng(0),
    )
    loader = DataLoader(rng.random((8, 3, 8, 8)), rng.integers(0, 5, 8), 8)
    snn = convert_dnn_to_snn(model, loader, ConversionConfig(timesteps=2)).snn
    snn.eval()
    images = rng.random((4, 3, 8, 8))
    return model, snn, images


def _forward(snn, images, mode):
    snn.mode = mode
    with no_grad():
        return snn(images).data.copy()


class TestFaultSpec:
    def test_null_by_default(self):
        assert FaultSpec().is_null

    def test_component_validation(self):
        with pytest.raises(ValueError):
            WeightFaults(prune_rate=1.5)
        with pytest.raises(ValueError):
            WeightFaults(quant_bits=1)
        with pytest.raises(ValueError):
            NeuronFaults(dead_rate=-0.1)
        with pytest.raises(ValueError):
            TransmissionFaults(spike_drop_rate=2.0)

    def test_dict_roundtrip(self):
        spec = FaultSpec(
            weight=WeightFaults(quant_bits=4, prune_rate=0.1),
            neuron=NeuronFaults(dead_rate=0.2),
            transmission=TransmissionFaults(frame_drop_rate=0.1),
            seed=11,
        )
        assert FaultSpec.from_dict(spec.as_dict()) == spec

    def test_single_knob_constructors(self):
        assert FaultSpec.quantization(4).weight.quant_bits == 4
        assert FaultSpec.dead_neurons(0.3).neuron.dead_rate == 0.3
        assert FaultSpec.frame_drop(0.2).transmission.frame_drop_rate == 0.2
        assert not FaultSpec.pruning(0.1).is_null

    def test_layers_normalised_to_sorted_tuple(self):
        spec = WeightFaults(prune_rate=0.1, layers=[3, 1, 3, 0])
        assert spec.layers == (0, 1, 3)
        assert NeuronFaults(dead_rate=0.1, layers=None).layers is None

    def test_layers_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            WeightFaults(prune_rate=0.1, layers=(-1,))
        with pytest.raises(ValueError, match="layer indices"):
            NeuronFaults(dead_rate=0.1, layers=("conv1",))
        with pytest.raises(ValueError, match="layer indices"):
            TransmissionFaults(spike_drop_rate=0.1, layers=(True,))


class TestLayerTargeting:
    def test_nonexistent_weight_layer_named_in_error(self, snn_setup):
        from repro.nn import Conv2d, Linear

        model, _, _ = snn_setup
        count = sum(
            1 for _, m in model.named_modules()
            if isinstance(m, (Conv2d, Linear))
        )
        spec = FaultSpec(
            weight=WeightFaults(prune_rate=0.5, layers=(count + 5,))
        )
        with pytest.raises(ValueError) as excinfo:
            inject_faults(model, spec).__enter__()
        message = str(excinfo.value)
        assert f"layer {count + 5}" in message
        assert "valid indices" in message

    def test_nonexistent_neuron_layer_named_in_error(self, snn_setup):
        _, snn, _ = snn_setup
        spec = FaultSpec(neuron=NeuronFaults(dead_rate=0.5, layers=(99,)))
        with pytest.raises(ValueError, match="layer 99"):
            inject_faults(snn, spec).__enter__()
        spec = FaultSpec(
            transmission=TransmissionFaults(spike_drop_rate=0.5, layers=(42,))
        )
        with pytest.raises(ValueError, match="layer 42"):
            inject_faults(snn, spec).__enter__()

    def test_validation_happens_before_any_mutation(self, snn_setup):
        model, _, _ = snn_setup
        before = [p.data.copy() for p in model.parameters()]
        spec = FaultSpec(
            weight=WeightFaults(prune_rate=1.0, layers=(0, 999))
        )
        with pytest.raises(ValueError):
            inject_faults(model, spec).__enter__()
        for param, stored in zip(model.parameters(), before):
            assert np.array_equal(param.data, stored)

    def test_targeted_layers_restrict_injection(self, snn_setup):
        from repro.nn import Conv2d, Linear

        model, _, _ = snn_setup
        weighted = [
            m for _, m in model.named_modules()
            if isinstance(m, (Conv2d, Linear))
        ]
        before = [m.weight.data.copy() for m in weighted]
        spec = FaultSpec(
            weight=WeightFaults(prune_rate=0.9, layers=(0,)), seed=3
        )
        with inject_faults(model, spec):
            assert not np.array_equal(weighted[0].weight.data, before[0])
            for module, stored in zip(weighted[1:], before[1:]):
                assert np.array_equal(module.weight.data, stored)
        for module, stored in zip(weighted, before):
            assert np.array_equal(module.weight.data, stored)


class TestInjector:
    def test_null_spec_is_bitwise_identity(self, snn_setup):
        _, snn, images = snn_setup
        for mode in ("fused", "stepwise"):
            clean = _forward(snn, images, mode)
            with inject_faults(snn, FaultSpec()):
                faulted = _forward(snn, images, mode)
            assert np.array_equal(clean, faulted)

    def test_composite_faults_mode_equivalent(self, snn_setup):
        _, snn, images = snn_setup
        spec = FaultSpec(
            weight=WeightFaults(quant_bits=4, prune_rate=0.1),
            neuron=NeuronFaults(
                dead_rate=0.2, threshold_jitter=0.1, leak_drift=0.05
            ),
            transmission=TransmissionFaults(
                spike_drop_rate=0.1, frame_drop_rate=0.1
            ),
            seed=11,
        )
        with inject_faults(snn, spec):
            fused = _forward(snn, images, "fused")
        with inject_faults(snn, spec):
            stepwise = _forward(snn, images, "stepwise")
        np.testing.assert_allclose(fused, stepwise, atol=1e-10)

    def test_exact_restore_on_exit(self, snn_setup):
        _, snn, images = snn_setup
        clean = _forward(snn, images, "fused")
        spec = FaultSpec(
            weight=WeightFaults(stuck_zero_rate=0.3, sign_flip_rate=0.1),
            neuron=NeuronFaults(dead_rate=0.5, threshold_jitter=0.3),
            transmission=TransmissionFaults(spike_drop_rate=0.5),
            seed=5,
        )
        with inject_faults(snn, spec):
            _forward(snn, images, "fused")
        assert np.array_equal(clean, _forward(snn, images, "fused"))
        # no lingering instance patches: fused engine must stay fused
        for neuron in snn.spiking_neurons():
            assert "forward" not in neuron.__dict__
            assert neuron._unit_fault_fn is None

    def test_seed_determinism(self, snn_setup):
        _, snn, images = snn_setup
        spec = FaultSpec.spike_drop(0.2, seed=7)
        with inject_faults(snn, spec):
            first = _forward(snn, images, "fused")
        with inject_faults(snn, spec):
            second = _forward(snn, images, "fused")
        assert np.array_equal(first, second)
        with inject_faults(snn, spec.with_seed(8)):
            other_seed = _forward(snn, images, "fused")
        assert not np.array_equal(first, other_seed)

    def test_weight_faults_apply_to_plain_dnn(self, snn_setup, rng):
        model, _, _ = snn_setup
        x = rng.random((2, 3, 8, 8))
        model.eval()
        from repro.tensor import Tensor

        with no_grad():
            clean = model(Tensor(x)).data.copy()
            with inject_faults(model, FaultSpec.pruning(0.5, seed=1)) as s:
                pruned = model(Tensor(x)).data.copy()
            restored = model(Tensor(x)).data
        assert s.summary()["weights_pruned"] > 0
        assert not np.array_equal(clean, pruned)
        assert np.array_equal(clean, restored)

    def test_spiking_faults_rejected_on_plain_dnn(self, snn_setup):
        model, _, _ = snn_setup
        with pytest.raises(ValueError, match="SpikingNetwork"):
            inject_faults(model, FaultSpec.dead_neurons(0.1))

    def test_dead_units_survive_reset_state(self, snn_setup):
        _, snn, images = snn_setup
        with inject_faults(snn, FaultSpec.dead_neurons(0.4, seed=2)):
            first = _forward(snn, images, "stepwise")
            snn.reset_state()
            second = _forward(snn, images, "stepwise")
        assert np.array_equal(first, second)

    def test_summary_counters(self, snn_setup):
        _, snn, images = snn_setup
        spec = FaultSpec(
            weight=WeightFaults(prune_rate=0.2),
            transmission=TransmissionFaults(frame_drop_rate=0.5),
            seed=4,
        )
        with inject_faults(snn, spec) as session:
            _forward(snn, images, "fused")
        summary = session.summary()
        assert summary["weights_pruned"] > 0
        assert summary["frames_dropped"] > 0

    def test_network_helper_method(self, snn_setup):
        _, snn, images = snn_setup
        clean = _forward(snn, images, "fused")
        with snn.inject_faults(FaultSpec.pruning(0.3, seed=9)):
            faulted = _forward(snn, images, "fused")
        assert not np.array_equal(clean, faulted)


class TestTelemetry:
    def test_records_and_jsonl(self, snn_setup, tmp_path):
        _, snn, images = snn_setup
        telemetry = FaultTelemetry(run_dir=str(tmp_path))
        with inject_faults(snn, FaultSpec.pruning(0.2, seed=1), telemetry):
            _forward(snn, images, "fused")
        telemetry.close()
        kinds = {r["fault"] for r in telemetry.records}
        assert "weight" in kinds and "session_end" in kinds
        path = tmp_path / FAULTS_FILENAME
        assert path.exists() and path.stat().st_size > 0

    def test_explicit_registry_records_without_obs(self, snn_setup):
        from repro.obs.metrics import MetricsRegistry

        _, snn, images = snn_setup
        registry = MetricsRegistry()
        telemetry = FaultTelemetry(registry=registry)
        with inject_faults(snn, FaultSpec.pruning(0.2, seed=1), telemetry):
            _forward(snn, images, "fused")
        counters = registry.snapshot()["counters"]
        assert any(k.startswith("faults.weights_pruned") for k in counters)


class TestFaultSweep:
    def test_build_fault_spec_levels(self):
        from repro.experiments import build_fault_spec

        assert build_fault_spec("quantization", None).is_null
        assert build_fault_spec("prune", 0.0).is_null
        spec = build_fault_spec("quantization", 4, seed=2)
        assert spec.weight.quant_bits == 4 and spec.seed == 2
        with pytest.raises(KeyError, match="unknown fault kind"):
            build_fault_spec("cosmic_rays", 0.5)

    def test_sweep_is_deterministic(self, tiny_config):
        from repro.experiments import run_fault_sweep

        kwargs = dict(
            arch=tiny_config.arch,
            dataset=tiny_config.dataset,
            scale_name="tiny",
            timesteps=tiny_config.timesteps,
            fault_kinds=["prune", "spike_drop"],
            ladders={"prune": (0.0, 0.3), "spike_drop": (0.0, 0.3)},
            seed=tiny_config.seed,
        )
        first = run_fault_sweep(**kwargs)
        second = run_fault_sweep(**kwargs)
        assert first == second
        by_kind = {c["fault"]: c for c in first["curves"]}
        # level 0 is the clean baseline, shared across kinds
        assert by_kind["prune"]["finetuned"][0] == (
            by_kind["spike_drop"]["finetuned"][0]
        )
        # spiking-only fault: no DNN curve
        assert by_kind["spike_drop"]["dnn"] is None
        assert by_kind["prune"]["dnn"] is not None

    def test_render_and_report_section(self, tiny_config):
        from repro.experiments import render_fault_sweep, run_fault_sweep
        from repro.experiments.report_md import _faults_section

        result = run_fault_sweep(
            arch=tiny_config.arch,
            dataset=tiny_config.dataset,
            scale_name="tiny",
            timesteps=tiny_config.timesteps,
            fault_kinds=["quantization"],
            ladders={"quantization": (None, 2)},
            seed=tiny_config.seed,
        )
        text = render_fault_sweep(result)
        assert "quantization" in text and "fp (none)" in text
        section = _faults_section({"fault_sweep": result})
        assert section.startswith("## Fault tolerance")
        assert "2 bits" in section
