"""Architecture tests: VGG-11/16, ResNet-20, registry."""

import numpy as np
import pytest

from repro.models import (
    BasicBlock,
    available_models,
    build_model,
    register_model,
    resnet20,
    vgg11,
    vgg16,
)
from repro.nn import Conv2d, MaxPool2d, ThresholdReLU
from repro.tensor import Tensor


class TestVGG:
    def test_vgg11_output_shape(self, rng):
        m = vgg11(num_classes=10, image_size=32, width_multiplier=0.125, rng=rng)
        assert m(Tensor(rng.normal(size=(2, 3, 32, 32)))).shape == (2, 10)

    def test_vgg16_output_shape(self, rng):
        m = vgg16(num_classes=7, image_size=16, width_multiplier=0.125, rng=rng)
        assert m(Tensor(rng.normal(size=(2, 3, 16, 16)))).shape == (2, 7)

    def test_conv_layer_counts(self, rng):
        convs11 = [
            l for l in vgg11(width_multiplier=0.125, image_size=16, rng=rng).features
            if isinstance(l, Conv2d)
        ]
        convs16 = [
            l for l in vgg16(width_multiplier=0.125, image_size=16, rng=rng).features
            if isinstance(l, Conv2d)
        ]
        assert len(convs11) == 8  # VGG-11: 8 conv + 3 FC originally; here 8 conv
        assert len(convs16) == 13

    def test_pools_skipped_for_small_inputs(self, rng):
        m = vgg16(image_size=8, width_multiplier=0.125, rng=rng)
        pools = [l for l in m.features if isinstance(l, MaxPool2d)]
        assert len(pools) == 3  # 8 -> 4 -> 2 -> 1, further pools skipped
        assert m(Tensor(rng.normal(size=(1, 3, 8, 8)))).shape == (1, 10)

    def test_width_multiplier_scales_channels(self, rng):
        narrow = vgg11(width_multiplier=0.125, image_size=16, rng=rng)
        wide = vgg11(width_multiplier=0.25, image_size=16, rng=np.random.default_rng(0))
        assert wide.num_parameters() > narrow.num_parameters()

    def test_relu_variant_has_no_thresholds(self, rng):
        m = vgg11(activation="relu", image_size=16, width_multiplier=0.125, rng=rng)
        assert m.threshold_layers() == []

    def test_threshold_layers_ordering(self, rng):
        m = vgg11(image_size=16, width_multiplier=0.125, rng=rng)
        layers = m.threshold_layers()
        assert len(layers) == 9  # 8 conv activations + 1 classifier activation
        assert all(isinstance(l, ThresholdReLU) for l in layers)

    def test_no_bias_anywhere(self, rng):
        m = vgg16(image_size=16, width_multiplier=0.125, rng=rng)
        for module in m.modules():
            if isinstance(module, Conv2d):
                assert module.bias is None

    def test_unknown_config_rejected(self):
        from repro.models.vgg import VGG

        with pytest.raises(ValueError):
            VGG("vgg19")

    def test_custom_config_list(self, rng):
        from repro.models.vgg import VGG

        m = VGG([8, "M", 16], num_classes=4, image_size=8, rng=rng)
        assert m(Tensor(rng.normal(size=(1, 3, 8, 8)))).shape == (1, 4)
        assert m.name == "vgg-custom"

    def test_deterministic_given_rng(self):
        a = vgg11(image_size=8, width_multiplier=0.125, rng=np.random.default_rng(5))
        b = vgg11(image_size=8, width_multiplier=0.125, rng=np.random.default_rng(5))
        for (na, pa), (nb, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert na == nb
            np.testing.assert_allclose(pa.data, pb.data)


class TestResNet:
    def test_output_shape(self, rng):
        m = resnet20(num_classes=10, width_multiplier=0.25, rng=rng)
        assert m(Tensor(rng.normal(size=(2, 3, 16, 16)))).shape == (2, 10)

    def test_block_count(self, rng):
        m = resnet20(width_multiplier=0.25, rng=rng)
        blocks = [b for b in m.stages if isinstance(b, BasicBlock)]
        assert len(blocks) == 9  # 3 stages x 3 blocks

    def test_depth_validation(self):
        from repro.models.resnet import ResNet

        with pytest.raises(ValueError):
            ResNet(depth=21)

    def test_shortcut_types(self, rng):
        m = resnet20(width_multiplier=0.25, rng=rng)
        blocks = list(m.stages)
        from repro.nn import Identity

        assert isinstance(blocks[0].shortcut, Identity)  # same width, stride 1
        assert isinstance(blocks[3].shortcut, Conv2d)  # stage transition

    def test_activation_count(self, rng):
        m = resnet20(width_multiplier=0.25, rng=rng)
        # stem + 2 per block * 9 blocks = 19 activations
        assert len(m.threshold_layers()) == 19

    def test_spatial_downsampling(self, rng):
        m = resnet20(width_multiplier=0.25, rng=rng)
        out = m.stages(m.stem(Tensor(rng.normal(size=(1, 3, 32, 32)))))
        assert out.shape[2] == 8  # 32 / 2 / 2


class TestRegistry:
    def test_available(self):
        assert set(available_models()) >= {"vgg11", "vgg16", "resnet20"}

    def test_build(self, rng):
        m = build_model("resnet20", width_multiplier=0.25, rng=rng)
        assert m.name == "resnet20"

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            build_model("alexnet")

    def test_register_custom(self, rng):
        register_model("tiny-mlp-for-test", lambda **kw: vgg11(**kw))
        assert "tiny-mlp-for-test" in available_models()
        with pytest.raises(ValueError):
            register_model("tiny-mlp-for-test", lambda **kw: None)
