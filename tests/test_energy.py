"""Energy accounting tests: FLOPs, spikes, CMOS & neuromorphic models."""

import numpy as np
import pytest

from repro.conversion import ConversionConfig, convert_dnn_to_snn
from repro.data import DataLoader
from repro.energy import (
    E_AC_45NM,
    E_MAC_45NM,
    EnergyModel,
    LayerFlops,
    dnn_total_flops,
    measure_spiking_activity,
    neuromorphic_energy,
    snn_layer_flops,
    snn_total_flops,
    trace_weight_layers,
)
from repro.models import resnet20, vgg11
from repro.nn import Conv2d, Linear, ReLU, Sequential, Flatten


@pytest.fixture(scope="module")
def tiny_model():
    rng = np.random.default_rng(0)
    return Sequential(
        Conv2d(1, 2, 3, padding=1, bias=False, rng=rng),
        ReLU(),
        Flatten(),
        Linear(2 * 4 * 4, 3, bias=False, rng=rng),
    )


class TestDNNFlops:
    def test_conv_macs_hand_computed(self, tiny_model):
        records = trace_weight_layers(tiny_model, (1, 4, 4))
        # conv: 4*4 spatial x 2 out x 1 in x 3 x 3 = 288
        assert records[0].macs == 288
        # linear: 32 x 3 = 96
        assert records[1].macs == 96

    def test_total(self, tiny_model):
        assert dnn_total_flops(tiny_model, (1, 4, 4)) == 288 + 96

    def test_vgg_flops_positive_and_ordered(self):
        model = vgg11(image_size=16, width_multiplier=0.125, rng=np.random.default_rng(0))
        records = trace_weight_layers(model, (3, 16, 16))
        assert all(r.macs > 0 for r in records)
        assert len(records) == 8 + 2  # convs + classifier linears

    def test_stride_reduces_macs(self):
        rng = np.random.default_rng(0)
        dense = Sequential(Conv2d(1, 1, 3, stride=1, padding=1, rng=rng))
        strided = Sequential(Conv2d(1, 1, 3, stride=2, padding=1, rng=rng))
        a = trace_weight_layers(dense, (1, 8, 8))[0].macs
        b = trace_weight_layers(strided, (1, 8, 8))[0].macs
        assert b == a / 4

    def test_no_weight_layers_rejected(self):
        with pytest.raises(ValueError):
            trace_weight_layers(Sequential(ReLU()), (1, 4, 4))


@pytest.fixture(scope="module")
def converted(tiny_loader_and_vgg):
    model, loader = tiny_loader_and_vgg
    return convert_dnn_to_snn(model, loader, ConversionConfig(timesteps=3)), loader


@pytest.fixture(scope="module")
def tiny_loader_and_vgg():
    rng = np.random.default_rng(1)
    model = vgg11(
        num_classes=5, image_size=8, width_multiplier=0.125,
        rng=np.random.default_rng(0),
    )
    images = rng.random((16, 3, 8, 8))
    labels = rng.integers(0, 5, size=16)
    return model, DataLoader(images, labels, batch_size=8)


class TestSpikeMeasurement:
    def test_report_structure(self, converted):
        conversion, loader = converted
        report = measure_spiking_activity(conversion.snn, loader)
        assert len(report.layers) == len(conversion.snn.spiking_neurons())
        assert report.timesteps == 3
        assert report.images == 16

    def test_rates_bounded_by_timesteps(self, converted):
        conversion, loader = converted
        report = measure_spiking_activity(conversion.snn, loader)
        for layer in report.layers:
            assert 0.0 <= layer.spikes_per_neuron <= report.timesteps + 1e-9

    def test_rates_by_neuron_id(self, converted):
        conversion, loader = converted
        report = measure_spiking_activity(conversion.snn, loader)
        rates = report.rates_by_neuron_id(conversion.snn)
        assert len(rates) == len(report.layers)

    def test_max_batches(self, converted):
        conversion, loader = converted
        report = measure_spiking_activity(conversion.snn, loader, max_batches=1)
        assert report.images == 8

    def test_recording_disabled_after(self, converted):
        conversion, loader = converted
        measure_spiking_activity(conversion.snn, loader)
        assert all(not n.recording for n in conversion.snn.spiking_neurons())

    def test_empty_batches_rejected(self, converted):
        conversion, _ = converted
        with pytest.raises(ValueError):
            measure_spiking_activity(conversion.snn, [])


class TestSNNFlops:
    def test_first_layer_is_mac_scaled_by_t(self, converted):
        conversion, loader = converted
        report = measure_spiking_activity(conversion.snn, loader)
        records = snn_layer_flops(
            conversion.snn, (3, 8, 8), report.rates_by_neuron_id(conversion.snn)
        )
        assert records[0].is_mac
        assert records[0].snn_ops == records[0].macs * 3  # T = 3

    def test_hidden_layers_scaled_by_input_rate(self, converted):
        conversion, loader = converted
        report = measure_spiking_activity(conversion.snn, loader)
        rates = report.rates_by_neuron_id(conversion.snn)
        records = snn_layer_flops(conversion.snn, (3, 8, 8), rates)
        neurons = conversion.snn.spiking_neurons()
        # second weight layer consumes the first neuron layer's rate
        expected = records[1].macs * rates[id(neurons[0])]
        assert records[1].snn_ops == pytest.approx(expected)
        assert not records[1].is_mac

    def test_resnet_flops_accounting(self):
        rng = np.random.default_rng(2)
        model = resnet20(num_classes=5, width_multiplier=0.125, rng=np.random.default_rng(0))
        loader = DataLoader(rng.random((8, 3, 8, 8)), rng.integers(0, 5, 8), 8)
        conversion = convert_dnn_to_snn(model, loader, ConversionConfig(timesteps=2))
        report = measure_spiking_activity(conversion.snn, loader)
        records = snn_layer_flops(
            conversion.snn, (3, 8, 8), report.rates_by_neuron_id(conversion.snn)
        )
        dense = trace_weight_layers(model, (3, 8, 8))
        assert len(records) == len(dense)
        assert snn_total_flops(records) >= 0

    def test_zero_rates_give_zero_hidden_ops(self, converted):
        conversion, _ = converted
        zero_rates = {id(n): 0.0 for n in conversion.snn.spiking_neurons()}
        records = snn_layer_flops(conversion.snn, (3, 8, 8), zero_rates)
        assert all(r.snn_ops == 0 for r in records[1:])
        assert records[0].snn_ops > 0  # direct-encoded first layer


class TestEnergyModel:
    def test_constants(self):
        assert E_MAC_45NM == pytest.approx(3.2e-12)
        assert E_AC_45NM == pytest.approx(0.1e-12)

    def test_dnn_energy(self):
        records = [LayerFlops("a", "conv", macs=100.0), LayerFlops("b", "linear", macs=50.0)]
        model = EnergyModel()
        assert model.dnn_energy(records) == pytest.approx(150.0 * 3.2e-12)

    def test_snn_energy_prices_mac_and_ac(self):
        records = [
            LayerFlops("a", "conv", macs=100.0, snn_ops=200.0, is_mac=True),
            LayerFlops("b", "conv", macs=100.0, snn_ops=30.0, is_mac=False),
        ]
        model = EnergyModel()
        expected = 200.0 * 3.2e-12 + 30.0 * 0.1e-12
        assert model.snn_energy(records) == pytest.approx(expected)

    def test_improvement_ratio(self):
        records = [LayerFlops("a", "conv", macs=320.0, snn_ops=10.0, is_mac=False)]
        model = EnergyModel()
        assert model.improvement(records) == pytest.approx(320 * 3.2 / (10 * 0.1))

    def test_improvement_zero_snn_rejected(self):
        records = [LayerFlops("a", "conv", macs=1.0, snn_ops=0.0)]
        with pytest.raises(ZeroDivisionError):
            EnergyModel().improvement(records)

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(e_mac=0.0)

    def test_sparser_snn_uses_less_energy(self, converted):
        conversion, loader = converted
        report = measure_spiking_activity(conversion.snn, loader)
        rates = report.rates_by_neuron_id(conversion.snn)
        half_rates = {k: v / 2 for k, v in rates.items()}
        full = EnergyModel().snn_energy(
            snn_layer_flops(conversion.snn, (3, 8, 8), rates)
        )
        half = EnergyModel().snn_energy(
            snn_layer_flops(conversion.snn, (3, 8, 8), half_rates)
        )
        assert half < full


class TestNeuromorphic:
    def test_truenorth_vs_spinnaker(self):
        tn = neuromorphic_energy(1000.0, 2, "truenorth")
        sp = neuromorphic_energy(1000.0, 2, "spinnaker")
        assert tn == pytest.approx(1000 * 0.4 + 2 * 0.6)
        assert sp == pytest.approx(1000 * 0.64 + 2 * 0.36)

    def test_compute_bound_for_large_flops(self):
        # FLOPs >> T: energy dominated by compute (paper Section VI-B).
        energy = neuromorphic_energy(1e9, 16, "truenorth")
        assert energy == pytest.approx(1e9 * 0.4, rel=1e-6)

    def test_unknown_platform(self):
        with pytest.raises(KeyError):
            neuromorphic_energy(1.0, 1, "loihi")

    def test_validation(self):
        with pytest.raises(ValueError):
            neuromorphic_energy(-1.0, 1)
        with pytest.raises(ValueError):
            neuromorphic_energy(1.0, 0)
