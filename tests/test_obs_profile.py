"""Op-level profiler: from_op hook, per-layer attribution, artefacts,
hot-path reporting, dashboard/diff integration, dtype-accurate memory."""

import io
import json
import os
import contextlib

import numpy as np
import pytest

from repro import obs
from repro.nn import Linear
from repro.obs import health as obs_health
from repro.obs import profile as obs_profile
from repro.obs import trace
from repro.obs.__main__ import main as obs_main
from repro.obs.dashboard import main as dashboard_main
from repro.obs.diff import diff_run_dirs, metric_direction
from repro.obs.profile import (
    NULL_REGION,
    PROFILE_FILENAME,
    PROFILE_SCHEMA,
    SUMMARY_FILENAME,
    UNATTRIBUTED,
    OpProfiler,
    aggregate,
    chrome_trace,
)
from repro.obs.registry import RunRegistry
from repro.obs.report import load_run, render_report
from repro.snn import network as snn_network
from repro.snn import SpikingNetwork, SpikingNeuron, SpikingSequential, StepWrapper
from repro.tensor import Tensor, no_grad
from repro.tensor import tensor as tensor_mod


def _reset_obs():
    obs.shutdown()
    obs.reset_registry()
    obs_health.uninstall()
    trace.reset()
    obs.state().events.clear()
    obs.state().spans.clear()
    snn_network.set_layer_probe(None)
    # Drain any observer a failed test left behind (restores the
    # pristine from_op once the list empties).
    for observer in list(tensor_mod._OP_OBSERVERS):
        tensor_mod.remove_op_observer(observer)


@pytest.fixture(autouse=True)
def clean_obs():
    _reset_obs()
    yield
    _reset_obs()


@pytest.fixture
def registry_root(tmp_path, monkeypatch):
    root = tmp_path / "registry"
    monkeypatch.setenv("REPRO_RUNS_ROOT", str(root))
    return str(root)


def tiny_snn(timesteps=2, rng=None):
    rng = rng if rng is not None else np.random.default_rng(0)
    body = SpikingSequential(
        StepWrapper(Linear(4, 6, rng=rng)),
        SpikingNeuron(v_threshold=0.5, trainable=False),
        StepWrapper(Linear(6, 3, rng=rng)),
        SpikingNeuron(v_threshold=0.5, trainable=False),
    )
    return SpikingNetwork(body, timesteps=timesteps)


def profiled_forward(mode="fused", timesteps=2):
    """Profile one forward pass of the tiny SNN; returns the profiler."""
    snn = tiny_snn(timesteps=timesteps)
    snn.mode = mode
    snn.eval()
    x = np.random.default_rng(1).random((4, 4))
    with OpProfiler() as profiler:
        with no_grad():
            snn(x)
    return profiler


# ----------------------------------------------------------------------
# The from_op observer hook
# ----------------------------------------------------------------------
class TestOpObserverHook:
    def test_add_remove_restores_pristine_from_op(self):
        pristine = Tensor.from_op
        seen = []

        def observer(out, name):
            seen.append(name)

        tensor_mod.add_op_observer(observer)
        assert Tensor.from_op is not pristine
        (Tensor(np.ones(3), requires_grad=True) * 2.0).sum()
        assert "mul" in seen and "sum" in seen
        tensor_mod.remove_op_observer(observer)
        assert Tensor.from_op is pristine

    def test_remove_unknown_observer_is_harmless(self):
        tensor_mod.remove_op_observer(lambda out, name: None)
        assert Tensor.from_op is tensor_mod._PRISTINE_FROM_OP

    def test_observed_op_result_unchanged(self):
        tensor_mod.add_op_observer(lambda out, name: None)
        try:
            a = Tensor(np.arange(3.0), requires_grad=True)
            out = (a * 3.0).sum()
            out.backward()
            assert float(out.data) == pytest.approx(9.0)
            assert np.allclose(a.grad, 3.0)
        finally:
            tensor_mod.remove_op_observer(
                tensor_mod._OP_OBSERVERS[0]
            )


# ----------------------------------------------------------------------
# OpProfiler recording & attribution
# ----------------------------------------------------------------------
class TestOpProfiler:
    def test_records_shape_bytes_dtype(self):
        from repro.tensor.tensor import default_dtype

        with OpProfiler() as profiler:
            with default_dtype(np.float32):
                x = Tensor(np.ones((2, 3)), requires_grad=True)
                (x * 2.0).sum()
        ops = [r["op"] for r in profiler.records]
        assert "mul" in ops and "sum" in ops
        mul = next(r for r in profiler.records if r["op"] == "mul")
        assert mul["shape"] == [2, 3]
        assert mul["bytes"] == 2 * 3 * 4
        assert mul["dtype"] == "float32"
        assert all(r["dt_s"] >= 0.0 for r in profiler.records)

    def test_nested_profilers_rejected(self):
        with OpProfiler():
            with pytest.raises(RuntimeError):
                OpProfiler().__enter__()

    def test_region_without_profiler_is_null(self):
        assert obs_profile.region("anything") is NULL_REGION
        with obs_profile.region("anything"):
            pass  # no-op, no error

    def test_layer_labels_fused_and_stepwise(self):
        for mode in ("fused", "stepwise"):
            profiler = profiled_forward(mode=mode)
            layers = {r.get("layer") for r in profiler.records if "layer" in r}
            assert any(
                label and label.startswith("L0:") for label in layers
            ), f"no L0 label in {mode} mode: {layers}"

    def test_probe_uninstalled_after_exit(self):
        profiled_forward()
        assert snn_network._LAYER_PROBE is None
        assert Tensor.from_op is tensor_mod._PRISTINE_FROM_OP

    def test_layer_totals_cover_forward_wall_time(self):
        import time as _time

        snn = tiny_snn()
        snn.eval()
        x = np.random.default_rng(1).random((8, 4))
        with no_grad():
            snn(x)  # warm caches outside the measured window
        for _ in range(3):
            with OpProfiler() as profiler:
                t0 = _time.perf_counter()
                with no_grad():
                    snn(x)
                wall = _time.perf_counter() - t0
            summary = profiler.aggregate()
            total = sum(
                entry["total_s"] for entry in summary["by_layer"].values()
            )
            if total >= 0.9 * wall:
                break
        assert total >= 0.9 * wall

    def test_record_cap_counts_dropped(self):
        with OpProfiler(max_records=2) as profiler:
            x = Tensor(np.ones(4), requires_grad=True)
            ((x * 2.0) * 3.0).sum()
        assert len(profiler.records) == 2
        assert profiler.dropped >= 1
        assert profiler.aggregate()["dropped"] == profiler.dropped

    def test_span_attribution(self):
        obs.configure()  # in-memory run so spans are live
        with OpProfiler() as profiler:
            with trace.span("unit_span"):
                Tensor(np.ones(3), requires_grad=True).sum()
        assert any(r.get("span") == "unit_span" for r in profiler.records)


# ----------------------------------------------------------------------
# Aggregation & Chrome trace
# ----------------------------------------------------------------------
class TestAggregate:
    RECORDS = [
        {"kind": "op", "op": "mul", "dt_s": 0.002, "t_s": 0.002,
         "bytes": 10, "layer": "L0:Linear"},
        {"kind": "op", "op": "mul", "dt_s": 0.004, "t_s": 0.006,
         "bytes": 20, "layer": "L0:Linear"},
        {"kind": "op", "op": "sum", "dt_s": 0.008, "t_s": 0.014, "bytes": 8},
        {"kind": "other"},
    ]

    def test_tables_and_median(self):
        summary = aggregate(self.RECORDS)
        assert summary["schema"] == PROFILE_SCHEMA
        assert summary["ops"] == 3
        assert summary["total_s"] == pytest.approx(0.014)
        assert summary["bytes_total"] == 38
        mul = summary["by_op"]["mul"]
        assert mul["count"] == 2
        assert mul["median_s"] == pytest.approx(0.003)
        assert mul["pct"] == pytest.approx(100.0 * 0.006 / 0.014)
        assert summary["by_layer"][UNATTRIBUTED]["count"] == 1
        # top is ranked by total time, descending
        assert summary["top"][0]["op"] == "sum"

    def test_deterministic_key_order(self):
        summary = aggregate(self.RECORDS)
        assert list(summary["by_op"]) == sorted(summary["by_op"])
        assert list(summary["by_layer"]) == sorted(summary["by_layer"])

    def test_chrome_trace_structure(self):
        doc = chrome_trace(self.RECORDS)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        assert events[0]["ph"] == "M"
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 3
        first = xs[0]
        assert first["ts"] == pytest.approx(0.0)
        assert first["dur"] == pytest.approx(2000.0)
        assert first["args"]["layer"] == "L0:Linear"
        json.loads(json.dumps(doc))  # round-trips


# ----------------------------------------------------------------------
# Observed-run session artefacts
# ----------------------------------------------------------------------
class TestProfiledRun:
    def _profiled_run(self, tmp_path, name="run_p"):
        run_dir = tmp_path / name
        with obs.observe(str(run_dir), profile=True, arch="tiny",
                         timesteps=2, seed=0):
            run_id = obs.state().run_id
            snn = tiny_snn()
            snn.eval()
            with no_grad():
                snn(np.random.default_rng(1).random((4, 4)))
        return str(run_dir), run_id

    def test_profile_requires_run_dir(self):
        with pytest.raises(ValueError):
            obs.configure(profile=True)

    def test_artefacts_registry_and_report(self, tmp_path, registry_root):
        run_dir, run_id = self._profiled_run(tmp_path)
        assert os.path.getsize(os.path.join(run_dir, PROFILE_FILENAME)) > 0
        summary = obs_profile.load_summary(run_dir)
        assert summary["schema"] == PROFILE_SCHEMA
        assert any(k != UNATTRIBUTED for k in summary["by_layer"])
        entry = RunRegistry().get(run_id)
        assert PROFILE_FILENAME in entry["artifacts"]
        assert SUMMARY_FILENAME in entry["artifacts"]
        data = load_run(run_dir)
        assert data.profile and data.profile_summary
        report = render_report(data)
        assert "## Hot ops" in report
        assert "Per-layer attribution" in report

    def test_unprofiled_run_has_no_profile_warning(self, tmp_path,
                                                   registry_root):
        run_dir = tmp_path / "plain"
        with obs.observe(str(run_dir)):
            pass
        data = load_run(str(run_dir))
        assert not any("profile" in w for w in data.warnings)
        assert "## Hot ops" not in render_report(data)

    def test_cli_tables_json_and_chrome_trace(self, tmp_path, registry_root,
                                              capsys):
        run_dir, _ = self._profiled_run(tmp_path)
        assert obs_main(["profile", run_dir]) == 0
        out = capsys.readouterr().out
        assert "hot ops" in out and "hot layers" in out
        assert obs_main(["profile", run_dir, "--json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["schema"] == PROFILE_SCHEMA
        trace_out = str(tmp_path / "chrome.json")
        assert obs_main(
            ["profile", run_dir, "--chrome-trace", trace_out]
        ) == 0
        capsys.readouterr()
        with open(trace_out, "r", encoding="utf-8") as fp:
            doc = json.load(fp)
        assert doc["traceEvents"]

    def test_cli_errors_without_profile(self, tmp_path):
        run_dir = tmp_path / "empty"
        run_dir.mkdir()
        with pytest.raises(SystemExit):
            obs_profile.main([str(run_dir)])

    def test_self_diff_clean_and_skip_gated(self, tmp_path, registry_root):
        dir_a, _ = self._profiled_run(tmp_path, "run_a")
        dir_b, _ = self._profiled_run(tmp_path, "run_b")
        assert metric_direction("profile:op.mul.total_s") == "skip"
        assert metric_direction("profile:layer.L0:Linear.total_s") == "skip"
        diff = diff_run_dirs(dir_a, dir_b)
        assert diff.ok, diff.render()
        profile_series = [
            d for d in diff.deltas if d.name.startswith("profile:")
        ]
        assert profile_series  # aligned, informational

    def test_degraded_torn_tail_and_absence(self, tmp_path, registry_root,
                                            capsys):
        run_dir, _ = self._profiled_run(tmp_path, "run_torn")
        path = os.path.join(run_dir, PROFILE_FILENAME)
        with open(path, "a", encoding="utf-8") as fp:
            fp.write('{"kind": "op", "op": "torn')  # no newline, invalid
        data = load_run(run_dir)
        assert data.profile  # intact lines survive
        assert any("profile.jsonl" in w for w in data.warnings)
        assert "## Hot ops" in render_report(data)
        frames = []
        for _ in range(2):
            buf = io.StringIO()
            with contextlib.redirect_stdout(buf):
                assert dashboard_main([run_dir, "--once"]) == 0
            frames.append(buf.getvalue())
        assert frames[0] == frames[1]
        assert "hot ops" in frames[0]
        # Absent profile: dashboard and report degrade silently.
        os.remove(path)
        os.remove(os.path.join(run_dir, SUMMARY_FILENAME))
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            assert dashboard_main([run_dir, "--once"]) == 0
        assert "(no op profile recorded)" in buf.getvalue()
        data = load_run(run_dir)
        assert not any("profile.jsonl" in w for w in data.warnings)


# ----------------------------------------------------------------------
# dtype-accurate memory metering (GraphMemoryMeter satellite)
# ----------------------------------------------------------------------
class TestDtypeAccurateMemory:
    def test_float32_graph_bytes_not_double_counted(self):
        from repro.profiling.memory import GraphMemoryMeter
        from repro.tensor.tensor import default_dtype

        with GraphMemoryMeter() as meter, default_dtype(np.float32):
            x = Tensor(np.ones((4, 4)), requires_grad=True)
            x * 2.0
        assert meter.tensors_created == 1
        assert meter.bytes_allocated == 4 * 4 * 4  # float32, not 8-byte

    def test_float64_graph_bytes(self):
        from repro.profiling.memory import GraphMemoryMeter

        with GraphMemoryMeter() as meter:
            x = Tensor(np.ones((2, 8)), requires_grad=True)
            x * 2.0
        assert meter.bytes_allocated == 2 * 8 * 8

    def test_traced_bytes_reads_actual_dtype(self):
        from repro.profiling.memory import _traced_bytes
        from repro.tensor.tensor import default_dtype

        with default_dtype(np.float32):
            sizes = _traced_bytes(
                lambda: Tensor(np.ones(6), requires_grad=True).sum()
            )
        # sum() yields a float32 scalar: 4 bytes, not the old flat 8.
        assert 4 in sizes


# ----------------------------------------------------------------------
# Integration flags & benches
# ----------------------------------------------------------------------
class TestIntegration:
    def test_experiments_profile_requires_trace(self, capsys):
        from repro.experiments.__main__ import main as exp_main

        with pytest.raises(SystemExit):
            exp_main(["table1", "--profile"])
        assert "--profile requires --trace" in capsys.readouterr().err

    def test_bench_profile_requires_run_dir(self):
        from repro.bench.__main__ import main as bench_main

        with pytest.raises(SystemExit):
            bench_main(["run", "--profile", "--filter", "nope"])

    def test_overhead_bench_registered_and_prepares(self):
        from repro.bench.registry import iter_benches

        cases = list(iter_benches("obs.profile_overhead"))
        assert len(cases) == 1
        run = cases[0].prepare()  # includes the <5% disabled-path gate
        assert run().shape == (16, 10)

    def test_trainer_regions_attributed(self):
        from repro.train import DNNTrainConfig, DNNTrainer
        from repro.nn import Flatten, Sequential, ThresholdReLU

        rng = np.random.default_rng(0)
        model = Sequential(
            Flatten(), Linear(8, 8, rng=rng), ThresholdReLU(), Linear(8, 3, rng=rng)
        )
        batches = [(rng.random((12, 8)), rng.integers(0, 3, 12))]
        trainer = DNNTrainer(DNNTrainConfig(epochs=1, lr=0.05))
        with OpProfiler() as profiler:
            trainer.fit(model, batches, batches, verbose=False)
        layers = {r.get("layer", "") for r in profiler.records}
        assert any(l.startswith("dnn.train_epoch") for l in layers)
        assert any(l.startswith("dnn.eval") for l in layers)
