"""Integration test: BN-trained network -> fold -> convert -> evaluate."""

import numpy as np
import pytest

from repro.conversion import ConversionConfig, convert_dnn_to_snn
from repro.data import DataLoader, Normalize, synth_cifar10
from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    Sequential,
    ThresholdReLU,
    fold_all_batchnorms,
)
from repro.train import DNNTrainConfig, DNNTrainer, evaluate_dnn, evaluate_snn
from repro.tensor import Tensor, no_grad



@pytest.fixture(scope="module")
def trained_bn_setup():
    dataset = synth_cifar10(image_size=8, train_size=160, test_size=60, seed=0)
    mean, std = dataset.channel_stats()
    normalize = Normalize(mean, std)
    train_loader = DataLoader(
        dataset.train_images, dataset.train_labels,
        batch_size=40, shuffle=True, transform=normalize, seed=1,
    )
    test_loader = DataLoader(
        dataset.test_images, dataset.test_labels, batch_size=60, transform=normalize
    )
    model = Sequential(
        Conv2d(3, 8, 3, padding=1, bias=False, rng=np.random.default_rng(0)),
        BatchNorm2d(8),
        ThresholdReLU(init_threshold=4.0),
        Flatten(),
        Linear(8 * 8 * 8, 10, bias=False, rng=np.random.default_rng(1)),
    )
    DNNTrainer(DNNTrainConfig(epochs=6, lr=0.05)).fit(model, train_loader)
    model.eval()
    return model, dataset, normalize, test_loader


class TestBNFoldingPipeline:
    def test_folding_preserves_outputs(self, trained_bn_setup, rng):
        model, _dataset, _normalize, _loader = trained_bn_setup
        folded = fold_all_batchnorms(model)
        folded.eval()
        x = Tensor(rng.normal(size=(4, 3, 8, 8)))
        with no_grad():
            np.testing.assert_allclose(
                folded(x).data, model(x).data, atol=1e-8
            )

    def test_folded_network_has_no_bn(self, trained_bn_setup):
        model, *_ = trained_bn_setup
        folded = fold_all_batchnorms(model)
        assert not any(isinstance(m, BatchNorm2d) for m in folded.modules())

    def test_folded_network_converts_and_classifies(self, trained_bn_setup):
        model, dataset, normalize, test_loader = trained_bn_setup
        folded = fold_all_batchnorms(model)
        calibration = DataLoader(
            dataset.train_images, dataset.train_labels,
            batch_size=40, transform=normalize,
        )
        conversion = convert_dnn_to_snn(
            folded, calibration, ConversionConfig(timesteps=4)
        )
        dnn_accuracy = evaluate_dnn(folded, test_loader)
        snn_accuracy = evaluate_snn(conversion.snn, test_loader)
        assert dnn_accuracy > 0.3
        # Conversion of this shallow net at T=4 must retain most of it.
        assert snn_accuracy > dnn_accuracy * 0.5

    def test_folding_skips_unpaired_layers(self):
        model = Sequential(
            Conv2d(1, 2, 3, padding=1, rng=np.random.default_rng(0)),
            ThresholdReLU(),
            BatchNorm2d(2),
        )
        folded = fold_all_batchnorms(model)
        kinds = [type(m).__name__ for m in folded]
        # Conv not directly followed by BN stays untouched.
        assert kinds == ["Conv2d", "ThresholdReLU", "BatchNorm2d"]
