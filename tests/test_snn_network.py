"""Spiking network structure: wrappers, dropout, residual blocks, loop."""

import numpy as np
import pytest

from repro.nn import Conv2d, Flatten, Identity, Linear
from repro.snn import (
    DirectEncoder,
    IFNeuron,
    SpikingMaxPool,
    SpikingNetwork,
    SpikingResidualBlock,
    SpikingSequential,
    StepWrapper,
    TemporalDropout,
)
from repro.tensor import Tensor


def tiny_snn(timesteps=4, v_th=1.0, rng=None):
    rng = rng or np.random.default_rng(0)
    body = SpikingSequential(
        StepWrapper(Conv2d(1, 2, 3, padding=1, rng=rng)),
        IFNeuron(v_threshold=v_th),
        StepWrapper(Flatten()),
        StepWrapper(Linear(2 * 4 * 4, 3, bias=False, rng=rng)),
    )
    return SpikingNetwork(body, timesteps=timesteps)


class TestStepWrapper:
    def test_applies_inner(self, rng):
        layer = Linear(3, 2, rng=rng)
        wrapper = StepWrapper(layer)
        x = Tensor(rng.normal(size=(4, 3)))
        np.testing.assert_allclose(wrapper(x).data, layer(x).data)

    def test_repr(self, rng):
        assert "Linear" in repr(StepWrapper(Linear(2, 2, rng=rng)))


class TestTemporalDropout:
    def test_mask_fixed_across_steps(self, rng):
        drop = TemporalDropout(0.5, rng=rng)
        drop.train()
        x = Tensor(np.ones((2, 10)))
        first = drop(x).data
        second = drop(x).data
        np.testing.assert_allclose(first, second)

    def test_mask_resampled_after_reset(self, rng):
        drop = TemporalDropout(0.5, rng=rng)
        drop.train()
        x = Tensor(np.ones((2, 50)))
        first = drop(x).data.copy()
        drop.reset_state()
        second = drop(x).data
        assert not np.allclose(first, second)

    def test_eval_identity(self, rng):
        drop = TemporalDropout(0.5, rng=rng)
        drop.eval()
        x = Tensor(np.ones((2, 4)))
        assert drop(x) is x

    def test_gradient_through_mask(self, rng):
        drop = TemporalDropout(0.5, rng=rng)
        drop.train()
        x = Tensor(np.ones((1, 20)), requires_grad=True)
        drop(x).sum().backward()
        kept = x.grad != 0
        np.testing.assert_allclose(x.grad[kept], 2.0)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            TemporalDropout(1.0)


class TestSpikingSequential:
    def test_iteration_and_indexing(self, rng):
        seq = SpikingSequential(StepWrapper(Identity()), IFNeuron())
        assert len(seq) == 2
        assert isinstance(seq[1], IFNeuron)
        assert len(list(seq)) == 2

    def test_reset_recurses(self):
        neuron = IFNeuron(v_threshold=1.0)
        seq = SpikingSequential(neuron)
        neuron(Tensor(np.array([0.5])))
        seq.reset_state()
        assert neuron.membrane is None


class TestSpikingResidualBlock:
    def test_identity_shortcut_sums_currents(self, rng):
        conv1 = StepWrapper(Conv2d(2, 2, 3, padding=1, rng=rng))
        conv2 = StepWrapper(Conv2d(2, 2, 3, padding=1, rng=rng))
        block = SpikingResidualBlock(
            conv1,
            IFNeuron(v_threshold=1e6),  # never spikes
            conv2,
            StepWrapper(Identity()),
            IFNeuron(v_threshold=1e-6, beta=1.0),  # always spikes on + input
        )
        x = Tensor(np.ones((1, 2, 4, 4)))
        out = block(x)
        assert out.shape == (1, 2, 4, 4)

    def test_reset_clears_both_neurons(self, rng):
        n1, n2 = IFNeuron(), IFNeuron()
        block = SpikingResidualBlock(
            StepWrapper(Identity()), n1, StepWrapper(Identity()),
            StepWrapper(Identity()), n2,
        )
        block(Tensor(np.ones((1, 2))))
        block.reset_state()
        assert n1.membrane is None and n2.membrane is None


class TestSpikingNetwork:
    def test_output_is_time_average(self, rng):
        snn = tiny_snn(timesteps=4)
        x = rng.normal(size=(2, 1, 4, 4))
        out = snn(x)
        assert out.shape == (2, 3)

    def test_state_reset_between_forwards(self, rng):
        snn = tiny_snn(timesteps=2)
        x = rng.normal(size=(1, 1, 4, 4))
        first = snn(x).data.copy()
        second = snn(x).data
        np.testing.assert_allclose(first, second)

    def test_more_timesteps_changes_nothing_for_constant_zero(self):
        snn = tiny_snn(timesteps=3)
        out = snn(np.zeros((1, 1, 4, 4)))
        np.testing.assert_allclose(out.data, 0.0, atol=1e-12)

    def test_recording_controls(self, rng):
        snn = tiny_snn(timesteps=2, v_th=0.01)
        snn.set_recording(True)
        snn(np.abs(rng.normal(size=(1, 1, 4, 4))))
        assert snn.total_spikes() > 0
        snn.reset_spike_stats()
        assert snn.total_spikes() == 0
        snn.set_recording(False)
        snn(np.abs(rng.normal(size=(1, 1, 4, 4))))
        assert snn.total_spikes() == 0

    def test_spiking_neurons_enumeration(self):
        snn = tiny_snn()
        assert len(snn.spiking_neurons()) == 1

    def test_invalid_timesteps(self):
        with pytest.raises(ValueError):
            SpikingNetwork(SpikingSequential(), timesteps=0)

    def test_accepts_tensor_input(self, rng):
        snn = tiny_snn(timesteps=2)
        out = snn(Tensor(rng.normal(size=(1, 1, 4, 4))))
        assert out.shape == (1, 3)

    def test_bptt_gradients_flow_to_weights(self, rng):
        snn = tiny_snn(timesteps=3, v_th=0.5)
        out = snn(np.abs(rng.normal(size=(2, 1, 4, 4))))
        out.sum().backward()
        conv = snn.body[0].inner
        assert conv.weight.grad is not None
        assert np.abs(conv.weight.grad).sum() > 0

    def test_bptt_gradients_flow_to_threshold(self, rng):
        snn = tiny_snn(timesteps=3, v_th=0.5)
        out = snn(np.abs(rng.normal(size=(2, 1, 4, 4))) + 0.5)
        out.sum().backward()
        neuron = snn.spiking_neurons()[0]
        assert neuron.v_threshold.grad is not None


class TestSpikingMaxPool:
    def test_binary_in_binary_out(self, rng):
        pool = SpikingMaxPool(2)
        frame = (rng.random((1, 1, 4, 4)) > 0.5).astype(float)
        out = pool(Tensor(frame))
        assert set(np.unique(out.data)) <= {0.0, 1.0}

    def test_rate_converges_to_max(self, rng):
        # Two inputs per window with rates 0.8 and 0.2: the gated pool's
        # long-run output rate must approach max(0.8, 0.2).
        pool = SpikingMaxPool(2)
        steps = 400
        total = 0.0
        rates = np.array([[0.8, 0.2], [0.1, 0.3]])
        for t in range(steps):
            frame = (rng.random((2, 2)) < rates).astype(float)
            out = pool(Tensor(frame.reshape(1, 1, 2, 2)))
            total += out.data[0, 0, 0, 0]
        assert abs(total / steps - 0.8) < 0.08

    def test_naive_max_would_overestimate(self, rng):
        # Sanity: the naive per-step max rate is ~1-(1-r)^4, far above r.
        rates = np.full((2, 2), 0.3)
        steps = 300
        naive = 0.0
        for _ in range(steps):
            frame = (rng.random((2, 2)) < rates).astype(float)
            naive += frame.max()
        assert naive / steps > 0.6  # >> 0.3

    def test_reset_clears_counts(self, rng):
        pool = SpikingMaxPool(2)
        pool(Tensor(np.ones((1, 1, 2, 2))))
        pool.reset_state()
        assert pool._counts is None

    def test_gradient_routes_to_winner(self):
        pool = SpikingMaxPool(2)
        frame = np.array([[[[1.0, 0.0], [0.0, 0.0]]]])
        x = Tensor(frame, requires_grad=True)
        pool(x).sum().backward()
        np.testing.assert_allclose(x.grad, [[[[1.0, 0.0], [0.0, 0.0]]]])

    def test_indivisible_raises(self, rng):
        with pytest.raises(ValueError):
            SpikingMaxPool(2)(Tensor(np.ones((1, 1, 3, 3))))

    def test_invalid_kernel(self):
        with pytest.raises(ValueError):
            SpikingMaxPool(0)
