"""ASCII plotting, CSV export, and multi-seed sweep tests."""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    ascii_chart,
    export_csv,
    get_scale,
    seed_sweep,
    strategy_win_rate,
)


class TestAsciiChart:
    def test_basic_render(self):
        text = ascii_chart(
            [1, 2, 3], {"a": [1.0, 2.0, 3.0]}, width=20, height=5, title="t"
        )
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "o = a" in lines[-1]

    def test_multiple_series_glyphs(self):
        text = ascii_chart(
            [0, 1], {"up": [0.0, 1.0], "down": [1.0, 0.0]}, width=10, height=4
        )
        assert "o" in text and "x" in text

    def test_constant_series(self):
        text = ascii_chart([0, 1], {"flat": [2.0, 2.0]}, width=8, height=3)
        assert "o" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([], {})

    def test_axis_labels_contain_extremes(self):
        text = ascii_chart([2, 16], {"s": [10.0, 90.0]}, width=30, height=6)
        assert "90" in text and "10" in text


class TestExportCsv:
    def test_writes_aligned_columns(self, tmp_path):
        path = export_csv(
            "unit", {"t": [1, 2], "acc": [0.5, 0.75]}, directory=str(tmp_path)
        )
        content = open(path).read().splitlines()
        assert content[0] == "t,acc"
        assert content[1] == "1,0.5"

    def test_rejects_ragged(self, tmp_path):
        with pytest.raises(ValueError):
            export_csv("bad", {"a": [1], "b": [1, 2]}, directory=str(tmp_path))

    def test_rejects_empty(self, tmp_path):
        with pytest.raises(ValueError):
            export_csv("bad", {}, directory=str(tmp_path))


class TestSeedSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        config = ExperimentConfig(
            arch="vgg11", dataset="cifar10", timesteps=2,
            scale=get_scale("tiny"), seed=0,
        )
        return seed_sweep(config, seeds=[0, 1], fine_tune=False)

    def test_collects_per_seed(self, sweep):
        assert len(sweep.dnn) == 2
        assert len(sweep.conversion) == 2

    def test_summary_stats(self, sweep):
        summary = sweep.summary()
        assert set(summary) == {"dnn", "conversion", "snn"}
        for stats in summary.values():
            assert stats["min"] <= stats["mean"] <= stats["max"]

    def test_rejects_empty_seeds(self):
        config = ExperimentConfig(
            arch="vgg11", dataset="cifar10", scale=get_scale("tiny")
        )
        with pytest.raises(ValueError):
            seed_sweep(config, seeds=[])

    def test_win_rate_structure(self):
        config = ExperimentConfig(
            arch="vgg11", dataset="cifar10", timesteps=2,
            scale=get_scale("tiny"), seed=0,
        )
        result = strategy_win_rate(config, seeds=[0])
        assert 0.0 <= result["win_rate"] <= 1.0
        assert len(result["proposed"]) == 1
