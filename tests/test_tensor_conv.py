"""Convolution / pooling correctness against naive reference implementations."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    avg_pool2d,
    check_gradients,
    conv2d,
    conv2d_output_shape,
    global_avg_pool2d,
    max_pool2d,
)


def naive_conv2d(x, w, b, stride, padding):
    """Straightforward loop reference for cross-correlation."""
    n, c_in, h, wdt = x.shape
    c_out, _, k, _ = w.shape
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (x.shape[2] - k) // stride + 1
    out_w = (x.shape[3] - k) // stride + 1
    out = np.zeros((n, c_out, out_h, out_w))
    for i in range(out_h):
        for j in range(out_w):
            patch = x[:, :, i * stride : i * stride + k, j * stride : j * stride + k]
            out[:, :, i, j] = np.einsum("nchw,ochw->no", patch, w)
    if b is not None:
        out += b[None, :, None, None]
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 0), (2, 1), (3, 2)])
    def test_matches_naive(self, rng, stride, padding):
        x = Tensor(rng.normal(size=(2, 3, 9, 9)))
        w = Tensor(rng.normal(size=(4, 3, 3, 3)))
        b = Tensor(rng.normal(size=(4,)))
        out = conv2d(x, w, b, stride=stride, padding=padding)
        expected = naive_conv2d(x.data, w.data, b.data, stride, padding)
        np.testing.assert_allclose(out.data, expected, atol=1e-10)

    def test_no_bias(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 5, 5)))
        w = Tensor(rng.normal(size=(3, 2, 3, 3)))
        out = conv2d(x, w, None, stride=1, padding=0)
        expected = naive_conv2d(x.data, w.data, None, 1, 0)
        np.testing.assert_allclose(out.data, expected, atol=1e-10)

    def test_1x1_kernel(self, rng):
        x = Tensor(rng.normal(size=(2, 4, 6, 6)))
        w = Tensor(rng.normal(size=(8, 4, 1, 1)))
        out = conv2d(x, w, None, stride=2)
        expected = naive_conv2d(x.data, w.data, None, 2, 0)
        np.testing.assert_allclose(out.data, expected, atol=1e-10)

    def test_gradients(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 6, 6)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)) * 0.3, requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        check_gradients(
            lambda a, ww, bb: conv2d(a, ww, bb, stride=1, padding=1),
            [x, w, b],
            atol=1e-4,
        )
        check_gradients(
            lambda a, ww, bb: conv2d(a, ww, bb, stride=2, padding=0),
            [x, w, b],
            atol=1e-4,
        )

    def test_channel_mismatch_raises(self, rng):
        x = Tensor(rng.normal(size=(1, 3, 5, 5)))
        w = Tensor(rng.normal(size=(2, 4, 3, 3)))
        with pytest.raises(ValueError, match="channels"):
            conv2d(x, w)

    def test_rect_kernel_rejected(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 5, 5)))
        w = Tensor(rng.normal(size=(1, 1, 3, 2)))
        with pytest.raises(ValueError, match="square"):
            conv2d(x, w)

    def test_output_shape_helper(self):
        assert conv2d_output_shape(32, 32, 3, 1, 1) == (32, 32)
        assert conv2d_output_shape(32, 32, 3, 2, 1) == (16, 16)
        with pytest.raises(ValueError):
            conv2d_output_shape(2, 2, 5, 1, 0)


class TestPooling:
    def test_max_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = max_pool2d(x, 2)
        np.testing.assert_allclose(out.data, [[[[5, 7], [13, 15]]]])

    def test_max_pool_gradient_first_tie_wins(self):
        data = np.zeros((1, 1, 2, 2))
        x = Tensor(data, requires_grad=True)
        max_pool2d(x, 2).sum().backward()
        assert x.grad.sum() == 1.0  # gradient routed to exactly one element

    def test_avg_pool_values(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4))
        out = avg_pool2d(x, 2)
        np.testing.assert_allclose(out.data, [[[[2.5, 4.5], [10.5, 12.5]]]])

    def test_pool_gradients(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4, 4)), requires_grad=True)
        check_gradients(lambda a: max_pool2d(a, 2), [x])
        check_gradients(lambda a: avg_pool2d(a, 2), [x])

    def test_overlapping_pool_rejected(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 4, 4)))
        with pytest.raises(NotImplementedError):
            max_pool2d(x, 2, stride=1)

    def test_indivisible_pool_rejected(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 5, 5)))
        with pytest.raises(ValueError):
            avg_pool2d(x, 2)

    def test_global_avg_pool(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 4, 4)), requires_grad=True)
        out = global_avg_pool2d(x)
        assert out.shape == (2, 3)
        np.testing.assert_allclose(out.data, x.data.mean(axis=(2, 3)))
        check_gradients(lambda a: global_avg_pool2d(a), [x])
