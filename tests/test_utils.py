"""Checkpointing and CLI utilities."""

import numpy as np
import pytest

from repro.conversion import ConversionConfig, convert_dnn_to_snn
from repro.data import DataLoader
from repro.models import vgg11
from repro.tensor import Tensor, no_grad
from repro.utils import load_checkpoint, save_checkpoint


@pytest.fixture(scope="module")
def model_and_loader():
    rng = np.random.default_rng(3)
    model = vgg11(
        num_classes=5, image_size=8, width_multiplier=0.125,
        rng=np.random.default_rng(0),
    )
    loader = DataLoader(rng.random((8, 3, 8, 8)), rng.integers(0, 5, 8), 8)
    return model, loader


class TestDNNCheckpoint:
    def test_roundtrip(self, model_and_loader, tmp_path, rng):
        model, _ = model_and_loader
        path = save_checkpoint(model, str(tmp_path / "model"))
        assert path.endswith(".npz")
        clone = vgg11(
            num_classes=5, image_size=8, width_multiplier=0.125,
            rng=np.random.default_rng(99),
        )
        load_checkpoint(clone, path)
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        model.eval(), clone.eval()
        with no_grad():
            np.testing.assert_allclose(model(x).data, clone(x).data)

    def test_strict_mismatch_raises(self, model_and_loader, tmp_path):
        model, _ = model_and_loader
        path = save_checkpoint(model, str(tmp_path / "model"))
        other = vgg11(
            num_classes=7, image_size=8, width_multiplier=0.125,
            rng=np.random.default_rng(0),
        )
        with pytest.raises((KeyError, ValueError)):
            load_checkpoint(other, path)


class TestSNNCheckpoint:
    def test_roundtrip_with_betas(self, model_and_loader, tmp_path, rng):
        model, loader = model_and_loader
        snn = convert_dnn_to_snn(
            model, loader, ConversionConfig(timesteps=2)
        ).snn
        path = save_checkpoint(snn, str(tmp_path / "snn"))

        fresh = convert_dnn_to_snn(
            model, loader,
            ConversionConfig(timesteps=2, strategy="threshold_relu"),
        ).snn
        load_checkpoint(fresh, path)
        for a, b in zip(snn.spiking_neurons(), fresh.spiking_neurons()):
            assert a.beta == pytest.approx(b.beta)
            assert a.threshold == pytest.approx(b.threshold)
        images = rng.random((2, 3, 8, 8))
        snn.eval(), fresh.eval()
        with no_grad():
            np.testing.assert_allclose(snn(images).data, fresh(images).data)

    def test_timestep_mismatch_strict(self, model_and_loader, tmp_path):
        model, loader = model_and_loader
        snn2 = convert_dnn_to_snn(model, loader, ConversionConfig(timesteps=2)).snn
        path = save_checkpoint(snn2, str(tmp_path / "snn2"))
        snn3 = convert_dnn_to_snn(model, loader, ConversionConfig(timesteps=3)).snn
        with pytest.raises(ValueError, match="T="):
            load_checkpoint(snn3, path)
        load_checkpoint(snn3, path, strict=False)  # override allowed


class TestFastAlgorithm1:
    def test_matches_grid_search(self):
        from repro.conversion import find_scaling_factors, find_scaling_factors_fast

        rng = np.random.default_rng(0)
        for scale in (0.1, 0.3, 0.6):
            p = np.percentile(
                rng.exponential(scale=scale, size=50_000), np.arange(101.0)
            )
            for t in (1, 2, 3, 5):
                slow = find_scaling_factors(p, 2.0, t)
                fast = find_scaling_factors_fast(p, 2.0, t)
                assert fast.alpha == pytest.approx(slow.alpha)
                assert fast.beta == pytest.approx(slow.beta, abs=0.011)
                assert abs(fast.loss) <= abs(slow.loss) + 1e-9

    def test_far_fewer_evaluations(self):
        from repro.conversion import find_scaling_factors, find_scaling_factors_fast

        rng = np.random.default_rng(1)
        p = np.percentile(rng.exponential(scale=0.3, size=50_000), np.arange(101.0))
        slow = find_scaling_factors(p, 2.0, 2)
        fast = find_scaling_factors_fast(p, 2.0, 2)
        assert fast.evaluations < slow.evaluations / 20


class TestCLI:
    def test_help_runs(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["--help"])

    def test_rejects_unknown_experiment(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["table9"])
