"""Markdown report generation from archived results."""

import json
import os

import pytest

from repro.experiments.report_md import generate_report, write_report


@pytest.fixture()
def results_dir(tmp_path):
    directory = str(tmp_path / "results")
    os.makedirs(directory)

    def dump(name, payload):
        with open(os.path.join(directory, f"{name}.json"), "w") as handle:
            json.dump(payload, handle)

    dump("table1_vgg11_cifar10", {"rows": [{
        "architecture": "vgg11", "dataset": "cifar10", "timesteps": 2,
        "dnn_accuracy": 99.0, "conversion_accuracy": 85.0,
        "snn_accuracy": 95.0,
    }]})
    dump("table2_cifar10", {"rows": [{
        "method": "this work", "timesteps": 2, "accuracy": 48.0,
        "dnn_reference": 80.0,
    }]})
    dump("fig2_vgg16", {
        "timesteps": [2, 4], "series": {"proposed": [40.0, 23.3]},
    })
    dump("fig3_cifar10", {"rows": [{
        "timesteps": 2, "train_seconds_per_epoch": 6.9,
        "inference_seconds_per_epoch": 2.5, "train_memory_mb": 109.0,
        "inference_memory_mb": 16.8,
    }]})
    dump("fig4_cifar10", {
        "profiles": [{
            "label": "proposed T=2", "timesteps": 2,
            "average_spike_rate": 0.32, "total_flops": 1.7e6,
            "energy_joules": 8.6e-7, "energy_improvement_vs_dnn": 18.6,
        }],
        "dnn_total_flops": 5e6, "dnn_energy_joules": 1.6e-5,
    })
    dump("fig1", {"mu": 3.98})
    return directory


class TestGenerateReport:
    def test_contains_all_known_sections(self, results_dir):
        report = generate_report(results_dir)
        for heading in ("# Benchmark results", "## Table I", "## Table II",
                        "## Fig. 2", "## Fig. 3", "## Fig. 4"):
            assert heading in report

    def test_unknown_results_appendixed(self, results_dir):
        report = generate_report(results_dir)
        assert "`fig1.json`" in report

    def test_rows_present(self, results_dir):
        report = generate_report(results_dir)
        assert "vgg11" in report
        assert "this work" in report
        assert "proposed T=2" in report

    def test_markdown_tables_wellformed(self, results_dir):
        report = generate_report(results_dir)
        for line in report.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")

    def test_write_report(self, results_dir, tmp_path):
        path = write_report(str(tmp_path / "REPORT.md"), results_dir)
        assert os.path.exists(path)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            generate_report(str(tmp_path / "nope"))

    def test_empty_directory(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ValueError):
            generate_report(str(empty))
