"""Hard vs soft membrane reset (conversion-literature comparison)."""

import numpy as np
import pytest

from repro.conversion import snn_staircase
from repro.snn import IFNeuron, SpikingNeuron
from repro.tensor import Tensor


class TestResetModes:
    def test_soft_reset_conserves_residual(self):
        n = SpikingNeuron(v_threshold=1.0, reset_mode="soft")
        n(Tensor(np.array([1.7])))
        np.testing.assert_allclose(n.membrane.data, [0.7], atol=1e-12)

    def test_hard_reset_discards_residual(self):
        n = SpikingNeuron(v_threshold=1.0, reset_mode="hard")
        n(Tensor(np.array([1.7])))
        np.testing.assert_allclose(n.membrane.data, [0.0], atol=1e-12)

    def test_hard_reset_keeps_subthreshold_membrane(self):
        n = SpikingNeuron(v_threshold=1.0, reset_mode="hard")
        n(Tensor(np.array([0.4])))
        np.testing.assert_allclose(n.membrane.data, [0.4])

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            SpikingNeuron(reset_mode="medium")

    def test_soft_matches_staircase_hard_does_not(self):
        """The Eq. 5 rate equivalence requires reset-by-subtraction;
        hard reset under-counts (the classic conversion accuracy loss)."""
        timesteps, v_th, current = 8, 1.0, 0.66
        totals = {}
        for mode in ("soft", "hard"):
            n = SpikingNeuron(v_threshold=v_th, reset_mode=mode)
            totals[mode] = sum(
                float(n(Tensor(np.array([current]))).data[0])
                for _ in range(timesteps)
            )
        expected = snn_staircase(
            np.array([current]), timesteps, v_th
        )[0] * timesteps
        np.testing.assert_allclose(totals["soft"], expected, atol=1e-12)
        assert totals["hard"] < totals["soft"]

    def test_hard_reset_charge_leaks(self):
        """Emitted + residual < injected for hard reset (charge lost)."""
        rng = np.random.default_rng(0)
        n = SpikingNeuron(v_threshold=0.8, reset_mode="hard")
        currents = rng.uniform(0.5, 1.5, size=30)
        emitted = sum(
            float(n(Tensor(np.array([c]))).data[0]) for c in currents
        )
        assert emitted + float(n.membrane.data[0]) < currents.sum()

    def test_default_is_soft(self):
        assert IFNeuron().reset_mode == "soft"
