"""Unit tests for elementwise / reduction / movement tensor ops."""

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    check_gradients,
    clip,
    concatenate,
    dropout,
    log_softmax,
    maximum,
    one_hot,
    relu,
    softmax,
    stack,
    threshold_relu,
    unbroadcast,
    where,
)


class TestArithmetic:
    def test_add_values(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_add_broadcasting(self):
        out = Tensor(np.ones((2, 3))) + Tensor([1.0, 2.0, 3.0])
        np.testing.assert_allclose(out.data, [[2, 3, 4], [2, 3, 4]])

    def test_radd_scalar(self):
        out = 2.0 + Tensor([1.0])
        np.testing.assert_allclose(out.data, [3.0])

    def test_sub_and_rsub(self):
        a = Tensor([5.0])
        np.testing.assert_allclose((a - 2.0).data, [3.0])
        np.testing.assert_allclose((10.0 - a).data, [5.0])

    def test_mul_div(self):
        a = Tensor([6.0])
        np.testing.assert_allclose((a * 2.0).data, [12.0])
        np.testing.assert_allclose((a / 3.0).data, [2.0])
        np.testing.assert_allclose((12.0 / a).data, [2.0])

    def test_neg_pow(self):
        a = Tensor([2.0, -3.0])
        np.testing.assert_allclose((-a).data, [-2.0, 3.0])
        np.testing.assert_allclose((a ** 2).data, [4.0, 9.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([2.0])

    def test_add_gradients(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        check_gradients(lambda x, y: x + y, [a, b])

    def test_mul_div_gradients(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 1)) + 3.0, requires_grad=True)
        check_gradients(lambda x, y: x * y, [a, b])
        check_gradients(lambda x, y: x / y, [a, b])

    def test_pow_gradient(self, rng):
        a = Tensor(np.abs(rng.normal(size=(5,))) + 0.5, requires_grad=True)
        check_gradients(lambda x: x ** 3, [a])


class TestUnaryOps:
    def test_exp_log_roundtrip(self, rng):
        a = Tensor(np.abs(rng.normal(size=(4,))) + 0.1)
        np.testing.assert_allclose(a.exp().log().data, a.data, atol=1e-10)

    def test_unary_gradients(self, rng):
        a = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        positive = Tensor(np.abs(rng.normal(size=(3, 3))) + 0.5, requires_grad=True)
        check_gradients(lambda x: x.exp(), [a])
        check_gradients(lambda x: x.log(), [positive])
        check_gradients(lambda x: x.sqrt(), [positive])
        check_gradients(lambda x: x.tanh(), [a])
        check_gradients(lambda x: x.sigmoid(), [a])
        check_gradients(lambda x: x.abs(), [a])  # no zeros in random data

    def test_sigmoid_range(self, rng):
        out = Tensor(rng.normal(size=100) * 10).sigmoid()
        assert np.all(out.data > 0) and np.all(out.data < 1)


class TestReductions:
    def test_sum_axis_keepdims(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)))
        np.testing.assert_allclose(a.sum(axis=1).data, a.data.sum(axis=1))
        np.testing.assert_allclose(
            a.sum(axis=(0, 2), keepdims=True).data,
            a.data.sum(axis=(0, 2), keepdims=True),
        )

    def test_mean_matches_numpy(self, rng):
        a = Tensor(rng.normal(size=(4, 5)))
        np.testing.assert_allclose(a.mean(axis=0).data, a.data.mean(axis=0))
        np.testing.assert_allclose(a.mean().data, a.data.mean())

    def test_max_matches_numpy(self, rng):
        a = Tensor(rng.normal(size=(4, 5)))
        np.testing.assert_allclose(a.max(axis=1).data, a.data.max(axis=1))

    def test_var(self, rng):
        a = Tensor(rng.normal(size=(6, 7)))
        np.testing.assert_allclose(a.var(axis=0).data, a.data.var(axis=0), atol=1e-12)

    def test_reduction_gradients(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda x: x.sum(axis=0), [a])
        check_gradients(lambda x: x.sum(axis=(0, 1)), [a])
        check_gradients(lambda x: x.mean(axis=1, keepdims=True), [a])
        check_gradients(lambda x: x.max(axis=1), [a])
        check_gradients(lambda x: x.max(), [a])

    def test_max_gradient_ties_split(self):
        a = Tensor(np.array([[1.0, 1.0, 0.0]]), requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.5, 0.5, 0.0]])

    def test_argmax(self, rng):
        a = Tensor(rng.normal(size=(3, 5)))
        np.testing.assert_array_equal(a.argmax(axis=1), a.data.argmax(axis=1))


class TestMovement:
    def test_reshape_roundtrip(self, rng):
        a = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        check_gradients(lambda x: x.reshape(3, 4), [a])
        assert a.reshape((4, 3)).shape == (4, 3)

    def test_transpose(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        assert a.transpose(2, 0, 1).shape == (4, 2, 3)
        assert a.T.shape == (4, 3, 2)
        check_gradients(lambda x: x.transpose(1, 2, 0), [a])

    def test_getitem(self, rng):
        a = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        check_gradients(lambda x: x[1:3, ::2], [a])
        np.testing.assert_allclose(a[0].data, a.data[0])

    def test_pad2d(self, rng):
        a = Tensor(rng.normal(size=(1, 2, 3, 3)), requires_grad=True)
        out = a.pad2d(2)
        assert out.shape == (1, 2, 7, 7)
        np.testing.assert_allclose(out.data[:, :, :2, :], 0.0)
        check_gradients(lambda x: x.pad2d(1), [a])
        assert a.pad2d(0) is a

    def test_flatten_batch(self, rng):
        a = Tensor(rng.normal(size=(4, 2, 3)))
        assert a.flatten_batch().shape == (4, 6)

    def test_concatenate_and_stack(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        assert concatenate([a, b], axis=0).shape == (6, 3)
        check_gradients(lambda x, y: concatenate([x, y], axis=0), [a, b])
        c = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        assert stack([a, c], axis=1).shape == (2, 2, 3)
        check_gradients(lambda x, y: stack([x, y], axis=0), [a, c])


class TestFunctionalOps:
    def test_relu_forward_and_gradient(self, rng):
        a = Tensor(rng.normal(size=(5, 5)), requires_grad=True)
        np.testing.assert_allclose(relu(a).data, np.maximum(a.data, 0.0))
        check_gradients(lambda x: relu(x), [a])

    def test_threshold_relu_clip_semantics(self):
        x = Tensor(np.array([-1.0, 0.5, 1.5, 3.0]))
        mu = Tensor(np.array([1.0]))
        np.testing.assert_allclose(
            threshold_relu(x, mu).data, [0.0, 0.5, 1.0, 1.0]
        )

    def test_threshold_relu_gradients(self, rng):
        x = Tensor(rng.normal(size=(20,)) * 2, requires_grad=True)
        mu = Tensor(np.array([1.3]), requires_grad=True)
        check_gradients(lambda a, m: threshold_relu(a, m), [x, mu])

    def test_threshold_relu_mu_gradient_counts_saturated(self):
        x = Tensor(np.array([0.5, 2.0, 3.0]))
        mu = Tensor(np.array([1.0]), requires_grad=True)
        threshold_relu(x, mu).sum().backward()
        # two elements are clipped at mu
        np.testing.assert_allclose(mu.grad, [2.0])

    def test_clip(self, rng):
        a = Tensor(rng.normal(size=(10,)) * 3, requires_grad=True)
        out = clip(a, -1.0, 1.0)
        np.testing.assert_allclose(out.data, np.clip(a.data, -1, 1))
        check_gradients(lambda x: clip(x, -1.0, 1.0), [a])

    def test_log_softmax_normalisation(self, rng):
        a = Tensor(rng.normal(size=(4, 7)))
        out = log_softmax(a, axis=1)
        np.testing.assert_allclose(np.exp(out.data).sum(axis=1), 1.0, atol=1e-12)

    def test_log_softmax_stability(self):
        a = Tensor(np.array([[1000.0, 1000.0]]))
        out = log_softmax(a, axis=1)
        assert np.all(np.isfinite(out.data))

    def test_log_softmax_gradient(self, rng):
        a = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        check_gradients(lambda x: log_softmax(x, axis=1) * 0.7, [a])

    def test_softmax_sums_to_one(self, rng):
        out = softmax(Tensor(rng.normal(size=(2, 6))), axis=1)
        np.testing.assert_allclose(out.data.sum(axis=1), 1.0, atol=1e-12)

    def test_where_and_maximum(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        cond = a.data > 0
        np.testing.assert_allclose(
            where(cond, a, b).data, np.where(cond, a.data, b.data)
        )
        check_gradients(lambda x, y: where(cond, x, y), [a, b])
        np.testing.assert_allclose(
            maximum(a, b).data, np.maximum(a.data, b.data)
        )
        check_gradients(lambda x, y: maximum(x, y), [a, b])

    def test_dropout_eval_is_identity(self, rng):
        a = Tensor(rng.normal(size=(5, 5)))
        out = dropout(a, 0.5, rng, training=False)
        assert out is a

    def test_dropout_scales_kept_units(self, rng):
        a = Tensor(np.ones((1000,)))
        out = dropout(a, 0.25, rng, training=True)
        kept = out.data[out.data != 0]
        np.testing.assert_allclose(kept, 1.0 / 0.75)
        # Expected keep rate ~ 75%
        assert abs((out.data != 0).mean() - 0.75) < 0.06

    def test_dropout_rejects_bad_p(self, rng):
        with pytest.raises(ValueError):
            dropout(Tensor([1.0]), 1.0, rng)

    def test_one_hot(self):
        out = one_hot(np.array([0, 2]), 3)
        np.testing.assert_allclose(out, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            one_hot(np.array([3]), 3)


class TestUnbroadcast:
    def test_prepend_axes(self):
        grad = np.ones((2, 3, 4))
        assert unbroadcast(grad, (3, 4)).shape == (3, 4)
        np.testing.assert_allclose(unbroadcast(grad, (3, 4)), 2 * np.ones((3, 4)))

    def test_stretched_axes(self):
        grad = np.ones((3, 4))
        np.testing.assert_allclose(unbroadcast(grad, (3, 1)), 4 * np.ones((3, 1)))

    def test_identity(self):
        grad = np.ones((2, 2))
        assert unbroadcast(grad, (2, 2)) is grad
