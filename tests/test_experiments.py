"""Experiment-harness tests: configs, reporting, end-to-end integration.

The integration tests share the session-scoped ``tiny_context`` fixture
(one trained tiny VGG-11) so the whole file costs one training run.
"""

import json
import os

import numpy as np
import pytest

from repro.experiments import (
    PAPER_TABLE1,
    ExperimentConfig,
    convert_only,
    format_table,
    get_scale,
    rows_from_dicts,
    run_pipeline,
    save_results,
)
from repro.experiments.config import SCALES, ScalePreset
from repro.train import evaluate_snn


class TestConfig:
    def test_scales_available(self):
        assert set(SCALES) == {"tiny", "bench", "full"}
        assert get_scale("bench").name == "bench"
        with pytest.raises(KeyError):
            get_scale("huge")

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            ScalePreset(
                name="bad", image_size=2, train_size=10, test_size=10,
                width_multiplier=1.0, batch_size=2, dnn_epochs=1,
                snn_epochs=1, calibration_batches=1,
            )

    def test_experiment_config_num_classes(self):
        a = ExperimentConfig("vgg11", "cifar10")
        b = ExperimentConfig("vgg16", "cifar100")
        assert a.num_classes == 10 and b.num_classes == 100

    def test_with_timesteps_preserves_context_key(self):
        base = ExperimentConfig("vgg11", "cifar10", timesteps=2)
        other = base.with_timesteps(5)
        assert other.timesteps == 5
        assert base.context_key() == other.context_key()

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig("vgg11", "imagenet")
        with pytest.raises(ValueError):
            ExperimentConfig("vgg11", "cifar10", timesteps=0)

    def test_paper_table_reference_complete(self):
        assert len(PAPER_TABLE1) == 10
        for values in PAPER_TABLE1.values():
            dnn, conv, snn = values
            assert conv < snn <= dnn  # the paper's own ordering


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "long_header"], [[1, 2.5], [10, 0.333333]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_format_table_title(self):
        text = format_table(["x"], [[1]], title="Title")
        assert text.splitlines()[0] == "Title"

    def test_format_cell_styles(self):
        text = format_table(["v"], [[1.23456789e-8], [123456.0], [0.5], [0]])
        assert "1.235e-08" in text
        assert "1.235e+05" in text

    def test_rows_from_dicts(self):
        rows = rows_from_dicts([{"a": 1, "b": 2}], ["b", "a", "missing"])
        assert rows == [[2, 1, ""]]

    def test_save_results(self, tmp_path):
        path = save_results("unit", {"x": 1.5}, directory=str(tmp_path))
        with open(path) as handle:
            assert json.load(handle) == {"x": 1.5}
        assert os.path.basename(path) == "unit.json"


class TestIntegrationPipeline:
    """End-to-end on the shared tiny context (paper's core claims)."""

    def test_dnn_learns_above_chance(self, tiny_context):
        assert tiny_context.dnn_accuracy > 0.3  # 10 classes -> chance 0.1

    def test_pipeline_caches(self, tiny_config):
        first = run_pipeline(tiny_config)
        second = run_pipeline(tiny_config)
        assert first is second

    def test_sgl_recovers_conversion_gap(self, tiny_config):
        """Table I shape: conversion << DNN; SGL recovers much of it."""
        result = run_pipeline(tiny_config)
        assert result.conversion_accuracy < result.dnn_accuracy
        assert result.snn_accuracy >= result.conversion_accuracy - 0.05

    def test_as_row_keys(self, tiny_config):
        row = run_pipeline(tiny_config).as_row()
        assert set(row) == {
            "architecture", "dataset", "timesteps",
            "dnn_accuracy", "conversion_accuracy", "snn_accuracy",
        }

    def test_convert_only_strategies_run(self, tiny_config, tiny_context):
        test_loader = tiny_context.test_loader()
        for strategy in ("proposed", "threshold_relu", "max_activation",
                          "deng_shift", "grid_scaling"):
            conversion = convert_only(
                tiny_config, strategy=strategy, context=tiny_context
            )
            accuracy = evaluate_snn(conversion.snn, test_loader)
            assert 0.0 <= accuracy <= 1.0

    def test_proposed_alpha_below_one_at_t2(self, tiny_config, tiny_context):
        """Skewed activations must drive alpha below 1 (paper Sec. III-B)."""
        conversion = convert_only(tiny_config, context=tiny_context)
        alphas = [spec.alpha for spec in conversion.specs]
        assert np.mean(alphas) < 1.0

    def test_context_determinism(self, tiny_config, tiny_context):
        from repro.experiments.context import _build_dataset

        again = _build_dataset(tiny_config)
        np.testing.assert_allclose(
            again.train_images, tiny_context.dataset.train_images
        )
