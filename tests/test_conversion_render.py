"""Rendering of conversion reports and reporting edge cases."""

import numpy as np
import pytest

from repro.conversion import ConversionConfig, convert_dnn_to_snn
from repro.data import DataLoader
from repro.experiments.reporting import format_table
from repro.models import vgg11


class TestConversionRender:
    @pytest.fixture(scope="class")
    def conversion(self):
        rng = np.random.default_rng(0)
        model = vgg11(
            num_classes=5, image_size=8, width_multiplier=0.125,
            rng=np.random.default_rng(1),
        )
        loader = DataLoader(rng.random((8, 3, 8, 8)), rng.integers(0, 5, 8), 8)
        return convert_dnn_to_snn(model, loader, ConversionConfig(timesteps=2))

    def test_render_contains_strategy_and_layers(self, conversion):
        text = conversion.render()
        assert "strategy=proposed" in text
        assert "T=2" in text
        assert "alpha" in text and "V^th" in text
        # one body row per activation layer
        body_rows = [
            line for line in text.splitlines()
            if line and line[0].isdigit()
        ]
        assert len(body_rows) == len(conversion.specs)


class TestReportingEdgeCases:
    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text

    def test_negative_and_zero_floats(self):
        text = format_table(["v"], [[-1.5], [0.0], [-1e-9]])
        assert "-1.5" in text
        assert "0" in text

    def test_mixed_types(self):
        text = format_table(["x"], [["name"], [3], [2.25]])
        assert "name" in text and "2.25" in text
