"""Conversion pipeline tests: stats collection, specs, twin building."""

import numpy as np
import pytest

from repro.conversion import (
    ConversionConfig,
    NeuronSpec,
    activation_layers,
    build_specs,
    collect_activation_stats,
    convert_dnn_to_snn,
    deng_shift_specs,
    grid_scaling_specs,
    max_activation_specs,
    proposed_specs,
    threshold_relu_specs,
)
from repro.conversion.converter import absorb_beta
from repro.data import DataLoader
from repro.models import resnet20, vgg11
from repro.nn import Conv2d, Linear
from repro.snn import (
    SpikingMaxPool,
    SpikingNetwork,
    SpikingNeuron,
    SpikingResidualBlock,
    StepWrapper,
    TemporalDropout,
)
from repro.train import evaluate_snn


@pytest.fixture(scope="module")
def small_vgg():
    return vgg11(
        num_classes=5,
        image_size=8,
        width_multiplier=0.125,
        dropout=0.1,
        rng=np.random.default_rng(0),
    )


@pytest.fixture(scope="module")
def small_resnet():
    return resnet20(
        num_classes=5, width_multiplier=0.125, rng=np.random.default_rng(0)
    )


@pytest.fixture(scope="module")
def batches():
    rng = np.random.default_rng(1)
    images = rng.random((24, 3, 8, 8))
    labels = rng.integers(0, 5, size=24)
    return DataLoader(images, labels, batch_size=8)


class TestActivationStats:
    def test_one_stat_per_activation(self, small_vgg, batches):
        stats = collect_activation_stats(small_vgg, batches)
        assert len(stats) == len(activation_layers(small_vgg))

    def test_percentile_grid(self, small_vgg, batches):
        stats = collect_activation_stats(small_vgg, batches)
        for s in stats:
            assert s.percentiles.shape == (101,)
            assert np.all(np.diff(s.percentiles) >= 0)  # monotone
            assert s.count > 0

    def test_mu_matches_layer_threshold(self, small_vgg, batches):
        stats = collect_activation_stats(small_vgg, batches)
        for s, layer in zip(stats, activation_layers(small_vgg)):
            assert s.mu == layer.threshold

    def test_d_max_is_max(self, small_vgg, batches):
        stats = collect_activation_stats(small_vgg, batches)
        for s in stats:
            assert s.d_max >= s.percentiles[-1] - 1e-12

    def test_interpolated_percentile(self, small_vgg, batches):
        stats = collect_activation_stats(small_vgg, batches)
        s = stats[0]
        assert s.percentiles[50] == pytest.approx(s.percentile(50.0))
        with pytest.raises(ValueError):
            s.percentile(101.0)

    def test_relu_model_uses_dmax_as_mu(self, batches):
        model = vgg11(
            num_classes=5, image_size=8, width_multiplier=0.125,
            activation="relu", rng=np.random.default_rng(0),
        )
        stats = collect_activation_stats(model, batches)
        for s in stats:
            assert s.mu == s.d_max

    def test_restores_model_state(self, small_vgg, batches):
        collect_activation_stats(small_vgg, batches)
        for layer in activation_layers(small_vgg):
            assert getattr(layer, "recorder", None) is None

    def test_max_batches_limits_samples(self, small_vgg, batches):
        all_stats = collect_activation_stats(small_vgg, batches)
        limited = collect_activation_stats(small_vgg, batches, max_batches=1)
        assert limited[0].count < all_stats[0].count

    def test_no_activations_rejected(self, batches):
        from repro.nn import Sequential

        with pytest.raises(ValueError):
            collect_activation_stats(
                Sequential(Linear(4, 2, rng=np.random.default_rng(0))), batches
            )


class TestSpecs:
    @pytest.fixture(scope="class")
    def stats(self, small_vgg, batches):
        return collect_activation_stats(small_vgg, batches)

    def test_proposed_specs(self, stats):
        specs = proposed_specs(stats, timesteps=2)
        assert len(specs) == len(stats)
        for spec, s in zip(specs, stats):
            assert 0 < spec.v_threshold <= s.mu
            assert spec.alpha <= 1.0

    def test_threshold_relu_specs(self, stats):
        specs = threshold_relu_specs(stats)
        for spec, s in zip(specs, stats):
            assert spec.v_threshold == s.mu
            assert spec.beta == 1.0

    def test_max_activation_specs(self, stats):
        specs = max_activation_specs(stats)
        for spec, s in zip(specs, stats):
            assert spec.v_threshold == pytest.approx(max(s.d_max, 1e-6))

    def test_max_activation_robust_percentile(self, stats):
        robust = max_activation_specs(stats, percentile=99.0)
        hard = max_activation_specs(stats)
        for r, h in zip(robust, hard):
            assert r.v_threshold <= h.v_threshold + 1e-12

    def test_deng_specs_initial_potential(self, stats):
        specs = deng_shift_specs(stats, timesteps=4)
        for spec, s in zip(specs, stats):
            assert spec.initial_potential == pytest.approx(spec.v_threshold / 2.0)

    def test_deng_specs_max_variant(self, stats):
        specs = deng_shift_specs(stats, timesteps=4, use_max_activation=True)
        for spec, s in zip(specs, stats):
            assert spec.v_threshold == pytest.approx(max(s.d_max, 1e-6))

    def test_grid_scaling_specs(self, stats):
        specs = grid_scaling_specs(stats, timesteps=2)
        for spec, s in zip(specs, stats):
            assert 0 < spec.v_threshold <= s.mu + 1e-12
            assert spec.beta == 1.0

    def test_build_specs_dispatch(self, stats):
        for name in ("proposed", "threshold_relu", "max_activation",
                      "deng_shift", "grid_scaling"):
            specs = build_specs(name, stats, 2)
            assert len(specs) == len(stats)
        with pytest.raises(KeyError):
            build_specs("mystery", stats, 2)

    def test_neuron_spec_validation(self):
        with pytest.raises(ValueError):
            NeuronSpec(v_threshold=0.0)
        with pytest.raises(ValueError):
            NeuronSpec(v_threshold=1.0, beta=0.0)


class TestConverterVGG:
    @pytest.fixture(scope="class")
    def conversion(self, small_vgg, batches):
        return convert_dnn_to_snn(
            small_vgg, batches, ConversionConfig(timesteps=2)
        )

    def test_returns_spiking_network(self, conversion):
        assert isinstance(conversion.snn, SpikingNetwork)
        assert conversion.snn.timesteps == 2

    def test_neuron_per_activation(self, conversion, small_vgg):
        neurons = conversion.snn.spiking_neurons()
        assert len(neurons) == len(activation_layers(small_vgg))

    def test_thresholds_match_specs(self, conversion):
        for neuron, spec in zip(conversion.snn.spiking_neurons(), conversion.specs):
            assert neuron.threshold == pytest.approx(spec.v_threshold)
            assert neuron.beta == pytest.approx(spec.beta)

    def test_weights_copied_not_shared(self, conversion, small_vgg):
        dnn_convs = [m for m in small_vgg.modules() if isinstance(m, Conv2d)]
        snn_convs = [
            m.inner for m in conversion.snn.modules()
            if isinstance(m, StepWrapper) and isinstance(m.inner, Conv2d)
        ]
        assert len(dnn_convs) == len(snn_convs)
        for d, s in zip(dnn_convs, snn_convs):
            np.testing.assert_allclose(d.weight.data, s.weight.data)
            assert d.weight is not s.weight

    def test_dropout_becomes_temporal(self, conversion):
        assert any(
            isinstance(m, TemporalDropout) for m in conversion.snn.modules()
        )

    def test_maxpool_becomes_gated(self, conversion):
        assert any(
            isinstance(m, SpikingMaxPool) for m in conversion.snn.modules()
        )

    def test_forward_shape(self, conversion, batches):
        images, _ = next(iter(batches))
        assert conversion.snn(images).shape == (images.shape[0], 5)

    def test_report_rows(self, conversion):
        rows = conversion.report_rows()
        assert len(rows) == len(conversion.specs)
        assert set(rows[0]) == {"layer", "mu", "d_max", "alpha", "beta", "v_threshold"}

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ConversionConfig(timesteps=0)


class TestConverterResNet:
    @pytest.fixture(scope="class")
    def conversion(self, small_resnet, batches):
        return convert_dnn_to_snn(
            small_resnet, batches, ConversionConfig(timesteps=2)
        )

    def test_residual_blocks_mapped(self, conversion):
        blocks = [
            m for m in conversion.snn.modules()
            if isinstance(m, SpikingResidualBlock)
        ]
        assert len(blocks) == 9

    def test_neuron_count(self, conversion, small_resnet):
        assert len(conversion.snn.spiking_neurons()) == 19

    def test_forward_shape(self, conversion, batches):
        images, _ = next(iter(batches))
        assert conversion.snn(images).shape == (images.shape[0], 5)

    def test_absorb_beta_rejected_for_residual(self, conversion):
        with pytest.raises(NotImplementedError):
            absorb_beta(conversion.snn)


class TestAbsorbBeta:
    def test_equivalence_on_vgg(self, small_vgg, batches):
        plain = convert_dnn_to_snn(
            small_vgg, batches, ConversionConfig(timesteps=2)
        )
        absorbed = convert_dnn_to_snn(
            small_vgg, batches, ConversionConfig(timesteps=2, absorb_beta=True)
        )
        for neuron in absorbed.snn.spiking_neurons():
            assert neuron.beta == 1.0
        images, _ = next(iter(batches))
        plain.snn.eval()
        absorbed.snn.eval()
        np.testing.assert_allclose(
            plain.snn(images).data, absorbed.snn(images).data, atol=1e-8
        )


class TestConversionImprovesAccuracy:
    def test_proposed_beats_unscaled_at_t2(self, tiny_context):
        """The paper's central low-latency claim at reduced scale."""
        loader = tiny_context.calibration_loader()
        test_loader = tiny_context.test_loader()
        proposed = convert_dnn_to_snn(
            tiny_context.model, loader,
            ConversionConfig(timesteps=2, strategy="proposed"),
        )
        unscaled = convert_dnn_to_snn(
            tiny_context.model, tiny_context.calibration_loader(),
            ConversionConfig(timesteps=2, strategy="threshold_relu"),
        )
        acc_proposed = evaluate_snn(proposed.snn, test_loader)
        acc_unscaled = evaluate_snn(unscaled.snn, test_loader)
        assert acc_proposed > acc_unscaled
