"""Training/inference hardening: guard, checkpoints, resume, loaders."""

import json
import os

import numpy as np
import pytest

from repro.conversion import ConversionConfig, convert_dnn_to_snn
from repro.data import DataLoader
from repro.models import vgg11
from repro.tensor import no_grad
from repro.train import (
    DNNTrainConfig,
    DNNTrainer,
    NonFiniteError,
    NonFiniteGuard,
    SNNTrainConfig,
    SNNTrainer,
)
from repro.utils import CheckpointError, load_checkpoint, save_checkpoint


def _micro_model(seed=0, num_classes=5):
    return vgg11(
        num_classes=num_classes, image_size=8, width_multiplier=0.125,
        rng=np.random.default_rng(seed),
    )


class _PoisonLoader:
    """Two batches per epoch; poisons one batch on selected passes."""

    def __init__(self, poison_epochs=(1,), n=20, num_classes=5, seed=0):
        rng = np.random.default_rng(seed)
        self.xs = rng.normal(size=(n, 3, 8, 8))
        self.ys = rng.integers(0, num_classes, n)
        self.poison_epochs = set(poison_epochs)
        self.passes = 0

    def __iter__(self):
        self.passes += 1
        half = len(self.xs) // 2
        for start in (0, half):
            batch = self.xs[start:start + half].copy()
            if self.passes in self.poison_epochs and start == half:
                batch[0, 0, 0, 0] = np.nan
            yield batch, self.ys[start:start + half]


class TestNonFiniteGuard:
    def test_validation(self):
        with pytest.raises(ValueError):
            NonFiniteGuard(max_retries=0)
        with pytest.raises(ValueError):
            NonFiniteGuard(lr_backoff=1.0)

    def test_scan_attributes_first_offending_layer(self):
        model = _micro_model()
        guard = NonFiniteGuard()
        for param in model.parameters():
            param.grad = np.zeros_like(param.data)
        names = [name for name, _ in model.named_parameters()]
        offender = names[2]
        dict(model.named_parameters())[offender].grad[...] = np.inf

        class FakeLoss:
            def item(self):
                return 1.0

        site = guard.scan(model, FakeLoss())
        assert offender in site

    def test_recovers_from_transient_nan(self):
        model = _micro_model()
        guard = NonFiniteGuard(max_retries=2, lr_backoff=0.5)
        trainer = DNNTrainer(DNNTrainConfig(epochs=2, lr=0.01))
        history = trainer.fit(model, _PoisonLoader(poison_epochs=(1,)), guard=guard)
        assert guard.retries_used == 1
        assert guard.last_site is not None
        assert all(np.isfinite(history.train_loss))
        assert history.learning_rate[0] == pytest.approx(0.005)

    def test_gives_up_with_actionable_error(self):
        model = _micro_model()
        guard = NonFiniteGuard(max_retries=2)
        trainer = DNNTrainer(DNNTrainConfig(epochs=2, lr=0.01))
        always_poisoned = _PoisonLoader(poison_epochs=range(1, 100))
        with pytest.raises(NonFiniteError, match="gave up after 2"):
            trainer.fit(model, always_poisoned, guard=guard)

    def test_snn_trainer_guard_recovers(self, rng):
        model = _micro_model()
        loader = DataLoader(rng.random((8, 3, 8, 8)), rng.integers(0, 5, 8), 8)
        snn = convert_dnn_to_snn(model, loader, ConversionConfig(timesteps=2)).snn
        guard = NonFiniteGuard(max_retries=2)
        trainer = SNNTrainer(SNNTrainConfig(epochs=2, lr=1e-3))
        history = trainer.fit(
            snn, _PoisonLoader(poison_epochs=(1,)), guard=guard
        )
        assert guard.retries_used == 1
        assert all(np.isfinite(history.train_loss))

    def test_unguarded_loop_unaffected(self):
        model = _micro_model()
        trainer = DNNTrainer(DNNTrainConfig(epochs=1, lr=0.01))
        history = trainer.fit(model, _PoisonLoader(poison_epochs=()))
        assert len(history.train_loss) == 1


class TestCheckpointRobustness:
    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        model = _micro_model()
        save_checkpoint(model, str(tmp_path / "model"))
        save_checkpoint(model, str(tmp_path / "model"))  # overwrite in place
        leftovers = [n for n in os.listdir(tmp_path) if "tmp" in n]
        assert leftovers == []
        assert (tmp_path / "model.npz").exists()

    def test_missing_file_raises_checkpoint_error(self):
        with pytest.raises(CheckpointError, match="no checkpoint at"):
            load_checkpoint(_micro_model(), "/nonexistent/model.npz")

    def test_corrupt_archive_raises_checkpoint_error(self, tmp_path):
        model = _micro_model()
        path = save_checkpoint(model, str(tmp_path / "model"))
        with open(path, "wb") as handle:
            handle.write(b"not a zip archive")
        with pytest.raises(CheckpointError, match="corrupt or truncated"):
            load_checkpoint(model, path)

    def test_truncated_archive_raises_checkpoint_error(self, tmp_path):
        model = _micro_model()
        path = save_checkpoint(model, str(tmp_path / "model"))
        payload = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(payload[: len(payload) // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(model, path)

    def test_missing_snn_metadata_raises_checkpoint_error(self, tmp_path, rng):
        model = _micro_model()
        loader = DataLoader(rng.random((8, 3, 8, 8)), rng.integers(0, 5, 8), 8)
        snn = convert_dnn_to_snn(model, loader, ConversionConfig(timesteps=2)).snn
        path = save_checkpoint(snn, str(tmp_path / "snn"))
        # strip the reserved __meta__ keys, keeping the parameters
        with np.load(path) as archive:
            stripped = {
                key: archive[key] for key in archive.files
                if not key.startswith("__meta__")
            }
        np.savez(path, **stripped)
        with pytest.raises(CheckpointError, match="betas"):
            load_checkpoint(snn, path)
        load_checkpoint(snn, path, strict=False)  # raw parameters only

    def test_snn_roundtrip_equivalent_in_both_modes(self, tmp_path, rng):
        model = _micro_model()
        loader = DataLoader(rng.random((8, 3, 8, 8)), rng.integers(0, 5, 8), 8)
        snn = convert_dnn_to_snn(model, loader, ConversionConfig(timesteps=2)).snn
        # perturb the converted parameters so the loaded values are
        # distinguishable from a fresh conversion
        for neuron in snn.spiking_neurons():
            neuron.v_threshold.data *= 1.1
            neuron.leak.data *= 0.9
        path = save_checkpoint(snn, str(tmp_path / "snn"))

        fresh = convert_dnn_to_snn(
            model, loader, ConversionConfig(timesteps=2)
        ).snn
        load_checkpoint(fresh, path)
        for a, b in zip(snn.spiking_neurons(), fresh.spiking_neurons()):
            assert a.beta == pytest.approx(b.beta)
            assert a.threshold == pytest.approx(b.threshold)
            assert a.leak_value == pytest.approx(b.leak_value)
        images = rng.random((2, 3, 8, 8))
        snn.eval(), fresh.eval()
        for mode in ("fused", "stepwise"):
            snn.mode = fresh.mode = mode
            with no_grad():
                np.testing.assert_allclose(
                    snn(images).data, fresh(images).data
                )


class TestPipelineResume:
    def test_resume_after_kill(self, tiny_config, tmp_path, monkeypatch):
        from repro.experiments.pipeline import (
            clear_pipeline_cache,
            run_pipeline,
        )

        ckdir = str(tmp_path / "ck")
        clear_pipeline_cache()
        original_fit = SNNTrainer.fit

        def killing_fit(self, snn, train, test=None, **kwargs):
            inner = kwargs.get("on_epoch_end")

            def bomb(epoch, history):
                if inner is not None:
                    inner(epoch, history)
                if epoch == 1:
                    raise KeyboardInterrupt

            kwargs["on_epoch_end"] = bomb
            return original_fit(self, snn, train, test, **kwargs)

        monkeypatch.setattr(SNNTrainer, "fit", killing_fit)
        with pytest.raises(KeyboardInterrupt):
            run_pipeline(tiny_config, checkpoint_dir=ckdir)
        monkeypatch.setattr(SNNTrainer, "fit", original_fit)
        clear_pipeline_cache()

        state = json.load(open(os.path.join(ckdir, "pipeline_state.json")))
        assert state["completed_epochs"] == 1
        assert state["total_epochs"] == tiny_config.scale.snn_epochs

        result = run_pipeline(tiny_config, checkpoint_dir=ckdir, resume=True)
        assert result.snn_history.epochs[0] == 2  # picked up, not restarted
        state = json.load(open(os.path.join(ckdir, "pipeline_state.json")))
        assert state["completed_epochs"] == state["total_epochs"]

        # resuming a finished run loads the final weights, trains nothing
        clear_pipeline_cache()
        done = run_pipeline(tiny_config, checkpoint_dir=ckdir, resume=True)
        assert done.snn_history is None
        assert done.snn_accuracy == result.snn_accuracy
        clear_pipeline_cache()

    def test_resume_refuses_mismatched_fingerprint(
        self, tiny_config, tmp_path
    ):
        from repro.experiments.pipeline import (
            _pipeline_fingerprint,
            _write_pipeline_state,
            run_pipeline,
        )

        ckdir = str(tmp_path / "ck")
        _write_pipeline_state(ckdir, {
            "fingerprint": _pipeline_fingerprint(
                tiny_config, "proposed", True, 123.0
            ),
            "completed_epochs": 1,
            "total_epochs": 2,
            "conversion_accuracy": 0.5,
        })
        with pytest.raises(CheckpointError, match="different pipeline"):
            run_pipeline(tiny_config, checkpoint_dir=ckdir, resume=True)

    def test_resume_requires_checkpoint_dir(self, tiny_config):
        from repro.experiments.pipeline import run_pipeline

        with pytest.raises(ValueError, match="requires checkpoint_dir"):
            run_pipeline(tiny_config, resume=True)


class TestDataLoaderValidation:
    def test_rejects_nonpositive_batch_size(self, rng):
        with pytest.raises(ValueError, match="batch_size"):
            DataLoader(rng.random((4, 3, 8, 8)), np.zeros(4, dtype=int), 0)

    def test_rejects_empty_dataset(self):
        with pytest.raises(ValueError, match="empty"):
            DataLoader(
                np.empty((0, 3, 8, 8)), np.empty((0,), dtype=int), 4
            )

    def test_rejects_length_mismatch(self, rng):
        with pytest.raises(ValueError, match="lengths differ"):
            DataLoader(rng.random((4, 3, 8, 8)), np.zeros(3, dtype=int), 2)
