"""Tests of Algorithm 1 (ComputeLoss / FindScalingFactors)."""

import numpy as np
import pytest

from repro.conversion import compute_loss, find_scaling_factors

MU = 2.0


def uniform_percentiles():
    return np.percentile(np.linspace(0.0, MU, 100_001), np.arange(101.0))


def skewed_percentiles(seed=0):
    rng = np.random.default_rng(seed)
    samples = rng.exponential(scale=MU / 6.0, size=200_000)
    return np.percentile(samples, np.arange(101.0))


class TestComputeLoss:
    def test_zero_when_percentiles_on_staircase(self):
        # Percentiles sitting just above SNN step edges give ~0 loss
        # (the firing condition is strict, so the edge itself belongs to
        # the lower step).
        t, alpha, beta = 4, 1.0, 1.0
        eps = 1e-9
        levels = np.array([MU / 4, MU / 2, 3 * MU / 4]) + eps
        loss = compute_loss(levels, MU, alpha, beta, t)
        assert loss == pytest.approx(0.0, abs=1e-8)

    def test_identity_scaling_loss_nonnegative(self):
        # With alpha=beta=1 the staircase floors every value: each term
        # p - staircase(p) >= 0.
        loss = compute_loss(skewed_percentiles(), MU, 1.0, 1.0, 2)
        assert loss >= 0.0

    def test_seg2_contribution(self):
        # One percentile between alpha*mu and mu: loss = p - alpha*beta*mu.
        p = np.array([1.5])
        loss = compute_loss(p, MU, 0.5, 1.0, 2)
        assert loss == pytest.approx(1.5 - 0.5 * MU)

    def test_seg3_contribution(self):
        # One percentile above mu: loss = mu (1 - alpha beta).
        p = np.array([3.0])
        loss = compute_loss(p, MU, 0.5, 1.0, 2)
        assert loss == pytest.approx(MU * (1 - 0.5))

    def test_negative_percentiles_ignored(self):
        assert compute_loss(np.array([-1.0, -0.5]), MU, 1.0, 1.0, 2) == 0.0

    def test_beta_reduces_loss_linearly(self):
        p = skewed_percentiles()
        l1 = compute_loss(p, MU, 0.5, 1.0, 2)
        l2 = compute_loss(p, MU, 0.5, 2.0, 2)
        l15 = compute_loss(p, MU, 0.5, 1.5, 2)
        # Loss is affine in beta.
        assert l15 == pytest.approx((l1 + l2) / 2.0, rel=1e-9)

    def test_validation(self):
        p = uniform_percentiles()
        with pytest.raises(ValueError):
            compute_loss(p, 0.0, 1.0, 1.0, 2)
        with pytest.raises(ValueError):
            compute_loss(p, MU, 0.0, 1.0, 2)
        with pytest.raises(ValueError):
            compute_loss(p, MU, 1.2, 1.0, 2)
        with pytest.raises(ValueError):
            compute_loss(p, MU, 1.0, -0.1, 2)
        with pytest.raises(ValueError):
            compute_loss(p, MU, 1.0, 1.0, 0)


class TestFindScalingFactors:
    def test_never_worse_than_identity(self):
        p = skewed_percentiles()
        identity_loss = compute_loss(p, MU, 1.0, 1.0, 2)
        result = find_scaling_factors(p, MU, 2)
        assert abs(result.loss) <= abs(identity_loss)

    def test_skewed_low_t_prefers_downscaled_alpha(self):
        # The paper's core claim: for skewed distributions at T=2 the
        # optimum has alpha < 1 (threshold pulled into the mass).
        result = find_scaling_factors(skewed_percentiles(), MU, 2)
        assert result.alpha < 1.0

    def test_skewed_low_t_amplifies_beta(self):
        result = find_scaling_factors(skewed_percentiles(), MU, 2)
        assert result.beta > 1.0

    def test_factors_in_valid_ranges(self):
        for t in (1, 2, 3, 5):
            result = find_scaling_factors(skewed_percentiles(), MU, t)
            assert 0.0 < result.alpha <= 1.0
            assert 0.0 < result.beta <= 2.0

    def test_evaluation_count_matches_grid(self):
        p = skewed_percentiles()
        result = find_scaling_factors(p, MU, 2, beta_max=1.0, beta_step=0.5)
        positive = np.unique(p[(p > 0) & (p <= MU)] / MU)
        # identity + len(alphas) * len([0, 0.5, 1.0])
        assert result.evaluations == 1 + len(positive) * 3

    def test_custom_alpha_candidates(self):
        result = find_scaling_factors(
            skewed_percentiles(), MU, 2, alpha_candidates=[0.25, 0.5]
        )
        assert result.alpha in (0.25, 0.5, 1.0)

    def test_rejects_bad_alpha_candidates(self):
        with pytest.raises(ValueError):
            find_scaling_factors(skewed_percentiles(), MU, 2, alpha_candidates=[1.5])

    def test_beta_never_zero(self):
        result = find_scaling_factors(skewed_percentiles(), MU, 2)
        assert result.beta > 0.0

    def test_uniform_distribution_keeps_scales_near_identity(self):
        # With uniform percentiles the unscaled loss is already small;
        # the search must not pick a degenerate tiny alpha.
        result = find_scaling_factors(uniform_percentiles(), MU, 8)
        assert result.alpha * result.beta == pytest.approx(1.0, abs=0.35)

    def test_deterministic(self):
        p = skewed_percentiles()
        a = find_scaling_factors(p, MU, 2)
        b = find_scaling_factors(p, MU, 2)
        assert (a.alpha, a.beta, a.loss) == (b.alpha, b.beta, b.loss)
