"""Parallel executor: determinism, supervision, shm, and integrations.

The contract under test is the repo's bitwise-determinism guarantee:
``ParallelExecutor.map`` must return exactly what serial execution
returns at any worker count, under chaos worker kills, retries, and
graceful downgrades — and the experiment drivers built on it
(``run_fault_sweep``, ``seed_sweep``, Algorithm 1's per-layer search)
must inherit that guarantee.
"""

import json
import os
import signal

import numpy as np
import pytest

from repro.exec import (
    ExecutorError,
    ModelStore,
    ParallelExecutor,
    attach_model,
    clear_attach_cache,
    executor_scope,
    active_executor_config,
    tree_reduce,
)
from repro.faults import ChaosSpec
from repro.models import vgg11


def _checksum_task(payload):
    index, size = payload
    rng = np.random.default_rng(500 + index)
    matrix = rng.standard_normal((size, size))
    return float(np.tanh(matrix @ matrix.T).sum())


def _failing_task(payload):
    index, _ = payload
    if index == 2:
        raise RuntimeError("task 2 always fails")
    return _checksum_task(payload)


_TASKS = [(i, 10) for i in range(7)]


def _micro_model(seed=0):
    return vgg11(
        num_classes=5, image_size=8, width_multiplier=0.125,
        rng=np.random.default_rng(seed),
    )


class TestTreeReduce:
    def test_fixed_combination_order(self):
        combined = tree_reduce(lambda a, b: f"({a}+{b})", list("abcdefg"))
        assert combined == "(((a+b)+(c+d))+((e+f)+g))"

    def test_matches_sum(self):
        values = [0.1 * i for i in range(11)]
        assert tree_reduce(lambda a, b: a + b, values) == pytest.approx(
            sum(values)
        )

    def test_single_item_passthrough(self):
        assert tree_reduce(lambda a, b: a + b, [42]) == 42

    def test_empty_needs_initial(self):
        with pytest.raises(ValueError):
            tree_reduce(lambda a, b: a + b, [])
        assert tree_reduce(lambda a, b: a + b, [], initial=7) == 7


class TestMapDeterminism:
    def test_bitwise_identical_across_worker_counts(self):
        serial = ParallelExecutor(workers=1).map(_checksum_task, _TASKS)
        assert serial.ok and serial.stats.mode == "serial"
        for workers in (2, 4):
            outcome = ParallelExecutor(workers=workers).map(
                _checksum_task, _TASKS
            )
            assert outcome.ok and outcome.stats.mode == "parallel"
            assert outcome.results == serial.results

    def test_map_reduce_matches_serial_reduce(self):
        expected = tree_reduce(
            lambda a, b: a + b, [_checksum_task(t) for t in _TASKS]
        )
        got = ParallelExecutor(workers=2).map_reduce(
            _checksum_task, _TASKS, lambda a, b: a + b
        )
        assert got == expected

    def test_map_reduce_raises_on_partial(self):
        with pytest.raises(ExecutorError, match="task 2"):
            ParallelExecutor(workers=2, max_retries=0).map_reduce(
                _failing_task, _TASKS, lambda a, b: a + b
            )

    def test_empty_and_single_task(self):
        executor = ParallelExecutor(workers=4)
        assert executor.map(_checksum_task, []).results == []
        single = executor.map(_checksum_task, [_TASKS[0]])
        assert single.results == [_checksum_task(_TASKS[0])]

    def test_validation(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=0)
        with pytest.raises(ValueError):
            ParallelExecutor(workers=2, max_retries=-1)
        with pytest.raises(ValueError):
            ParallelExecutor(workers=2, poison_threshold=0)


class TestSupervision:
    def test_persistent_error_becomes_partial(self):
        outcome = ParallelExecutor(workers=2, max_retries=1).map(
            _failing_task, _TASKS
        )
        assert outcome.status == "partial"
        assert set(outcome.failures) == {2}
        failure = outcome.failures[2]
        assert failure.kind == "error"
        assert "always fails" in failure.message
        assert failure.attempts == 2  # first try + one retry
        assert outcome.results[2] is None
        clean = [r for i, r in enumerate(outcome.results) if i != 2]
        serial = ParallelExecutor(workers=1).map(_checksum_task, _TASKS)
        assert clean == [r for i, r in enumerate(serial.results) if i != 2]

    @pytest.mark.stress
    def test_chaos_kill_is_retried_identically(self):
        serial = ParallelExecutor(workers=1).map(_checksum_task, _TASKS)
        outcome = ParallelExecutor(
            workers=2, chaos=ChaosSpec.kill_task(3, attempts=1)
        ).map(_checksum_task, _TASKS)
        assert outcome.ok
        assert outcome.results == serial.results
        assert outcome.stats.crashes >= 1
        assert outcome.stats.restarts >= 1

    @pytest.mark.stress
    def test_poison_task_quarantined(self):
        outcome = ParallelExecutor(
            workers=2,
            poison_threshold=2,
            max_retries=5,
            chaos=ChaosSpec.kill_task(4, attempts=6),
        ).map(_checksum_task, _TASKS)
        assert outcome.status == "partial"
        assert set(outcome.failures) == {4}
        failure = outcome.failures[4]
        assert failure.kind == "poison"
        assert failure.worker_crashes == 2
        assert not outcome.stats.downgraded
        serial = ParallelExecutor(workers=1).map(_checksum_task, _TASKS)
        assert all(
            outcome.results[i] == serial.results[i]
            for i in range(len(_TASKS)) if i != 4
        )

    @pytest.mark.stress
    def test_hung_task_times_out(self):
        outcome = ParallelExecutor(
            workers=2,
            poison_threshold=1,
            task_timeout_s=0.4,
            chaos=ChaosSpec.hang_task(1, attempts=1),
        ).map(_checksum_task, _TASKS)
        assert outcome.status == "partial"
        assert set(outcome.failures) == {1}
        assert outcome.failures[1].kind == "timeout"
        assert outcome.stats.timeouts >= 1

    def test_unavailable_start_method_downgrades(self):
        executor = ParallelExecutor(workers=4, start_method="not-a-method")
        assert executor.resolved_start_method() == "serial"
        outcome = executor.map(_checksum_task, _TASKS)
        assert outcome.ok
        assert outcome.stats.downgraded
        assert outcome.stats.mode == "serial"
        serial = ParallelExecutor(workers=1).map(_checksum_task, _TASKS)
        assert outcome.results == serial.results

    def test_chaos_ignored_on_serial_path(self):
        outcome = ParallelExecutor(
            workers=1, chaos=ChaosSpec.kill_task(0)
        ).map(_checksum_task, _TASKS)
        assert outcome.ok

    def test_failure_record_roundtrip(self):
        outcome = ParallelExecutor(workers=1, max_retries=0).map(
            _failing_task, _TASKS
        )
        payload = json.loads(json.dumps(outcome.failures[2].as_dict()))
        assert payload["index"] == 2 and payload["kind"] == "error"


class TestChaosSpec:
    def test_schedule_is_by_index_and_attempt(self):
        spec = ChaosSpec.kill_task(3, attempts=2)
        assert spec.should_kill(3, 0) and spec.should_kill(3, 1)
        assert not spec.should_kill(3, 2)
        assert not spec.should_kill(2, 0)
        assert not spec.is_null

    def test_roundtrip(self):
        spec = ChaosSpec(kill=frozenset({(1, 0)}), hang=frozenset({(2, 1)}))
        assert ChaosSpec.from_dict(spec.as_dict()) == spec

    def test_validation(self):
        with pytest.raises(ValueError):
            ChaosSpec(kill=frozenset({(1,)}))
        with pytest.raises(ValueError):
            ChaosSpec.kill_task(-1)


class TestSharedMemory:
    def test_readonly_roundtrip_is_bitwise(self):
        model = _micro_model()
        clear_attach_cache()
        with ModelStore() as store:
            handle = store.publish(model)
            clone = attach_model(handle)
            for (name, param), (cname, cparam) in zip(
                model.named_parameters(), clone.named_parameters()
            ):
                assert name == cname
                np.testing.assert_array_equal(param.data, cparam.data)
            first = next(iter(clone.parameters()))
            with pytest.raises((ValueError, RuntimeError)):
                first.data[...] = 0.0
            clear_attach_cache()

    def test_writable_copy_is_private(self):
        model = _micro_model()
        clear_attach_cache()
        with ModelStore() as store:
            handle = store.publish(model)
            clone = attach_model(handle, writable=True)
            target = next(iter(clone.parameters()))
            before = next(iter(model.parameters())).data.copy()
            target.data[...] = 123.0
            np.testing.assert_array_equal(
                next(iter(model.parameters())).data, before
            )
            fresh = attach_model(handle)  # read-only view: unperturbed
            np.testing.assert_array_equal(
                next(iter(fresh.parameters())).data, before
            )
            clear_attach_cache()

    def test_publish_leaves_model_usable(self):
        from repro.tensor import Tensor, no_grad

        model = _micro_model()
        model.eval()
        images = np.random.default_rng(5).random((2, 3, 8, 8))
        with no_grad():
            before = model(Tensor(images)).data.copy()
        with ModelStore() as store:
            store.publish(model)
            with no_grad():
                np.testing.assert_array_equal(
                    model(Tensor(images)).data, before
                )


class TestAmbientScope:
    def test_scope_installs_and_restores(self):
        assert active_executor_config() is None
        executor = ParallelExecutor(workers=3)
        with executor_scope(executor):
            config = active_executor_config()
            assert config["workers"] == 3
        assert active_executor_config() is None

    def test_none_scope_is_noop(self):
        with executor_scope(None):
            assert active_executor_config() is None

    def test_fingerprint_records_executor(self):
        from repro.obs.registry import _environment_fingerprint

        with executor_scope(ParallelExecutor(workers=2)):
            env = _environment_fingerprint()
        assert env["executor"]["workers"] == 2
        assert "executor" not in _environment_fingerprint()


class TestAlgorithm1Parallel:
    @staticmethod
    def _synthetic_stats(layers=3):
        from repro.conversion.activation_stats import LayerActivationStats

        stats = []
        for i in range(layers):
            rng = np.random.default_rng(10 + i)
            samples = np.abs(rng.normal(size=2000)) * (1.0 + 0.3 * i)
            percentiles = np.percentile(samples, np.arange(101.0))
            stats.append(
                LayerActivationStats(
                    percentiles=percentiles,
                    mu=float(np.max(samples)),
                    d_max=float(np.max(samples)),
                    mean=float(np.mean(samples)),
                    count=samples.size,
                )
            )
        return stats

    def test_parallel_matches_serial(self):
        from repro.conversion.specs import proposed_specs

        stats = self._synthetic_stats()
        serial = proposed_specs(stats, timesteps=2)
        parallel = proposed_specs(
            stats, timesteps=2, executor=ParallelExecutor(workers=2)
        )
        for a, b in zip(serial, parallel):
            assert a.v_threshold == b.v_threshold
            assert a.beta == b.beta
            assert a.alpha == b.alpha

    def test_ambient_executor_is_picked_up(self):
        from repro.conversion.specs import proposed_specs

        stats = self._synthetic_stats()
        serial = proposed_specs(stats, timesteps=2)
        with executor_scope(ParallelExecutor(workers=2)):
            ambient = proposed_specs(stats, timesteps=2)
        assert [s.v_threshold for s in ambient] == [
            s.v_threshold for s in serial
        ]


class TestDriverEquality:
    @pytest.fixture(scope="class")
    def sweep_kwargs(self, tiny_config):
        return dict(
            arch=tiny_config.arch,
            dataset=tiny_config.dataset,
            scale_name=tiny_config.scale.name,
            timesteps=tiny_config.timesteps,
            fault_kinds=["prune"],
            ladders={"prune": (0.0, 0.3)},
            seed=0,
        )

    def test_fault_sweep_identical_across_workers(
        self, sweep_kwargs, tiny_context
    ):
        from repro.experiments import run_fault_sweep

        serial = run_fault_sweep(**sweep_kwargs, workers=1)
        assert serial["status"] == "ok" and serial["failures"] == []
        blob = json.dumps(serial, sort_keys=True)
        for workers in (2, 4):
            parallel = run_fault_sweep(**sweep_kwargs, workers=workers)
            assert json.dumps(parallel, sort_keys=True) == blob

    @pytest.mark.stress
    def test_fault_sweep_identical_under_chaos(
        self, sweep_kwargs, tiny_context
    ):
        from repro.experiments import run_fault_sweep

        serial = run_fault_sweep(**sweep_kwargs, workers=1)
        chaotic = run_fault_sweep(
            **sweep_kwargs,
            executor=ParallelExecutor(
                workers=2, chaos=ChaosSpec.kill_task(1, attempts=1)
            ),
        )
        assert json.dumps(chaotic, sort_keys=True) == json.dumps(
            serial, sort_keys=True
        )

    def test_seed_sweep_identical_across_workers(self, tiny_config):
        from repro.experiments.multiseed import seed_sweep

        serial = seed_sweep(tiny_config, [0, 1], fine_tune=False, workers=1)
        parallel = seed_sweep(tiny_config, [0, 1], fine_tune=False, workers=2)
        assert serial.status == "ok" and not serial.failed_seeds
        assert parallel.seeds == serial.seeds
        assert parallel.dnn == serial.dnn
        assert parallel.conversion == serial.conversion
        assert parallel.snn == serial.snn

    def test_seed_sweep_render_mentions_partial(self, tiny_config):
        from repro.experiments.multiseed import (
            SeedSweepResult,
            render_seed_sweep,
        )

        result = SeedSweepResult(
            config=tiny_config,
            seeds=[0], dnn=[50.0], conversion=[40.0], snn=[45.0],
            failed_seeds=[{"seed": 1, "kind": "poison", "message": "x",
                           "index": 1, "attempts": 1, "worker_crashes": 2}],
        )
        assert result.status == "partial"
        assert "PARTIAL" in render_seed_sweep(result)


class TestDiffIntegration:
    def test_cross_worker_diff_is_informational(self, tmp_path):
        from repro.obs import observe
        from repro.obs import metrics as obs_metrics
        from repro.obs.diff import diff_run_dirs
        from repro.obs.registry import registration_enabled

        if not registration_enabled():
            pytest.skip("run registry disabled in this environment")

        dirs = []
        for name, workers in (("w1", 1), ("w2", 2)):
            run_dir = str(tmp_path / name)
            executor = ParallelExecutor(workers=workers) if workers > 1 else None
            with executor_scope(executor):
                with observe(run_dir, smoke=True, seed=0):
                    obs_metrics.gauge("exec.workers", workers)
                    executor_obj = executor or ParallelExecutor(workers=1)
                    outcome = executor_obj.map(_checksum_task, _TASKS)
                    assert outcome.ok
            dirs.append(run_dir)

        diff = diff_run_dirs(dirs[0], dirs[1])
        assert diff.ok, diff.render()
        env_rows = [d for d in diff.deltas if d.name.startswith("env:executor")]
        assert env_rows, "expected informational env:executor rows"
        assert all(not d.significant and not d.regressed for d in env_rows)

    def test_same_config_diff_has_no_executor_rows(self, tmp_path):
        from repro.obs import observe
        from repro.obs import metrics as obs_metrics
        from repro.obs.diff import diff_run_dirs

        dirs = []
        for name in ("a", "b"):
            run_dir = str(tmp_path / name)
            with executor_scope(ParallelExecutor(workers=2)):
                with observe(run_dir, smoke=True, seed=0):
                    obs_metrics.gauge("exec.workers", 2)
            dirs.append(run_dir)
        diff = diff_run_dirs(dirs[0], dirs[1])
        assert diff.ok
        assert not [d for d in diff.deltas if d.name.startswith("env:executor")]


class TestDelayInterrupts:
    def test_sigint_deferred_to_block_exit(self):
        from repro.utils import delay_interrupts

        witness = []
        with pytest.raises(KeyboardInterrupt):
            with delay_interrupts():
                signal.raise_signal(signal.SIGINT)
                witness.append("survived")  # signal must not fire here
        assert witness == ["survived"]

    def test_nested_blocks_defer_to_outermost(self):
        from repro.utils import delay_interrupts

        witness = []
        with pytest.raises(KeyboardInterrupt):
            with delay_interrupts():
                with delay_interrupts():
                    signal.raise_signal(signal.SIGINT)
                    witness.append("inner")
                witness.append("between")  # inner exit re-buffers in outer
        assert witness == ["inner", "between"]

    def test_no_signal_no_effect(self):
        from repro.utils import delay_interrupts

        with delay_interrupts():
            pass


class TestKillMidCheckpoint:
    def test_kill_during_checkpoint_write_leaves_consistent_pair(
        self, tiny_config, tmp_path, monkeypatch
    ):
        """A SIGINT landing inside the checkpoint write must be deferred
        until the weights archive AND the progress record are both on
        disk, and the killed run must resume cleanly."""
        import repro.utils.checkpoint as checkpoint_module
        from repro.experiments.pipeline import (
            clear_pipeline_cache,
            run_pipeline,
        )
        from repro.utils import load_checkpoint

        ckdir = str(tmp_path / "ck")
        original_savez = checkpoint_module.np.savez
        fired = []

        def interrupting_savez(*args, **kwargs):
            if not fired:
                fired.append(True)
                signal.raise_signal(signal.SIGINT)  # deferred, not raised
            return original_savez(*args, **kwargs)

        monkeypatch.setattr(checkpoint_module.np, "savez", interrupting_savez)
        clear_pipeline_cache()
        with pytest.raises(KeyboardInterrupt):
            run_pipeline(tiny_config, checkpoint_dir=ckdir)
        monkeypatch.setattr(checkpoint_module.np, "savez", original_savez)

        # Both halves of the pair exist and agree despite the kill.
        state = json.load(
            open(os.path.join(ckdir, "pipeline_state.json"))
        )
        assert state["completed_epochs"] == 0
        npz_files = [f for f in os.listdir(ckdir) if f.endswith(".npz")]
        assert len(npz_files) == 1
        with np.load(os.path.join(ckdir, npz_files[0])) as archive:
            assert archive.files  # complete, readable archive

        clear_pipeline_cache()
        result = run_pipeline(tiny_config, checkpoint_dir=ckdir, resume=True)
        assert result.snn_accuracy is not None
        state = json.load(
            open(os.path.join(ckdir, "pipeline_state.json"))
        )
        assert state["completed_epochs"] == state["total_epochs"]
        clear_pipeline_cache()
