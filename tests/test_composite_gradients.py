"""End-to-end gradient checks on composite models.

Per-op gradcheck is necessary but not sufficient — these tests validate
analytic gradients of whole forward passes (tiny VGG block, residual
block, spiking unroll) against finite differences.
"""

import numpy as np
import pytest

from repro.models.resnet import BasicBlock
from repro.nn import (
    Conv2d,
    CrossEntropyLoss,
    Flatten,
    Linear,
    MaxPool2d,
    Sequential,
    ThresholdReLU,
)
from repro.snn import IFNeuron, SpikingNetwork, SpikingSequential, StepWrapper
from repro.tensor import Tensor, numeric_gradient


def analytic_vs_numeric(fn, params, atol=2e-4):
    """Compare analytic grads of sum(fn()) vs central differences."""
    for p in params:
        p.zero_grad()
    fn(*params).sum().backward()
    for index, p in enumerate(params):
        numeric = numeric_gradient(fn, params, index, eps=1e-5)
        analytic = p.grad if p.grad is not None else np.zeros_like(p.data)
        np.testing.assert_allclose(analytic, numeric, atol=atol, rtol=1e-3)


class TestCompositeGradients:
    def test_conv_act_pool_stack(self, rng):
        model = Sequential(
            Conv2d(1, 2, 3, padding=1, bias=False, rng=np.random.default_rng(0)),
            ThresholdReLU(init_threshold=1.0),
            MaxPool2d(2),
            Flatten(),
            Linear(2 * 2 * 2, 3, bias=False, rng=np.random.default_rng(1)),
        )
        x = Tensor(rng.normal(size=(2, 1, 4, 4)) * 0.7, requires_grad=True)

        def fn(inp):
            return model(inp)

        analytic_vs_numeric(fn, [x])

    def test_threshold_parameter_gradient_through_network(self, rng):
        conv = Conv2d(1, 2, 3, padding=1, bias=False, rng=np.random.default_rng(0))
        act = ThresholdReLU(init_threshold=0.8)
        head = Linear(2 * 9, 2, bias=False, rng=np.random.default_rng(1))
        x = Tensor(rng.normal(size=(2, 1, 3, 3)))

        def fn(mu_param):
            # swap the parameter value in: gradcheck varies mu directly
            act.mu.data[...] = mu_param.data
            out = head(Flatten()(act(conv(x))))
            return out

        # numeric_gradient perturbs act.mu via the closure; use the
        # parameter itself so analytic/numeric agree.
        act.mu.zero_grad()
        fn(act.mu).sum().backward()
        analytic = act.mu.grad.copy()
        numeric = numeric_gradient(fn, [act.mu], 0, eps=1e-6)
        np.testing.assert_allclose(analytic, numeric, atol=1e-4)

    def test_residual_block_gradients(self, rng):
        block = BasicBlock(
            2, 2, stride=1, init_threshold=1.0, rng=np.random.default_rng(0)
        )
        x = Tensor(rng.normal(size=(1, 2, 4, 4)) * 0.5, requires_grad=True)
        analytic_vs_numeric(lambda inp: block(inp), [x])

    def test_cross_entropy_through_model(self, rng):
        model = Sequential(
            Flatten(), Linear(8, 4, bias=False, rng=np.random.default_rng(0))
        )
        labels = np.array([1, 3])
        criterion = CrossEntropyLoss()
        x = Tensor(rng.normal(size=(2, 2, 2, 2)), requires_grad=True)
        analytic_vs_numeric(lambda inp: criterion(model(inp), labels), [x])


class TestSpikingUnrollGradients:
    def test_gradient_zero_outside_surrogate_window(self, rng):
        """With membranes pinned below zero the boxcar window [0, 2V^th]
        is never entered, so both the surrogate (analytic) and the true
        (numeric) gradient of the upstream weights are exactly zero —
        the one regime where they must agree bit-for-bit."""
        linear_in = Linear(4, 3, bias=False, rng=np.random.default_rng(0))
        # All-positive weights and all-negative inputs keep membranes
        # strictly negative for every epsilon perturbation.
        linear_in.weight.data[...] = np.abs(linear_in.weight.data) + 0.1
        neuron = IFNeuron(v_threshold=1.0)
        head = Linear(3, 2, bias=False, rng=np.random.default_rng(1))
        snn = SpikingNetwork(
            SpikingSequential(
                StepWrapper(linear_in), neuron, StepWrapper(head)
            ),
            timesteps=3,
        )
        x = -np.abs(rng.normal(size=(2, 4))) - 0.5

        def fn(weight):
            linear_in.weight.data[...] = weight.data
            return snn(x)

        linear_in.weight.zero_grad()
        fn(linear_in.weight).sum().backward()
        analytic = linear_in.weight.grad.copy()
        numeric = numeric_gradient(fn, [linear_in.weight], 0, eps=1e-6)
        np.testing.assert_allclose(analytic, numeric, atol=1e-9)
        np.testing.assert_allclose(analytic, 0.0, atol=1e-12)

    def test_head_gradient_exact_with_spiking_input(self, rng):
        """The output layer sits after the last spike op, so its weight
        gradient is exact (no surrogate on that path)."""
        linear_in = Linear(4, 3, bias=False, rng=np.random.default_rng(0))
        neuron = IFNeuron(v_threshold=0.3)
        head = Linear(3, 2, bias=False, rng=np.random.default_rng(1))
        snn = SpikingNetwork(
            SpikingSequential(
                StepWrapper(linear_in), neuron, StepWrapper(head)
            ),
            timesteps=3,
        )
        x = np.abs(rng.normal(size=(2, 4))) + 0.3

        def fn(weight):
            head.weight.data[...] = weight.data
            return snn(x)

        head.weight.zero_grad()
        fn(head.weight).sum().backward()
        analytic = head.weight.grad.copy()
        numeric = numeric_gradient(fn, [head.weight], 0, eps=1e-6)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)
        assert np.abs(analytic).sum() > 0  # spikes actually flowed
