"""Event-stream dataset and direct spiking training tests."""

import numpy as np
import pytest

from repro.data import DataLoader, SyntheticEventConfig, synth_dvs
from repro.nn import Conv2d, Flatten, Linear
from repro.snn import (
    IFNeuron,
    PassthroughEncoder,
    SpikingNetwork,
    SpikingSequential,
    StepWrapper,
)
from repro.train import SNNTrainConfig, SNNTrainer, evaluate_snn


class TestSyntheticEvents:
    def test_shapes(self):
        ds = synth_dvs(num_classes=4, timesteps=6, image_size=12,
                       train_size=40, test_size=16, seed=0)
        assert ds.train_events.shape == (40, 6, 2, 12, 12)
        assert ds.frame_shape == (2, 12, 12)

    def test_binary_events(self):
        ds = synth_dvs(train_size=20, test_size=8, seed=0)
        assert set(np.unique(ds.train_events)) <= {0.0, 1.0}

    def test_deterministic(self):
        a = synth_dvs(train_size=20, test_size=8, seed=3)
        b = synth_dvs(train_size=20, test_size=8, seed=3)
        np.testing.assert_allclose(a.train_events, b.train_events)

    def test_label_range(self):
        ds = synth_dvs(num_classes=6, train_size=60, test_size=12, seed=0)
        assert set(np.unique(ds.train_labels)) == set(range(6))

    def test_motion_generates_events(self):
        ds = synth_dvs(train_size=12, test_size=4, seed=0)
        # After the first frame, every sample must have events somewhere.
        per_sample = ds.train_events[:, 1:].sum(axis=(1, 2, 3, 4))
        assert np.all(per_sample > 0)

    def test_first_frame_mostly_silent(self):
        # Events need a previous frame; t=0 carries only noise.
        ds = synth_dvs(train_size=12, test_size=4, seed=0)
        t0_rate = ds.train_events[:, 0].mean()
        rest_rate = ds.train_events[:, 1:].mean()
        assert t0_rate < rest_rate

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticEventConfig(num_classes=1)
        with pytest.raises(ValueError):
            SyntheticEventConfig(num_classes=9)
        with pytest.raises(ValueError):
            SyntheticEventConfig(timesteps=1)
        with pytest.raises(ValueError):
            SyntheticEventConfig(noise_rate=1.0)


class TestPassthroughEncoder:
    def test_slices_time_axis(self, rng):
        data = rng.random((3, 5, 2, 4, 4))
        frames = PassthroughEncoder()(data, 5)
        assert len(frames) == 5
        np.testing.assert_allclose(frames[2], data[:, 2])

    def test_timestep_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            PassthroughEncoder()(rng.random((2, 4, 1, 3, 3)), 5)

    def test_low_rank_rejected(self):
        with pytest.raises(ValueError):
            PassthroughEncoder()(np.zeros(3), 3)


class TestDirectSpikingTraining:
    def test_learns_motion_classes(self):
        """A from-scratch spiking CNN must beat chance on event data."""
        timesteps = 6
        ds = synth_dvs(num_classes=4, timesteps=timesteps, image_size=8,
                       train_size=120, test_size=40, seed=0)
        rng = np.random.default_rng(2)
        body = SpikingSequential(
            StepWrapper(Conv2d(2, 6, 3, padding=1, bias=False, rng=rng)),
            IFNeuron(v_threshold=1.0),
            StepWrapper(Flatten()),
            StepWrapper(Linear(6 * 8 * 8, 4, bias=False, rng=rng)),
        )
        snn = SpikingNetwork(body, timesteps=timesteps, encoder=PassthroughEncoder())
        train_loader = DataLoader(
            ds.train_events, ds.train_labels, batch_size=30, shuffle=True, seed=1
        )
        test_loader = DataLoader(ds.test_events, ds.test_labels, batch_size=40)
        SNNTrainer(SNNTrainConfig(epochs=6, lr=2e-3)).fit(
            snn, train_loader, test_loader
        )
        accuracy = evaluate_snn(snn, test_loader)
        assert accuracy > 0.4  # chance = 0.25
