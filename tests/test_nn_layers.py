"""Unit tests for the NN layer library (module mechanics + layers)."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    CrossEntropyLoss,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MSELoss,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    ThresholdReLU,
    fold_batchnorm,
)
from repro.nn.activations import ActivationRecorder
from repro.tensor import Tensor


class TestModule:
    def test_parameter_registration(self):
        class M(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones(3))

        m = M()
        names = dict(m.named_parameters())
        assert "w" in names and names["w"].requires_grad

    def test_submodule_registration_and_prefixing(self, rng):
        seq = Sequential(Linear(2, 3, rng=rng), Linear(3, 1, rng=rng))
        names = [n for n, _ in seq.named_parameters()]
        assert "0.weight" in names and "1.bias" in names

    def test_train_eval_propagates(self, rng):
        seq = Sequential(Dropout(0.5), Linear(2, 2, rng=rng))
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())

    def test_state_dict_roundtrip(self, rng):
        a = Linear(4, 3, rng=rng)
        b = Linear(4, 3, rng=np.random.default_rng(99))
        assert not np.allclose(a.weight.data, b.weight.data)
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_state_dict_strict_mismatch(self, rng):
        a = Linear(4, 3, rng=rng)
        with pytest.raises(KeyError):
            a.load_state_dict({"nope": np.zeros(3)})

    def test_state_dict_shape_mismatch(self, rng):
        a = Linear(4, 3, rng=rng)
        state = a.state_dict()
        state["weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            a.load_state_dict(state)

    def test_zero_grad(self, rng):
        layer = Linear(2, 2, rng=rng)
        out = layer(Tensor(rng.normal(size=(3, 2)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None

    def test_num_parameters(self, rng):
        layer = Linear(4, 3, bias=True, rng=rng)
        assert layer.num_parameters() == 4 * 3 + 3

    def test_repr_contains_children(self, rng):
        seq = Sequential(Linear(2, 2, rng=rng))
        assert "Linear" in repr(seq)


class TestLinear:
    def test_forward_matches_manual(self, rng):
        layer = Linear(4, 3, rng=rng)
        x = rng.normal(size=(5, 4))
        out = layer(Tensor(x))
        np.testing.assert_allclose(
            out.data, x @ layer.weight.data.T + layer.bias.data
        )

    def test_no_bias(self, rng):
        layer = Linear(4, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert layer(Tensor(rng.normal(size=(2, 4)))).shape == (2, 3)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Linear(0, 3)


class TestConvLayer:
    def test_shapes(self, rng):
        layer = Conv2d(3, 8, 3, stride=1, padding=1, rng=rng)
        assert layer(Tensor(rng.normal(size=(2, 3, 8, 8)))).shape == (2, 8, 8, 8)

    def test_stride_downsamples(self, rng):
        layer = Conv2d(3, 4, 3, stride=2, padding=1, rng=rng)
        assert layer(Tensor(rng.normal(size=(1, 3, 8, 8)))).shape == (1, 4, 4, 4)

    def test_bias_option(self, rng):
        assert Conv2d(1, 1, 3, bias=True, rng=rng).bias is not None
        assert Conv2d(1, 1, 3, rng=rng).bias is None

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            Conv2d(1, 1, 0)


class TestPoolingLayers:
    def test_max_pool_layer(self, rng):
        assert MaxPool2d(2)(Tensor(rng.normal(size=(1, 2, 4, 4)))).shape == (1, 2, 2, 2)

    def test_avg_pool_layer(self, rng):
        assert AvgPool2d(2)(Tensor(rng.normal(size=(1, 2, 4, 4)))).shape == (1, 2, 2, 2)

    def test_global_avg_pool_layer(self, rng):
        assert GlobalAvgPool2d()(Tensor(rng.normal(size=(2, 5, 4, 4)))).shape == (2, 5)


class TestActivations:
    def test_relu_layer(self, rng):
        out = ReLU()(Tensor(np.array([-1.0, 2.0])))
        np.testing.assert_allclose(out.data, [0.0, 2.0])

    def test_threshold_relu_clip(self):
        layer = ThresholdReLU(init_threshold=1.5)
        out = layer(Tensor(np.array([-1.0, 1.0, 9.0])))
        np.testing.assert_allclose(out.data, [0.0, 1.0, 1.5])

    def test_threshold_getter_setter(self):
        layer = ThresholdReLU(init_threshold=2.0)
        assert layer.threshold == 2.0
        layer.set_threshold(3.0)
        assert layer.threshold == 3.0
        with pytest.raises(ValueError):
            layer.set_threshold(-1.0)

    def test_threshold_trainability(self):
        assert ThresholdReLU(trainable=False).mu.requires_grad is False
        assert ThresholdReLU().mu.requires_grad is True

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ThresholdReLU(init_threshold=0.0)

    def test_recorder_collects_preactivations(self, rng):
        layer = ThresholdReLU(init_threshold=1.0)
        recorder = ActivationRecorder()
        layer.recorder = recorder
        x = rng.normal(size=(2, 3))
        layer(Tensor(x))
        np.testing.assert_allclose(np.sort(recorder.values()), np.sort(x.reshape(-1)))

    def test_recorder_max_samples(self, rng):
        recorder = ActivationRecorder(max_samples=10)
        recorder.record(rng.normal(size=100))
        recorder.record(rng.normal(size=100))
        assert len(recorder) <= 10

    def test_recorder_clear(self, rng):
        recorder = ActivationRecorder()
        recorder.record(rng.normal(size=5))
        recorder.clear()
        assert recorder.values().size == 0


class TestDropoutLayer:
    def test_eval_identity(self, rng):
        layer = Dropout(0.9, rng=rng)
        layer.eval()
        x = Tensor(rng.normal(size=(4, 4)))
        assert layer(x) is x

    def test_train_zeroes_units(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((100, 100))))
        assert (out.data == 0).mean() > 0.4

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestSequential:
    def test_indexing_and_iteration(self, rng):
        seq = Sequential(Linear(2, 3, rng=rng), ReLU(), Linear(3, 1, rng=rng))
        assert len(seq) == 3
        assert isinstance(seq[1], ReLU)
        assert isinstance(seq[0:2], Sequential)
        assert len(list(seq)) == 3

    def test_append(self, rng):
        seq = Sequential()
        seq.append(Linear(2, 2, rng=rng))
        assert len(seq) == 1

    def test_forward_chains(self, rng):
        seq = Sequential(Flatten(), Linear(4, 2, rng=rng))
        assert seq(Tensor(rng.normal(size=(3, 2, 2)))).shape == (3, 2)

    def test_identity(self, rng):
        x = Tensor(rng.normal(size=(2, 2)))
        assert Identity()(x) is x


class TestBatchNorm:
    def test_normalises_in_train_mode(self, rng):
        bn = BatchNorm2d(3)
        x = Tensor(rng.normal(loc=5.0, scale=3.0, size=(8, 3, 4, 4)))
        out = bn(x)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        np.testing.assert_allclose(out.data.std(axis=(0, 2, 3)), 1.0, atol=1e-2)

    def test_eval_uses_running_stats(self, rng):
        bn = BatchNorm2d(2)
        for _ in range(50):
            bn(Tensor(rng.normal(loc=2.0, size=(16, 2, 3, 3))))
        bn.eval()
        out = bn(Tensor(np.full((4, 2, 3, 3), 2.0)))
        assert np.abs(out.data).max() < 0.5

    def test_rejects_non_nchw(self, rng):
        with pytest.raises(ValueError):
            BatchNorm2d(2)(Tensor(rng.normal(size=(4, 2))))

    def test_fold_batchnorm_equivalence(self, rng):
        conv = Conv2d(2, 3, 3, padding=1, bias=False, rng=rng)
        bn = BatchNorm2d(3)
        x = Tensor(rng.normal(size=(4, 2, 6, 6)))
        for _ in range(20):
            bn(conv(Tensor(rng.normal(size=(8, 2, 6, 6)))))
        bn.eval()
        expected = bn(conv(x))
        folded = fold_batchnorm(conv, bn)
        np.testing.assert_allclose(folded(x).data, expected.data, atol=1e-8)

    def test_fold_channel_mismatch(self, rng):
        with pytest.raises(ValueError):
            fold_batchnorm(Conv2d(2, 3, 3, rng=rng), BatchNorm2d(4))


class TestLosses:
    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.normal(size=(4, 5))
        labels = np.array([0, 2, 4, 1])
        loss = CrossEntropyLoss()(Tensor(logits), labels)
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        expected = -log_probs[np.arange(4), labels].mean()
        np.testing.assert_allclose(loss.item(), expected, atol=1e-12)

    def test_cross_entropy_gradient_direction(self, rng):
        logits = Tensor(np.zeros((1, 3)), requires_grad=True)
        CrossEntropyLoss()(logits, np.array([1])).backward()
        # gradient should push up the true class (negative grad there)
        assert logits.grad[0, 1] < 0
        assert logits.grad[0, 0] > 0

    def test_label_smoothing_raises_loss_floor(self, rng):
        logits = Tensor(np.array([[100.0, 0.0, 0.0]]))
        labels = np.array([0])
        plain = CrossEntropyLoss()(logits, labels).item()
        smoothed = CrossEntropyLoss(label_smoothing=0.2)(logits, labels).item()
        assert smoothed > plain

    def test_cross_entropy_rejects_bad_shapes(self, rng):
        with pytest.raises(ValueError):
            CrossEntropyLoss()(Tensor(rng.normal(size=(3,))), np.array([0]))

    def test_mse(self):
        loss = MSELoss()(Tensor([1.0, 2.0]), Tensor([0.0, 0.0]))
        np.testing.assert_allclose(loss.item(), 2.5)
