"""Real-CIFAR loader tests (against synthetic files in the real format)."""

import os
import pickle

import numpy as np
import pytest

from repro.data import load_cifar10, load_cifar100


def _write_cifar10_tree(root, per_batch=6, seed=0):
    rng = np.random.default_rng(seed)
    directory = os.path.join(root, "cifar-10-batches-py")
    os.makedirs(directory)
    for name in [f"data_batch_{i}" for i in range(1, 6)] + ["test_batch"]:
        payload = {
            b"data": rng.integers(0, 256, size=(per_batch, 3072), dtype=np.uint8),
            b"labels": rng.integers(0, 10, size=per_batch).tolist(),
        }
        with open(os.path.join(directory, name), "wb") as handle:
            pickle.dump(payload, handle)
    return root


def _write_cifar100_tree(root, count=8, seed=0):
    rng = np.random.default_rng(seed)
    directory = os.path.join(root, "cifar-100-python")
    os.makedirs(directory)
    for name in ("train", "test"):
        payload = {
            b"data": rng.integers(0, 256, size=(count, 3072), dtype=np.uint8),
            b"fine_labels": rng.integers(0, 100, size=count).tolist(),
            b"coarse_labels": rng.integers(0, 20, size=count).tolist(),
        }
        with open(os.path.join(directory, name), "wb") as handle:
            pickle.dump(payload, handle)
    return root


class TestLoadCifar10:
    def test_shapes_and_range(self, tmp_path):
        root = _write_cifar10_tree(str(tmp_path))
        dataset = load_cifar10(root)
        assert dataset.train_images.shape == (30, 3, 32, 32)
        assert dataset.test_images.shape == (6, 3, 32, 32)
        assert dataset.train_images.min() >= 0.0
        assert dataset.train_images.max() <= 1.0
        assert dataset.num_classes == 10
        assert dataset.input_shape == (3, 32, 32)

    def test_accepts_direct_batch_dir(self, tmp_path):
        root = _write_cifar10_tree(str(tmp_path))
        dataset = load_cifar10(os.path.join(root, "cifar-10-batches-py"))
        assert dataset.train_images.shape[0] == 30

    def test_channel_stats(self, tmp_path):
        root = _write_cifar10_tree(str(tmp_path))
        mean, std = load_cifar10(root).channel_stats()
        assert mean.shape == (3,) and np.all(std > 0)

    def test_missing_batch_raises(self, tmp_path):
        root = _write_cifar10_tree(str(tmp_path))
        os.remove(
            os.path.join(root, "cifar-10-batches-py", "data_batch_3")
        )
        with pytest.raises(FileNotFoundError):
            load_cifar10(root)

    def test_works_with_dataloader(self, tmp_path):
        from repro.data import DataLoader

        root = _write_cifar10_tree(str(tmp_path))
        dataset = load_cifar10(root)
        loader = DataLoader(dataset.train_images, dataset.train_labels, 10)
        batch, labels = next(iter(loader))
        assert batch.shape == (10, 3, 32, 32)


class TestLoadCifar100:
    def test_fine_labels(self, tmp_path):
        root = _write_cifar100_tree(str(tmp_path))
        dataset = load_cifar100(root)
        assert dataset.num_classes == 100
        assert dataset.train_images.shape == (8, 3, 32, 32)

    def test_coarse_labels(self, tmp_path):
        root = _write_cifar100_tree(str(tmp_path))
        dataset = load_cifar100(root, label_mode="coarse")
        assert dataset.num_classes == 20
        assert dataset.train_labels.max() < 20

    def test_invalid_label_mode(self, tmp_path):
        root = _write_cifar100_tree(str(tmp_path))
        with pytest.raises(ValueError):
            load_cifar100(root, label_mode="medium")
