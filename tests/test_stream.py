"""Streaming stack: generator determinism, warm membrane carry, sliding
SLO aggregation, breach alerting, diff gating, dangling-baseline repair,
report/dashboard degradation and the canary verdict."""

import contextlib
import io
import json
import math
import os

import numpy as np
import pytest

from repro import obs
from repro.data.synthetic import SyntheticImageConfig, SyntheticImageDataset
from repro.nn import Flatten, Linear
from repro.obs import health as obs_health
from repro.obs import trace
from repro.obs.__main__ import main as obs_main
from repro.obs.dashboard import main as dashboard_main
from repro.obs.diff import diff_run_dirs, metric_direction
from repro.obs.metrics import DEFAULT_WINDOW_SIZE, MetricsRegistry, SlidingWindow
from repro.obs.registry import BaselineError, RunRegistry
from repro.obs.report import load_run, render_report
from repro.obs.slo import SLO_FILENAME, SLO_SCHEMA, SLOConfig, SloTracker
from repro.snn import (
    SpikingNetwork,
    SpikingNeuron,
    SpikingSequential,
    StepWrapper,
)
from repro.snn import network as snn_network
from repro.stream import StreamConfig, SyntheticStream, run_stream
from repro.tensor import Tensor, no_grad
from repro.tensor import tensor as tensor_mod


def _reset_obs():
    obs.shutdown()
    obs.reset_registry()
    obs_health.uninstall()
    trace.reset()
    obs.state().events.clear()
    obs.state().spans.clear()
    snn_network.set_layer_probe(None)
    for observer in list(tensor_mod._OP_OBSERVERS):
        tensor_mod.remove_op_observer(observer)


@pytest.fixture(autouse=True)
def clean_obs():
    _reset_obs()
    yield
    _reset_obs()


@pytest.fixture
def registry_root(tmp_path, monkeypatch):
    root = tmp_path / "registry"
    monkeypatch.setenv("REPRO_RUNS_ROOT", str(root))
    return str(root)


def tiny_dataset(num_classes=4):
    return SyntheticImageDataset(SyntheticImageConfig(
        num_classes=num_classes, image_size=6, channels=1,
        train_size=8, test_size=4, components=3,
    ))


def tiny_snn(input_features=36, num_classes=4, timesteps=2, seed=0):
    rng = np.random.default_rng(seed)
    body = SpikingSequential(
        StepWrapper(Flatten()),
        StepWrapper(Linear(input_features, 10, rng=rng)),
        SpikingNeuron(v_threshold=0.5, trainable=False),
        StepWrapper(Linear(10, num_classes, rng=rng)),
        SpikingNeuron(v_threshold=0.5, trainable=False),
    )
    return SpikingNetwork(body, timesteps=timesteps)


# ----------------------------------------------------------------------
# Stream generator
# ----------------------------------------------------------------------
class TestSyntheticStream:
    def test_deterministic_per_seed_and_random_access(self):
        dataset = tiny_dataset()
        config = StreamConfig(window_size=4, num_windows=6, seed=11,
                              burst_every=3, corrupt_every=5)
        a = SyntheticStream(dataset, config)
        b = SyntheticStream(dataset, config)
        for wa, wb in zip(a, b):
            np.testing.assert_array_equal(wa.images, wb.images)
            np.testing.assert_array_equal(wa.labels, wb.labels)
        # Random access reproduces iteration exactly.
        w3 = a.window(3)
        it3 = list(a)[3]
        np.testing.assert_array_equal(w3.images, it3.images)
        # A different stream seed yields different traffic.
        other = SyntheticStream(dataset, StreamConfig(
            window_size=4, num_windows=6, seed=12,
            burst_every=3, corrupt_every=5,
        ))
        assert not np.array_equal(other.window(1).images, a.window(1).images)

    def test_burst_and_corruption_schedule(self):
        dataset = tiny_dataset()
        stream = SyntheticStream(dataset, StreamConfig(
            window_size=4, num_windows=7, burst_every=3, burst_factor=3,
            corrupt_every=2, arrival_interval_s=0.5,
        ))
        windows = list(stream)
        assert [w.burst for w in windows] == [
            False, False, False, True, False, False, True
        ]
        assert [w.corrupted for w in windows] == [
            False, False, True, False, True, False, True
        ]
        assert windows[3].frames == 12 and windows[3].chunks == 3
        assert windows[1].frames == 4
        assert windows[4].fault_spec is not None
        assert windows[1].fault_spec is None
        assert windows[2].arrival_s == pytest.approx(1.0)

    def test_mixture_drifts_and_normalises(self):
        dataset = tiny_dataset()
        stream = SyntheticStream(dataset, StreamConfig(
            window_size=4, num_windows=4, drift_period=8, drift_strength=0.9,
        ))
        m0, m4 = stream.mixture(0), stream.mixture(4)
        assert m0.sum() == pytest.approx(1.0)
        assert m4.sum() == pytest.approx(1.0)
        assert not np.allclose(m0, m4)

    def test_config_roundtrip_and_validation(self):
        config = StreamConfig(window_size=2, num_windows=3, burst_every=2)
        assert StreamConfig.from_dict(config.as_dict()) == config
        with pytest.raises(ValueError):
            StreamConfig(window_size=0)
        with pytest.raises(ValueError):
            StreamConfig(burst_every=2, burst_factor=1)


# ----------------------------------------------------------------------
# Warm membrane carry
# ----------------------------------------------------------------------
class TestStreamingState:
    def test_fused_scan_warm_starts_from_carried_membrane(self):
        rng = np.random.default_rng(0)
        # T=2 folded batch of N=4 rows; currents below threshold so the
        # carried residual decides whether the second window fires.
        current = Tensor(rng.uniform(0.4, 0.9, size=(8, 3)))
        neuron = SpikingNeuron(v_threshold=1.0, trainable=False)
        with no_grad():
            cold = neuron.forward_fused(current, 2)
            assert neuron.membrane is not None
            warm = neuron.forward_fused(current, 2)  # warm-started
            neuron.reset_state()
            cold_again = neuron.forward_fused(current, 2)
        assert not np.array_equal(cold.data, warm.data)
        np.testing.assert_array_equal(cold.data, cold_again.data)
        # Carried membrane with the wrong batch geometry is an error.
        neuron.membrane = Tensor(np.zeros((5, 3)))
        with pytest.raises(ValueError):
            with no_grad():
                neuron.forward_fused(current, 2)

    def test_streaming_context_carries_then_restores(self):
        snn = tiny_snn()
        snn.eval()
        rng = np.random.default_rng(1)
        x1 = rng.random((3, 1, 6, 6))
        x2 = rng.random((3, 1, 6, 6))
        with no_grad():
            cold = snn(x2).data
            assert snn.carry_state is False
            with snn.streaming():
                assert snn.carry_state is True
                snn(x1)
                carried = [n.membrane is not None
                           for n in snn.spiking_neurons()]
                assert all(carried)
                warm = snn(x2).data
            assert snn.carry_state is False
            assert all(n.membrane is None for n in snn.spiking_neurons())
            assert np.array_equal(snn(x2).data, cold)
        assert not np.array_equal(warm, cold)

    def test_fused_and_stepwise_streaming_agree(self):
        rng = np.random.default_rng(2)
        windows = [rng.random((3, 1, 6, 6)) for _ in range(3)]
        outputs = {}
        for mode in ("fused", "stepwise"):
            snn = tiny_snn()
            snn.mode = mode
            snn.eval()
            with no_grad(), snn.streaming():
                outputs[mode] = [snn(x).data for x in windows]
        for got_fused, got_stepwise in zip(outputs["fused"],
                                           outputs["stepwise"]):
            np.testing.assert_allclose(got_fused, got_stepwise, atol=1e-10)


# ----------------------------------------------------------------------
# Sliding-window metrics
# ----------------------------------------------------------------------
class TestSlidingWindow:
    def test_eviction_and_percentiles(self):
        window = SlidingWindow(size=4)
        with pytest.raises(ValueError):
            window.percentile(50.0)
        for value in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
            window.observe(value)
        assert window.count == 4
        assert window.total_count == 6
        assert list(window.samples) == [3.0, 4.0, 5.0, 6.0]
        assert window.mean == pytest.approx(4.5)
        assert window.percentile(0.0) == 3.0
        assert window.percentile(100.0) == 6.0
        assert window.percentile(50.0) == pytest.approx(4.5)

    def test_registry_windows_snapshot(self):
        registry = MetricsRegistry()
        registry.observe_window("slo.latency", 0.1, size=8)
        registry.observe_window("slo.latency", 0.3, size=8)
        snap = registry.snapshot()
        payload = snap["windows"]["slo.latency"]
        assert payload["count"] == 2
        assert payload["size"] == 8
        assert payload["mean"] == pytest.approx(0.2)
        assert payload["p50"] == pytest.approx(0.2)
        # Same key reuses the window regardless of requested size.
        assert registry.window("slo.latency", size=99).size == 8
        registry.reset()
        assert registry.snapshot()["windows"] == {}
        assert DEFAULT_WINDOW_SIZE > 0


# ----------------------------------------------------------------------
# SLO tracker
# ----------------------------------------------------------------------
class _CountingMonitor:
    def __init__(self):
        self.alerts = []

    def alert(self, rule, message, severity="warning", **fields):
        self.alerts.append((rule, severity, fields))


class TestSloTracker:
    def _tracker(self, tmp_path=None, **overrides):
        defaults = dict(window=4, latency_target_s=0.1, staleness_target_s=0.2,
                        accuracy_floor=0.5, calibration_windows=1)
        defaults.update(overrides)
        monitor = _CountingMonitor()
        tracker = SloTracker(
            config=SLOConfig(**defaults),
            registry=MetricsRegistry(),
            run_dir=str(tmp_path) if tmp_path is not None else None,
            monitor=monitor,
        )
        return tracker, monitor

    def _feed(self, tracker, latencies, accuracy=1.0):
        for index, latency in enumerate(latencies):
            tracker.observe_window(
                index=index, latency_s=latency, staleness_s=latency,
                accuracy=accuracy, frames=4, spikes_per_frame=1.0,
            )

    def test_breach_alert_rearms_once_per_stretch(self, tmp_path):
        tracker, monitor = self._tracker(tmp_path)
        self._feed(tracker, [0.01, 0.5, 0.6, 0.01, 0.5])
        # Windows 1, 2 and 4 breach latency; only stretch starts alert.
        assert tracker.breaches["latency"] == 3
        latency_alerts = [a for a in monitor.alerts
                          if a[2]["objective"] == "latency"]
        assert len(latency_alerts) == 2
        records = [r for r in tracker.records if r["kind"] == "breach"]
        assert len([r for r in records if r["objective"] == "latency"]) == 3
        assert all(r["schema"] == SLO_SCHEMA for r in tracker.records)
        path = tmp_path / SLO_FILENAME
        lines = [json.loads(line) for line in
                 path.read_text().strip().splitlines()]
        assert len(lines) == len(tracker.records)

    def test_accuracy_gates_on_sliding_window(self, tmp_path):
        tracker, monitor = self._tracker(tmp_path, window=2)
        for index, accuracy in enumerate([1.0, 1.0, 0.2, 0.2]):
            tracker.observe_window(index=index, latency_s=0.01,
                                   staleness_s=0.01, accuracy=accuracy,
                                   frames=4)
        # Sliding mean over 2: 1.0, 1.0, 0.6, 0.2 -> one breach window.
        assert tracker.breaches.get("accuracy") == 1
        accuracy_alerts = [a for a in monitor.alerts
                           if a[2]["objective"] == "accuracy"]
        assert accuracy_alerts and accuracy_alerts[0][1] == "critical"

    def test_auto_calibration_freezes_targets(self):
        tracker, monitor = self._tracker(
            latency_target_s=None, staleness_target_s=None,
            calibration_windows=3, target_factor=3.0,
        )
        self._feed(tracker, [0.01, 0.02, 0.03])
        assert tracker.targets()["latency_s"] == pytest.approx(0.06)
        # 10x the calibrated median breaches; calibration windows never do.
        self._feed_one(tracker, 3, 0.2)
        assert tracker.breaches["latency"] == 1
        assert not any(r["breaches"] for r in tracker.records[:3])

    def _feed_one(self, tracker, index, latency):
        tracker.observe_window(index=index, latency_s=latency,
                               staleness_s=latency, accuracy=1.0, frames=4)

    def test_summary_and_close(self, tmp_path):
        tracker, _ = self._tracker(tmp_path)
        self._feed(tracker, [0.01, 0.02])
        summary = tracker.summary()
        assert summary["schema"] == SLO_SCHEMA
        assert summary["windows"] == 2 and summary["frames"] == 8
        assert summary["latency_s"]["count"] == 2
        assert summary["breaches_total"] == 0
        path = tracker.close()
        with open(path, encoding="utf-8") as fp:
            assert json.load(fp)["windows"] == 2

    def test_infinite_targets_never_breach(self):
        tracker, monitor = self._tracker(
            latency_target_s=math.inf, staleness_target_s=math.inf,
        )
        self._feed(tracker, [10.0, 20.0])
        assert tracker.breaches == {}
        assert not monitor.alerts


# ----------------------------------------------------------------------
# run_stream end-to-end over the tiny substrate
# ----------------------------------------------------------------------
class TestRunStream:
    def test_stream_run_writes_artifacts_and_is_deterministic(self, tmp_path,
                                                              registry_root):
        dataset = tiny_dataset()
        config = StreamConfig(window_size=4, num_windows=6, seed=5,
                              corrupt_every=3)
        slo = SLOConfig(window=4, latency_target_s=math.inf,
                        staleness_target_s=math.inf, accuracy_floor=0.0,
                        calibration_windows=1)
        results = []
        for name in ("a", "b"):
            run_dir = str(tmp_path / name)
            snn = tiny_snn()
            with obs.observe(run_dir, kind="stream"):
                results.append(run_stream(
                    snn, SyntheticStream(dataset, config), slo_config=slo,
                ))
        assert results[0].windows == 6
        assert results[0].accuracy == results[1].accuracy
        assert results[0].breaches == results[1].breaches
        for name in ("a", "b"):
            run_dir = tmp_path / name
            assert (run_dir / "slo.jsonl").exists()
            assert (run_dir / "slo_summary.json").exists()
            assert (run_dir / "faults.jsonl").exists()  # corrupted windows
        diff = diff_run_dirs(str(tmp_path / "a"), str(tmp_path / "b"))
        assert diff.ok, diff.render()

    def test_training_and_recording_flags_restored(self):
        dataset = tiny_dataset()
        snn = tiny_snn()
        snn.train()
        for neuron in snn.spiking_neurons():
            neuron.recording = False
        run_stream(snn, SyntheticStream(dataset, StreamConfig(
            window_size=4, num_windows=2,
        )), slo_config=SLOConfig(accuracy_floor=0.0))
        assert snn.training is True
        assert all(not n.recording for n in snn.spiking_neurons())


# ----------------------------------------------------------------------
# Diff gating semantics for the SLO series
# ----------------------------------------------------------------------
class TestSloDiffClassification:
    def test_wall_clock_series_skip(self):
        for name in (
            "slo:latency_s.p95",
            "slo:staleness_s.mean",
            "window:slo.window_latency_s.mean",
            "window:slo.throughput_fps.mean",
            "window:slo.staleness_s.total_count",
        ):
            assert metric_direction(name) == "skip", name

    def test_accuracy_and_breach_series_gate(self):
        assert metric_direction("slo:accuracy.mean") == "up"
        assert metric_direction("slo:sliding_accuracy") == "up"
        assert metric_direction("window:slo.accuracy.mean") == "up"
        assert metric_direction("slo:breaches.accuracy") == "down"
        assert metric_direction("slo:breaches_total") == "down"
        assert metric_direction("counter:slo.breaches{objective=latency}") \
            == "down"
        assert metric_direction("counter:slo.windows") == "both"


# ----------------------------------------------------------------------
# Dangling-baseline repair
# ----------------------------------------------------------------------
class TestDanglingBaseline:
    def _registry_with_dangling_baseline(self, tmp_path):
        registry = RunRegistry(root=str(tmp_path / "reg"))
        gone = tmp_path / "gone"
        gone.mkdir()
        registry.register_start("run-gone", str(gone), {})
        registry.register_end("run-gone", str(gone))
        registry.set_baseline("run-gone")
        gone.rmdir()
        return registry

    def test_require_baseline_messages(self, tmp_path):
        registry = RunRegistry(root=str(tmp_path / "reg"))
        with pytest.raises(BaselineError, match="tag-baseline"):
            registry.require_baseline()
        registry = self._registry_with_dangling_baseline(tmp_path)
        with pytest.raises(BaselineError, match="dangling"):
            registry.require_baseline()

    def test_gc_clears_dangling_tag(self, tmp_path):
        registry = self._registry_with_dangling_baseline(tmp_path)
        summary = registry.gc()
        assert summary["baseline_cleared"] is True
        assert registry.baseline_id() is None
        with pytest.raises(BaselineError, match="tag-baseline"):
            registry.require_baseline()

    def test_gc_cli_warns(self, tmp_path, monkeypatch, capsys):
        registry = self._registry_with_dangling_baseline(tmp_path)
        assert obs_main(["runs", "--root", registry.root, "gc"]) == 0
        captured = capsys.readouterr()
        assert "dangling baseline tag" in captured.err

    def test_diff_baseline_fails_actionably(self, tmp_path, monkeypatch,
                                            capsys):
        registry = self._registry_with_dangling_baseline(tmp_path)
        monkeypatch.setenv("REPRO_RUNS_ROOT", registry.root)
        live = tmp_path / "live"
        live.mkdir()
        with pytest.raises(SystemExit) as excinfo:
            obs_main(["diff", str(live), "--baseline"])
        assert excinfo.value.code == 2
        assert "runs gc" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Report + dashboard degradation over slo.jsonl
# ----------------------------------------------------------------------
def _write_slo_run(run_dir, torn=False):
    os.makedirs(run_dir, exist_ok=True)
    records = [
        {"kind": "window", "schema": SLO_SCHEMA, "window": i, "frames": 4,
         "latency_s": 0.01 * (i + 1), "staleness_s": 0.01, "accuracy": 0.75,
         "sliding_accuracy": 0.75, "throughput_fps": 400.0, "burst": False,
         "corrupted": False, "calibrating": False, "breaches": []}
        for i in range(3)
    ]
    records.append({"kind": "breach", "schema": SLO_SCHEMA, "window": 2,
                    "objective": "latency", "value": 0.5, "target": 0.1})
    with open(os.path.join(run_dir, "slo.jsonl"), "w", encoding="utf-8") as fp:
        for record in records:
            fp.write(json.dumps(record) + "\n")
        if torn:
            fp.write('{"kind": "window", "window"')  # torn tail, no newline
    summary = {
        "schema": SLO_SCHEMA, "windows": 3, "frames": 12,
        "targets": {"latency_s": 0.1, "staleness_s": None,
                    "accuracy_floor": 0.5},
        "latency_s": {"count": 3, "mean": 0.02, "min": 0.01, "max": 0.03,
                      "p50": 0.02, "p95": 0.03, "p99": 0.03},
        "staleness_s": None, "accuracy": None, "spikes_per_frame": None,
        "sliding_accuracy": 0.75,
        "breaches": {"latency": 1}, "breaches_total": 1,
    }
    with open(os.path.join(run_dir, "slo_summary.json"), "w",
              encoding="utf-8") as fp:
        json.dump(summary, fp)


class TestSloDegradation:
    def test_torn_tail_report_and_dashboard(self, tmp_path):
        run_dir = str(tmp_path / "torn")
        _write_slo_run(run_dir, torn=True)
        data = load_run(run_dir)
        assert len(data.slo) == 3
        assert len(data.slo_breaches) == 1
        assert any("slo.jsonl" in w for w in data.warnings)
        report = render_report(data)
        assert "## Streaming SLO" in report
        assert "Breach log" in report
        frames = []
        for _ in range(2):
            buf = io.StringIO()
            with contextlib.redirect_stdout(buf):
                assert dashboard_main([run_dir, "--once"]) == 0
            frames.append(buf.getvalue())
        assert frames[0] == frames[1]
        assert "latency:BREACH" in frames[0]
        assert "breach log" in frames[0]

    def test_absent_slo_degrades_silently(self, tmp_path):
        run_dir = str(tmp_path / "plain")
        os.makedirs(run_dir)
        data = load_run(run_dir)
        assert not any("slo" in w for w in data.warnings)
        assert "Streaming SLO" not in render_report(data)
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            assert dashboard_main([run_dir, "--once"]) == 0
        assert "SLO" not in buf.getvalue()

    def test_unreadable_summary_warns(self, tmp_path):
        run_dir = str(tmp_path / "bad")
        os.makedirs(run_dir)
        with open(os.path.join(run_dir, "slo_summary.json"), "w",
                  encoding="utf-8") as fp:
            fp.write("{not json")
        data = load_run(run_dir)
        assert any("slo_summary.json" in w for w in data.warnings)


# ----------------------------------------------------------------------
# Canary verdict (report section + deterministic gate on tiny bundles)
# ----------------------------------------------------------------------
class TestCanary:
    def test_canary_error_on_non_bundle(self, tmp_path, registry_root):
        from repro.stream.canary import CanaryError, run_canary

        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(CanaryError, match="stream_meta.json"):
            run_canary(str(empty), baseline_ref=str(empty))

    def test_canary_error_on_unknown_ref(self, tmp_path, registry_root):
        from repro.stream.canary import CanaryError, run_canary

        with pytest.raises(CanaryError, match="neither a directory"):
            run_canary("no-such-run")

    def test_canary_requires_baseline_tag(self, tmp_path, registry_root):
        from repro.stream.canary import CanaryError, run_canary

        bundle = tmp_path / "bundle"
        bundle.mkdir()
        (bundle / "stream_meta.json").write_text(json.dumps({
            "schema": "repro.stream.meta/v1", "experiment": {}, "stream": {},
        }))
        with pytest.raises(CanaryError, match="tag-baseline"):
            run_canary(str(bundle))

    def test_report_renders_canary_verdict(self, tmp_path):
        run_dir = str(tmp_path / "run")
        os.makedirs(run_dir)
        payload = {
            "schema": "repro.obs.canary/v1", "verdict": "rollback",
            "ok": False,
            "candidate": {"source": "c", "replay_dir": "c/canary/candidate"},
            "baseline": {"source": "b", "replay_dir": "c/canary/baseline"},
            "stream": {"seed": 7, "num_windows": 16, "window_size": 8},
            "regressions": [
                {"name": "slo:accuracy.mean", "baseline": 0.8,
                 "candidate": 0.2, "note": ""},
            ],
        }
        with open(os.path.join(run_dir, "canary.json"), "w",
                  encoding="utf-8") as fp:
            json.dump(payload, fp)
        report = render_report(load_run(run_dir))
        assert "Canary verdict" in report
        assert "ROLLBACK" in report
        assert "slo:accuracy.mean" in report
        # The verdict leads the report, right after any warnings.
        assert report.index("Canary verdict") < report.index("## Spans")

    def test_identical_replays_promote_degraded_rolls_back(self, tmp_path,
                                                           registry_root):
        """The verdict layer is a pure function of the two replay dirs:
        identical-seed replays promote, an accuracy collapse rolls back."""
        dataset = tiny_dataset()
        config = StreamConfig(window_size=4, num_windows=5, seed=9)
        slo = SLOConfig(window=4, latency_target_s=math.inf,
                        staleness_target_s=math.inf, accuracy_floor=0.0,
                        calibration_windows=1)
        replays = {}
        for name, seed in (("baseline", 0), ("same", 0), ("degraded", 123)):
            run_dir = str(tmp_path / name)
            snn = tiny_snn(seed=seed)
            if name == "degraded":
                # Kill the weight matrices (thresholds stay valid):
                # spike traffic collapses deterministically.
                for parameter in snn.parameters():
                    if parameter.data.ndim >= 2:
                        parameter.data[...] = 0.0
            with obs.observe(run_dir, kind="canary_replay", role=name):
                run_stream(snn, SyntheticStream(dataset, config),
                           slo_config=slo)
            replays[name] = run_dir
        clean = diff_run_dirs(replays["baseline"], replays["same"])
        assert clean.ok, clean.render()
        degraded = diff_run_dirs(replays["baseline"], replays["degraded"])
        assert not degraded.ok
        gated = {d.name for d in degraded.regressions}
        assert any("slo" in name or "spikes" in name for name in gated)
