"""Noise / adversarial robustness experiment drivers (tiny scale)."""

import pytest

from repro.experiments import (
    render_adversarial_robustness,
    render_noise_robustness,
    run_adversarial_robustness,
    run_noise_robustness,
)


class TestNoiseRobustnessDriver:
    @pytest.fixture(scope="class")
    def result(self, tiny_context):
        return run_noise_robustness(
            arch="vgg11", dataset="cifar10", scale_name="tiny",
            timesteps=2, noise_levels=(0.0, 0.3),
        )

    def test_curves_aligned(self, result):
        assert len(result["dnn_accuracy"]) == len(result["noise_levels"])
        assert len(result["snn_accuracy"]) == len(result["noise_levels"])

    def test_percent_ranges(self, result):
        for curve in (result["dnn_accuracy"], result["snn_accuracy"]):
            assert all(0.0 <= v <= 100.0 for v in curve)

    def test_noise_does_not_help(self, result):
        assert result["dnn_accuracy"][-1] <= result["dnn_accuracy"][0] + 5.0

    def test_render(self, result):
        text = render_noise_robustness(result)
        assert "noise std" in text


class TestAdversarialRobustnessDriver:
    @pytest.fixture(scope="class")
    def result(self, tiny_context):
        return run_adversarial_robustness(
            arch="vgg11", dataset="cifar10", scale_name="tiny",
            timesteps=2, epsilons=(0.0, 0.2), max_batches=1,
        )

    def test_structure(self, result):
        assert result["epsilons"] == [0.0, 0.2]
        assert len(result["dnn_accuracy"]) == 2

    def test_attack_hurts_dnn(self, result):
        assert result["dnn_accuracy"][1] <= result["dnn_accuracy"][0] + 1e-9

    def test_render(self, result):
        assert "FGSM" in render_adversarial_robustness(result)
