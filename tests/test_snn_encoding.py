"""Input encoder tests: direct, Poisson rate, time-to-first-spike."""

import numpy as np
import pytest

from repro.snn import DirectEncoder, PoissonEncoder, TTFSEncoder


class TestDirectEncoder:
    def test_repeats_input(self, rng):
        images = rng.random((2, 3, 4, 4))
        frames = DirectEncoder()(images, 3)
        assert len(frames) == 3
        for frame in frames:
            np.testing.assert_allclose(frame, images)

    def test_invalid_timesteps(self):
        with pytest.raises(ValueError):
            DirectEncoder()(np.zeros((1, 1, 2, 2)), 0)


class TestPoissonEncoder:
    def test_binary_frames(self, rng):
        enc = PoissonEncoder(rng=rng)
        frames = enc(rng.random((2, 1, 4, 4)), 5)
        for frame in frames:
            assert set(np.unique(frame)) <= {0.0, 1.0}

    def test_rate_matches_intensity(self):
        enc = PoissonEncoder(rng=np.random.default_rng(0))
        images = np.full((1, 1, 10, 10), 0.3)
        frames = enc(images, 500)
        rate = np.mean(frames)
        assert abs(rate - 0.3) < 0.02

    def test_zero_pixels_never_spike(self, rng):
        frames = PoissonEncoder(rng=rng)(np.zeros((1, 1, 4, 4)), 20)
        assert sum(f.sum() for f in frames) == 0

    def test_saturated_pixels_always_spike(self, rng):
        frames = PoissonEncoder(rng=rng)(np.ones((1, 1, 4, 4)), 10)
        assert all(np.all(f == 1.0) for f in frames)

    def test_gain_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PoissonEncoder(gain=0.0)


class TestTTFSEncoder:
    def test_single_spike_per_pixel(self, rng):
        images = rng.random((1, 1, 5, 5)) * 0.9 + 0.05
        frames = TTFSEncoder()(images, 8)
        total = np.sum(frames, axis=0)
        np.testing.assert_allclose(total, 1.0)

    def test_brighter_spikes_earlier(self):
        images = np.array([[[[0.9, 0.1]]]])
        frames = TTFSEncoder()(images, 10)
        bright_time = next(t for t, f in enumerate(frames) if f[0, 0, 0, 0])
        dim_time = next(t for t, f in enumerate(frames) if f[0, 0, 0, 1])
        assert bright_time < dim_time

    def test_zero_pixels_silent(self):
        frames = TTFSEncoder()(np.zeros((1, 1, 2, 2)), 5)
        assert sum(f.sum() for f in frames) == 0

    def test_full_intensity_spikes_first(self):
        frames = TTFSEncoder()(np.ones((1, 1, 1, 1)), 4)
        assert frames[0][0, 0, 0, 0] == 1.0
