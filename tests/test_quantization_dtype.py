"""Weight-quantization and default-dtype tests."""

import numpy as np
import pytest

from repro.conversion import ConversionConfig, convert_dnn_to_snn
from repro.data import DataLoader
from repro.hw import precision_sweep, quantize_array, quantize_weights
from repro.models import vgg11
from repro.tensor import (
    Tensor,
    default_dtype,
    get_default_dtype,
    set_default_dtype,
)
from repro.train import evaluate_snn


class TestQuantizeArray:
    def test_levels(self, rng):
        values = rng.normal(size=100)
        quantized = quantize_array(values, bits=3)
        # 3 bits -> levels in {-3..3} * delta: at most 7 distinct values.
        assert len(np.unique(quantized)) <= 7

    def test_preserves_max(self, rng):
        values = rng.normal(size=50)
        quantized = quantize_array(values, bits=8)
        assert np.abs(quantized).max() == pytest.approx(np.abs(values).max(), rel=1e-2)

    def test_more_bits_less_error(self, rng):
        values = rng.normal(size=1000)
        err = {
            bits: np.abs(quantize_array(values, bits) - values).mean()
            for bits in (2, 4, 8)
        }
        assert err[8] < err[4] < err[2]

    def test_zero_array(self):
        out = quantize_array(np.zeros(5), bits=4)
        np.testing.assert_allclose(out, 0.0)

    def test_rejects_one_bit(self, rng):
        with pytest.raises(ValueError):
            quantize_array(rng.normal(size=3), bits=1)


class TestQuantizeWeights:
    @pytest.fixture()
    def snn_setup(self):
        rng = np.random.default_rng(0)
        model = vgg11(
            num_classes=5, image_size=8, width_multiplier=0.125,
            rng=np.random.default_rng(1),
        )
        loader = DataLoader(rng.random((12, 3, 8, 8)), rng.integers(0, 5, 12), 12)
        conversion = convert_dnn_to_snn(model, loader, ConversionConfig(timesteps=2))
        return model, loader, conversion

    def test_reports_snr_per_layer(self, snn_setup):
        _model, _loader, conversion = snn_setup
        report = quantize_weights(conversion.snn, bits=8)
        assert len(report) == 10  # vgg11 at 8x8: 8 convs + 2 linears
        assert all(snr > 20.0 for snr in report.values())  # 8-bit is clean

    def test_low_bits_low_snr(self, snn_setup):
        _model, _loader, conversion = snn_setup
        report = quantize_weights(conversion.snn, bits=2)
        assert all(snr < 20.0 for snr in report.values())

    def test_precision_sweep_monotone_ish(self, snn_setup):
        model, loader, _conversion = snn_setup

        def make():
            return convert_dnn_to_snn(
                model, loader, ConversionConfig(timesteps=2)
            ).snn

        results = precision_sweep(
            make, lambda snn: evaluate_snn(snn, loader), bit_widths=(2, 8)
        )
        assert [bits for bits, _ in results] == [2, 8]
        for _bits, accuracy in results:
            assert 0.0 <= accuracy <= 1.0

    def test_rejects_weightless_model(self):
        from repro.nn import ReLU, Sequential

        with pytest.raises(ValueError):
            quantize_weights(Sequential(ReLU()), bits=4)


class TestDefaultDtype:
    def test_default_is_float64(self):
        assert np.dtype(get_default_dtype()) == np.dtype(np.float64)

    def test_context_manager(self):
        with default_dtype(np.float32):
            t = Tensor([1.0])
            assert t.dtype == np.float32
        assert Tensor([1.0]).dtype == np.float64

    def test_float32_forward_backward(self, rng):
        with default_dtype(np.float32):
            from repro.tensor import conv2d

            x = Tensor(rng.normal(size=(2, 2, 6, 6)), requires_grad=True)
            w = Tensor(rng.normal(size=(3, 2, 3, 3)), requires_grad=True)
            out = conv2d(x, w, stride=1, padding=1)
            assert out.dtype == np.float32
            out.sum().backward()
            assert x.grad.dtype == np.float32

    def test_rejects_int_dtype(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int32)

    def test_constructors_follow_default(self):
        with default_dtype(np.float32):
            assert Tensor.zeros(2, 2).dtype == np.float32
            assert Tensor.ones(2).dtype == np.float32


class TestFloat32FastPath:
    """A model built under float32 must stay float32 end to end —
    parameters, encoders, and every intermediate activation (regression:
    float64 used to leak in via init, layer biases, and encoders)."""

    def _build_snn(self, mode):
        rng = np.random.default_rng(0)
        model = vgg11(
            num_classes=5, image_size=8, width_multiplier=0.125,
            rng=np.random.default_rng(1),
        )
        loader = DataLoader(
            rng.random((8, 3, 8, 8)), rng.integers(0, 5, 8), 8
        )
        snn = convert_dnn_to_snn(model, loader, ConversionConfig(timesteps=2)).snn
        snn.mode = mode
        snn.eval()
        return model, snn

    def test_dnn_params_and_activations_float32(self):
        with default_dtype(np.float32):
            model, _snn = self._build_snn("stepwise")
            for name, param in model.named_parameters():
                assert param.data.dtype == np.float32, name
            rng = np.random.default_rng(2)
            x = Tensor(rng.random((3, 3, 8, 8)))
            for layer in list(model.features) + list(model.classifier):
                x = layer(x)
                assert x.data.dtype == np.float32, type(layer).__name__
            for bn_layer in [m for m in model.modules()
                             if type(m).__name__ == "BatchNorm2d"]:
                assert bn_layer.running_mean.dtype == np.float32
                assert bn_layer.running_var.dtype == np.float32

    @pytest.mark.parametrize("mode", ["stepwise", "fused"])
    def test_snn_params_and_activations_float32(self, mode):
        with default_dtype(np.float32):
            _model, snn = self._build_snn(mode)
            for name, param in snn.named_parameters():
                assert param.data.dtype == np.float32, name
            rng = np.random.default_rng(2)
            out = snn(rng.random((3, 3, 8, 8)))
            assert out.data.dtype == np.float32
            for neuron in snn.spiking_neurons():
                assert neuron.membrane.data.dtype == np.float32

    def test_encoders_follow_default_dtype(self):
        from repro.snn import DirectEncoder, PoissonEncoder, TTFSEncoder

        rng = np.random.default_rng(0)
        images = rng.random((2, 1, 4, 4))
        with default_dtype(np.float32):
            for encoder in (
                DirectEncoder(),
                PoissonEncoder(rng=np.random.default_rng(1)),
                TTFSEncoder(),
            ):
                for frame in encoder(images, 3):
                    assert frame.dtype == np.float32, type(encoder).__name__

    def test_float32_sgl_gradients_stay_float32(self):
        with default_dtype(np.float32):
            _model, snn = self._build_snn("fused")
            snn.train()
            rng = np.random.default_rng(3)
            out = snn(rng.random((2, 3, 8, 8)))
            out.sum().backward()
            for name, param in snn.named_parameters():
                if param.grad is not None:
                    assert param.grad.dtype == np.float32, name
