"""Tests of the Li-et-al.-style sequential SNN calibration."""

import numpy as np
import pytest

from repro.conversion import (
    ConversionConfig,
    calibrate_snn,
    convert_dnn_to_snn,
)
from repro.data import DataLoader
from repro.models import vgg11
from repro.train import evaluate_snn


@pytest.fixture(scope="module")
def setup(tiny_context):
    """Trained tiny VGG-11 plus a fresh conversion to calibrate."""
    return tiny_context


class TestCalibrateSNN:
    def test_returns_gain_per_layer(self, setup):
        conversion = convert_dnn_to_snn(
            setup.model, setup.calibration_loader(),
            ConversionConfig(timesteps=4, strategy="threshold_relu"),
        )
        gains = calibrate_snn(
            conversion.snn, setup.model, setup.calibration_loader(), max_batches=1
        )
        assert len(gains) == len(conversion.snn.spiking_neurons())
        assert all(np.isfinite(g) and g > 0 for g in gains)

    def test_gains_clamped(self, setup):
        conversion = convert_dnn_to_snn(
            setup.model, setup.calibration_loader(),
            ConversionConfig(timesteps=2, strategy="max_activation"),
        )
        gains = calibrate_snn(
            conversion.snn, setup.model, setup.calibration_loader(),
            max_batches=1, gain_range=(0.5, 2.0),
        )
        assert all(0.5 <= g <= 2.0 for g in gains)

    def test_betas_updated_in_place(self, setup):
        conversion = convert_dnn_to_snn(
            setup.model, setup.calibration_loader(),
            ConversionConfig(timesteps=4, strategy="threshold_relu"),
        )
        before = [n.beta for n in conversion.snn.spiking_neurons()]
        gains = calibrate_snn(
            conversion.snn, setup.model, setup.calibration_loader(), max_batches=1
        )
        after = [n.beta for n in conversion.snn.spiking_neurons()]
        for b, g, a in zip(before, gains, after):
            assert a == pytest.approx(b * g)

    def test_calibration_does_not_collapse_accuracy(self, setup):
        conversion = convert_dnn_to_snn(
            setup.model, setup.calibration_loader(),
            ConversionConfig(timesteps=4, strategy="threshold_relu"),
        )
        test_loader = setup.test_loader()
        before = evaluate_snn(conversion.snn, test_loader)
        calibrate_snn(
            conversion.snn, setup.model, setup.calibration_loader(), max_batches=2
        )
        after = evaluate_snn(conversion.snn, test_loader)
        assert after >= before - 0.1

    def test_calibration_helps_unscaled_conversion_on_average(self, setup):
        """Across T in {3, 4, 5}, calibrating the unscaled conversion
        should improve (or at worst preserve) mean accuracy — the [16]
        claim that layer-wise correction fixes compounding error."""
        test_loader = setup.test_loader()
        deltas = []
        for timesteps in (3, 4, 5):
            conversion = convert_dnn_to_snn(
                setup.model, setup.calibration_loader(),
                ConversionConfig(timesteps=timesteps, strategy="threshold_relu"),
            )
            before = evaluate_snn(conversion.snn, test_loader)
            calibrate_snn(
                conversion.snn, setup.model, setup.calibration_loader(),
                max_batches=2,
            )
            after = evaluate_snn(conversion.snn, test_loader)
            deltas.append(after - before)
        assert np.mean(deltas) >= -0.02

    def test_silent_layer_gets_unit_gain(self, setup):
        conversion = convert_dnn_to_snn(
            setup.model, setup.calibration_loader(),
            ConversionConfig(timesteps=2, strategy="threshold_relu"),
        )
        # Silence one layer by raising its threshold out of reach.
        neurons = conversion.snn.spiking_neurons()
        neurons[2].v_threshold.data[0] = 1e9
        gains = calibrate_snn(
            conversion.snn, setup.model, setup.calibration_loader(), max_batches=1
        )
        assert gains[2] == 1.0

    def test_no_batches_rejected(self, setup):
        conversion = convert_dnn_to_snn(
            setup.model, setup.calibration_loader(),
            ConversionConfig(timesteps=2),
        )
        with pytest.raises(ValueError):
            calibrate_snn(conversion.snn, setup.model, [], max_batches=1)


class TestSpikeRegularizer:
    def test_penalty_reduces_spiking(self, setup):
        """SGL with a spike penalty must cut spike counts vs without."""
        from repro.energy import measure_spiking_activity
        from repro.train import SNNTrainConfig, SNNTrainer

        results = {}
        for penalty in (0.0, 0.5):
            conversion = convert_dnn_to_snn(
                setup.model, setup.calibration_loader(),
                ConversionConfig(timesteps=2),
            )
            trainer = SNNTrainer(
                SNNTrainConfig(epochs=2, lr=1e-3, spike_penalty=penalty)
            )
            trainer.fit(conversion.snn, setup.train_loader(seed=5))
            report = measure_spiking_activity(
                conversion.snn, setup.test_loader(), max_batches=1
            )
            results[penalty] = report.average_spikes_per_neuron
        assert results[0.5] <= results[0.0] + 1e-9

    def test_regularizer_detached_after_fit(self, setup):
        from repro.train import SNNTrainConfig, SNNTrainer
        from repro.train.regularizers import SpikeRateRegularizer

        conversion = convert_dnn_to_snn(
            setup.model, setup.calibration_loader(),
            ConversionConfig(timesteps=2),
        )
        trainer = SNNTrainer(SNNTrainConfig(epochs=1, lr=1e-3, spike_penalty=0.1))
        trainer.fit(conversion.snn, setup.train_loader(seed=5))
        # A fresh regularizer must attach cleanly (previous one detached).
        reg = SpikeRateRegularizer(0.1).attach(conversion.snn)
        reg.detach()

    def test_noisy_training_runs(self, setup):
        from repro.train import SNNTrainConfig, SNNTrainer

        conversion = convert_dnn_to_snn(
            setup.model, setup.calibration_loader(),
            ConversionConfig(timesteps=2),
        )
        trainer = SNNTrainer(
            SNNTrainConfig(epochs=1, lr=1e-3, input_noise_std=0.1)
        )
        history = trainer.fit(conversion.snn, setup.train_loader(seed=6))
        assert len(history.epochs) == 1

    def test_config_validation(self):
        from repro.train import SNNTrainConfig

        with pytest.raises(ValueError):
            SNNTrainConfig(spike_penalty=-1.0)
        with pytest.raises(ValueError):
            SNNTrainConfig(input_noise_std=-0.1)

    def test_regularizer_weight_validation(self):
        from repro.train.regularizers import SpikeRateRegularizer

        with pytest.raises(ValueError):
            SpikeRateRegularizer(-1.0)

    def test_double_attach_rejected(self, setup):
        from repro.train.regularizers import SpikeRateRegularizer

        conversion = convert_dnn_to_snn(
            setup.model, setup.calibration_loader(),
            ConversionConfig(timesteps=2),
        )
        reg = SpikeRateRegularizer(0.1).attach(conversion.snn)
        with pytest.raises(RuntimeError):
            reg.attach(conversion.snn)
        reg.detach()
