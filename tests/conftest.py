"""Shared fixtures.

The expensive fixture is ``tiny_context`` — a trained VGG-11 on the
tiny synthetic CIFAR-10 — shared (session-scoped) by the integration
tests so the suite trains it exactly once.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.experiments import ExperimentConfig, get_context, get_scale


@pytest.fixture(scope="session", autouse=True)
def _isolated_runs_root(tmp_path_factory):
    """Point the run registry at a scratch directory for the whole
    session, so observed runs inside tests never touch ``runs/``."""
    root = tmp_path_factory.mktemp("runs_root")
    previous = os.environ.get("REPRO_RUNS_ROOT")
    os.environ["REPRO_RUNS_ROOT"] = str(root)
    yield str(root)
    if previous is None:
        os.environ.pop("REPRO_RUNS_ROOT", None)
    else:
        os.environ["REPRO_RUNS_ROOT"] = previous


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_config():
    return ExperimentConfig(
        arch="vgg11", dataset="cifar10", timesteps=2, scale=get_scale("tiny"), seed=0
    )


@pytest.fixture(scope="session")
def tiny_context(tiny_config):
    """A trained tiny VGG-11 context (trained once per test session)."""
    return get_context(tiny_config)
