"""Training-loop tests: DNN trainer, SNN (SGL) trainer, metrics, LSUV."""

import numpy as np
import pytest

from repro.conversion import ConversionConfig, convert_dnn_to_snn
from repro.data import DataLoader
from repro.models import vgg11
from repro.nn import Linear, Sequential, ThresholdReLU
from repro.snn import SpikingNetwork
from repro.train import (
    DNNTrainConfig,
    DNNTrainer,
    SNNTrainConfig,
    SNNTrainer,
    TrainingHistory,
    accuracy,
    clamp_neuron_parameters,
    clamp_thresholds,
    evaluate_dnn,
    evaluate_snn,
    top_k_accuracy,
)
from repro.train.lsuv import lsuv_init


def separable_blobs(n=60, seed=0):
    """Two linearly separable Gaussian blobs as (N, 1, 2, 2) 'images'."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=n)
    centers = np.where(labels[:, None] == 0, -1.5, 1.5)
    images = rng.normal(size=(n, 4)) * 0.3 + centers
    return images.reshape(n, 1, 2, 2), labels


def blob_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        # Flatten + small MLP with a threshold activation
        __import__("repro.nn", fromlist=["Flatten"]).Flatten(),
        Linear(4, 8, bias=False, rng=rng),
        ThresholdReLU(init_threshold=2.0),
        Linear(8, 2, bias=False, rng=rng),
    )


class TestMetrics:
    def test_accuracy(self):
        logits = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        labels = np.array([0, 1, 1])
        assert accuracy(logits, labels) == pytest.approx(2 / 3)

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy(np.zeros((2, 3)), np.zeros(3))

    def test_top_k(self):
        logits = np.array([[0.1, 0.5, 0.4], [0.9, 0.08, 0.02]])
        labels = np.array([2, 2])
        # row 0: top-2 = {1, 2} hit; row 1: top-2 = {0, 1} miss.
        assert top_k_accuracy(logits, labels, k=2) == pytest.approx(0.5)
        assert top_k_accuracy(logits, labels, k=3) == 1.0

    def test_evaluate_dnn_empty_rejected(self):
        with pytest.raises(ValueError):
            evaluate_dnn(blob_model(), [])


class TestDNNTrainer:
    def test_learns_separable_problem(self):
        images, labels = separable_blobs()
        loader = DataLoader(images, labels, batch_size=20, shuffle=True, seed=0)
        model = blob_model()
        trainer = DNNTrainer(DNNTrainConfig(epochs=15, lr=0.05))
        history = trainer.fit(model, loader, loader)
        assert history.final_test_accuracy > 0.9

    def test_history_structure(self):
        images, labels = separable_blobs(20)
        loader = DataLoader(images, labels, batch_size=20)
        history = DNNTrainer(DNNTrainConfig(epochs=3, lr=0.01)).fit(
            blob_model(), loader, loader
        )
        assert history.epochs == [1, 2, 3]
        assert len(history.train_loss) == 3
        assert len(history.epoch_seconds) == 3
        assert history.best_test_accuracy >= history.test_accuracy[0] or True

    def test_lr_schedule_decays(self):
        images, labels = separable_blobs(20)
        loader = DataLoader(images, labels, batch_size=20)
        history = DNNTrainer(DNNTrainConfig(epochs=10, lr=1.0)).fit(
            blob_model(), loader, loader
        )
        assert history.learning_rate[-1] < history.learning_rate[0]

    def test_no_test_loader(self):
        images, labels = separable_blobs(20)
        loader = DataLoader(images, labels, batch_size=20)
        history = DNNTrainer(DNNTrainConfig(epochs=1, lr=0.01)).fit(
            blob_model(), loader
        )
        assert np.isnan(history.test_accuracy[0])

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DNNTrainConfig(epochs=0)

    def test_clamp_thresholds(self):
        model = blob_model()
        layer = [m for m in model.modules() if isinstance(m, ThresholdReLU)][0]
        layer.mu.data[0] = -5.0
        clamp_thresholds(model)
        assert layer.threshold > 0


class TestSNNTrainer:
    @pytest.fixture(scope="class")
    def snn_setup(self):
        images, labels = separable_blobs(80)
        loader = DataLoader(images, labels, batch_size=20, shuffle=True, seed=0)
        model = blob_model()
        DNNTrainer(DNNTrainConfig(epochs=10, lr=0.05)).fit(model, loader)
        conversion = convert_dnn_to_snn(
            model, DataLoader(images, labels, batch_size=20),
            ConversionConfig(timesteps=2),
        )
        return conversion.snn, loader

    def test_fit_improves_or_holds_accuracy(self, snn_setup):
        snn, loader = snn_setup
        before = evaluate_snn(snn, loader)
        history = SNNTrainer(SNNTrainConfig(epochs=5, lr=1e-3)).fit(snn, loader, loader)
        assert history.final_test_accuracy >= before - 0.1

    def test_sgd_option(self, snn_setup):
        snn, loader = snn_setup
        trainer = SNNTrainer(SNNTrainConfig(epochs=1, lr=1e-3, optimizer="sgd"))
        history = trainer.fit(snn, loader, loader)
        assert len(history.epochs) == 1

    def test_threshold_freezing(self, snn_setup):
        snn, loader = snn_setup
        thresholds_before = [n.threshold for n in snn.spiking_neurons()]
        trainer = SNNTrainer(
            SNNTrainConfig(epochs=1, lr=1e-2, train_thresholds=False, train_leaks=False)
        )
        trainer.fit(snn, loader)
        thresholds_after = [n.threshold for n in snn.spiking_neurons()]
        np.testing.assert_allclose(thresholds_before, thresholds_after)

    def test_clamp_neuron_parameters(self, snn_setup):
        snn, _ = snn_setup
        neuron = snn.spiking_neurons()[0]
        neuron.v_threshold.data[0] = -1.0
        neuron.leak.data[0] = 2.0
        clamp_neuron_parameters(snn)
        assert neuron.threshold > 0
        assert neuron.leak_value <= 1.0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SNNTrainConfig(epochs=0)
        with pytest.raises(ValueError):
            SNNTrainConfig(optimizer="rmsprop")


class TestHistory:
    def test_empty_history_raises(self):
        history = TrainingHistory()
        with pytest.raises(ValueError):
            _ = history.best_test_accuracy
        with pytest.raises(ValueError):
            _ = history.mean_epoch_seconds

    def test_record_and_aggregates(self):
        history = TrainingHistory()
        history.record(1, 0.5, 0.6, 0.7, 0.01, 2.0)
        history.record(2, 0.4, 0.7, 0.8, 0.01, 4.0)
        assert history.best_test_accuracy == 0.8
        assert history.final_test_accuracy == 0.8
        assert history.mean_epoch_seconds == 3.0


class TestLSUV:
    def test_unit_output_std(self, rng):
        model = vgg11(
            num_classes=5, image_size=8, width_multiplier=0.125,
            rng=np.random.default_rng(0),
        )
        stds = lsuv_init(model, rng.normal(size=(16, 3, 8, 8)))
        # All but perhaps the last couple of layers should be near 1.
        assert np.all(np.abs(np.asarray(stds) - 1.0) < 0.2)

    def test_preserves_forward_patching(self, rng):
        model = vgg11(
            num_classes=5, image_size=8, width_multiplier=0.125,
            rng=np.random.default_rng(0),
        )
        lsuv_init(model, rng.normal(size=(8, 3, 8, 8)))
        from repro.tensor import Tensor

        out = model(Tensor(rng.normal(size=(2, 3, 8, 8))))
        assert out.shape == (2, 5)

    def test_rejects_no_weight_layers(self, rng):
        from repro.nn import Sequential, ReLU

        with pytest.raises(ValueError):
            lsuv_init(Sequential(ReLU()), rng.normal(size=(2, 3, 4, 4)))
