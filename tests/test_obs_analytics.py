"""Cross-run analytics: run registry, diff engine, health monitors,
terminal dashboard, machine-readable reports and energy gauges."""

import json
import os

import numpy as np
import pytest

from repro import obs
from repro.nn import Flatten, Linear, Sequential, ThresholdReLU
from repro.obs import health as obs_health
from repro.obs import trace
from repro.obs.__main__ import main as obs_main
from repro.obs.dashboard import (
    DashboardState,
    JsonlTailer,
    hbar,
    render_frame,
    sparkline,
)
from repro.obs.dashboard import main as dashboard_main
from repro.obs.diff import diff_run_dirs, metric_direction
from repro.obs.diff import main as diff_main
from repro.obs.health import HealthConfig, HealthMonitor
from repro.obs.instruments import record_energy_profile
from repro.obs.metrics import MetricsRegistry
from repro.obs.registry import RunRegistry, artifact_inventory, config_fingerprint
from repro.obs.report import load_run, render_report, run_to_json
from repro.obs.report import main as report_main
from repro.snn import SpikingNetwork, SpikingNeuron, SpikingSequential, StepWrapper
from repro.train.trainer import MIN_THRESHOLD


def _reset_obs():
    obs.shutdown()
    obs.reset_registry()
    obs_health.uninstall()
    trace.reset()
    obs.state().events.clear()
    obs.state().spans.clear()


@pytest.fixture(autouse=True)
def clean_obs():
    _reset_obs()
    yield
    _reset_obs()


@pytest.fixture
def registry_root(tmp_path, monkeypatch):
    """An isolated registry root (overrides the session-wide one)."""
    root = tmp_path / "registry"
    monkeypatch.setenv("REPRO_RUNS_ROOT", str(root))
    return str(root)


def tiny_snn(timesteps=2, rng=None):
    rng = rng if rng is not None else np.random.default_rng(0)
    body = SpikingSequential(
        StepWrapper(Linear(4, 6, rng=rng)),
        SpikingNeuron(v_threshold=0.5, trainable=False),
        StepWrapper(Linear(6, 3, rng=rng)),
        SpikingNeuron(v_threshold=0.5, trainable=False),
    )
    return SpikingNetwork(body, timesteps=timesteps)


def write_run_dir(
    base, name, metrics=None, faults=None, alerts=None, spans=None,
    drift=None, events=None,
):
    """Materialise a synthetic observed-run directory."""
    run_dir = base / name
    run_dir.mkdir(parents=True, exist_ok=True)
    if metrics is not None:
        (run_dir / "metrics.json").write_text(json.dumps(metrics))
    for filename, records in (
        ("faults.jsonl", faults),
        ("alerts.jsonl", alerts),
        ("trace.jsonl", spans),
        ("drift.jsonl", drift),
        ("events.jsonl", events),
    ):
        if records is not None:
            (run_dir / filename).write_text(
                "".join(json.dumps(r) + "\n" for r in records)
            )
    return str(run_dir)


BASE_METRICS = {
    "counters": {"dnn.examples_seen": 120.0},
    "gauges": {
        "pipeline.snn_accuracy": {"value": 0.8, "trajectory": []},
        "snn.train_loss{stream=snn}": {"value": 0.5, "trajectory": []},
    },
    "histograms": {
        "dnn.epoch_seconds": {"count": 2, "mean": 1.5},
        "snn.spike_rate{layer=0}": {"count": 4, "mean": 0.12},
    },
}


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_auto_registration_lifecycle(self, tmp_path, registry_root):
        run_dir = tmp_path / "run_a"
        with obs.observe(str(run_dir), arch="vgg11", timesteps=2, seed=0):
            run_id = obs.state().run_id
            mid = RunRegistry().get(run_id)
            assert mid is not None and mid["status"] == "running"
        entry = RunRegistry().get(run_id)
        assert entry["status"] == "completed"
        assert entry["tags"] == {"arch": "vgg11", "timesteps": 2, "seed": 0}
        assert entry["config_fingerprint"] == config_fingerprint(entry["tags"])
        assert "python" in entry["environment"]
        assert entry["run_dir"] == str(run_dir)
        # Inventory covers the artefacts configure/shutdown wrote.
        assert {"events.jsonl", "trace.jsonl", "metrics.json"} <= set(
            entry["artifacts"]
        )
        # events/metrics have content; trace.jsonl may be empty (no spans).
        assert entry["artifacts"]["events.jsonl"] > 0
        assert entry["artifacts"]["metrics.json"] > 0

    def test_error_status_on_exception(self, tmp_path, registry_root):
        with pytest.raises(RuntimeError):
            with obs.observe(str(tmp_path / "run_err")):
                run_id = obs.state().run_id
                raise RuntimeError("boom")
        assert RunRegistry().get(run_id)["status"] == "error"

    def test_memory_only_run_not_registered(self, registry_root):
        with obs.observe():
            pass
        assert RunRegistry().runs() == []

    def test_kill_switch(self, tmp_path, registry_root, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DISABLE", "1")
        with obs.observe(str(tmp_path / "run_off")):
            pass
        assert RunRegistry().runs() == []

    def test_prefix_lookup_and_baseline(self, tmp_path):
        registry = RunRegistry(root=str(tmp_path / "reg"))
        registry.register_start("run-1-alpha", str(tmp_path / "a"), {})
        registry.register_start("run-2-beta", str(tmp_path / "b"), {})
        assert registry.get("run-1-alpha")["run_id"] == "run-1-alpha"
        assert registry.get("run-2")["run_id"] == "run-2-beta"
        assert registry.get("run-") is None  # ambiguous prefix
        assert registry.baseline() is None
        registry.set_baseline("run-2")
        assert registry.baseline_id() == "run-2-beta"
        with pytest.raises(KeyError):
            registry.set_baseline("nope")

    def test_corrupt_index_lines_skipped(self, tmp_path):
        registry = RunRegistry(root=str(tmp_path / "reg"))
        registry.register_start("run-ok", str(tmp_path / "a"), {})
        with open(registry.index_path, "a", encoding="utf-8") as fp:
            fp.write('{"torn": \n')
        assert [r["run_id"] for r in registry.runs()] == ["run-ok"]

    def test_gc_drops_missing_and_keeps_baseline(self, tmp_path):
        registry = RunRegistry(root=str(tmp_path / "reg"))
        dirs = {}
        for name in ("one", "two", "three"):
            dirs[name] = tmp_path / f"dir_{name}"
            dirs[name].mkdir()
            registry.register_start(f"run-{name}", str(dirs[name]), {})
            registry.register_end(f"run-{name}", str(dirs[name]))
        registry.set_baseline("run-one")

        # Missing directory => entry dropped (the baseline's directory
        # is intact here, so its tag survives).
        dirs["two"].rmdir()
        summary = registry.gc()
        assert summary == {
            "kept": 2, "dropped": 1, "dirs_deleted": 0,
            "baseline_cleared": False,
        }
        assert registry.get("run-two") is None

        # keep=1 prunes newest-last but never the baseline.
        summary = registry.gc(keep=1)
        assert summary["kept"] == 1
        assert registry.baseline_id() == "run-one"
        assert registry.get("run-one") is not None

    def test_gc_delete_dirs(self, tmp_path):
        registry = RunRegistry(root=str(tmp_path / "reg"))
        victim = tmp_path / "victim"
        victim.mkdir()
        (victim / "events.jsonl").write_text("{}\n")
        registry.register_start("run-victim", str(victim), {})
        summary = registry.gc(keep=0, delete_dirs=True)
        assert summary["dirs_deleted"] == 1
        assert not victim.exists()

    def test_artifact_inventory(self, tmp_path):
        (tmp_path / "events.jsonl").write_text("x\n")
        (tmp_path / "unrelated.txt").write_text("y")
        inventory = artifact_inventory(str(tmp_path))
        assert inventory == {"events.jsonl": 2}


class TestRunsCli:
    def test_list_show_tag_gc(self, tmp_path, capsys):
        root = str(tmp_path / "reg")
        registry = RunRegistry(root=root)
        run_dir = tmp_path / "r1"
        run_dir.mkdir()
        registry.register_start("run-77-1", str(run_dir), {"arch": "vgg11"})
        registry.register_end("run-77-1", str(run_dir))

        assert obs_main(["runs", "--root", root, "list"]) == 0
        out = capsys.readouterr().out
        assert "run-77-1" in out and "completed" in out

        assert obs_main(["runs", "--root", root, "show", "run-77"]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["run_id"] == "run-77-1"

        assert obs_main(["runs", "--root", root, "tag-baseline", "run-77"]) == 0
        assert "run-77-1" in capsys.readouterr().out

        assert obs_main(["runs", "--root", root, "gc", "--keep", "5"]) == 0
        assert "kept 1" in capsys.readouterr().out

    def test_show_unknown_exits_nonzero(self, tmp_path, capsys):
        root = str(tmp_path / "reg")
        assert obs_main(["runs", "--root", root, "show", "ghost"]) == 2
        assert "not found" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Diff engine
# ----------------------------------------------------------------------
class TestDiff:
    def test_direction_inference(self):
        assert metric_direction("gauge:pipeline.snn_accuracy") == "up"
        assert metric_direction("gauge:energy.improvement") == "up"
        assert metric_direction("gauge:snn.train_loss") == "down"
        assert metric_direction("drift:measured_gap{layer=1}") == "down"
        assert metric_direction("alerts:spike_collapse") == "down"
        assert metric_direction("fault:stuck_at.events") == "down"
        assert metric_direction("histogram:dnn.epoch_seconds.mean") == "skip"
        assert metric_direction("span:snn_eval.total_s") == "skip"
        assert metric_direction("gauge:training_memory.total_bytes") == "skip"
        assert metric_direction("counter:snn.spikes{layer=0}") == "both"

    def test_identical_runs_diff_clean(self, tmp_path):
        a = write_run_dir(tmp_path, "a", metrics=BASE_METRICS)
        b = write_run_dir(tmp_path, "b", metrics=BASE_METRICS)
        diff = diff_run_dirs(a, b)
        assert diff.ok and not diff.changed

    def test_accuracy_drop_regresses(self, tmp_path):
        worse = json.loads(json.dumps(BASE_METRICS))
        worse["gauges"]["pipeline.snn_accuracy"]["value"] = 0.6
        a = write_run_dir(tmp_path, "a", metrics=BASE_METRICS)
        b = write_run_dir(tmp_path, "b", metrics=worse)
        diff = diff_run_dirs(a, b)
        assert not diff.ok
        names = [d.name for d in diff.regressions]
        assert names == ["gauge:pipeline.snn_accuracy"]
        # The reverse direction (accuracy went UP) is fine.
        assert diff_run_dirs(b, a).ok

    def test_loss_rise_regresses_and_tolerance_gates(self, tmp_path):
        worse = json.loads(json.dumps(BASE_METRICS))
        worse["gauges"]["snn.train_loss{stream=snn}"]["value"] = 0.6
        a = write_run_dir(tmp_path, "a", metrics=BASE_METRICS)
        b = write_run_dir(tmp_path, "b", metrics=worse)
        assert not diff_run_dirs(a, b).ok
        # A generous tolerance absorbs the delta.
        assert diff_run_dirs(a, b, rtol=0.5).ok

    def test_deterministic_substrate_any_change_regresses(self, tmp_path):
        changed = json.loads(json.dumps(BASE_METRICS))
        changed["counters"]["dnn.examples_seen"] = 140.0
        a = write_run_dir(tmp_path, "a", metrics=BASE_METRICS)
        b = write_run_dir(tmp_path, "b", metrics=changed)
        diff = diff_run_dirs(a, b)
        assert [d.name for d in diff.regressions] == ["counter:dnn.examples_seen"]

    def test_timing_never_gates(self, tmp_path):
        slower = json.loads(json.dumps(BASE_METRICS))
        slower["histograms"]["dnn.epoch_seconds"]["mean"] = 99.0
        a = write_run_dir(tmp_path, "a", metrics=BASE_METRICS)
        b = write_run_dir(
            tmp_path, "b", metrics=slower,
            spans=[{"kind": "span", "name": "snn_eval", "duration_s": 1.0,
                    "started_at": 0.0}],
        )
        assert diff_run_dirs(a, b).ok

    def test_new_fault_events_regress(self, tmp_path):
        a = write_run_dir(tmp_path, "a", metrics=BASE_METRICS)
        b = write_run_dir(
            tmp_path, "b", metrics=BASE_METRICS,
            faults=[{"kind": "fault", "fault": "stuck_at", "layer": 0}] * 3,
        )
        diff = diff_run_dirs(a, b)
        assert not diff.ok
        (delta,) = diff.regressions
        assert delta.name == "fault:stuck_at.events"
        assert delta.note == "added" and delta.candidate == 3.0

    def test_new_alerts_regress(self, tmp_path):
        a = write_run_dir(tmp_path, "a", metrics=BASE_METRICS)
        b = write_run_dir(
            tmp_path, "b", metrics=BASE_METRICS,
            alerts=[{"kind": "alert", "rule": "spike_collapse", "layer": 1}],
        )
        diff = diff_run_dirs(a, b)
        assert [d.name for d in diff.regressions] == ["alerts:spike_collapse"]

    def test_vanished_accuracy_regresses(self, tmp_path):
        stripped = json.loads(json.dumps(BASE_METRICS))
        del stripped["gauges"]["pipeline.snn_accuracy"]
        a = write_run_dir(tmp_path, "a", metrics=BASE_METRICS)
        b = write_run_dir(tmp_path, "b", metrics=stripped)
        diff = diff_run_dirs(a, b)
        (delta,) = diff.regressions
        assert delta.note == "missing" and delta.direction == "up"

    def test_drift_series_aligned_at_latest_snapshot(self, tmp_path):
        drift_a = [
            {"kind": "drift", "snapshot": 0, "layer": 0, "measured_gap": 0.5},
            {"kind": "drift", "snapshot": 1, "layer": 0, "measured_gap": 0.1},
        ]
        drift_b = [
            {"kind": "drift", "snapshot": 0, "layer": 0, "measured_gap": 0.5},
            {"kind": "drift", "snapshot": 1, "layer": 0, "measured_gap": 0.4},
        ]
        a = write_run_dir(tmp_path, "a", metrics=BASE_METRICS, drift=drift_a)
        b = write_run_dir(tmp_path, "b", metrics=BASE_METRICS, drift=drift_b)
        diff = diff_run_dirs(a, b)
        assert [d.name for d in diff.regressions] == [
            "drift:measured_gap{layer=0}"
        ]

    def test_cli_exit_codes_and_json(self, tmp_path, capsys):
        worse = json.loads(json.dumps(BASE_METRICS))
        worse["gauges"]["pipeline.snn_accuracy"]["value"] = 0.2
        a = write_run_dir(tmp_path, "a", metrics=BASE_METRICS)
        b = write_run_dir(tmp_path, "b", metrics=BASE_METRICS)
        c = write_run_dir(tmp_path, "c", metrics=worse)

        assert diff_main([a, b]) == 0
        assert "OK: no regressions" in capsys.readouterr().out
        assert diff_main([a, c]) == 1
        assert "REGRESSED" in capsys.readouterr().out

        assert diff_main([a, c, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.obs.diff/v1"
        assert payload["ok"] is False and payload["regressions"] == 1

    def test_cli_baseline_mode(self, tmp_path, registry_root, capsys):
        a = write_run_dir(tmp_path, "a", metrics=BASE_METRICS)
        b = write_run_dir(tmp_path, "b", metrics=BASE_METRICS)
        registry = RunRegistry()
        registry.register_start("run-base", a, {})
        registry.set_baseline("run-base")
        assert diff_main([b, "--baseline"]) == 0
        out = capsys.readouterr().out
        assert f"baseline : {a}" in out

    def test_cli_baseline_mode_requires_tag(self, tmp_path, registry_root,
                                            capsys):
        a = write_run_dir(tmp_path, "a", metrics=BASE_METRICS)
        with pytest.raises(SystemExit):
            diff_main([a, "--baseline"])


# ----------------------------------------------------------------------
# Health monitors
# ----------------------------------------------------------------------
class TestHealthMonitor:
    def test_grad_explosion_fires_once_per_stretch(self, tmp_path):
        monitor = HealthMonitor(
            registry=MetricsRegistry(), run_dir=str(tmp_path)
        )
        assert monitor.observe_epoch("snn", 1, loss=1.0, grad_norm=10.0) == []
        burst = monitor.observe_epoch("snn", 2, loss=0.9, grad_norm=5e3)
        assert [a["rule"] for a in burst] == ["grad_explosion"]
        assert burst[0]["severity"] == "critical"
        # Still exploded: no duplicate alert.
        assert monitor.observe_epoch("snn", 3, loss=0.8, grad_norm=6e3) == []
        # Recovered, then exploded again: re-armed.
        assert monitor.observe_epoch("snn", 4, loss=0.7, grad_norm=1.0) == []
        again = monitor.observe_epoch("snn", 5, loss=0.6, grad_norm=1e4)
        assert [a["rule"] for a in again] == ["grad_explosion"]

    def test_grad_growth_factor_triggers(self):
        monitor = HealthMonitor(registry=MetricsRegistry())
        monitor.observe_epoch("dnn", 1, loss=1.0, grad_norm=1.0)
        alerts = monitor.observe_epoch("dnn", 2, loss=1.0, grad_norm=500.0)
        assert [a["rule"] for a in alerts] == ["grad_explosion"]

    def test_loss_plateau(self):
        monitor = HealthMonitor(
            config=HealthConfig(plateau_epochs=3),
            registry=MetricsRegistry(),
        )
        alerts = []
        for epoch, loss in enumerate([1.0, 0.8, 0.8001, 0.8, 0.79999], 1):
            alerts += monitor.observe_epoch("dnn", epoch, loss=loss)
        assert [a["rule"] for a in alerts] == ["loss_plateau"]

    def test_spike_collapse_only_at_ultra_low_t(self):
        config = HealthConfig(collapse_epochs=2)
        low_t = HealthMonitor(config=config, registry=MetricsRegistry())
        high_t = HealthMonitor(config=config, registry=MetricsRegistry())
        silent = [0.2, 0.0]
        fired = []
        for epoch in (1, 2, 3):
            fired += low_t.observe_epoch(
                "snn", epoch, loss=1.0, timesteps=2, layer_rates=silent
            )
            assert high_t.observe_epoch(
                "snn", epoch, loss=1.0, timesteps=8, layer_rates=silent
            ) == []
        # Layer 1 collapsed exactly once (epochs 2 and 3 both silent,
        # but once-per-stretch); layer 0 is active and never fires.
        assert [(a["rule"], a["layer"]) for a in fired] == [
            ("spike_collapse", 1)
        ]

    def test_threshold_saturation(self):
        snn = tiny_snn()
        monitor = HealthMonitor(registry=MetricsRegistry())
        neurons = snn.spiking_neurons()
        neurons[0].v_threshold.data[...] = MIN_THRESHOLD
        alerts = monitor.observe_epoch("snn", 1, loss=1.0, model=snn)
        assert ("threshold_saturation", 0) in [
            (a["rule"], a["layer"]) for a in alerts
        ]
        # Same stretch: quiet on the next epoch.
        assert all(
            a["rule"] != "threshold_saturation" or a["layer"] != 0
            for a in monitor.observe_epoch("snn", 2, loss=1.0, model=snn)
        )

    def test_heartbeats_and_alerts_land_in_file_and_registry(self, tmp_path):
        registry = MetricsRegistry()
        monitor = HealthMonitor(registry=registry, run_dir=str(tmp_path))
        monitor.observe_epoch(
            "snn", 1, loss=0.7, accuracy=0.5, grad_norm=1.0,
            timesteps=2, layer_rates=[0.1, 0.2],
        )
        monitor.observe_epoch("snn", 2, loss=0.7, grad_norm=9e9)
        monitor.close()
        records = [
            json.loads(line)
            for line in (tmp_path / "alerts.jsonl").read_text().splitlines()
        ]
        kinds = [r["kind"] for r in records]
        assert kinds.count("health") == 2 and kinds.count("alert") == 1
        heartbeat = records[0]
        assert heartbeat["layer_rates"] == [0.1, 0.2]
        assert heartbeat["accuracy"] == 0.5
        snapshot = registry.snapshot()
        assert "health.loss{stream=snn}" in snapshot["gauges"]
        assert "health.spike_rate{layer=0}" in snapshot["gauges"]
        assert "health.alerts{rule=grad_explosion}" in snapshot["counters"]

    def test_no_file_without_records(self, tmp_path):
        monitor = HealthMonitor(registry=MetricsRegistry(), run_dir=str(tmp_path))
        monitor.close()
        assert not (tmp_path / "alerts.jsonl").exists()

    def test_module_hook_noop_without_monitor(self):
        assert obs_health.active() is None
        assert obs_health.observe_epoch("dnn", 1, loss=1.0) == []

    def test_configure_installs_monitor_for_run_dirs(self, tmp_path):
        with obs.observe(str(tmp_path / "run")):
            assert obs_health.active() is not None
            assert obs_health.active().run_dir == str(tmp_path / "run")
        assert obs_health.active() is None
        with obs.observe():  # memory-only: no monitor
            assert obs_health.active() is None

    def test_gradient_sq_norm(self):
        model = Sequential(Linear(2, 2, bias=False, rng=np.random.default_rng(0)))
        (param,) = model.parameters()
        param.grad = np.ones_like(param.data) * 2.0
        assert obs_health.gradient_sq_norm(model) == pytest.approx(
            4.0 * param.data.size
        )


class TestTrainerHealthIntegration:
    def _blobs(self, n=40, seed=0):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, size=n)
        centers = np.where(labels[:, None] == 0, -1.5, 1.5)
        images = rng.normal(size=(n, 4)) * 0.3 + centers
        return images.reshape(n, 1, 2, 2), labels

    def _model(self, seed=0):
        rng = np.random.default_rng(seed)
        return Sequential(
            Flatten(),
            Linear(4, 8, bias=False, rng=rng),
            ThresholdReLU(init_threshold=2.0),
            Linear(8, 2, bias=False, rng=rng),
        )

    def test_dnn_trainer_feeds_health_stream(self, tmp_path):
        from repro.data import DataLoader
        from repro.train import DNNTrainConfig, DNNTrainer

        images, labels = self._blobs()
        loader = DataLoader(images, labels, batch_size=20, shuffle=True, seed=0)
        run_dir = tmp_path / "dnn_run"
        with obs.observe(str(run_dir)):
            DNNTrainer(DNNTrainConfig(epochs=2, lr=0.05)).fit(
                self._model(), loader, loader
            )
        run = load_run(str(run_dir))
        dnn_beats = [h for h in run.health if h["stream"] == "dnn"]
        assert [h["epoch"] for h in dnn_beats] == [1, 2]
        assert all(h["grad_norm"] > 0 for h in dnn_beats)
        assert all(np.isfinite(h["loss"]) for h in dnn_beats)

    def test_snn_trainer_feeds_layer_rates(self, tmp_path):
        from repro.conversion import ConversionConfig, convert_dnn_to_snn
        from repro.data import DataLoader
        from repro.train import (
            DNNTrainConfig,
            DNNTrainer,
            SNNTrainConfig,
            SNNTrainer,
        )

        images, labels = self._blobs()
        loader = DataLoader(images, labels, batch_size=20, shuffle=True, seed=0)
        model = self._model()
        DNNTrainer(DNNTrainConfig(epochs=2, lr=0.05)).fit(model, loader)
        snn = convert_dnn_to_snn(
            model, DataLoader(images, labels, batch_size=20),
            ConversionConfig(timesteps=2),
        ).snn

        run_dir = tmp_path / "snn_run"
        with obs.observe(str(run_dir)):
            SNNTrainer(SNNTrainConfig(epochs=2, lr=1e-3)).fit(
                snn, loader, loader
            )
        run = load_run(str(run_dir))
        snn_beats = [h for h in run.health if h["stream"] == "snn"]
        assert [h["epoch"] for h in snn_beats] == [1, 2]
        for beat in snn_beats:
            assert beat["timesteps"] == 2
            assert len(beat["layer_rates"]) == len(snn.spiking_neurons())
        # Recording was only borrowed for the test pass.
        assert all(not n.recording for n in snn.spiking_neurons())


# ----------------------------------------------------------------------
# Dashboard
# ----------------------------------------------------------------------
class TestJsonlTailer:
    def test_partial_trailing_line_deferred(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"kind": "a"}\n{"kind": "b"')
        tailer = JsonlTailer(str(path))
        assert [r["kind"] for r in tailer.poll()] == ["a"]
        assert tailer.skipped == 0
        # The writer finishes the line: the record arrives on next poll.
        with open(path, "a", encoding="utf-8") as fp:
            fp.write('}\n')
        assert [r["kind"] for r in tailer.poll()] == ["b"]
        assert tailer.poll() == []

    def test_malformed_complete_line_skipped(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"kind": "a"}\nnot json at all\n{"kind": "c"}\n')
        tailer = JsonlTailer(str(path))
        assert [r["kind"] for r in tailer.poll()] == ["a", "c"]
        assert tailer.skipped == 1

    def test_missing_file_is_quiet(self, tmp_path):
        tailer = JsonlTailer(str(tmp_path / "nope.jsonl"))
        assert tailer.poll() == []

    def test_truncated_file_resets(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text('{"kind": "a"}\n{"kind": "b"}\n')
        tailer = JsonlTailer(str(path))
        tailer.poll()
        path.write_text('{"kind": "fresh"}\n')
        assert [r["kind"] for r in tailer.poll()] == ["fresh"]
        assert [r["kind"] for r in tailer.records] == ["fresh"]


class TestDashboard:
    def test_sparkline_and_bars(self):
        assert len(sparkline([], width=10)) == 10
        line = sparkline([0.0, 1.0, 2.0, 3.0], width=4)
        assert line[0] == "▁" and line[-1] == "█"
        assert hbar(0.0, width=4) == "····"
        assert hbar(1.0, width=4) == "████"

    def test_once_is_deterministic_and_complete(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        with obs.observe(str(run_dir)):
            with trace.span("convert"):
                pass
            obs_health.active().observe_epoch(
                "snn", 1, loss=0.9, accuracy=0.4,
                timesteps=2, layer_rates=[0.3, 0.0],
            )
            obs_health.active().observe_epoch(
                "snn", 2, loss=0.7, accuracy=0.5, grad_norm=9e9,
                timesteps=2, layer_rates=[0.3, 0.0],
            )
        frames = []
        for _ in range(2):
            assert dashboard_main([str(run_dir), "--once"]) == 0
            frames.append(capsys.readouterr().out)
        assert frames[0] == frames[1]
        frame = frames[0]
        assert "[completed]" in frame
        assert "grad_explosion" in frame
        assert "convert" in frame
        assert "\x1b[" not in frame  # --once carries no cursor control

    def test_degraded_run_dir_renders(self, tmp_path, capsys):
        run_dir = tmp_path / "torn"
        run_dir.mkdir()
        # Only a torn events file, no other artefacts at all.
        (run_dir / "events.jsonl").write_text(
            '{"kind": "run_start", "run_id": "r-1"}\n{"kind": "lo'
        )
        assert dashboard_main([str(run_dir), "--once"]) == 0
        frame = capsys.readouterr().out
        assert "r-1" in frame and "[running]" in frame
        assert "(no spike-rate telemetry yet)" in frame

    def test_missing_run_dir_errors(self, tmp_path, capsys):
        with pytest.raises(SystemExit):
            dashboard_main([str(tmp_path / "ghost"), "--once"])

    def test_state_falls_back_to_spike_rate_gauges(self, tmp_path):
        run_dir = write_run_dir(
            tmp_path, "gauges",
            metrics={"gauges": {
                "health.spike_rate{layer=0}": {"value": 0.25},
                "health.spike_rate{layer=1}": {"value": 0.5},
            }},
        )
        state = DashboardState(run_dir)
        state.refresh()
        assert state.layer_rates() == [0.25, 0.5]
        assert "spike rate per layer" in render_frame(state)


# ----------------------------------------------------------------------
# Report: JSON mode, errored spans, degraded inputs
# ----------------------------------------------------------------------
class TestReport:
    def _observed_failing_run(self, run_dir):
        with pytest.raises(ValueError):
            with obs.observe(str(run_dir)):
                with trace.span("calibration"):
                    raise ValueError("bad scaling factor")

    def test_errored_span_carries_exception(self, tmp_path):
        run_dir = tmp_path / "run"
        self._observed_failing_run(run_dir)
        run = load_run(str(run_dir))
        (span,) = [s for s in run.spans if s["name"] == "calibration"]
        assert span["status"] == "error"
        assert span["error"] == {
            "type": "ValueError", "message": "bad scaling factor",
        }
        report = render_report(run)
        assert "### Errored spans (1)" in report
        assert "**ValueError** bad scaling factor" in report

    def test_json_cli_shares_parser(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        self._observed_failing_run(run_dir)
        assert report_main([str(run_dir), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.obs.run/v1"
        assert payload["spans"][0]["error"]["type"] == "ValueError"
        # Same content the library parser produces.
        assert payload == json.loads(
            json.dumps(run_to_json(load_run(str(run_dir))), default=repr)
        )

    def test_degraded_run_dir(self, tmp_path):
        run_dir = write_run_dir(
            tmp_path, "degraded",
            drift=[{"kind": "drift", "snapshot": 0, "layer": 0,
                    "measured_gap": 0.1}],
            faults=[{"kind": "fault", "fault": "stuck_at", "layer": 2}],
        )
        # Torn tail on the trace file (killed mid-write).
        with open(os.path.join(run_dir, "trace.jsonl"), "w") as fp:
            fp.write('{"kind": "span", "name": "ok", "duration_s": 1.0}\n')
            fp.write('{"kind": "span", "name": "to')
        run = load_run(run_dir)
        assert [s["name"] for s in run.spans] == ["ok"]
        assert len(run.drift) == 1 and len(run.faults) == 1
        assert any("metrics.json" in w for w in run.warnings)
        assert any("skipped 1 malformed" in w for w in run.warnings)
        report = render_report(run)
        assert "## Fault events (1)" in report
        assert "stuck_at: 1" in report
        # The diff engine consumes the same degraded dir without error.
        diff = diff_run_dirs(run_dir, run_dir)
        assert diff.ok

    def test_missing_run_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_run(str(tmp_path / "ghost"))


# ----------------------------------------------------------------------
# Energy gauges
# ----------------------------------------------------------------------
class TestEnergyInstrument:
    def test_record_energy_profile_gauges(self):
        registry = MetricsRegistry()
        snn = tiny_snn()
        rng = np.random.default_rng(0)
        batches = [(rng.normal(size=(5, 4)), np.zeros(5, dtype=int))]
        summary = record_energy_profile(
            snn, batches, input_shape=(4,), registry=registry
        )
        assert summary["images"] == 5
        assert summary["dnn_total_flops"] == pytest.approx(4 * 6 + 6 * 3)
        assert summary["dnn_joules"] > 0
        snapshot = registry.snapshot()
        gauges = snapshot["gauges"]
        for name in (
            "energy.snn_total_flops", "energy.dnn_total_flops",
            "energy.snn_joules", "energy.dnn_joules", "energy.improvement",
            "energy.spikes_per_neuron{layer=0}", "energy.snn_ops{layer=0}",
            "energy.dnn_macs{layer=1}",
        ):
            assert name in gauges, name

    def test_pipeline_energy_profile_spans(self):
        # The pipeline hook is covered end-to-end by repro.obs.smoke;
        # here we only pin that the span name is stable for dashboards.
        registry = MetricsRegistry()
        snn = tiny_snn()
        rng = np.random.default_rng(0)
        batches = [(rng.normal(size=(3, 4)), np.zeros(3, dtype=int))]
        with obs.observe():
            record_energy_profile(snn, batches, input_shape=(4,),
                                  registry=registry)
            names = [s["name"] for s in obs.state().spans]
        assert "energy_profile" in names


# ----------------------------------------------------------------------
# Experiments CLI
# ----------------------------------------------------------------------
class TestBaselineTagging:
    def test_tag_baseline_without_observed_run_is_noop(self, registry_root):
        from repro.experiments.pipeline import _tag_run_as_baseline

        _tag_run_as_baseline()  # must not raise
        assert RunRegistry().baseline() is None

    def test_tag_baseline_marks_active_run(self, tmp_path, registry_root):
        from repro.experiments.pipeline import _tag_run_as_baseline

        with obs.observe(str(tmp_path / "run")):
            run_id = obs.state().run_id
            _tag_run_as_baseline()
        assert RunRegistry().baseline_id() == run_id

    def test_cli_rejects_tag_baseline_without_trace(self):
        from repro.experiments.__main__ import main as experiments_main

        with pytest.raises(SystemExit):
            experiments_main(["table1", "--tag-baseline"])
