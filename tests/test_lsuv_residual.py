"""Tests for the residual-branch damping and fig2 chart rendering."""

import numpy as np
import pytest

from repro.experiments import render_fig2
from repro.models import resnet20, vgg11
from repro.models.resnet import BasicBlock
from repro.train.lsuv import scale_residual_branches


class TestScaleResidualBranches:
    def test_scales_all_blocks(self):
        model = resnet20(width_multiplier=0.125, rng=np.random.default_rng(0))
        before = [
            blk.conv2.weight.data.copy()
            for blk in model.modules() if isinstance(blk, BasicBlock)
        ]
        count = scale_residual_branches(model, factor=0.1)
        assert count == 9
        after = [
            blk.conv2.weight.data
            for blk in model.modules() if isinstance(blk, BasicBlock)
        ]
        for b, a in zip(before, after):
            np.testing.assert_allclose(a, b * 0.1)

    def test_noop_on_vgg(self):
        model = vgg11(image_size=8, width_multiplier=0.125,
                      rng=np.random.default_rng(0))
        assert scale_residual_branches(model) == 0

    def test_shortcut_untouched(self):
        model = resnet20(width_multiplier=0.125, rng=np.random.default_rng(0))
        from repro.nn import Conv2d

        shortcut_weights = [
            blk.shortcut.weight.data.copy()
            for blk in model.modules()
            if isinstance(blk, BasicBlock) and isinstance(blk.shortcut, Conv2d)
        ]
        scale_residual_branches(model, factor=0.5)
        after = [
            blk.shortcut.weight.data
            for blk in model.modules()
            if isinstance(blk, BasicBlock) and isinstance(blk.shortcut, Conv2d)
        ]
        for b, a in zip(shortcut_weights, after):
            np.testing.assert_allclose(a, b)


class TestFig2Render:
    def test_includes_chart_and_table(self):
        result = {
            "arch": "vgg16",
            "dataset": "cifar10",
            "timesteps": [2, 4, 8],
            "series": {
                "threshold_relu": [10.0, 20.0, 40.0],
                "proposed": [30.0, 35.0, 38.0],
            },
            "dnn_accuracy": 60.0,
        }
        text = render_fig2(result)
        assert "Fig. 2" in text
        assert "accuracy (%) vs T" in text
        assert "o = threshold_relu" in text
