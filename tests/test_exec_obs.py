"""Worker-telemetry capture and deterministic merge (repro.obs.remote).

The contract under test: when the parent run is observed, executor
workers capture (rather than quiesce) their telemetry, and the parent
merges it so that

- the canonical ``worker_telemetry.jsonl`` is bitwise identical across
  reruns and worker counts (serial tee included),
- aggregate metrics / events equal a serial observed run's,
- worker spans stitch under the dispatching ``exec.map`` span,
- a worker killed mid-telemetry-write degrades to shard recovery
  (torn tails skipped, intact prefix kept),
- unobserved runs keep the PR-9 fully-quiesced workers.
"""

import json
import os

import pytest

from repro.exec import ParallelExecutor, executor_scope
from repro.faults import ChaosSpec
from repro.obs import metrics as obs_metrics
from repro.obs import observe
from repro.obs import remote as obs_remote


def _instrumented_task(payload):
    """Deterministic task that exercises every capture channel."""
    index, scale = payload
    from repro.obs import metrics, trace
    from repro.obs.logging import get_logger

    with trace.span("point.eval", index=index):
        with trace.span("point.inner"):
            metrics.inc("sweep.points")
            metrics.observe("sweep.value", scale * index)
            metrics.gauge("sweep.last_index", float(index))
        get_logger("exec-obs-test").debug("point done", index=index)
    return float(index * scale)


def _sometimes_failing_task(payload):
    index, _ = payload
    if index == 2:
        raise RuntimeError("task 2 always fails")
    return _instrumented_task(payload)


_TASKS = [(i, 0.5) for i in range(6)]


def _run_map(tmp_path, name, workers, chaos=None, telemetry=None):
    run_dir = str(tmp_path / name)
    with observe(run_dir, smoke=True, seed=0):
        outcome = ParallelExecutor(
            workers=workers, chaos=chaos, telemetry=telemetry
        ).map(_instrumented_task, _TASKS, label="obs-test")
    return run_dir, outcome


def _read_jsonl(path):
    with open(path, encoding="utf-8") as fp:
        return [json.loads(line) for line in fp if line.strip()]


def _merged_bytes(run_dir):
    with open(os.path.join(run_dir, "worker_telemetry.jsonl"), "rb") as fp:
        return fp.read()


class TestCanonicalDeterminism:
    def test_merged_stream_bitwise_across_worker_counts(self, tmp_path):
        blobs = {}
        for workers in (1, 2, 4):
            run_dir, outcome = _run_map(tmp_path, f"w{workers}", workers)
            assert outcome.ok
            blobs[workers] = _merged_bytes(run_dir)
        assert blobs[1]  # tee captured the serial run too
        assert blobs[1] == blobs[2] == blobs[4]
        lines = [
            json.loads(line)
            for line in blobs[1].decode("utf-8").splitlines()
        ]
        assert {line["task"] for line in lines} == set(range(len(_TASKS)))
        kinds = {line["kind"] for line in lines}
        assert {"event", "span", "metric"} <= kinds
        for line in lines:
            # Volatile fields must never reach the canonical stream.
            assert not {"ts", "pid", "worker", "attempt"} & set(line["data"])

    def test_rerun_is_bitwise_identical(self, tmp_path):
        run_a, _ = _run_map(tmp_path, "a", 2)
        run_b, _ = _run_map(tmp_path, "b", 2)
        assert _merged_bytes(run_a) == _merged_bytes(run_b)

    def test_aggregate_metrics_and_events_match_serial(self, tmp_path):
        run1, _ = _run_map(tmp_path, "serial", 1)
        run4, _ = _run_map(tmp_path, "par", 4)
        snapshots = []
        for run_dir in (run1, run4):
            with open(os.path.join(run_dir, "metrics.json")) as fp:
                snapshots.append(json.load(fp))
        m1, m4 = snapshots

        def non_exec(counters):
            return {
                k: v for k, v in counters.items() if not k.startswith("exec.")
            }

        assert non_exec(m1["counters"]) == non_exec(m4["counters"])
        assert m1["counters"]["sweep.points"] == len(_TASKS)
        h1 = m1["histograms"]["sweep.value"]
        h4 = m4["histograms"]["sweep.value"]
        assert h1["count"] == h4["count"] == len(_TASKS)
        assert h1["mean"] == pytest.approx(h4["mean"])
        assert m1["gauges"]["sweep.last_index"]["value"] == (
            m4["gauges"]["sweep.last_index"]["value"]
        )

        logs1 = [
            e
            for e in _read_jsonl(os.path.join(run1, "events.jsonl"))
            if e.get("kind") == "log"
        ]
        logs4 = [
            e
            for e in _read_jsonl(os.path.join(run4, "events.jsonl"))
            if e.get("kind") == "log"
        ]
        assert len(logs1) == len(logs4) == len(_TASKS)


class TestSpanStitching:
    def test_worker_spans_stitch_under_dispatch(self, tmp_path):
        run_dir, _ = _run_map(tmp_path, "stitch", 2)
        spans = _read_jsonl(os.path.join(run_dir, "trace.jsonl"))
        dispatch = [s for s in spans if s["name"] == "exec.map"]
        assert len(dispatch) == 1
        evals = [s for s in spans if s["name"] == "point.eval"]
        inners = [s for s in spans if s["name"] == "point.inner"]
        assert len(evals) == len(inners) == len(_TASKS)
        for span in evals:
            assert span["parent_id"] == dispatch[0]["span_id"]
            assert span["depth"] == dispatch[0]["depth"] + 1
            assert isinstance(span["worker"], int)
            assert span["task"] in range(len(_TASKS))
        eval_ids = {s["task"]: s["span_id"] for s in evals}
        for span in inners:
            assert span["parent_id"] == eval_ids[span["task"]]
            assert span["depth"] == dispatch[0]["depth"] + 2

    def test_report_renders_stitched_run(self, tmp_path):
        from repro.obs.report import load_run, render_report

        run_dir, _ = _run_map(tmp_path, "report", 2)
        data = load_run(run_dir)
        assert data.worker_telemetry
        text = render_report(data)
        assert "## Parallel execution" in text
        assert "Worker lanes" in text
        assert "Worker telemetry" in text


class TestDegradedMerge:
    @pytest.mark.stress
    def test_kill_mid_telemetry_write_is_recovered_identically(self, tmp_path):
        clean_dir, clean = _run_map(tmp_path, "clean", 2)
        chaos_dir, chaotic = _run_map(
            tmp_path, "chaos", 2, chaos=ChaosSpec.kill_task_after(1, attempts=1)
        )
        assert chaotic.ok
        assert chaotic.results == clean.results
        assert chaotic.stats.crashes >= 1
        # The retried attempt's payload wins and the attempt number is
        # volatile, so the canonical stream is unscathed by the chaos.
        assert _merged_bytes(chaos_dir) == _merged_bytes(clean_dir)

    @pytest.mark.stress
    def test_poisoned_task_telemetry_recovered_from_torn_shard(self, tmp_path):
        run_dir, outcome = _run_map(
            tmp_path, "poison", 2, chaos=ChaosSpec.kill_task_after(2, attempts=6)
        )
        assert outcome.status == "partial"
        assert set(outcome.failures) == {2}
        # The task body completed before each kill, so its records are
        # in the shard prefix; the torn tail must not block recovery.
        lines = [
            json.loads(line)
            for line in _merged_bytes(run_dir).decode("utf-8").splitlines()
        ]
        assert 2 in {line["task"] for line in lines}
        with open(os.path.join(run_dir, "metrics.json")) as fp:
            counters = json.load(fp)["counters"]
        assert counters.get("exec.telemetry_tasks_recovered", 0) >= 1

    def test_recovery_skips_torn_tail_and_tolerates_absent_shards(
        self, tmp_path
    ):
        run_dir = str(tmp_path / "unit")
        with observe(run_dir, smoke=True):
            plan = obs_remote.MapTelemetry("unit")
            shard = os.path.join(run_dir, obs_remote.shard_filename(0))
            with open(shard, "w", encoding="utf-8") as fp:
                for seq in range(2):
                    fp.write(
                        json.dumps(
                            {
                                "schema": 1,
                                "map": plan.map_id,
                                "worker": 0,
                                "pid": 12345,
                                "task": 3,
                                "attempt": 0,
                                "seq": seq,
                                "kind": "event",
                                "data": {"kind": "log", "message": f"m{seq}"},
                            }
                        )
                        + "\n"
                    )
                fp.write('{"schema": 1, "map": ')  # torn tail, no newline
            stats = plan.merge()
            assert stats["recovered"] == 1
            assert stats["events"] == 2
            payload = plan.payloads[3]
            assert payload["status"] == "recovered"
            assert [r["seq"] for r in payload["records"]] == [0, 1]

            # Absent shards contribute nothing and never raise.
            empty_plan = obs_remote.MapTelemetry("unit-empty")
            assert empty_plan.merge()["tasks"] == 0


class TestActivationPolicy:
    def test_unobserved_map_keeps_quiesced_workers(self):
        from repro.obs import core as obs_core

        outcome = ParallelExecutor(workers=2).map(_instrumented_task, _TASKS)
        assert outcome.ok
        assert obs_core.capture_sink() is None

    def test_telemetry_false_forces_quiesce(self, tmp_path):
        run_dir, outcome = _run_map(tmp_path, "off", 2, telemetry=False)
        assert outcome.ok
        assert not os.path.exists(
            os.path.join(run_dir, "worker_telemetry.jsonl")
        )

    def test_config_dict_records_telemetry_mode(self):
        assert ParallelExecutor(workers=2).config_dict()["telemetry"] == "auto"
        assert (
            ParallelExecutor(workers=2, telemetry=False).config_dict()[
                "telemetry"
            ]
            is False
        )

    def test_fingerprint_records_telemetry_flag(self):
        from repro.obs.registry import _environment_fingerprint

        with executor_scope(ParallelExecutor(workers=2, telemetry=False)):
            env = _environment_fingerprint()
        assert env["executor"]["telemetry"] is False

    def test_artifact_registry_knows_shards_and_merged_stream(self):
        from repro.obs.registry import KNOWN_ARTIFACTS

        assert "worker_telemetry.jsonl" in KNOWN_ARTIFACTS
        assert "worker-*.jsonl" in KNOWN_ARTIFACTS


class TestExecHealthAlerts:
    def test_task_failures_raise_alert_once_per_stretch(self, tmp_path):
        run_dir = str(tmp_path / "alerts")
        with observe(run_dir, smoke=True):
            executor = ParallelExecutor(workers=1, max_retries=0)
            executor.map(_sometimes_failing_task, _TASKS, label="sweep")
            executor.map(_sometimes_failing_task, _TASKS, label="sweep")
            executor.map(_instrumented_task, _TASKS, label="sweep")
            executor.map(_sometimes_failing_task, _TASKS, label="sweep")
        alerts = [
            r
            for r in _read_jsonl(os.path.join(run_dir, "alerts.jsonl"))
            if r.get("kind") == "alert" and r.get("rule") == "exec_task_failures"
        ]
        # Armed after the first failing map, re-armed by the clean one.
        assert len(alerts) == 2
        assert all(a["severity"] == "error" for a in alerts)

    @pytest.mark.stress
    def test_worker_crashes_raise_alert(self, tmp_path):
        run_dir, outcome = _run_map(
            tmp_path, "crash", 2, chaos=ChaosSpec.kill_task(1, attempts=1)
        )
        assert outcome.ok
        rules = {
            r.get("rule")
            for r in _read_jsonl(os.path.join(run_dir, "alerts.jsonl"))
            if r.get("kind") == "alert"
        }
        assert "exec_worker_crashes" in rules


class TestDiffIntegration:
    def test_serial_vs_parallel_observed_diff_is_clean(self, tmp_path):
        from repro.obs.diff import diff_run_dirs

        run1, _ = _run_map(tmp_path, "base", 1)
        run4, _ = _run_map(tmp_path, "cand", 4)
        diff = diff_run_dirs(run1, run4)
        assert diff.ok, diff.render()
        exec_rows = [d for d in diff.deltas if d.name.startswith("exec:")]
        assert exec_rows, "expected informational exec: telemetry rows"
        assert all(d.direction == "skip" for d in exec_rows)


class TestChaosKillAfter:
    def test_schedule_and_roundtrip(self):
        spec = ChaosSpec.kill_task_after(3, attempts=2)
        assert spec.should_kill_after(3, 0) and spec.should_kill_after(3, 1)
        assert not spec.should_kill_after(3, 2)
        assert not spec.should_kill_after(2, 0)
        assert not spec.is_null
        assert ChaosSpec.from_dict(json.loads(json.dumps(spec.as_dict()))) == spec


class TestMetricReplay:
    def test_apply_metric_op_replays_each_kind(self):
        from repro.obs.metrics import MetricsRegistry, apply_metric_op

        registry = MetricsRegistry()
        apply_metric_op(
            registry, {"op": "inc", "name": "a", "value": 2.0, "labels": {}}
        )
        apply_metric_op(
            registry,
            {"op": "inc", "name": "a", "value": 1.0, "labels": {"layer": 3}},
        )
        apply_metric_op(
            registry, {"op": "gauge", "name": "g", "value": 7.5, "labels": {}}
        )
        apply_metric_op(
            registry, {"op": "observe", "name": "h", "value": 0.25, "labels": {}}
        )
        apply_metric_op(
            registry,
            {"op": "window", "name": "w", "value": 1.5, "size": 4, "labels": {}},
        )
        snapshot = registry.snapshot()
        assert snapshot["counters"]["a"] == 2.0
        assert snapshot["counters"]["a{layer=3}"] == 1.0
        assert snapshot["gauges"]["g"]["value"] == 7.5
        assert snapshot["histograms"]["h"]["count"] == 1
        assert snapshot["windows"]["w"]["count"] == 1

    def test_apply_metric_op_ignores_garbage(self):
        from repro.obs.metrics import MetricsRegistry, apply_metric_op

        registry = MetricsRegistry()
        for op in (
            {},
            {"op": "inc"},
            {"op": "inc", "name": 7, "value": 1.0},
            {"op": "inc", "name": "x", "value": "not-a-number"},
            {"op": "inc", "name": "x", "value": 1.0, "labels": "nope"},
            {"op": "unknown", "name": "x", "value": 1.0},
        ):
            apply_metric_op(registry, op)
        assert len(registry) == 0

    def test_journal_records_are_deterministic(self):
        from repro.obs.metrics import MetricsRegistry

        ops = []
        registry = MetricsRegistry()
        registry._journal = ops.append
        registry.inc("c", 2.0, layer=1)
        registry.observe("h", 0.5)
        assert ops == [
            {"op": "inc", "name": "c", "value": 2.0, "labels": {"layer": 1}},
            {"op": "observe", "name": "h", "value": 0.5, "labels": {}},
        ]


class TestSuspendCapture:
    def test_suspended_records_never_enter_the_stream(self):
        from repro.obs import core as obs_core

        envelope = obs_remote.TelemetryEnvelope(map_id=1)
        buffer = obs_remote.TelemetryBuffer(envelope, worker_id=0)
        buffer.begin_task(0, 0)
        assert buffer.sink("event", {"message": "kept"})
        with obs_core.suspend_capture():
            buffer.sink("event", {"message": "dropped"})
            with obs_core.suspend_capture():  # re-entrant
                buffer.sink("event", {"message": "dropped too"})
        buffer.sink("event", {"message": "kept again"})
        payload = buffer.end_task("ok")
        messages = [r["data"]["message"] for r in payload["records"]]
        assert messages == ["kept", "kept again"]
        assert [r["seq"] for r in payload["records"]] == [0, 1]
