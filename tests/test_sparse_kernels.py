"""Event-driven sparse kernels and activity-adaptive dispatch (PR 8).

Pins the contract from ``repro.tensor.sparse`` + ``repro.snn.dispatch``:
the CSR spike packing round-trips, the gather kernels match the dense
layers to float tolerance across geometries / amplitudes / per-event
values / int8 weights, and a dispatch-routed ``SpikingNetwork`` produces
the same logits and spike counts as the dense engines — fused and
stepwise, IF and LIF, soft and hard reset, direct and Poisson encoding,
under injected dead-unit faults and across warm streaming windows.
Crossover calibration must be deterministic under an injected clock and
round-trip through its artefact, and the dispatcher's exact accumulate
accounting must agree with the event-driven reference engine and reach
the energy/observability gauges.
"""

import numpy as np
import pytest

from repro.bench.crossover import (
    calibrate_crossover,
    parse_signature,
    write_artifact,
)
from repro.faults import FaultSpec
from repro.hw.quantization import quantize_array, quantize_int8
from repro.nn import Conv2d, Flatten, Linear
from repro.obs.instruments import record_dispatch_profile, record_energy_profile
from repro.obs.metrics import MetricsRegistry
from repro.snn import (
    EventDrivenNetwork,
    IFNeuron,
    LIFNeuron,
    PoissonEncoder,
    SpikingMaxPool,
    SpikingNetwork,
    SpikingSequential,
    StepWrapper,
)
from repro.snn.dispatch import (
    CROSSOVER_SCHEMA,
    CrossoverTable,
    SparseDispatch,
    layer_signature,
)
from repro.tensor import Tensor, default_dtype, no_grad
from repro.tensor import sparse as sparse_mod
from repro.tensor.sparse import (
    pack_conv_weight,
    pack_spikes,
    sparse_conv2d_gather,
    sparse_linear_gather,
)

T = 3

#: Route every weight layer sparse regardless of measured density.
FORCE_SPARSE = {"conv": 1.1, "linear": 1.1}
#: Keep every weight layer dense (density is never <= -1).
FORCE_DENSE = {"conv": -1.0, "linear": -1.0}

NEURON_CONFIGS = [
    pytest.param(lambda: IFNeuron(v_threshold=0.6), id="if-soft"),
    pytest.param(
        lambda: LIFNeuron(v_threshold=0.6, leak=0.85, beta=1.3,
                          initial_potential=0.35),
        id="lif-beta-shift",
    ),
    pytest.param(
        lambda: LIFNeuron(v_threshold=0.6, leak=1.0, reset_mode="hard"),
        id="if-hard",
    ),
]

ENCODER_CONFIGS = [
    pytest.param(lambda: None, id="direct"),
    pytest.param(
        lambda: PoissonEncoder(rng=np.random.default_rng(5)), id="poisson"
    ),
]


def build_net(neuron_fn, mode, timesteps=T, output_mode="mean",
              encoder=None, seed=0):
    """Seeded conv -> neuron -> pool -> linear twin-builder (same idiom
    as test_fused_equivalence: equal seeds give exact parameter twins)."""
    rng = np.random.default_rng(seed)
    body = SpikingSequential(
        StepWrapper(Conv2d(1, 2, 3, padding=1, rng=rng)),
        neuron_fn(),
        SpikingMaxPool(2),
        StepWrapper(Flatten()),
        StepWrapper(Linear(2 * 2 * 2, 3, rng=rng)),
    )
    return SpikingNetwork(
        body, timesteps=timesteps, encoder=encoder,
        output_mode=output_mode, mode=mode,
    )


def images_batch(n=4, seed=3):
    return np.random.default_rng(seed).random((n, 1, 4, 4))


def spike_frame(shape, density, seed=0, amplitude=1.0):
    """Binary frame with exactly ``round(density * size)`` active units."""
    rng = np.random.default_rng(seed)
    total = int(np.prod(shape))
    active = min(total, max(0, int(round(density * total))))
    flat = np.zeros(total)
    if active:
        flat[rng.permutation(total)[:active]] = amplitude
    return flat.reshape(shape)


def run_recorded(snn, images):
    snn.eval()
    snn.reset_spike_stats()
    snn.set_recording(True)
    with no_grad():
        logits = snn(images)
    return logits.data, snn.total_spikes()


def assert_logits_match(sparse, dense):
    """Gather kernels sum events in a different order than the GEMM, so
    agreement is to within a few ulp rather than bitwise."""
    np.testing.assert_allclose(sparse, dense, rtol=1e-9, atol=1e-12)


# ======================================================================
# CSR packing
# ======================================================================
class TestPackSpikes:
    def test_roundtrip_binary(self):
        frame = spike_frame((4, 3, 5, 5), 0.1, seed=1)
        sp = pack_spikes(frame)
        assert sp.amplitude == 1.0 and sp.values is None
        assert sp.nnz == int(np.count_nonzero(frame))
        np.testing.assert_array_equal(sp.to_dense(), frame)

    def test_uniform_amplitude_detected(self):
        frame = spike_frame((2, 8), 0.25, seed=2, amplitude=0.7)
        sp = pack_spikes(frame)
        assert sp.values is None
        assert sp.amplitude == pytest.approx(0.7)
        np.testing.assert_allclose(sp.to_dense(), frame)

    def test_asserted_amplitude_skips_gather(self):
        frame = spike_frame((2, 16), 0.5, seed=3, amplitude=0.6)
        sp = pack_spikes(frame, amplitude=0.6)
        assert sp.values is None and sp.amplitude == pytest.approx(0.6)
        np.testing.assert_allclose(sp.to_dense(), frame)

    def test_per_event_values(self):
        rng = np.random.default_rng(4)
        frame = spike_frame((3, 12), 0.4, seed=4)
        frame *= rng.random(frame.shape) + 0.5  # non-uniform heights
        sp = pack_spikes(frame)
        assert sp.values is not None
        np.testing.assert_allclose(sp.to_dense(), frame)

    def test_empty_frame(self):
        sp = pack_spikes(np.zeros((2, 3, 4, 4)))
        assert sp.nnz == 0 and sp.density == 0.0
        np.testing.assert_array_equal(sp.to_dense(), np.zeros((2, 3, 4, 4)))

    def test_density(self):
        frame = spike_frame((2, 100), 0.05, seed=5)
        assert pack_spikes(frame).density == pytest.approx(0.05)


# ======================================================================
# Gather kernels vs dense layers
# ======================================================================
def dense_forward(layer, frame):
    with no_grad():
        return layer(Tensor(frame)).data


class TestSparseLinearGather:
    @pytest.mark.parametrize("density", [0.0, 0.02, 0.3, 1.0])
    @pytest.mark.parametrize("bias", [False, True], ids=["nobias", "bias"])
    def test_matches_dense(self, density, bias):
        rng = np.random.default_rng(6)
        layer = Linear(24, 7, bias=bias, rng=rng)
        frame = spike_frame((5, 24), density, seed=6, amplitude=0.8)
        out = sparse_linear_gather(
            pack_spikes(frame), layer.weight.data,
            bias=layer.bias.data if bias else None,
        )
        assert_logits_match(out, dense_forward(layer, frame))

    def test_per_event_values_path(self):
        rng = np.random.default_rng(7)
        layer = Linear(16, 5, rng=rng)
        frame = spike_frame((3, 16), 0.4, seed=7) * (rng.random((3, 16)) + 0.5)
        out = sparse_linear_gather(
            pack_spikes(frame), layer.weight.data, bias=layer.bias.data
        )
        assert_logits_match(out, dense_forward(layer, frame))

    def test_int8_matches_dequantized_dense(self):
        rng = np.random.default_rng(8)
        layer = Linear(32, 9, bias=False, rng=rng)
        qw = quantize_int8(layer.weight.data)
        frame = spike_frame((4, 32), 0.2, seed=8, amplitude=1.3)
        out = sparse_linear_gather(
            pack_spikes(frame, amplitude=1.3),
            qweight=qw.q, qscale=qw.scale,
            out_dtype=layer.weight.data.dtype,
        )
        dense = frame @ qw.dequantize().T
        np.testing.assert_allclose(out, dense, rtol=1e-12, atol=1e-12)

    def test_requires_some_weight(self):
        with pytest.raises(ValueError):
            sparse_linear_gather(pack_spikes(np.zeros((1, 4))))


CONV_GEOMETRIES = [
    pytest.param(dict(cin=3, cout=4, k=3, s=1, p=1, h=6, w=6), id="k3s1p1"),
    pytest.param(dict(cin=2, cout=3, k=3, s=2, p=0, h=7, w=7), id="k3s2p0"),
    pytest.param(dict(cin=4, cout=2, k=1, s=1, p=0, h=5, w=5), id="k1s1p0"),
    pytest.param(dict(cin=2, cout=5, k=5, s=1, p=2, h=8, w=8), id="k5s1p2"),
]


class TestSparseConvGather:
    @pytest.mark.parametrize("geom", CONV_GEOMETRIES)
    @pytest.mark.parametrize("density", [0.0, 0.05, 0.5])
    def test_matches_dense(self, geom, density):
        rng = np.random.default_rng(9)
        layer = Conv2d(geom["cin"], geom["cout"], geom["k"],
                       stride=geom["s"], padding=geom["p"], bias=True,
                       rng=rng)
        frame = spike_frame(
            (3, geom["cin"], geom["h"], geom["w"]), density,
            seed=9, amplitude=0.9,
        )
        out = sparse_conv2d_gather(
            pack_spikes(frame), layer.weight.data,
            stride=geom["s"], padding=geom["p"], bias=layer.bias.data,
        )
        assert_logits_match(out, dense_forward(layer, frame))

    @pytest.mark.parametrize("geom", CONV_GEOMETRIES)
    def test_offset_loop_matches_fused(self, geom, monkeypatch):
        """The all-offsets-fused path and the per-offset loop are the
        same kernel; forcing the budget to 0 exercises the loop on the
        small frames the fused path would normally claim."""
        rng = np.random.default_rng(10)
        layer = Conv2d(geom["cin"], geom["cout"], geom["k"],
                       stride=geom["s"], padding=geom["p"], bias=False,
                       rng=rng)
        frame = spike_frame(
            (2, geom["cin"], geom["h"], geom["w"]), 0.1, seed=10
        )
        sp = pack_spikes(frame, amplitude=1.0)
        fused = sparse_conv2d_gather(
            sp, layer.weight.data, stride=geom["s"], padding=geom["p"]
        )
        monkeypatch.setattr(sparse_mod, "_FUSED_OFFSET_BUDGET", 0)
        looped = sparse_conv2d_gather(
            sp, layer.weight.data, stride=geom["s"], padding=geom["p"]
        )
        assert_logits_match(looped, fused)
        assert_logits_match(fused, dense_forward(layer, frame))

    def test_per_event_values_path(self):
        rng = np.random.default_rng(11)
        layer = Conv2d(3, 4, 3, padding=1, bias=True, rng=rng)
        frame = spike_frame((2, 3, 6, 6), 0.15, seed=11)
        frame *= rng.random(frame.shape) + 0.5
        out = sparse_conv2d_gather(
            pack_spikes(frame), layer.weight.data, padding=1,
            bias=layer.bias.data,
        )
        assert_logits_match(out, dense_forward(layer, frame))

    def test_packed_weight_reuse(self):
        rng = np.random.default_rng(12)
        layer = Conv2d(3, 4, 3, padding=1, bias=False, rng=rng)
        packed = pack_conv_weight(layer.weight.data)
        frame = spike_frame((2, 3, 6, 6), 0.1, seed=12)
        out = sparse_conv2d_gather(
            pack_spikes(frame, amplitude=1.0), stride=1, padding=1,
            packed=packed, out_dtype=layer.weight.data.dtype,
        )
        assert_logits_match(out, dense_forward(layer, frame))

    def test_int8_matches_dequantized_dense(self):
        rng = np.random.default_rng(13)
        layer = Conv2d(3, 4, 3, padding=1, bias=False, rng=rng)
        qw = quantize_int8(layer.weight.data)
        frame = spike_frame((2, 3, 6, 6), 0.1, seed=13, amplitude=0.78)
        out = sparse_conv2d_gather(
            pack_spikes(frame, amplitude=0.78),
            stride=1, padding=1,
            qpacked=pack_conv_weight(qw.q), qscale=qw.scale,
            out_dtype=layer.weight.data.dtype,
        )
        layer.weight.data[...] = qw.dequantize()
        np.testing.assert_allclose(
            out, dense_forward(layer, frame), rtol=1e-9, atol=1e-12
        )

    def test_requires_some_weight(self):
        with pytest.raises(ValueError):
            sparse_conv2d_gather(pack_spikes(np.zeros((1, 2, 3, 3))))


# ======================================================================
# int8 quantization plumbing (satellite: dtype preservation)
# ======================================================================
class TestQuantizationDtype:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_quantize_array_preserves_dtype(self, dtype):
        with default_dtype(dtype):
            values = np.asarray(
                np.random.default_rng(14).normal(size=(8, 8)), dtype=dtype
            )
            assert quantize_array(values, 8).dtype == np.dtype(dtype)

    def test_quantize_int8_matches_quantize_array_grid(self):
        values = np.random.default_rng(15).normal(size=(6, 10))
        qw = quantize_int8(values)
        np.testing.assert_array_equal(qw.dequantize(), quantize_array(values, 8))
        assert qw.q.dtype == np.int8
        assert qw.dequantize().dtype == values.dtype

    def test_quantize_int8_zero_weights(self):
        qw = quantize_int8(np.zeros((3, 3)))
        assert qw.scale == 1.0
        np.testing.assert_array_equal(qw.dequantize(), np.zeros((3, 3)))

    def test_quantize_int8_rejects_bad_bits(self):
        values = np.ones((2, 2))
        with pytest.raises(ValueError):
            quantize_int8(values, bits=1)
        with pytest.raises(ValueError):
            quantize_int8(values, bits=9)


# ======================================================================
# Dispatch-routed network equivalence
# ======================================================================
class TestDispatchEquivalence:
    @pytest.mark.parametrize("mode", ["fused", "stepwise"])
    @pytest.mark.parametrize("encoder_fn", ENCODER_CONFIGS)
    @pytest.mark.parametrize("neuron_fn", NEURON_CONFIGS)
    def test_forced_sparse_matches_dense(self, neuron_fn, encoder_fn, mode):
        images = images_batch()
        dense = build_net(neuron_fn, mode, encoder=encoder_fn())
        ref_logits, ref_spikes = run_recorded(dense, images)

        routed = build_net(neuron_fn, mode, encoder=encoder_fn())
        dispatch = routed.enable_sparse_dispatch(
            defaults=FORCE_SPARSE, count_ops=True
        )
        logits, spikes = run_recorded(routed, images)

        assert_logits_match(logits, ref_logits)
        assert spikes == ref_spikes
        stats = dispatch.layer_stats()
        assert stats, "dispatcher saw no weight layers"
        assert all(st.dense_runs == 0 for st in stats)
        assert sum(st.sparse_runs for st in stats) > 0

    @pytest.mark.parametrize("mode", ["fused", "stepwise"])
    def test_int8_within_quantization_tolerance(self, mode):
        images = images_batch()
        dense = build_net(lambda: IFNeuron(v_threshold=0.6), mode)
        ref_logits, _ = run_recorded(dense, images)
        routed = build_net(lambda: IFNeuron(v_threshold=0.6), mode)
        routed.enable_sparse_dispatch(defaults=FORCE_SPARSE, int8=True)
        logits, _ = run_recorded(routed, images)
        np.testing.assert_allclose(logits, ref_logits, atol=0.05, rtol=0.05)

    @pytest.mark.parametrize("mode", ["fused", "stepwise"])
    def test_dead_neuron_faults_survive_routing(self, mode):
        """Injected dead units change the spike pattern; the sparse path
        must track the faulted dense engine exactly."""
        spec = FaultSpec.dead_neurons(0.3, seed=7)
        images = images_batch()
        dense = build_net(lambda: IFNeuron(v_threshold=0.6), mode)
        with dense.inject_faults(spec):
            ref_logits, ref_spikes = run_recorded(dense, images)
        routed = build_net(lambda: IFNeuron(v_threshold=0.6), mode)
        routed.enable_sparse_dispatch(defaults=FORCE_SPARSE)
        with routed.inject_faults(spec):
            logits, spikes = run_recorded(routed, images)
        assert_logits_match(logits, ref_logits)
        assert spikes == ref_spikes

    @pytest.mark.parametrize("mode", ["fused", "stepwise"])
    def test_streaming_windows_stay_equivalent(self, mode):
        """Warm windows: membranes carry across forwards, so any routed
        divergence would compound — each window must match dense."""
        windows = [images_batch(seed=s) for s in (3, 4, 5)]
        dense = build_net(lambda: LIFNeuron(v_threshold=0.6, leak=0.9), mode)
        routed = build_net(lambda: LIFNeuron(v_threshold=0.6, leak=0.9), mode)
        dispatch = routed.enable_sparse_dispatch(
            defaults=FORCE_SPARSE, count_ops=True
        )
        dense.eval()
        routed.eval()
        with dense.streaming(), routed.streaming(), no_grad():
            for window in windows:
                assert_logits_match(
                    routed(window).data, dense(window).data
                )
        assert sum(st.sparse_runs for st in dispatch.layer_stats()) > 0


class TestDispatchRouting:
    def test_threshold_picks_path_per_layer(self):
        snn = build_net(lambda: IFNeuron(v_threshold=0.6), "fused")
        dispatch = snn.enable_sparse_dispatch(
            defaults={"conv": 1.1, "linear": -1.0}
        )
        run_recorded(snn, images_batch())
        by_kind = {st.kind: st for st in dispatch.layer_stats()}
        assert by_kind["conv"].dense_runs == 0
        assert by_kind["conv"].sparse_runs > 0
        assert by_kind["linear"].sparse_runs == 0
        assert by_kind["linear"].dense_runs > 0

    def test_dense_route_is_bitwise_identical(self):
        """A dense-routed forward goes through the untouched layer
        forward — the dispatcher must not perturb it at all."""
        images = images_batch()
        plain = build_net(lambda: IFNeuron(v_threshold=0.6), "fused")
        ref, _ = run_recorded(plain, images)
        snn = build_net(lambda: IFNeuron(v_threshold=0.6), "fused")
        snn.enable_sparse_dispatch(defaults=FORCE_DENSE, count_ops=True)
        logits, _ = run_recorded(snn, images)
        np.testing.assert_array_equal(logits, ref)

    def test_training_and_grad_passes_bypass_dispatch(self):
        snn = build_net(lambda: IFNeuron(v_threshold=0.6), "stepwise")
        dispatch = snn.enable_sparse_dispatch(defaults=FORCE_SPARSE)
        images = images_batch()
        snn.train()
        snn(images)  # training mode: ineligible
        snn.eval()
        snn(images)  # gradients enabled: ineligible
        assert all(st.calls == 0 for st in dispatch.layer_stats()) or \
            not dispatch.layer_stats()
        with no_grad():
            snn(images)  # eval + no-grad: eligible
        assert sum(st.calls for st in dispatch.layer_stats()) > 0

    def test_disable_restores_dense_engine(self):
        images = images_batch()
        snn = build_net(lambda: IFNeuron(v_threshold=0.6), "fused")
        ref, _ = run_recorded(snn, images)
        snn.enable_sparse_dispatch(defaults=FORCE_SPARSE)
        run_recorded(snn, images)
        snn.disable_sparse_dispatch()
        assert snn.sparse_dispatch is None
        logits, _ = run_recorded(snn, images)
        np.testing.assert_array_equal(logits, ref)

    def test_invalidate_cache_after_weight_mutation(self):
        rng = np.random.default_rng(16)
        layer = Linear(12, 4, bias=False, rng=rng)
        dispatch = SparseDispatch(defaults=FORCE_SPARSE)
        frame = spike_frame((2, 12), 0.25, seed=16)
        x = Tensor(frame)
        first = dispatch.maybe_run(layer, x)
        assert first is not None
        layer.weight.data *= 2.0
        dispatch.invalidate_cache()
        second = dispatch.maybe_run(layer, x)
        assert_logits_match(second.data, dense_forward(layer, frame))

    def test_layer_signatures(self):
        rng = np.random.default_rng(17)
        conv = Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        linear = Linear(64, 10, rng=rng)
        assert layer_signature(conv, (3, 8, 8)) == (
            "conv:cin=3,cout=8,k=3,s=2,p=1,h=8,w=8"
        )
        assert layer_signature(linear, (64,)) == "linear:in=64,out=10"
        with pytest.raises(TypeError):
            layer_signature(Flatten(), (4,))

    def test_crossover_table_lookup(self):
        table = CrossoverTable(
            entries={"linear:in=64,out=10": 0.08}, defaults={"conv": 0.02}
        )
        assert table.threshold("linear:in=64,out=10") == pytest.approx(0.08)
        assert table.threshold("conv:cin=3,cout=8,k=3,s=1,p=1,h=8,w=8") == (
            pytest.approx(0.02)
        )
        # Unlisted linear shapes fall back to the kind default.
        assert table.threshold("linear:in=9,out=9") == pytest.approx(
            CrossoverTable().defaults["linear"]
        )
        assert table.threshold("unknown:x=1") == 0.0

    def test_rejects_foreign_schema(self):
        with pytest.raises(ValueError, match="schema"):
            CrossoverTable.from_artifact({"schema": "something/else"})


# ======================================================================
# Exact accumulate accounting
# ======================================================================
class TestExactAccumulates:
    def test_matches_event_driven_reference(self):
        """Dispatcher op accounting == the validated event-extraction
        engine, layer by layer (stepwise: every layer runs per step)."""
        images = images_batch()
        snn = build_net(lambda: IFNeuron(v_threshold=0.6), "stepwise")
        snn.eval()
        _, counts = EventDrivenNetwork(snn).run(images)
        dispatch = snn.enable_sparse_dispatch(
            defaults=FORCE_SPARSE, count_ops=True
        )
        with no_grad():
            snn(images)
        measured = [st.accumulates for st in dispatch.layer_stats()]
        np.testing.assert_allclose(measured, counts.accumulates)

    def test_path_independent(self):
        """Counting is about what the hardware would pay, not which
        simulator path ran — dense-forced and sparse-forced agree."""
        images = images_batch()
        totals = []
        for defaults in (FORCE_SPARSE, FORCE_DENSE):
            snn = build_net(lambda: IFNeuron(v_threshold=0.6), "stepwise")
            dispatch = snn.enable_sparse_dispatch(
                defaults=defaults, count_ops=True
            )
            run_recorded(snn, images)
            totals.append([st.accumulates for st in dispatch.layer_stats()])
        np.testing.assert_allclose(totals[0], totals[1])

    def test_linear_accumulates_by_hand(self):
        rng = np.random.default_rng(18)
        layer = Linear(10, 6, bias=False, rng=rng)
        dispatch = SparseDispatch(defaults=FORCE_SPARSE, count_ops=True)
        frame = spike_frame((2, 10), 0.3, seed=18)  # 6 events
        dispatch.maybe_run(layer, Tensor(frame))
        (st,) = dispatch.layer_stats()
        assert st.events == int(np.count_nonzero(frame))
        assert st.accumulates == st.events * 6

    def test_event_driven_sparse_execution_unchanged(self):
        """EventDrivenNetwork(sparse=True) runs the gather kernels but
        must report identical logits and event counts."""
        images = images_batch()
        snn = build_net(lambda: IFNeuron(v_threshold=0.6), "stepwise")
        snn.eval()
        ref_logits, ref_counts = EventDrivenNetwork(snn).run(images)
        logits, counts = EventDrivenNetwork(snn, sparse=True).run(images)
        assert_logits_match(logits.data, ref_logits.data)
        np.testing.assert_allclose(counts.accumulates, ref_counts.accumulates)
        assert counts.total == ref_counts.total


# ======================================================================
# Crossover calibration artefact
# ======================================================================
CAL_SIGNATURES = (
    "conv:cin=2,cout=3,k=3,s=1,p=1,h=4,w=4",
    "linear:in=16,out=8",
)
CAL_DENSITIES = (0.01, 0.05, 0.1)


def counting_timer(sparse_wins_below):
    """Deterministic clock: dense probes cost 1.0; a sparse probe at
    grid position i costs 0.5 while ``densities[i] <= sparse_wins_below``
    else 2.0.  Calls arrive dense-first then densities ascending."""
    state = {"n": 0}
    cycle = 1 + len(CAL_DENSITIES)

    def time_fn(fn):
        fn()
        pos = state["n"] % cycle
        state["n"] += 1
        if pos == 0:
            return 1.0
        return 0.5 if CAL_DENSITIES[pos - 1] <= sparse_wins_below else 2.0

    return time_fn


class TestCrossoverCalibration:
    def test_deterministic_under_injected_clock(self):
        artefacts = [
            calibrate_crossover(
                signatures=CAL_SIGNATURES, densities=CAL_DENSITIES,
                batch=4, seed=0, time_fn=counting_timer(0.05),
            )
            for _ in range(2)
        ]
        assert artefacts[0] == artefacts[1]
        assert artefacts[0]["schema"] == CROSSOVER_SCHEMA

    def test_crossover_snaps_to_largest_winning_density(self):
        artefact = calibrate_crossover(
            signatures=CAL_SIGNATURES, densities=CAL_DENSITIES,
            batch=4, seed=0, time_fn=counting_timer(0.05),
        )
        for entry in artefact["entries"]:
            assert entry["crossover_density"] == pytest.approx(0.05)
        never = calibrate_crossover(
            signatures=CAL_SIGNATURES, densities=CAL_DENSITIES,
            batch=4, seed=0, time_fn=counting_timer(-1.0),
        )
        for entry in never["entries"]:
            assert entry["crossover_density"] == 0.0

    def test_artifact_roundtrip(self, tmp_path):
        artefact = calibrate_crossover(
            signatures=CAL_SIGNATURES, densities=CAL_DENSITIES,
            batch=4, seed=0, time_fn=counting_timer(0.1),
        )
        path = tmp_path / "CROSSOVER.json"
        write_artifact(artefact, str(path))
        table = CrossoverTable.load(str(path))
        for signature in CAL_SIGNATURES:
            assert table.threshold(signature) == pytest.approx(0.1)
        # The loaded table routes a real dispatcher.
        snn = build_net(lambda: IFNeuron(v_threshold=0.6), "fused")
        snn.enable_sparse_dispatch(crossover=str(path))
        logits, _ = run_recorded(snn, images_batch())
        ref = build_net(lambda: IFNeuron(v_threshold=0.6), "fused")
        assert_logits_match(logits, run_recorded(ref, images_batch())[0])

    def test_parse_signature_validation(self):
        fields = parse_signature("conv:cin=3,cout=8,k=3,s=1,p=1,h=8,w=8")
        assert fields["cin"] == 3 and fields["_kind"] == "conv"
        with pytest.raises(ValueError):
            parse_signature("dense:in=3")
        with pytest.raises(ValueError):
            parse_signature("conv:cin=3,cout=8")  # geometry missing

    def test_density_grid_validation(self):
        with pytest.raises(ValueError):
            calibrate_crossover(
                signatures=CAL_SIGNATURES, densities=(0.0, 0.1), batch=2,
                time_fn=counting_timer(0.1),
            )


# ======================================================================
# Observability: dispatch gauges and measured energy counts
# ======================================================================
class TestDispatchObservability:
    def test_record_dispatch_profile_gauges(self):
        snn = build_net(lambda: IFNeuron(v_threshold=0.6), "fused")
        dispatch = snn.enable_sparse_dispatch(
            defaults=FORCE_SPARSE, count_ops=True
        )
        run_recorded(snn, images_batch())
        registry = MetricsRegistry()
        rows = record_dispatch_profile(snn, registry=registry)
        assert len(rows) == len(dispatch.layer_stats()) == 2
        gauges = registry.snapshot()["gauges"]
        for layer in range(2):
            for field in ("density", "threshold", "sparse_fraction",
                          "sparse_runs", "dense_runs", "accumulates"):
                assert f"dispatch.{field}{{layer={layer}}}" in gauges
        assert rows[0]["sparse_runs"] > 0

    def test_record_dispatch_profile_without_dispatcher(self):
        snn = build_net(lambda: IFNeuron(v_threshold=0.6), "fused")
        assert record_dispatch_profile(snn, registry=MetricsRegistry()) == []

    def test_report_rows_from_gauges(self):
        from repro.obs.report import _dispatch_rows

        snn = build_net(lambda: IFNeuron(v_threshold=0.6), "fused")
        snn.enable_sparse_dispatch(defaults=FORCE_SPARSE, count_ops=True)
        run_recorded(snn, images_batch())
        registry = MetricsRegistry()
        record_dispatch_profile(snn, registry=registry)
        rows = _dispatch_rows(registry.snapshot()["gauges"])
        assert [row["layer"] for row in rows] == [0, 1]
        assert all(row["sparse_runs"] > 0 for row in rows)

    def test_energy_profile_uses_measured_counts(self):
        snn = build_net(lambda: IFNeuron(v_threshold=0.6), "stepwise")
        snn.enable_sparse_dispatch(defaults=FORCE_SPARSE, count_ops=True)
        snn.eval()
        images = images_batch()
        labels = np.zeros(len(images), dtype=int)
        summary = record_energy_profile(
            snn, [(images, labels)], (1, 4, 4), registry=MetricsRegistry()
        )
        assert summary["measured_counts"] is True
        assert summary["snn_total_flops"] > 0

    def test_energy_profile_estimates_without_counting(self):
        snn = build_net(lambda: IFNeuron(v_threshold=0.6), "stepwise")
        snn.enable_sparse_dispatch(defaults=FORCE_SPARSE)  # count_ops off
        snn.eval()
        images = images_batch()
        labels = np.zeros(len(images), dtype=int)
        summary = record_energy_profile(
            snn, [(images, labels)], (1, 4, 4), registry=MetricsRegistry()
        )
        assert summary["measured_counts"] is False

    def test_fused_prefix_rescale_matches_stepwise(self):
        """The fused engine runs the direct-encoding prefix once per
        forward; _measured_snn_ops rescales it to per-step calls, so
        fused and stepwise runs report identical measured energy."""
        images = images_batch()
        labels = np.zeros(len(images), dtype=int)
        totals = {}
        for mode in ("fused", "stepwise"):
            snn = build_net(lambda: IFNeuron(v_threshold=0.6), mode)
            snn.enable_sparse_dispatch(defaults=FORCE_SPARSE, count_ops=True)
            snn.eval()
            summary = record_energy_profile(
                snn, [(images, labels)], (1, 4, 4), registry=MetricsRegistry()
            )
            assert summary["measured_counts"] is True
            totals[mode] = summary["snn_total_flops"]
        assert totals["fused"] == pytest.approx(totals["stepwise"])
