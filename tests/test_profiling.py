"""Profiling tests: memory meter, T-scaling, timing utilities."""

import numpy as np
import pytest

from repro.conversion import ConversionConfig, convert_dnn_to_snn
from repro.data import DataLoader
from repro.models import vgg11
from repro.nn import CrossEntropyLoss, Linear, Sequential
from repro.profiling import (
    EpochTimeComparison,
    GraphMemoryMeter,
    MemoryReport,
    TimingResult,
    inference_memory,
    parameter_bytes,
    time_callable,
    training_memory,
)
from repro.tensor import Tensor, no_grad


@pytest.fixture(scope="module")
def model_and_loader():
    rng = np.random.default_rng(0)
    model = vgg11(
        num_classes=5, image_size=8, width_multiplier=0.125,
        rng=np.random.default_rng(1),
    )
    images = rng.random((8, 3, 8, 8))
    labels = rng.integers(0, 5, size=8)
    return model, DataLoader(images, labels, batch_size=8)


class TestGraphMemoryMeter:
    def test_counts_graph_tensors(self, rng):
        x = Tensor(rng.normal(size=(10, 10)), requires_grad=True)
        with GraphMemoryMeter() as meter:
            ((x * 2.0) + 1.0).sum()
        assert meter.tensors_created == 3  # mul, add, sum
        assert meter.bytes_allocated >= 2 * 10 * 10 * 8

    def test_ignores_no_grad(self, rng):
        x = Tensor(rng.normal(size=(4, 4)), requires_grad=True)
        with GraphMemoryMeter() as meter:
            with no_grad():
                (x * 2.0).sum()
        assert meter.tensors_created == 0

    def test_patch_restored(self, rng):
        original = Tensor.from_op
        with GraphMemoryMeter():
            pass
        assert Tensor.from_op is original


class TestMemoryReport:
    def test_totals(self):
        report = MemoryReport(
            parameters=100.0, gradients=100.0, optimizer_state=200.0, activations=600.0
        )
        assert report.total == 1000.0
        assert report.total_megabytes == pytest.approx(1000.0 / 2**20)


class TestParameterBytes:
    def test_counts(self, rng):
        model = Sequential(Linear(4, 3, bias=False, rng=rng))
        assert parameter_bytes(model) == 4 * 3 * 8


class TestTrainingMemory:
    def test_snn_memory_grows_with_t(self, model_and_loader):
        """Fig. 3b's core claim: BPTT memory ~ linear in T."""
        model, loader = model_and_loader
        images, labels = next(iter(loader))
        criterion = CrossEntropyLoss()
        reports = {}
        for t in (2, 5):
            conversion = convert_dnn_to_snn(
                model, loader, ConversionConfig(timesteps=t)
            )
            snn = conversion.snn
            snn.train()
            reports[t] = training_memory(
                snn, lambda: criterion(snn(images), labels)
            )
        assert reports[5].activations > 2.0 * reports[2].activations

    def test_report_includes_parameter_terms(self, model_and_loader):
        model, loader = model_and_loader
        images, labels = next(iter(loader))
        criterion = CrossEntropyLoss()
        model.train()
        report = training_memory(
            model,
            lambda: criterion(model(Tensor(images)), labels),
            optimizer_state_copies=2,
        )
        params = parameter_bytes(model)
        assert report.parameters == params
        assert report.optimizer_state == 2 * params
        assert report.activations > 0


class TestInferenceMemory:
    def test_dnn_report(self, model_and_loader):
        model, _ = model_and_loader
        report = inference_memory(model, (3, 8, 8), batch_size=4)
        assert report.gradients == 0.0
        assert report.activations > 0

    def test_snn_nearly_t_independent(self, model_and_loader):
        """Fig. 3b: inference memory barely moves with T."""
        model, loader = model_and_loader
        totals = {}
        for t in (2, 5):
            conversion = convert_dnn_to_snn(
                model, loader, ConversionConfig(timesteps=t)
            )
            totals[t] = inference_memory(conversion.snn, (3, 8, 8), 4).total
        assert totals[5] < 1.2 * totals[2]


class TestTiming:
    def test_time_callable_stats(self):
        result = time_callable(lambda: sum(range(1000)), repeats=3, warmup=1)
        assert len(result.samples) == 3
        assert result.minimum <= result.mean <= result.maximum
        assert result.minimum <= result.median <= result.maximum
        assert result.std >= 0.0

    def test_repeats_validation(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, repeats=0)

    def test_warmup_validation(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, warmup=-1)

    def test_warmup_runs_are_discarded(self):
        calls = []
        time_callable(lambda: calls.append(1), repeats=2, warmup=3)
        assert len(calls) == 5  # 3 warmups + 2 timed

    def test_median_odd_and_even(self):
        assert TimingResult(samples=[3.0, 1.0, 2.0]).median == 2.0
        assert TimingResult(samples=[4.0, 1.0, 2.0, 3.0]).median == 2.5

    def test_std_matches_numpy(self):
        samples = [0.1, 0.4, 0.2, 0.9]
        assert TimingResult(samples=samples).std == pytest.approx(
            np.std(samples)
        )
        assert TimingResult(samples=[0.5]).std == 0.0

    def test_percentile_interpolates(self):
        result = TimingResult(samples=[1.0, 2.0, 3.0, 4.0])
        assert result.percentile(0.0) == 1.0
        assert result.percentile(100.0) == 4.0
        assert result.percentile(50.0) == result.median
        assert result.p95 == pytest.approx(np.percentile([1, 2, 3, 4], 95))

    def test_percentile_validation(self):
        result = TimingResult(samples=[1.0])
        with pytest.raises(ValueError):
            result.percentile(101.0)
        with pytest.raises(ValueError):
            TimingResult(samples=[]).percentile(50.0)

    def test_summary_is_json_ready(self):
        import json

        summary = TimingResult(samples=[0.2, 0.1, 0.3]).summary()
        assert summary["repeats"] == 3
        assert summary["median_s"] == 0.2
        assert summary["min_s"] == 0.1 and summary["max_s"] == 0.3
        assert summary["p95_s"] <= summary["max_s"]
        json.dumps(summary)

    def test_epoch_comparison_speedups(self):
        comparison = EpochTimeComparison(
            labels=["T=2", "T=5"],
            train_seconds=[1.0, 2.4],
            inference_seconds=[0.5, 1.2],
        )
        speedups = comparison.speedup_vs("T=5")
        assert speedups == pytest.approx([2.4, 1.0])
        with pytest.raises(KeyError):
            comparison.speedup_vs("T=99")
