"""IF/LIF neuron dynamics (paper Eqs. 2-4 and 8) and surrogate gradients."""

import numpy as np
import pytest

from repro.nn import Parameter
from repro.snn import (
    IFNeuron,
    LIFNeuron,
    SpikingNeuron,
    available_surrogates,
    boxcar,
    get_surrogate,
    spike_function,
    triangle,
)
from repro.tensor import Tensor


class TestSpikeFunction:
    def test_forward_amplitude(self):
        u = Tensor(np.array([0.5, 1.5, 3.0]))
        v = Parameter(np.array([1.0]))
        out = spike_function(u, v, beta=0.7, surrogate=boxcar)
        np.testing.assert_allclose(out.data, [0.0, 0.7, 0.7])

    def test_no_spike_at_threshold(self):
        # Eq. 3 uses strict inequality: U == V^th does not fire.
        u = Tensor(np.array([1.0]))
        out = spike_function(u, Parameter(np.array([1.0])), 1.0, boxcar)
        np.testing.assert_allclose(out.data, [0.0])

    def test_surrogate_gradient_window(self):
        u = Tensor(np.array([-0.5, 0.5, 1.5, 2.5]), requires_grad=True)
        v = Parameter(np.array([1.0]))
        spike_function(u, v, 1.0, boxcar).sum().backward()
        # boxcar: 1 on [0, 2*v_th]
        np.testing.assert_allclose(u.grad, [0.0, 1.0, 1.0, 0.0])

    def test_threshold_gradient_terms(self):
        u = Tensor(np.array([1.5]))
        v = Parameter(np.array([1.0]))
        out = spike_function(u, v, beta=2.0, surrogate=boxcar)
        out.sum().backward()
        # d(beta*v*H)/dv = beta*H - window = 2 - 1
        np.testing.assert_allclose(v.grad, [1.0])

    def test_rejects_nonpositive_threshold(self):
        with pytest.raises(ValueError):
            spike_function(Tensor([1.0]), Parameter(np.array([0.0])), 1.0, boxcar)


class TestIFNeuronDynamics:
    def test_subthreshold_integration(self):
        n = IFNeuron(v_threshold=1.0)
        out = n(Tensor(np.array([0.4])))
        np.testing.assert_allclose(out.data, [0.0])
        np.testing.assert_allclose(n.membrane.data, [0.4])

    def test_spike_and_soft_reset(self):
        n = IFNeuron(v_threshold=1.0)
        n(Tensor(np.array([0.7])))
        out = n(Tensor(np.array([0.7])))  # membrane 1.4 > 1.0
        np.testing.assert_allclose(out.data, [1.0])
        np.testing.assert_allclose(n.membrane.data, [0.4], atol=1e-12)

    def test_beta_scales_output_not_reset(self):
        n = IFNeuron(v_threshold=1.0, beta=1.5)
        out = n(Tensor(np.array([1.2])))
        np.testing.assert_allclose(out.data, [1.5])
        # reset subtracts V^th, not beta*V^th
        np.testing.assert_allclose(n.membrane.data, [0.2], atol=1e-12)

    def test_rate_approximates_activation(self):
        # Long-run IF firing rate ~ clip(input, 0, v_th) / v_th.
        n = IFNeuron(v_threshold=1.0)
        steps, current = 1000, 0.3141
        total = 0.0
        for _ in range(steps):
            total += n(Tensor(np.array([current]))).data[0]
        assert abs(total / steps - current) < 2.0 / steps * 1.0 + 1e-3

    def test_charge_conservation(self):
        # spikes * V^th + membrane == total injected charge (lambda=1).
        n = IFNeuron(v_threshold=0.8)
        rng = np.random.default_rng(0)
        currents = rng.uniform(0.0, 1.0, size=50)
        emitted = 0.0
        for c in currents:
            emitted += n(Tensor(np.array([c]))).data[0]
        np.testing.assert_allclose(
            emitted + n.membrane.data[0], currents.sum(), atol=1e-9
        )

    def test_initial_potential_shifts_first_spike(self):
        plain = IFNeuron(v_threshold=1.0)
        shifted = IFNeuron(v_threshold=1.0, initial_potential=0.5)
        c = Tensor(np.array([0.6]))
        assert plain(c).data[0] == 0.0
        assert shifted(c).data[0] == 1.0  # 0.5 + 0.6 > 1.0

    def test_reset_state(self):
        n = IFNeuron(v_threshold=1.0)
        n(Tensor(np.array([0.4])))
        n.reset_state()
        assert n.membrane is None

    def test_negative_currents_accumulate(self):
        n = IFNeuron(v_threshold=1.0)
        n(Tensor(np.array([-0.5])))
        np.testing.assert_allclose(n.membrane.data, [-0.5])


class TestLIFNeuron:
    def test_leak_decays_membrane(self):
        n = LIFNeuron(v_threshold=10.0, leak=0.5)
        n(Tensor(np.array([1.0])))
        n(Tensor(np.array([0.0])))
        np.testing.assert_allclose(n.membrane.data, [0.5])

    def test_leak_one_is_if(self):
        lif = LIFNeuron(v_threshold=1.0, leak=1.0)
        iff = IFNeuron(v_threshold=1.0)
        for c in (0.3, 0.5, 0.9):
            a = lif(Tensor(np.array([c]))).data
            b = iff(Tensor(np.array([c]))).data
            np.testing.assert_allclose(a, b)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SpikingNeuron(v_threshold=-1.0)
        with pytest.raises(ValueError):
            SpikingNeuron(beta=0.0)
        with pytest.raises(ValueError):
            SpikingNeuron(leak=1.5)

    def test_trainable_flag(self):
        frozen = SpikingNeuron(trainable=False)
        assert not frozen.v_threshold.requires_grad
        assert not frozen.leak.requires_grad

    def test_leak_gradient_flows(self):
        n = LIFNeuron(v_threshold=10.0, leak=0.5)
        n(Tensor(np.array([2.0])))
        out = n(Tensor(np.array([2.0])))
        # No spike (threshold 10); membrane = leak*2 + 2; use membrane sum
        n.membrane.sum().backward()
        assert n.leak.grad is not None and n.leak.grad[0] != 0.0


class TestSpikeRecording:
    def test_counts_spikes(self):
        n = IFNeuron(v_threshold=1.0)
        n.recording = True
        n(Tensor(np.full((2, 3), 1.5)))
        assert n.spike_count == 6
        assert n.neuron_count == 3  # per-sample neurons (excl. batch dim)
        assert n.step_count == 1

    def test_reset_spike_stats(self):
        n = IFNeuron(v_threshold=1.0)
        n.recording = True
        n(Tensor(np.full((1, 2), 1.5)))
        n.reset_spike_stats()
        assert n.spike_count == 0 and n.step_count == 0


class TestSurrogates:
    def test_registry(self):
        assert set(available_surrogates()) >= {
            "boxcar", "triangle", "fast_sigmoid", "arctan",
        }
        assert get_surrogate("boxcar") is boxcar
        with pytest.raises(KeyError):
            get_surrogate("mystery")

    def test_boxcar_window(self):
        u = np.array([-0.1, 0.0, 1.0, 2.0, 2.1])
        np.testing.assert_allclose(boxcar(u, 1.0), [0, 1, 1, 1, 0])

    def test_triangle_peak_at_threshold(self):
        u = np.array([0.0, 1.0, 2.0])
        out = triangle(u, 1.0)
        np.testing.assert_allclose(out, [0.0, 1.0, 0.0])

    def test_all_surrogates_nonnegative(self):
        u = np.linspace(-5, 5, 101)
        for name in available_surrogates():
            assert np.all(get_surrogate(name)(u, 1.0) >= 0.0)

    def test_all_surrogates_peak_near_threshold(self):
        u = np.linspace(-5, 5, 1001)
        for name in available_surrogates():
            values = get_surrogate(name)(u, 1.0)
            peak = u[values.argmax()]
            assert -0.1 <= peak <= 2.1
