"""Data substrate tests: synthetic datasets, transforms, loader."""

import numpy as np
import pytest

from repro.data import (
    AdditiveGaussianNoise,
    Compose,
    DataLoader,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    SyntheticImageConfig,
    SyntheticImageDataset,
    synth_cifar10,
    synth_cifar100,
)


class TestSyntheticDataset:
    def test_shapes_and_range(self):
        ds = synth_cifar10(image_size=16, train_size=50, test_size=20, seed=0)
        assert ds.train_images.shape == (50, 3, 16, 16)
        assert ds.test_images.shape == (20, 3, 16, 16)
        assert ds.train_images.min() >= 0.0 and ds.train_images.max() <= 1.0

    def test_deterministic_given_seed(self):
        a = synth_cifar10(image_size=8, train_size=30, test_size=10, seed=7)
        b = synth_cifar10(image_size=8, train_size=30, test_size=10, seed=7)
        np.testing.assert_allclose(a.train_images, b.train_images)
        np.testing.assert_array_equal(a.train_labels, b.train_labels)

    def test_different_seeds_differ(self):
        a = synth_cifar10(image_size=8, train_size=30, test_size=10, seed=1)
        b = synth_cifar10(image_size=8, train_size=30, test_size=10, seed=2)
        assert not np.allclose(a.train_images, b.train_images)

    def test_label_balance(self):
        ds = synth_cifar10(image_size=8, train_size=100, test_size=20, seed=0)
        counts = np.bincount(ds.train_labels, minlength=10)
        assert counts.min() == counts.max() == 10

    def test_cifar100_has_100_classes(self):
        ds = synth_cifar100(image_size=8, train_size=200, test_size=100, seed=0)
        assert ds.num_classes == 100
        assert set(np.unique(ds.train_labels)) == set(range(100))

    def test_train_test_disjoint_noise(self):
        ds = synth_cifar10(image_size=8, train_size=30, test_size=30, seed=0)
        assert not np.allclose(ds.train_images[:10], ds.test_images[:10])

    def test_classes_are_distinguishable(self):
        # Class means should differ far more than within-class scatter.
        ds = synth_cifar10(image_size=8, train_size=200, test_size=20, seed=0)
        means = np.stack([
            ds.train_images[ds.train_labels == c].mean(axis=0).reshape(-1)
            for c in range(10)
        ])
        between = np.linalg.norm(means - means.mean(axis=0), axis=1).mean()
        assert between > 0.1

    def test_channel_stats(self):
        ds = synth_cifar10(image_size=8, train_size=40, test_size=10, seed=0)
        mean, std = ds.channel_stats()
        assert mean.shape == (3,) and std.shape == (3,)
        assert np.all(std > 0)

    def test_input_shape(self):
        ds = synth_cifar10(image_size=12, train_size=20, test_size=10, seed=0)
        assert ds.input_shape == (3, 12, 12)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SyntheticImageConfig(num_classes=1)
        with pytest.raises(ValueError):
            SyntheticImageConfig(image_size=2)
        with pytest.raises(ValueError):
            SyntheticImageConfig(train_size=5, num_classes=10)


class TestTransforms:
    def test_normalize(self, rng):
        batch = rng.random((8, 3, 4, 4))
        mean, std = batch.mean(axis=(0, 2, 3)), batch.std(axis=(0, 2, 3))
        out = Normalize(mean, std)(batch, rng)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-10)

    def test_normalize_rejects_zero_std(self):
        with pytest.raises(ValueError):
            Normalize(np.zeros(3), np.zeros(3))

    def test_flip_probability_one(self, rng):
        batch = rng.random((4, 1, 3, 3))
        out = RandomHorizontalFlip(p=1.0)(batch, rng)
        np.testing.assert_allclose(out, batch[:, :, :, ::-1])

    def test_flip_probability_zero(self, rng):
        batch = rng.random((4, 1, 3, 3))
        np.testing.assert_allclose(RandomHorizontalFlip(p=0.0)(batch, rng), batch)

    def test_random_crop_preserves_shape(self, rng):
        batch = rng.random((4, 3, 8, 8))
        assert RandomCrop(2)(batch, rng).shape == batch.shape

    def test_random_crop_zero_padding_identity(self, rng):
        batch = rng.random((2, 1, 4, 4))
        np.testing.assert_allclose(RandomCrop(0)(batch, rng), batch)

    def test_noise(self, rng):
        batch = np.zeros((2, 1, 4, 4))
        out = AdditiveGaussianNoise(0.1)(batch, rng)
        assert out.std() > 0
        np.testing.assert_allclose(AdditiveGaussianNoise(0.0)(batch, rng), batch)

    def test_compose_order(self, rng):
        batch = rng.random((2, 3, 4, 4))
        mean, std = batch.mean(axis=(0, 2, 3)), batch.std(axis=(0, 2, 3))
        pipeline = Compose([RandomHorizontalFlip(1.0), Normalize(mean, std)])
        out = pipeline(batch, rng)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)

    def test_rejects_non_batch(self, rng):
        with pytest.raises(ValueError):
            Normalize(np.zeros(3), np.ones(3))(rng.random((3, 4, 4)), rng)


class TestDataLoader:
    def test_batch_shapes(self, rng):
        images, labels = rng.random((10, 1, 2, 2)), np.arange(10)
        loader = DataLoader(images, labels, batch_size=4)
        batches = list(loader)
        assert [b[0].shape[0] for b in batches] == [4, 4, 2]

    def test_drop_last(self, rng):
        loader = DataLoader(rng.random((10, 1, 2, 2)), np.arange(10), 4, drop_last=True)
        assert len(loader) == 2
        assert all(b[0].shape[0] == 4 for b in loader)

    def test_len(self, rng):
        loader = DataLoader(rng.random((10, 1, 2, 2)), np.arange(10), 4)
        assert len(loader) == 3

    def test_shuffle_changes_order_between_epochs(self, rng):
        labels = np.arange(32)
        loader = DataLoader(rng.random((32, 1, 2, 2)), labels, 32, shuffle=True)
        first = next(iter(loader))[1]
        second = next(iter(loader))[1]
        assert not np.array_equal(first, second)

    def test_no_shuffle_preserves_order(self, rng):
        labels = np.arange(8)
        loader = DataLoader(rng.random((8, 1, 2, 2)), labels, 8)
        np.testing.assert_array_equal(next(iter(loader))[1], labels)

    def test_transform_applied(self, rng):
        images = np.ones((4, 1, 2, 2))
        loader = DataLoader(
            images, np.zeros(4), 4, transform=Normalize(np.array([1.0]), np.array([2.0]))
        )
        batch, _ = next(iter(loader))
        np.testing.assert_allclose(batch, 0.0)

    def test_length_mismatch_rejected(self, rng):
        with pytest.raises(ValueError):
            DataLoader(rng.random((4, 1, 2, 2)), np.zeros(3), 2)

    def test_bad_batch_size_rejected(self, rng):
        with pytest.raises(ValueError):
            DataLoader(rng.random((4, 1, 2, 2)), np.zeros(4), 0)
