"""Matmul variants (vector/matrix/batched) and their gradients."""

import numpy as np

from repro.tensor import Tensor, check_gradients


class TestMatmulForward:
    def test_matrix_matrix(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(4, 5))
        np.testing.assert_allclose(Tensor(a).matmul(Tensor(b)).data, a @ b)

    def test_operator(self, rng):
        a, b = rng.normal(size=(2, 2)), rng.normal(size=(2, 2))
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_vector_vector(self, rng):
        a, b = rng.normal(size=4), rng.normal(size=4)
        np.testing.assert_allclose(Tensor(a).matmul(Tensor(b)).data, a @ b)

    def test_matrix_vector(self, rng):
        a, b = rng.normal(size=(3, 4)), rng.normal(size=4)
        np.testing.assert_allclose(Tensor(a).matmul(Tensor(b)).data, a @ b)

    def test_vector_matrix(self, rng):
        a, b = rng.normal(size=3), rng.normal(size=(3, 4))
        np.testing.assert_allclose(Tensor(a).matmul(Tensor(b)).data, a @ b)

    def test_batched(self, rng):
        a, b = rng.normal(size=(5, 3, 4)), rng.normal(size=(5, 4, 2))
        np.testing.assert_allclose(Tensor(a).matmul(Tensor(b)).data, a @ b)

    def test_broadcast_batch(self, rng):
        a, b = rng.normal(size=(5, 3, 4)), rng.normal(size=(4, 2))
        np.testing.assert_allclose(Tensor(a).matmul(Tensor(b)).data, a @ b)


class TestMatmulGradients:
    def test_matrix_matrix(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        check_gradients(lambda x, y: x.matmul(y), [a, b])

    def test_vector_vector(self, rng):
        a = Tensor(rng.normal(size=4), requires_grad=True)
        b = Tensor(rng.normal(size=4), requires_grad=True)
        check_gradients(lambda x, y: x.matmul(y), [a, b])

    def test_matrix_vector(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=4), requires_grad=True)
        check_gradients(lambda x, y: x.matmul(y), [a, b])

    def test_vector_matrix(self, rng):
        a = Tensor(rng.normal(size=3), requires_grad=True)
        b = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        check_gradients(lambda x, y: x.matmul(y), [a, b])

    def test_batched(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 4, 2)), requires_grad=True)
        check_gradients(lambda x, y: x.matmul(y), [a, b])

    def test_broadcast_batch(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        check_gradients(lambda x, y: x.matmul(y), [a, b])

    def test_batched_matrix_vector(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=4), requires_grad=True)
        check_gradients(lambda x, y: x.matmul(y), [a, b])
