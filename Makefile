# Convenience targets for the reproduction repository.

.PHONY: install test bench bench-check bench-baseline microbench quicktest smoke faults-smoke profile-smoke stream-smoke sparse-smoke exec-smoke exec-obs-smoke runs-gc examples clean

install:
	python setup.py develop

test:
	pytest tests/

quicktest:
	pytest tests/ --ignore=tests/test_experiment_drivers.py -q

# Hot-kernel benchmarks + regression gate: time the registered benches
# into a scratch report and fail if any kernel's median regressed past
# the threshold vs the latest committed BENCH_<seq>.json baseline.
bench:
	@mkdir -p results
	PYTHONPATH=src python -m repro.bench run --out results/bench_current.json
	PYTHONPATH=src python -m repro.bench compare --candidate results/bench_current.json

# Run the suite now and gate against the newest committed baseline —
# the pre-merge check for perf-sensitive changes.  Identical gate to
# `bench`, kept as its own name so CI scripts read as intent.
bench-check:
	@mkdir -p results
	PYTHONPATH=src python -m repro.bench run --out results/bench_check.json --quiet
	PYTHONPATH=src python -m repro.bench compare --candidate results/bench_check.json

# Record a new committed baseline point (BENCH_<next seq>.json).
bench-baseline:
	PYTHONPATH=src python -m repro.bench run

# The same bench definitions through pytest-benchmark (rich statistics).
microbench:
	pytest benchmarks/test_microbench.py --benchmark-only -s

# Tiny instrumented convert+evaluate pipeline; fails unless a non-empty
# trace with the expected spans, spike-rate histograms, conversion
# drift records and energy gauges is produced, the run registers in the
# run registry, an identical-seed self-diff is regression-free, and
# `dashboard --once` renders deterministically.  Runs the
# fault-tolerance smoke first, then the op-profiled variant (a
# strict superset of the plain pipeline assertions), then the
# streaming SLO + canary gate smoke, then the sparse-dispatch smoke,
# then the parallel-executor supervision smoke, and finally the
# distributed-observability (worker telemetry) smoke.
smoke: faults-smoke profile-smoke stream-smoke sparse-smoke exec-smoke exec-obs-smoke

# Parallel-execution check: map/reduce results must be bitwise
# identical at workers 1/2/4, survive a deterministic chaos worker
# kill unchanged, quarantine a poison task into an explicit partial
# result, degrade to serial on an unavailable start method, and keep
# an identical-seed obs diff clean between a clean and a chaos-killed
# parallel fault sweep (cross-worker-count diffs flag the executor
# config informationally, never as a gate).
exec-smoke:
	PYTHONPATH=src python -m repro.exec.smoke

# Distributed-observability check: an observed instrumented map must
# produce a schema-valid merged worker_telemetry.jsonl that is bitwise
# identical at workers 1/2/4, worker spans must stitch under the
# exec.map dispatch span, an observed 4-worker fault sweep must match
# a serial observed run on every aggregate counter, a chaos worker
# kill mid-telemetry-write must leave payload and canonical bytes
# unchanged, and the obs diffs must stay clean/informational.
exec-obs-smoke:
	PYTHONPATH=src python -m repro.exec.obs_smoke

# Event-driven sparse execution check: crossover calibration must be
# deterministic under a fixed time_fn and round-trip through its
# artefact, a low-activity pipeline must route most weight-layer
# forwards through the sparse gather kernels with dense-identical
# logits (int8 within quantization tolerance), measured accumulate
# counts must reach the energy.* gauges alongside dispatch.* telemetry
# in report + dashboard, and an identical-seed self-diff must be clean.
sparse-smoke:
	PYTHONPATH=src python -m repro.snn.sparse_smoke

# The same smoke pipeline with the op profiler on: both runs must write
# profile.jsonl + a repro.obs.profile/v1 summary with per-layer
# attribution and deterministic aggregate keys, register the artefacts
# in the run registry, export a loadable Chrome trace, and keep the
# identical-seed self-diff clean with the profile series aligned.
profile-smoke:
	PYTHONPATH=src python -m repro.obs.smoke --profile

# Streaming SLO + canary gate check: a short seeded stream must write
# schema-valid slo.jsonl / slo_summary.json registered in the run
# registry, injected burst windows must raise an slo_breach alert
# visible in dashboard --once and the report, an identical-seed
# self-canary must exit 0 (promote) and a weight-pruned candidate must
# exit 1 (rollback) through the direction-aware diff engine.
stream-smoke:
	PYTHONPATH=src python -m repro.stream.smoke

# Compact the observed-run registry: drop entries whose run directories
# are gone and keep only the 20 newest runs (the baseline always stays).
runs-gc:
	PYTHONPATH=src python -m repro.obs runs gc --keep 20

# Deterministic fault-injection + NonFiniteGuard recovery check:
# null-spec bitwise identity in both execution modes, seeded fault
# reproducibility, fault telemetry, and guarded NaN recovery.
faults-smoke:
	PYTHONPATH=src python -m repro.faults.smoke

examples:
	python examples/quickstart.py
	python examples/energy_audit.py
	python examples/conversion_strategies.py
	python examples/custom_architecture.py
	python examples/encoding_comparison.py
	python examples/event_stream_classification.py
	python examples/batchnorm_folding.py
	python examples/neuromorphic_deployment.py

clean:
	rm -rf build dist *.egg-info .pytest_cache results
	find . -name __pycache__ -type d -exec rm -rf {} +
