# Convenience targets for the reproduction repository.

.PHONY: install test bench quicktest smoke examples clean

install:
	python setup.py develop

test:
	pytest tests/

quicktest:
	pytest tests/ --ignore=tests/test_experiment_drivers.py -q

bench:
	pytest benchmarks/ --benchmark-only -s

# Tiny instrumented convert+evaluate pipeline; fails unless a non-empty
# trace with the expected spans and spike-rate histograms is produced.
smoke:
	PYTHONPATH=src python -m repro.obs.smoke

examples:
	python examples/quickstart.py
	python examples/energy_audit.py
	python examples/conversion_strategies.py
	python examples/custom_architecture.py
	python examples/encoding_comparison.py
	python examples/event_stream_classification.py
	python examples/batchnorm_folding.py
	python examples/neuromorphic_deployment.py

clean:
	rm -rf build dist *.egg-info .pytest_cache results
	find . -name __pycache__ -type d -exec rm -rf {} +
