"""Setup shim for legacy editable installs (`pip install -e . --no-use-pep517`).

The offline environment has no `wheel` package, so PEP-660 editable
installs are unavailable; metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
