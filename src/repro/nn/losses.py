"""Loss functions."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, log_softmax, one_hot
from .module import Module


class CrossEntropyLoss(Module):
    """Softmax cross-entropy over integer class labels.

    ``forward(logits, labels)`` where ``logits`` is ``(N, C)`` and
    ``labels`` a length-N integer array.  Returns the mean loss.
    """

    def __init__(self, label_smoothing: float = 0.0) -> None:
        super().__init__()
        if not 0.0 <= label_smoothing < 1.0:
            raise ValueError("label_smoothing must be in [0, 1)")
        self.label_smoothing = label_smoothing

    def forward(self, logits: Tensor, labels: np.ndarray) -> Tensor:
        if logits.ndim != 2:
            raise ValueError(f"logits must be (N, C), got {logits.shape}")
        n, c = logits.shape
        targets = one_hot(labels, c)
        if self.label_smoothing > 0.0:
            targets = (
                targets * (1.0 - self.label_smoothing) + self.label_smoothing / c
            )
        log_probs = log_softmax(logits, axis=1)
        return -(log_probs * Tensor(targets)).sum() * (1.0 / n)


class MSELoss(Module):
    """Mean squared error between two tensors."""

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        target = target if isinstance(target, Tensor) else Tensor(target)
        diff = prediction - target
        return (diff * diff).mean()
