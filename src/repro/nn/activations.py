"""Activation layers, including the paper's trainable-threshold ReLU.

:class:`ThresholdReLU` implements Eq. (1) of the paper:

    Y = clip(W X, 0, mu)

with ``mu`` a *trainable* scalar clipping threshold learned by gradient
descent alongside the weights (following TCL, Ho & Chang 2021).  After
DNN training, ``mu`` is the quantity the conversion algorithm scales by
``alpha`` to obtain the SNN firing threshold ``V^th = alpha * mu``.

The layer can record its pre-activation inputs into an attached
:class:`ActivationRecorder`, which is how the percentile statistics for
Algorithm 1 and the analytical error model (Eqs. 6-7) are gathered.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..tensor import Tensor, relu, threshold_relu
from .module import Module, Parameter


class ReLU(Module):
    """Plain rectifier ``max(x, 0)``."""

    def forward(self, x: Tensor) -> Tensor:
        return relu(x)


class ActivationRecorder:
    """Accumulates flattened pre-activation samples from a layer.

    A recorder is attached to a :class:`ThresholdReLU` (or compatible)
    layer; during forward passes the layer appends its raw pre-activation
    values.  ``values()`` concatenates everything recorded so far.  An
    optional ``max_samples`` reservoir bound keeps memory in check on
    large sweeps (the subsample is deterministic: a fixed stride).
    """

    def __init__(self, max_samples: Optional[int] = None) -> None:
        self.max_samples = max_samples
        self._chunks: List[np.ndarray] = []
        self._count = 0

    def record(self, values: np.ndarray) -> None:
        flat = np.asarray(values, dtype=np.float64).reshape(-1)
        if self.max_samples is not None and self._count >= self.max_samples:
            return
        if self.max_samples is not None:
            remaining = self.max_samples - self._count
            if flat.size > remaining:
                stride = max(1, flat.size // remaining)
                flat = flat[::stride][:remaining]
        self._chunks.append(flat.copy())
        self._count += flat.size

    def values(self) -> np.ndarray:
        if not self._chunks:
            return np.empty(0)
        return np.concatenate(self._chunks)

    def clear(self) -> None:
        self._chunks = []
        self._count = 0

    def __len__(self) -> int:
        return self._count


class ThresholdReLU(Module):
    """Trainable-threshold clipping activation (paper Eq. 1).

    Parameters
    ----------
    init_threshold:
        Initial value of the trainable threshold ``mu``.
    trainable:
        If False, ``mu`` is frozen (used to emulate the *non-trainable*
        ``d_max`` threshold of Deng et al. [15] in the Fig. 2 baseline).
    """

    def __init__(self, init_threshold: float = 1.0, trainable: bool = True) -> None:
        super().__init__()
        if init_threshold <= 0:
            raise ValueError("threshold must be positive")
        self.mu = Parameter(np.array([float(init_threshold)]))
        self.trainable = trainable
        if not trainable:
            self.mu.requires_grad = False
        self.recorder: Optional[ActivationRecorder] = None

    @property
    def threshold(self) -> float:
        """Current scalar value of ``mu``."""
        return float(self.mu.data[0])

    def set_threshold(self, value: float) -> None:
        if value <= 0:
            raise ValueError("threshold must be positive")
        self.mu.data[0] = float(value)

    def forward(self, x: Tensor) -> Tensor:
        if self.recorder is not None:
            self.recorder.record(x.data)
        return threshold_relu(x, self.mu)

    def extra_repr(self) -> str:
        return f"mu={self.threshold:.4f}, trainable={self.trainable}"
