"""Fully-connected layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor
from . import init
from .module import Module, Parameter


class Linear(Module):
    """Affine transform ``y = x W^T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input / output width.
    bias:
        Whether to include the additive bias term.  The paper's SNN
        conversion drops biases (Section III-B), so SNN-bound networks
        are typically built with ``bias=False``.
    rng:
        Generator used for weight init (Kaiming-uniform).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x.matmul(self.weight.T)
        if self.bias is not None:
            out = out + self.bias
        return out

    def extra_repr(self) -> str:
        return (
            f"in_features={self.in_features}, out_features={self.out_features}, "
            f"bias={self.bias is not None}"
        )
