"""Dropout regulariser.

The paper avoids BatchNorm (it cannot survive the bias-free conversion)
and regularises both the DNN and the SNN with dropout (Section IV-A).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, dropout
from .module import Module


class Dropout(Module):
    """Inverted dropout; identity in eval mode.

    A dedicated generator keeps dropout masks reproducible and
    independent of any other randomness in the program.
    """

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return dropout(x, self.p, self.rng, training=self.training)

    def extra_repr(self) -> str:
        return f"p={self.p}"
