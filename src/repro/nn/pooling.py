"""Pooling layers (non-overlapping windows)."""

from __future__ import annotations

from ..tensor import Tensor, avg_pool2d, global_avg_pool2d, max_pool2d
from .module import Module


class MaxPool2d(Module):
    """Max pooling.  The paper deliberately uses max pooling (Section
    IV-A): on binary spike maps it outputs binary spikes, keeping all
    hidden layers accumulate-only."""

    def __init__(self, kernel_size: int, stride: int = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = kernel_size if stride is None else stride

    def forward(self, x: Tensor) -> Tensor:
        return max_pool2d(x, self.kernel_size, self.stride)

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}"


class AvgPool2d(Module):
    """Average pooling."""

    def __init__(self, kernel_size: int, stride: int = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = kernel_size if stride is None else stride

    def forward(self, x: Tensor) -> Tensor:
        return avg_pool2d(x, self.kernel_size, self.stride)

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}"


class GlobalAvgPool2d(Module):
    """Average over all spatial positions; output shape ``(N, C)``."""

    def forward(self, x: Tensor) -> Tensor:
        return global_avg_pool2d(x)
