"""2-D convolution layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..tensor import Tensor, conv2d
from . import init
from .module import Module, Parameter


class Conv2d(Module):
    """2-D convolution over NCHW inputs with square kernels.

    Parameters mirror the common deep-learning convention; ``bias=False``
    is the default used by SNN-bound networks in this library since the
    conversion pipeline omits biases (paper Section III-B).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if kernel_size <= 0 or stride <= 0 or padding < 0:
            raise ValueError("invalid conv geometry")
        rng = rng if rng is not None else np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng))
        self.bias = Parameter(init.zeros(out_channels)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(
            x, self.weight, self.bias, stride=self.stride, padding=self.padding
        )

    def extra_repr(self) -> str:
        return (
            f"{self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, stride={self.stride}, "
            f"padding={self.padding}, bias={self.bias is not None}"
        )
