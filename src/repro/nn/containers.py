"""Container modules."""

from __future__ import annotations

from typing import Iterator, List

from ..tensor import Tensor
from .module import Module


class Sequential(Module):
    """Chain of modules applied in order.

    Supports indexing, iteration and ``append`` so converters can walk
    and rebuild layer pipelines.
    """

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self._layer_list: List[Module] = []
        for layer in layers:
            self.append(layer)

    def append(self, layer: Module) -> "Sequential":
        index = len(self._layer_list)
        self._layer_list.append(layer)
        self.add_module(str(index), layer)
        return self

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layer_list:
            x = layer(x)
        return x

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Sequential(*self._layer_list[index])
        return self._layer_list[index]

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layer_list)

    def __len__(self) -> int:
        return len(self._layer_list)


class Flatten(Module):
    """Flatten all dims after the batch dim."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten_batch()


class Identity(Module):
    """No-op module (useful as a placeholder in rebuilt pipelines)."""

    def forward(self, x: Tensor) -> Tensor:
        return x
