"""Neural-network layer library built on :mod:`repro.tensor`."""

from . import init
from .activations import ActivationRecorder, ReLU, ThresholdReLU
from .batchnorm import BatchNorm2d, fold_all_batchnorms, fold_batchnorm
from .containers import Flatten, Identity, Sequential
from .conv import Conv2d
from .dropout import Dropout
from .linear import Linear
from .losses import CrossEntropyLoss, MSELoss
from .module import Module, Parameter
from .pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d

__all__ = [
    "ActivationRecorder",
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "CrossEntropyLoss",
    "Dropout",
    "Flatten",
    "GlobalAvgPool2d",
    "Identity",
    "Linear",
    "MSELoss",
    "MaxPool2d",
    "Module",
    "Parameter",
    "ReLU",
    "Sequential",
    "ThresholdReLU",
    "fold_all_batchnorms",
    "fold_batchnorm",
    "init",
]
