"""Batch normalisation (used only by *baseline* networks).

The paper's proposed pipeline avoids BN because the conversion omits
bias terms (Section IV-A); BN is provided here (a) so baseline
comparators such as Deng et al.'s source networks can be built
faithfully, and (b) for the BN-folding utility that absorbs a trained
BN into the preceding conv/linear weights — the standard preprocessing
step for conversion pipelines that do start from BN networks.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, get_default_dtype
from .conv import Conv2d
from .linear import Linear
from .module import Module, Parameter


class BatchNorm2d(Module):
    """Per-channel batch normalisation over NCHW inputs."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.running_mean = np.zeros(num_features, dtype=get_default_dtype())
        self.running_var = np.ones(num_features, dtype=get_default_dtype())

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects NCHW input, got ndim={x.ndim}")
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (
                (1 - self.momentum) * self.running_mean + self.momentum * mean.data
            )
            self.running_var = (
                (1 - self.momentum) * self.running_var + self.momentum * var.data
            )
        else:
            mean = Tensor(self.running_mean)
            var = Tensor(self.running_var)
        shape = (1, self.num_features, 1, 1)
        x_hat = (x - mean.reshape(shape)) / (var.reshape(shape) + self.eps).sqrt()
        return x_hat * self.gamma.reshape(shape) + self.beta.reshape(shape)

    def extra_repr(self) -> str:
        return f"{self.num_features}, eps={self.eps}, momentum={self.momentum}"


def fold_all_batchnorms(model: "Sequential") -> "Sequential":
    """Replace every ``Conv2d -> BatchNorm2d`` pair in a Sequential with
    the folded convolution (eval-mode equivalent, BN-free).

    The returned network is ready for DNN-to-SNN conversion: the folded
    per-step bias acts as a constant input current, the rate-coding
    equivalent of the DNN bias.
    """
    from .containers import Sequential

    folded_layers = []
    layers = list(model)
    index = 0
    while index < len(layers):
        layer = layers[index]
        if (
            isinstance(layer, Conv2d)
            and index + 1 < len(layers)
            and isinstance(layers[index + 1], BatchNorm2d)
        ):
            folded_layers.append(fold_batchnorm(layer, layers[index + 1]))
            index += 2
        else:
            folded_layers.append(layer)
            index += 1
    return Sequential(*folded_layers)


def fold_batchnorm(conv: Conv2d, bn: BatchNorm2d) -> Conv2d:
    """Absorb a trained BN into the preceding convolution.

    Returns a *new* conv (with bias) such that ``new_conv(x)`` equals
    ``bn(conv(x))`` in eval mode.  Used to prepare BN-trained baselines
    for conversion, which requires a BN-free network.
    """
    if conv.out_channels != bn.num_features:
        raise ValueError("conv/bn channel mismatch")
    scale = bn.gamma.data / np.sqrt(bn.running_var + bn.eps)
    folded = Conv2d(
        conv.in_channels,
        conv.out_channels,
        conv.kernel_size,
        stride=conv.stride,
        padding=conv.padding,
        bias=True,
        rng=np.random.default_rng(0),
    )
    folded.weight.data[...] = conv.weight.data * scale[:, None, None, None]
    conv_bias = conv.bias.data if conv.bias is not None else 0.0
    folded.bias.data[...] = (conv_bias - bn.running_mean) * scale + bn.beta.data
    return folded
