"""`Module` / `Parameter` base classes for the layer library.

`Module` provides parameter & submodule registration through attribute
assignment, train/eval mode propagation, recursive parameter iteration,
and a flat ``state_dict`` for checkpointing — the minimum surface the
rest of the library (optimizers, converters, trainers) relies on.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from ..tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor: always created with ``requires_grad=True``."""

    def __init__(self, data, dtype: Optional[np.dtype] = None) -> None:
        super().__init__(data, requires_grad=True, dtype=dtype)


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Parameter) -> None:
        setattr(self, name, param)

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for mod_name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{mod_name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for module in self._modules.values():
            yield from module.modules()

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{name}.")

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    # ------------------------------------------------------------------
    # Mode & grads
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, values in state.items():
            if name not in own:
                continue
            if own[name].data.shape != np.asarray(values).shape:
                raise ValueError(
                    f"shape mismatch for '{name}': "
                    f"{own[name].data.shape} vs {np.asarray(values).shape}"
                )
            own[name].data[...] = values

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def extra_repr(self) -> str:
        return ""

    def __repr__(self) -> str:
        lines = [f"{type(self).__name__}({self.extra_repr()}"]
        for name, module in self._modules.items():
            child = repr(module).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child}")
        if len(lines) == 1:
            return lines[0] + ")"
        return "\n".join(lines) + "\n)"
