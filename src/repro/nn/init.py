"""Weight-initialisation schemes.

All initialisers take an explicit ``numpy.random.Generator`` so model
construction is fully deterministic given a seed — required for the
reproducibility of every experiment harness in :mod:`repro.experiments`.

Every initialiser returns arrays in ``repro.tensor``'s default dtype
(see ``set_default_dtype``), so a model built under the float32 fast
path never materialises float64 weights.  Draws happen in float64 for
RNG-stream stability — the same seed yields the same weights (up to
rounding) under either dtype.
"""

from __future__ import annotations

import numpy as np

from ..tensor import get_default_dtype


def _fan_in_fan_out(shape) -> tuple:
    """Compute (fan_in, fan_out) for linear or conv weight shapes."""
    if len(shape) == 2:  # (out, in)
        return shape[1], shape[0]
    if len(shape) == 4:  # (out_c, in_c, kh, kw)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def kaiming_normal(shape, rng: np.random.Generator, gain: float = np.sqrt(2.0)) -> np.ndarray:
    """He-normal init: std = gain / sqrt(fan_in) (for ReLU family)."""
    fan_in, _ = _fan_in_fan_out(shape)
    std = gain / np.sqrt(fan_in)
    return rng.normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)


def kaiming_uniform(shape, rng: np.random.Generator, gain: float = np.sqrt(2.0)) -> np.ndarray:
    """He-uniform init: bound = gain * sqrt(3 / fan_in)."""
    fan_in, _ = _fan_in_fan_out(shape)
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(get_default_dtype(), copy=False)


def xavier_normal(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot-normal init: std = gain * sqrt(2 / (fan_in + fan_out))."""
    fan_in, fan_out = _fan_in_fan_out(shape)
    std = gain * np.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)


def xavier_uniform(shape, rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot-uniform init."""
    fan_in, fan_out = _fan_in_fan_out(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(get_default_dtype(), copy=False)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=get_default_dtype())


def ones(shape) -> np.ndarray:
    return np.ones(shape, dtype=get_default_dtype())
