"""Fault injection: hardware-realistic fault models for DNNs and SNNs.

The deployment substrate the paper targets (neuromorphic/edge silicon)
quantises weights, loses synapses, mismatches thresholds and drops
spike packets.  This package models those failure modes declaratively
(:class:`FaultSpec`), realises them seedably and reversibly inside a
context manager (:func:`inject_faults`), and reports every injected
fault through :mod:`repro.obs` (:class:`FaultTelemetry`).

Quick start::

    from repro.faults import FaultSpec, inject_faults

    spec = FaultSpec.pruning(0.1, seed=7)      # drop 10% of synapses
    with inject_faults(snn, spec) as session:
        accuracy = evaluate_snn(snn, loader)   # faulted evaluation
    # snn is restored bit-for-bit here
    session.summary()                          # realised fault counts

Sweeps over fault rates live in :mod:`repro.experiments.fault_sweep`;
``python -m repro.faults.smoke`` runs the deterministic smoke check.
"""

from .chaos import ChaosSpec
from .injector import FaultInjector, inject_faults
from .spec import FaultSpec, NeuronFaults, TransmissionFaults, WeightFaults
from .telemetry import FAULTS_FILENAME, FaultTelemetry

__all__ = [
    "FAULTS_FILENAME",
    "ChaosSpec",
    "FaultInjector",
    "FaultSpec",
    "FaultTelemetry",
    "NeuronFaults",
    "TransmissionFaults",
    "WeightFaults",
    "inject_faults",
]
