"""Fault-tolerance smoke check (``make faults-smoke``).

A fast, deterministic end-to-end pass over the robustness machinery:

1. convert a micro DNN and assert a **null** fault spec leaves the
   forward pass bitwise-identical in both execution modes;
2. run a tiny fault sweep twice with the same spec + seed and assert
   the accuracy curves are identical (seeded reproducibility);
3. check fault telemetry lands in ``faults.jsonl`` with non-zero
   counters under an observed run;
4. train a micro DNN through a poisoned batch and assert
   :class:`~repro.train.NonFiniteGuard` detects, attributes, rolls
   back and finishes with finite losses.

Exits non-zero with a diagnostic on the first failed check.
"""

from __future__ import annotations

import argparse
import os
from dataclasses import replace

import numpy as np


def _fail(message: str) -> int:
    print(f"FAULTS SMOKE FAILED: {message}")
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.smoke",
        description="Deterministic fault-injection and guard-recovery check.",
    )
    parser.add_argument("--run-dir", default=os.path.join("results", "smoke_run"))
    args = parser.parse_args(argv)

    from ..experiments.config import SCALES, ExperimentConfig
    from ..experiments.context import clear_context_cache
    from ..experiments.pipeline import clear_pipeline_cache, run_pipeline
    from ..obs import observe
    from ..train import DNNTrainConfig, DNNTrainer, NonFiniteGuard
    from ..train.metrics import evaluate_snn
    from . import FAULTS_FILENAME, FaultSpec, inject_faults

    scale = replace(
        SCALES["tiny"],
        name="smoke",
        image_size=8,
        train_size=60,
        test_size=30,
        width_multiplier=0.125,
        batch_size=30,
        dnn_epochs=2,
        snn_epochs=1,
        calibration_batches=1,
    )
    config = ExperimentConfig(
        arch="vgg11", dataset="cifar10", timesteps=2, scale=scale
    )
    clear_context_cache()
    clear_pipeline_cache()
    result = run_pipeline(config, fine_tune=False)
    snn, context = result.snn, result.context
    snn.eval()  # deterministic forwards: no dropout draws between runs
    images = context.dataset.test_images[:8]

    # --- 1. null spec => bitwise-identical forwards, both modes -------
    for mode in ("fused", "stepwise"):
        snn.mode = mode
        clean = snn(images).data.copy()
        with inject_faults(snn, FaultSpec()):
            nulled = snn(images).data.copy()
        if not np.array_equal(clean, nulled):
            return _fail(f"null spec changed the {mode} forward pass")

    # --- 2. same spec + seed => identical faulted accuracies ----------
    snn.mode = "fused"
    spec = FaultSpec(
        weight=replace(FaultSpec.pruning(0.1).weight, quant_bits=4),
        neuron=FaultSpec.dead_neurons(0.1).neuron,
        transmission=FaultSpec.spike_drop(0.1).transmission,
        seed=17,
    )
    loader = context.test_loader()
    accuracies = []
    for _ in range(2):
        with inject_faults(snn, spec) as session:
            accuracies.append(evaluate_snn(snn, loader))
        if not session.summary():
            return _fail("composite spec realised no faults")
    if accuracies[0] != accuracies[1]:
        return _fail(
            f"same spec+seed gave different accuracies: {accuracies}"
        )
    restored = snn(images).data
    snn.mode = "stepwise"
    if not np.array_equal(restored, snn(images).data):
        return _fail("post-injection network diverges across modes")
    snn.mode = "fused"

    # --- 3. telemetry lands in faults.jsonl under an observed run -----
    faults_path = os.path.join(args.run_dir, FAULTS_FILENAME)
    if os.path.exists(faults_path):
        os.remove(faults_path)
    with observe(args.run_dir, smoke=True):
        with inject_faults(snn, FaultSpec.pruning(0.2, seed=3)) as session:
            snn(images)
    if not os.path.exists(faults_path) or os.path.getsize(faults_path) == 0:
        return _fail(f"no fault telemetry written to {faults_path}")
    if session.summary().get("weights_pruned", 0) <= 0:
        return _fail("pruning session recorded no pruned weights")

    # --- 4. NonFiniteGuard detects, attributes, recovers --------------
    from ..models import build_model

    net = build_model(
        config.arch, num_classes=10, image_size=8, width_multiplier=0.125,
        rng=np.random.default_rng(7),
    )
    rng = np.random.default_rng(0)
    xs = rng.normal(size=(20, 3, 8, 8)).astype(np.float64)
    ys = rng.integers(0, 10, size=20)
    poisoned = {"armed": True}

    class PoisonOnce:
        def __iter__(self):
            for start in (0, 10):
                batch = xs[start:start + 10].copy()
                if poisoned["armed"] and start == 10:
                    poisoned["armed"] = False
                    batch[0, 0, 0, 0] = np.nan
                yield batch, ys[start:start + 10]

    guard = NonFiniteGuard(max_retries=2, lr_backoff=0.5)
    trainer = DNNTrainer(DNNTrainConfig(epochs=2, lr=0.01))
    history = trainer.fit(net, PoisonOnce(), guard=guard)
    if guard.retries_used < 1:
        return _fail("guard never triggered on the poisoned batch")
    if guard.last_site is None:
        return _fail("guard recovered without attributing a site")
    if not all(np.isfinite(history.train_loss)):
        return _fail(f"non-finite losses survived recovery: {history.train_loss}")

    print(
        "faults smoke ok: null-spec identity (both modes), "
        f"deterministic sweep (acc={accuracies[0]:.3f}), "
        f"telemetry ({faults_path}), "
        f"guard recovery (site='{guard.last_site}', "
        f"retries={guard.retries_used})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
