"""Deterministic chaos schedules for the parallel executor.

The executor's supervision machinery (crash detection, re-dispatch,
timeouts, poison quarantine) is only trustworthy if it can be tested
deterministically.  A ``ChaosSpec`` injects worker failures *keyed by
(task index, attempt number)* rather than by timing, so a chaos run is
reproducible: "kill whichever worker picks up task 3 on its first
attempt" behaves identically whether that worker is fast or slow.

Schedules run inside the worker process, immediately before the task
function executes:

* ``kill``  — the worker calls ``os._exit(exit_code)``: a hard death
  indistinguishable from a segfault or an OOM kill from the
  supervisor's point of view.
* ``hang``  — the worker sleeps ``hang_seconds`` before running the
  task, exercising per-task timeouts and stale-heartbeat detection.
* ``kill_after`` — the worker dies *after* the task function returns
  but before its result (and telemetry piggyback) is sent; with worker
  telemetry capture enabled it additionally leaves a deliberately torn
  half-record at its shard tail, modelling a worker killed
  mid-telemetry-write for the degraded-merge tests.

A task listed with ``attempts >= poison_threshold`` consecutive kills
becomes a poison task and must end up quarantined, not retried forever.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Tuple

__all__ = ["ChaosSpec"]


def _freeze_pairs(pairs: Iterable[Tuple[int, int]]) -> FrozenSet[Tuple[int, int]]:
    frozen = frozenset((int(index), int(attempt)) for index, attempt in pairs)
    for index, attempt in frozen:
        if index < 0 or attempt < 0:
            raise ValueError(
                f"chaos schedule entries must be non-negative, got ({index}, {attempt})"
            )
    return frozen


@dataclass(frozen=True)
class ChaosSpec:
    """Deterministic worker-failure schedule.

    ``kill`` / ``hang`` hold ``(task_index, attempt)`` pairs: the fault
    fires when that task index is dispatched for that attempt number
    (attempt 0 is the first dispatch).  ``kill_task(i, n)`` /
    ``hang_task(i, n)`` are convenience constructors covering attempts
    ``0..n-1`` of one task.
    """

    kill: FrozenSet[Tuple[int, int]] = field(default_factory=frozenset)
    hang: FrozenSet[Tuple[int, int]] = field(default_factory=frozenset)
    kill_after: FrozenSet[Tuple[int, int]] = field(default_factory=frozenset)
    exit_code: int = 139  # mimic SIGSEGV's shell status by default
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "kill", _freeze_pairs(self.kill))
        object.__setattr__(self, "hang", _freeze_pairs(self.hang))
        object.__setattr__(self, "kill_after", _freeze_pairs(self.kill_after))
        if self.hang_seconds <= 0:
            raise ValueError("hang_seconds must be positive")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def kill_task(cls, index: int, attempts: int = 1, **kwargs) -> "ChaosSpec":
        """Kill the worker running ``index`` on its first ``attempts`` tries."""
        return cls(kill=frozenset((index, a) for a in range(attempts)), **kwargs)

    @classmethod
    def hang_task(cls, index: int, attempts: int = 1, **kwargs) -> "ChaosSpec":
        """Hang the worker running ``index`` on its first ``attempts`` tries."""
        return cls(hang=frozenset((index, a) for a in range(attempts)), **kwargs)

    @classmethod
    def kill_task_after(cls, index: int, attempts: int = 1, **kwargs) -> "ChaosSpec":
        """Kill the worker running ``index`` right after the task body
        completes (mid-telemetry-write) on its first ``attempts`` tries."""
        return cls(
            kill_after=frozenset((index, a) for a in range(attempts)), **kwargs
        )

    # ------------------------------------------------------------------
    # Queries (called in the worker, right before the task function)
    # ------------------------------------------------------------------
    def should_kill(self, index: int, attempt: int) -> bool:
        return (int(index), int(attempt)) in self.kill

    def should_hang(self, index: int, attempt: int) -> bool:
        return (int(index), int(attempt)) in self.hang

    def should_kill_after(self, index: int, attempt: int) -> bool:
        return (int(index), int(attempt)) in self.kill_after

    @property
    def is_null(self) -> bool:
        return not self.kill and not self.hang and not self.kill_after

    def as_dict(self) -> Dict[str, object]:
        return {
            "kill": sorted(self.kill),
            "hang": sorted(self.hang),
            "kill_after": sorted(self.kill_after),
            "exit_code": self.exit_code,
            "hang_seconds": self.hang_seconds,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ChaosSpec":
        return cls(
            kill=frozenset(tuple(p) for p in payload.get("kill", ())),
            hang=frozenset(tuple(p) for p in payload.get("hang", ())),
            kill_after=frozenset(tuple(p) for p in payload.get("kill_after", ())),
            exit_code=int(payload.get("exit_code", 139)),
            hang_seconds=float(payload.get("hang_seconds", 3600.0)),
        )
