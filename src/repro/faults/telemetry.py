"""Fault-event telemetry: counters, per-layer gauges, ``faults.jsonl``.

Mirrors the conversion-drift channel (:mod:`repro.obs.drift`): one
:class:`FaultTelemetry` belongs to one injection session and records

- a counter per fault type in the metrics registry
  (``faults.weights_pruned``, ``faults.spikes_dropped``, ...),
- per-layer gauges for the parameter perturbations
  (``faults.threshold_jitter{layer=i}``, ...),
- one JSON line per fault event in the run directory's
  ``faults.jsonl``, alongside ``drift.jsonl``.

Metrics follow the library-wide contract: the process-global registry
is only written while observability is enabled; an explicitly supplied
registry always records.  The in-memory ``records`` list is always
populated (bounded), so tests and the sweep driver can inspect a
session without configuring a run.
"""

from __future__ import annotations

import json
import os
import time
from typing import IO, List, Optional

from ..obs import metrics as obs_metrics
from ..obs.core import _STATE, capture, is_enabled
from ..obs.metrics import MetricsRegistry

FAULTS_FILENAME = "faults.jsonl"

_MAX_RECORDS = 65_536


class FaultTelemetry:
    """Sink for one fault-injection session's events.

    Parameters
    ----------
    registry:
        Metrics registry to write into (default: the global one, which
        only records while observability is enabled).
    run_dir:
        Directory for ``faults.jsonl`` (default: the active observed
        run's directory, if any; ``None`` keeps records in memory only).
    prefix:
        Metric-name prefix (default ``faults``).
    """

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        run_dir: Optional[str] = None,
        prefix: str = "faults",
    ) -> None:
        self.prefix = prefix
        self.registry = registry if registry is not None else obs_metrics.get_registry()
        self._global_registry = registry is None
        self.records: List[dict] = []
        if run_dir is None:
            run_dir = _STATE.run_dir
        self.run_dir = run_dir
        self._fp: Optional[IO[str]] = None
        if run_dir is not None:
            os.makedirs(run_dir, exist_ok=True)
            self._fp = open(
                os.path.join(run_dir, FAULTS_FILENAME), "a", encoding="utf-8"
            )

    # ------------------------------------------------------------------
    def _record_metrics(self) -> bool:
        return not self._global_registry or is_enabled()

    def record(self, fault: str, **fields) -> dict:
        """Log one fault event (one JSONL line; counters updated by the
        callers through :meth:`count` / :meth:`gauge`)."""
        record = {"kind": "fault", "ts": time.time(), "fault": fault, **fields}
        if len(self.records) < _MAX_RECORDS:
            self.records.append(record)
        # Worker-telemetry capture: inside an executor worker the event
        # ships to the parent (which owns ``faults.jsonl``) instead of a
        # local file this process does not have.
        if capture("fault", record):
            return record
        if self._fp is not None:
            self._fp.write(json.dumps(record) + "\n")
            self._fp.flush()
        return record

    def count(self, fault_type: str, amount: float, **labels) -> None:
        """Bump the per-fault-type counter (``faults.<fault_type>``)."""
        if amount and self._record_metrics():
            self.registry.inc(f"{self.prefix}.{fault_type}", amount, **labels)

    def gauge(self, name: str, value: float, **labels) -> None:
        """Set a per-layer gauge (``faults.<name>{layer=i}``)."""
        if self._record_metrics():
            self.registry.set_gauge(f"{self.prefix}.{name}", value, **labels)

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._fp is not None:
            self._fp.close()
            self._fp = None

    def __enter__(self) -> "FaultTelemetry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
