"""Seedable, composable fault injection for DNNs and converted SNNs.

:func:`inject_faults` realises a :class:`~repro.faults.spec.FaultSpec`
against a model inside a context manager: faults are applied on entry,
the model is restored bit-for-bit on exit, and every fault event flows
through :class:`~repro.faults.telemetry.FaultTelemetry`.

Mechanics, by fault domain:

- **Weight faults** mutate Conv2d/Linear weights in place (originals
  are restored on exit).  Quantisation reuses the
  :mod:`repro.hw.quantization` backend; stuck-at-zero, sign flips and
  pruning draw per-layer Bernoulli masks.  Pure parameter perturbations
  — the fused execution engine is unaffected and stays fused.
- **Neuron faults** perturb each :class:`~repro.snn.SpikingNeuron`'s
  threshold and leak in place (again restored on exit) and install the
  neuron's dead-unit hook (:meth:`SpikingNeuron.set_unit_fault`), which
  both execution modes honour.  Also fused-safe.
- **Transmission faults** are per-time-step, so they instance-patch the
  neuron's ``forward`` — the library's probing idiom — which the fused
  engine detects and gracefully degrades *for those modules only* to a
  step-by-step replay; upstream/downstream stateless layers stay fused.

Randomness: every (domain, layer) pair gets an independent generator
seeded from ``(spec.seed, domain, layer)``, so realised faults do not
depend on layer iteration order or execution mode — the same spec and
seed reproduces the same faulted network and, for transmission faults,
the same per-step drop masks in both ``"fused"`` and ``"stepwise"``
execution.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..hw.quantization import quantize_array
from ..nn import Conv2d, Linear, Module
from ..snn import SpikingNetwork, SpikingNeuron
from ..tensor import Tensor
from .spec import FaultSpec
from .telemetry import FaultTelemetry

# Thresholds must stay strictly positive for the spike function; jitter
# realisations are clamped here (same floor the trainers clamp to).
_MIN_THRESHOLD = 1e-2

_DOMAIN_WEIGHT = 0
_DOMAIN_NEURON = 1
_DOMAIN_TRANSMISSION = 2


def _layer_rng(seed: int, domain: int, layer: int) -> np.random.Generator:
    """Independent stream per (spec seed, fault domain, layer index)."""
    return np.random.default_rng(np.random.SeedSequence((seed, domain, layer)))


def _mask_spikes(spikes: Tensor, keep: np.ndarray, label: str) -> Tensor:
    """Elementwise spike suppression that also drops the gradient."""
    mask = keep.astype(spikes.data.dtype, copy=False)

    def bwd(g):
        return (g * mask,)

    return Tensor.from_op(spikes.data * mask, (spikes,), bwd, label)


def _zero_spikes(spikes: Tensor) -> Tensor:
    def bwd(g):
        return (np.zeros_like(g),)

    return Tensor.from_op(np.zeros_like(spikes.data), (spikes,), bwd, "frame_drop")


class FaultInjector:
    """Context manager realising one :class:`FaultSpec` on one model.

    Usage::

        with inject_faults(snn, FaultSpec.pruning(0.1, seed=7)) as session:
            accuracy = evaluate_snn(snn, loader)
        session.summary()   # {"weights_pruned": ..., ...}

    The model is restored exactly on exit: weight arrays, thresholds and
    leaks recover their original bits, instance patches are removed, and
    dead-unit hooks are cleared.  A null spec installs nothing at all,
    so a fault-instrumented pass is bitwise-identical to a clean one.
    """

    def __init__(
        self,
        model: Module,
        spec: FaultSpec,
        telemetry: Optional[FaultTelemetry] = None,
    ) -> None:
        if not isinstance(model, Module):
            raise TypeError(f"expected a Module, got {type(model).__name__}")
        if not isinstance(model, SpikingNetwork) and not (
            spec.neuron.is_null and spec.transmission.is_null
        ):
            raise ValueError(
                "neuron and transmission faults require a SpikingNetwork; "
                f"got {type(model).__name__} (weight faults work on any model)"
            )
        self.model = model
        self.spec = spec
        self.telemetry = telemetry
        self._owns_telemetry = telemetry is None
        self._active = False
        self._saved_params: List[Tuple[np.ndarray, np.ndarray]] = []
        self._faulted_neurons: List[SpikingNeuron] = []
        self._patched: List[Tuple[SpikingNeuron, bool, object, int, Dict]] = []
        self._counters: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def __enter__(self) -> "FaultInjector":
        if self._active:
            raise RuntimeError("fault injector is already active")
        if self.telemetry is None:
            self.telemetry = FaultTelemetry()
        self._active = True
        try:
            self._validate_layer_targets()
            self._inject_weight_faults()
            self._inject_neuron_faults()
            self._inject_transmission_faults()
        except Exception:
            self._restore()
            raise
        return self

    def __exit__(self, *exc_info) -> None:
        self._restore()

    # ------------------------------------------------------------------
    def _count(self, key: str, amount: float, **labels) -> None:
        if amount:
            self._counters[key] = self._counters.get(key, 0.0) + amount
            self.telemetry.count(key, amount, **labels)

    def summary(self) -> Dict[str, float]:
        """Aggregate fault counts realised by this session so far."""
        return dict(self._counters)

    # ------------------------------------------------------------------
    # Layer-target validation (before anything mutates)
    # ------------------------------------------------------------------
    def _validate_layer_targets(self) -> None:
        """Reject specs referencing layer indices the model doesn't have.

        Runs before any injection so a typo'd index raises a clear
        error naming the layer and the valid range, instead of silently
        injecting nothing (or failing deep inside a mutation loop).
        """
        wf, nf, tf = self.spec.weight, self.spec.neuron, self.spec.transmission
        if wf.layers is not None and not wf.is_null:
            count = len(self._weight_layers())
            for layer in wf.layers:
                if layer >= count:
                    raise ValueError(
                        f"weight fault spec targets layer {layer}, but "
                        f"{type(self.model).__name__} has {count} weight "
                        f"layers (valid indices 0..{count - 1})"
                    )
        if isinstance(self.model, SpikingNetwork):
            neuron_count = len(list(self.model.spiking_neurons()))
            for kind, component in (("neuron", nf), ("transmission", tf)):
                if component.layers is None or component.is_null:
                    continue
                for layer in component.layers:
                    if layer >= neuron_count:
                        raise ValueError(
                            f"{kind} fault spec targets spiking layer "
                            f"{layer}, but {type(self.model).__name__} has "
                            f"{neuron_count} spiking layers (valid indices "
                            f"0..{neuron_count - 1})"
                        )

    # ------------------------------------------------------------------
    # Weight faults (fused-safe: pure parameter perturbation)
    # ------------------------------------------------------------------
    def _weight_layers(self) -> List[Tuple[str, Module]]:
        return [
            (name, module)
            for name, module in self.model.named_modules()
            if isinstance(module, (Conv2d, Linear))
        ]

    def _inject_weight_faults(self) -> None:
        wf = self.spec.weight
        if wf.is_null:
            return
        for index, (name, module) in enumerate(self._weight_layers()):
            if wf.layers is not None and index not in wf.layers:
                continue
            data = module.weight.data
            self._saved_params.append((data, data.copy()))
            rng = _layer_rng(self.spec.seed, _DOMAIN_WEIGHT, index)
            quantized = 0
            if wf.quant_bits is not None:
                data[...] = quantize_array(data, wf.quant_bits)
                quantized = data.size
            stuck = flipped = pruned = 0
            if wf.stuck_zero_rate > 0:
                mask = rng.random(data.shape) < wf.stuck_zero_rate
                data[mask] = 0.0
                stuck = int(mask.sum())
            if wf.sign_flip_rate > 0:
                mask = rng.random(data.shape) < wf.sign_flip_rate
                data[mask] *= -1.0
                flipped = int(mask.sum())
            if wf.prune_rate > 0:
                mask = rng.random(data.shape) < wf.prune_rate
                data[mask] = 0.0
                pruned = int(mask.sum())
            self._count("weights_quantized", quantized, layer=index)
            self._count("weights_stuck_zero", stuck, layer=index)
            self._count("weights_sign_flipped", flipped, layer=index)
            self._count("weights_pruned", pruned, layer=index)
            self.telemetry.record(
                "weight",
                layer=index,
                name=name,
                size=int(data.size),
                quant_bits=wf.quant_bits,
                stuck_zero=stuck,
                sign_flipped=flipped,
                pruned=pruned,
            )

    # ------------------------------------------------------------------
    # Neuron faults (fused-safe: parameters + the dead-unit hook)
    # ------------------------------------------------------------------
    def _inject_neuron_faults(self) -> None:
        nf = self.spec.neuron
        if nf.is_null or not isinstance(self.model, SpikingNetwork):
            return
        for index, neuron in enumerate(self.model.spiking_neurons()):
            if nf.layers is not None and index not in nf.layers:
                continue
            rng = _layer_rng(self.spec.seed, _DOMAIN_NEURON, index)
            before_threshold = neuron.threshold
            before_leak = neuron.leak_value
            self._saved_params.append(
                (neuron.v_threshold.data, neuron.v_threshold.data.copy())
            )
            self._saved_params.append((neuron.leak.data, neuron.leak.data.copy()))
            if nf.threshold_jitter > 0:
                factor = 1.0 + nf.threshold_jitter * rng.standard_normal()
                neuron.v_threshold.data[...] = np.maximum(
                    neuron.v_threshold.data * factor, _MIN_THRESHOLD
                )
                self._count("thresholds_jittered", 1, layer=index)
                self.telemetry.gauge(
                    "threshold_jitter",
                    neuron.threshold / before_threshold - 1.0,
                    layer=index,
                )
            if nf.leak_drift > 0:
                drift = nf.leak_drift * rng.standard_normal()
                neuron.leak.data[...] = np.clip(
                    neuron.leak.data + drift, 0.0, 1.0
                )
                self._count("leaks_drifted", 1, layer=index)
                self.telemetry.gauge(
                    "leak_drift", neuron.leak_value - before_leak, layer=index
                )
            if nf.dead_rate > 0:
                dead_rate = nf.dead_rate

                def sampler(unit_shape, _rng=rng, _rate=dead_rate,
                            _layer=index, _self=self):
                    alive = _rng.random(unit_shape) >= _rate
                    dead = int(alive.size - alive.sum())
                    _self._count("neurons_dead", dead, layer=_layer)
                    _self.telemetry.gauge(
                        "dead_fraction",
                        dead / max(alive.size, 1),
                        layer=_layer,
                    )
                    return alive

                neuron.set_unit_fault(sampler)
                self._faulted_neurons.append(neuron)
            self.telemetry.record(
                "neuron",
                layer=index,
                threshold_before=before_threshold,
                threshold_after=neuron.threshold,
                leak_before=before_leak,
                leak_after=neuron.leak_value,
                dead_rate=nf.dead_rate,
            )

    # ------------------------------------------------------------------
    # Transmission faults (per-step: instance-patch -> stepwise replay)
    # ------------------------------------------------------------------
    def _inject_transmission_faults(self) -> None:
        tf = self.spec.transmission
        if tf.is_null or not isinstance(self.model, SpikingNetwork):
            return
        for index, neuron in enumerate(self.model.spiking_neurons()):
            if tf.layers is not None and index not in tf.layers:
                continue
            rng = _layer_rng(self.spec.seed, _DOMAIN_TRANSMISSION, index)
            had_patch = "forward" in neuron.__dict__
            previous = neuron.__dict__.get("forward")
            original = neuron.forward  # bound method or earlier patch
            stats = {"steps": 0, "spikes_dropped": 0, "frames_dropped": 0}

            def faulty_forward(current, _orig=original, _rng=rng, _tf=tf,
                               _stats=stats):
                spikes = _orig(current)
                _stats["steps"] += 1
                if _tf.frame_drop_rate > 0 and _rng.random() < _tf.frame_drop_rate:
                    _stats["frames_dropped"] += 1
                    _stats["spikes_dropped"] += int(
                        np.count_nonzero(spikes.data)
                    )
                    return _zero_spikes(spikes)
                if _tf.spike_drop_rate > 0:
                    keep = _rng.random(spikes.data.shape) >= _tf.spike_drop_rate
                    _stats["spikes_dropped"] += int(
                        np.count_nonzero(spikes.data * ~keep)
                    )
                    return _mask_spikes(spikes, keep, "spike_drop")
                return spikes

            # Instance patch: the fused engine sees it and replays this
            # module per step (graceful degradation), keeping per-step
            # drop semantics identical in both execution modes.
            object.__setattr__(neuron, "forward", faulty_forward)
            self._patched.append((neuron, had_patch, previous, index, stats))

    # ------------------------------------------------------------------
    def _restore(self) -> None:
        if not self._active:
            return
        for neuron, had_patch, previous, index, stats in self._patched:
            if had_patch:
                object.__setattr__(neuron, "forward", previous)
            else:
                neuron.__dict__.pop("forward", None)
            self._count("spikes_dropped", stats["spikes_dropped"], layer=index)
            self._count("frames_dropped", stats["frames_dropped"], layer=index)
            self.telemetry.record(
                "transmission",
                layer=index,
                steps=stats["steps"],
                spikes_dropped=stats["spikes_dropped"],
                frames_dropped=stats["frames_dropped"],
            )
        self._patched = []
        for neuron in self._faulted_neurons:
            neuron.set_unit_fault(None)
        self._faulted_neurons = []
        for target, saved in self._saved_params:
            target[...] = saved
        self._saved_params = []
        if not self.spec.is_null:
            self.telemetry.record(
                "session_end", spec=self.spec.as_dict(), summary=self.summary()
            )
        if self._owns_telemetry and self.telemetry is not None:
            self.telemetry.close()
        self._active = False


def inject_faults(
    model: Module,
    spec: FaultSpec,
    telemetry: Optional[FaultTelemetry] = None,
) -> FaultInjector:
    """Build a :class:`FaultInjector` context manager for ``model``.

    ``telemetry`` defaults to a fresh :class:`FaultTelemetry` bound to
    the active observed run (if any), closed when the context exits;
    pass your own to aggregate several sessions into one sink.
    """
    return FaultInjector(model, spec, telemetry=telemetry)
