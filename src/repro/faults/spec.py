"""Declarative fault model for neuromorphic-deployment hardening.

The paper's end goal is T<=3 SNNs on neuromorphic/edge substrates,
where the three things the conversion analysis treats as exact are
exactly the things real hardware perturbs:

- **weights** are stored at low precision in crossbars and individual
  synapses fail (stuck-at bits, dropped connections);
- **neurons** suffer device mismatch — the per-layer threshold
  ``V^th = alpha * mu`` that Algorithm 1 tunes is realised with analog
  variation, membranes leak at the wrong rate, and some units are dead;
- **transmission** of spike packets between cores is lossy — individual
  spikes are dropped, and a congested router can lose a whole frame
  (one time step of a layer's output).

A :class:`FaultSpec` describes one such fault environment declaratively
and seedably: the same spec + seed always realises the same faults (see
``repro.faults.injector``).  Component specs compose — any subset may be
active at once — and a spec with every rate at zero injects nothing at
all, so fault-instrumented passes are bitwise-identical to clean ones.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Optional, Tuple


def _check_rate(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value}")


def _check_nonneg(name: str, value: float) -> None:
    if value < 0.0:
        raise ValueError(f"{name} must be non-negative, got {value}")


def _coerce_layers(spec, kind: str) -> None:
    """Normalise a component spec's ``layers`` field to a sorted tuple.

    ``layers=None`` targets every layer.  Indices must be non-negative
    ints; whether they exist in a concrete model is validated by the
    injector (which knows the model), raising an error naming the
    offending layer.
    """
    layers = spec.layers
    if layers is None:
        return
    coerced = []
    for layer in layers:
        if not isinstance(layer, (int,)) or isinstance(layer, bool):
            raise ValueError(
                f"{kind}.layers must contain layer indices, got {layer!r}"
            )
        if layer < 0:
            raise ValueError(
                f"{kind}.layers indices must be non-negative, got {layer}"
            )
        coerced.append(int(layer))
    object.__setattr__(spec, "layers", tuple(sorted(set(coerced))))


@dataclass(frozen=True)
class WeightFaults:
    """Faults in stored synaptic weights (Conv2d / Linear layers).

    - ``quant_bits`` — symmetric per-layer uniform quantisation to this
      many bits (the :mod:`repro.hw.quantization` backend); ``None``
      leaves weights at full precision.
    - ``stuck_zero_rate`` — fraction of weights stuck at zero (a dead
      memory cell reads as 0).
    - ``sign_flip_rate`` — fraction of weights whose sign bit flipped.
    - ``prune_rate`` — fraction of synapses dropped entirely (set to
      zero); modelled separately from ``stuck_zero_rate`` so sweeps can
      distinguish manufacturing pruning from in-field cell failure.
    - ``layers`` — restrict the faults to these weight-layer indices
      (the model's Conv2d/Linear layers in traversal order); ``None``
      targets every layer.  Nonexistent indices raise a clear error at
      injection time.
    """

    quant_bits: Optional[int] = None
    stuck_zero_rate: float = 0.0
    sign_flip_rate: float = 0.0
    prune_rate: float = 0.0
    layers: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.quant_bits is not None and self.quant_bits < 2:
            raise ValueError(
                f"quant_bits needs at least 2 bits (sign + one magnitude), "
                f"got {self.quant_bits}"
            )
        _check_rate("stuck_zero_rate", self.stuck_zero_rate)
        _check_rate("sign_flip_rate", self.sign_flip_rate)
        _check_rate("prune_rate", self.prune_rate)
        _coerce_layers(self, "weight")

    @property
    def is_null(self) -> bool:
        return (
            self.quant_bits is None
            and self.stuck_zero_rate == 0.0
            and self.sign_flip_rate == 0.0
            and self.prune_rate == 0.0
        )


@dataclass(frozen=True)
class NeuronFaults:
    """Faults in the spiking neurons themselves.

    - ``dead_rate`` — fraction of units that never transmit a spike
      (their output is silenced; membrane bookkeeping is unaffected, as
      for a broken axon hillock).
    - ``threshold_jitter`` — per-layer multiplicative mismatch on the
      firing threshold: ``V^th <- V^th * (1 + sigma * eps)`` with
      ``eps ~ N(0, 1)``, clamped positive.  This is the quantity Bu et
      al.'s optimal-conversion analysis shows ultra-low-T accuracy is
      hypersensitive to.
    - ``leak_drift`` — additive drift on the membrane leak ``lambda``:
      ``lambda <- clip(lambda + sigma * eps, 0, 1)``.
    """

    dead_rate: float = 0.0
    threshold_jitter: float = 0.0
    leak_drift: float = 0.0
    layers: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        _check_rate("dead_rate", self.dead_rate)
        _check_nonneg("threshold_jitter", self.threshold_jitter)
        _check_nonneg("leak_drift", self.leak_drift)
        _coerce_layers(self, "neuron")

    @property
    def is_null(self) -> bool:
        return (
            self.dead_rate == 0.0
            and self.threshold_jitter == 0.0
            and self.leak_drift == 0.0
        )


@dataclass(frozen=True)
class TransmissionFaults:
    """Faults in spike delivery between layers.

    - ``spike_drop_rate`` — each emitted spike is independently lost
      with this Bernoulli probability, redrawn every time step.
    - ``frame_drop_rate`` — with this probability per (layer, step) the
      layer's whole output frame for that step is lost, simulating a
      dropped packet / lost time step.

    Transmission faults are inherently per-step, so injecting them
    forces the affected neurons onto the stepwise execution path via
    the engine's graceful-degradation mechanism (instance-patched
    forwards always replay step by step); the rest of the network stays
    fused.
    """

    spike_drop_rate: float = 0.0
    frame_drop_rate: float = 0.0
    layers: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        _check_rate("spike_drop_rate", self.spike_drop_rate)
        _check_rate("frame_drop_rate", self.frame_drop_rate)
        _coerce_layers(self, "transmission")

    @property
    def is_null(self) -> bool:
        return self.spike_drop_rate == 0.0 and self.frame_drop_rate == 0.0


@dataclass(frozen=True)
class FaultSpec:
    """A complete, seedable fault environment.

    Compose the three component specs freely; :class:`FaultSpec()` (all
    defaults) is the null spec and injects nothing.  ``seed`` pins every
    random realisation — masks, jitters, per-step drops — so the same
    spec reproduces the same faulted behaviour run after run, in either
    execution mode.
    """

    weight: WeightFaults = field(default_factory=WeightFaults)
    neuron: NeuronFaults = field(default_factory=NeuronFaults)
    transmission: TransmissionFaults = field(default_factory=TransmissionFaults)
    seed: int = 0

    @property
    def is_null(self) -> bool:
        return (
            self.weight.is_null
            and self.neuron.is_null
            and self.transmission.is_null
        )

    def with_seed(self, seed: int) -> "FaultSpec":
        return replace(self, seed=seed)

    # ------------------------------------------------------------------
    # Serialisation (sweep manifests, telemetry records)
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        return cls(
            weight=WeightFaults(**payload.get("weight", {})),
            neuron=NeuronFaults(**payload.get("neuron", {})),
            transmission=TransmissionFaults(**payload.get("transmission", {})),
            seed=int(payload.get("seed", 0)),
        )

    # ------------------------------------------------------------------
    # Single-knob constructors (the sweep driver's vocabulary)
    # ------------------------------------------------------------------
    @classmethod
    def quantization(cls, bits: int, seed: int = 0) -> "FaultSpec":
        return cls(weight=WeightFaults(quant_bits=bits), seed=seed)

    @classmethod
    def pruning(cls, rate: float, seed: int = 0) -> "FaultSpec":
        return cls(weight=WeightFaults(prune_rate=rate), seed=seed)

    @classmethod
    def stuck_zero(cls, rate: float, seed: int = 0) -> "FaultSpec":
        return cls(weight=WeightFaults(stuck_zero_rate=rate), seed=seed)

    @classmethod
    def sign_flip(cls, rate: float, seed: int = 0) -> "FaultSpec":
        return cls(weight=WeightFaults(sign_flip_rate=rate), seed=seed)

    @classmethod
    def dead_neurons(cls, rate: float, seed: int = 0) -> "FaultSpec":
        return cls(neuron=NeuronFaults(dead_rate=rate), seed=seed)

    @classmethod
    def threshold_jitter(cls, sigma: float, seed: int = 0) -> "FaultSpec":
        return cls(neuron=NeuronFaults(threshold_jitter=sigma), seed=seed)

    @classmethod
    def leak_drift(cls, sigma: float, seed: int = 0) -> "FaultSpec":
        return cls(neuron=NeuronFaults(leak_drift=sigma), seed=seed)

    @classmethod
    def spike_drop(cls, rate: float, seed: int = 0) -> "FaultSpec":
        return cls(transmission=TransmissionFaults(spike_drop_rate=rate), seed=seed)

    @classmethod
    def frame_drop(cls, rate: float, seed: int = 0) -> "FaultSpec":
        return cls(transmission=TransmissionFaults(frame_drop_rate=rate), seed=seed)
