"""Per-layer conversion-error diagnostics (Section III-A applied).

For every layer of a converted network this module reports, side by
side:

- the distribution facts Eq. 7 depends on: ``K(mu)`` and ``h(T, mu)``
  (skew indicators; ``K = h = 1/2`` would mean zero expected error);
- the *predicted* expected DNN-SNN output gap ``Delta_{alpha beta}``
  from the analytical model, under the layer's chosen scaling; and
- the *measured* gap: mean DNN post-activation minus mean time-averaged
  SNN output on real data.

This is the paper's error analysis turned into an engineering tool: it
pinpoints which layers a failed conversion is losing accuracy in, and
validates the Eq. 6-7 approximations against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..nn import Module
from .activation_stats import activation_layers
from .calibration import _dnn_layer_outputs, _snn_average_outputs
from .converter import ConversionResult
from .theory import expected_difference_alpha_beta, h_t_mu, k_mu


@dataclass
class LayerErrorReport:
    """Error diagnosis of one converted layer."""

    layer: int
    mu: float
    alpha: float
    beta: float
    k_mu: float
    h_t_mu: float
    predicted_gap: float
    measured_gap: float
    dnn_mean: float
    snn_mean: float

    @property
    def relative_gap(self) -> float:
        """Measured gap normalised by the DNN mean (0 = perfect)."""
        if self.dnn_mean == 0:
            return 0.0
        return self.measured_gap / self.dnn_mean

    def as_dict(self) -> dict:
        """JSON-ready record (used by the obs drift-monitor JSONL sink)."""
        return {
            "layer": self.layer,
            "mu": self.mu,
            "alpha": self.alpha,
            "beta": self.beta,
            "k_mu": self.k_mu,
            "h_t_mu": self.h_t_mu,
            "predicted_gap": self.predicted_gap,
            "measured_gap": self.measured_gap,
            "dnn_mean": self.dnn_mean,
            "snn_mean": self.snn_mean,
            "relative_gap": self.relative_gap,
        }


def worst_layer(reports: List[LayerErrorReport]) -> Optional[LayerErrorReport]:
    """The layer losing the most: largest absolute measured gap."""
    if not reports:
        return None
    return max(reports, key=lambda r: abs(r.measured_gap))


def diagnose_conversion(
    conversion: ConversionResult,
    model: Module,
    batches: Iterable[Tuple[np.ndarray, np.ndarray]],
    max_batches: int = 1,
) -> List[LayerErrorReport]:
    """Per-layer predicted vs measured conversion error.

    Parameters
    ----------
    conversion:
        The result of :func:`convert_dnn_to_snn` (stats + specs + snn).
    model:
        The source DNN.
    batches:
        Evaluation batches (first ``max_batches`` are concatenated).
    """
    images = []
    for index, (batch, _labels) in enumerate(batches):
        if index >= max_batches:
            break
        images.append(np.asarray(batch))
    if not images:
        raise ValueError("no evaluation batches provided")
    images = np.concatenate(images, axis=0)

    dnn_outputs = _dnn_layer_outputs(model, images)
    snn_outputs = _snn_average_outputs(conversion.snn, images)
    if len(dnn_outputs) != len(snn_outputs):
        raise ValueError("layer count mismatch between DNN and SNN")

    timesteps = conversion.snn.timesteps
    reports: List[LayerErrorReport] = []
    for index, (stats, spec) in enumerate(zip(conversion.stats, conversion.specs)):
        samples = stats.percentiles  # quantile grid ~ distribution samples
        k_value = k_mu(samples, stats.mu)
        h_value = h_t_mu(samples, timesteps, stats.mu)
        predicted = expected_difference_alpha_beta(
            samples, samples, stats.mu, spec.alpha, spec.beta, timesteps
        )
        dnn_mean = float(dnn_outputs[index].mean())
        snn_out = snn_outputs[index]
        snn_mean = float(snn_out.mean()) if snn_out is not None else 0.0
        reports.append(
            LayerErrorReport(
                layer=index,
                mu=stats.mu,
                alpha=spec.alpha,
                beta=spec.beta,
                k_mu=k_value,
                h_t_mu=h_value,
                predicted_gap=float(predicted),
                measured_gap=dnn_mean - snn_mean,
                dnn_mean=dnn_mean,
                snn_mean=snn_mean,
            )
        )
    return reports


def render_diagnosis(reports: List[LayerErrorReport]) -> str:
    """Aligned text table of a conversion diagnosis."""
    from ..experiments.reporting import format_table

    rows = [
        [
            r.layer, r.mu, r.alpha, r.beta, r.k_mu, r.h_t_mu,
            r.predicted_gap, r.measured_gap, r.relative_gap,
        ]
        for r in reports
    ]
    return format_table(
        ["layer", "mu", "alpha", "beta", "K(mu)", "h(T,mu)",
         "pred gap", "meas gap", "rel gap"],
        rows,
        title="Per-layer conversion-error diagnosis",
    )
