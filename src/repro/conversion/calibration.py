"""Post-conversion layer-wise SNN calibration (Li et al. [16] style).

"A free lunch from ANN" calibrates a converted SNN by walking the
layers in order and correcting each one so its *actual* average spiking
output (under the real, already-perturbed upstream inputs) matches the
source DNN's activation.  This compensates the layer-to-layer error
compounding that per-layer conversion rules ignore.

The bias-free variant implemented here fits, for each spiking layer, a
single least-squares output gain

    gamma_l = <target_l, output_l> / <output_l, output_l>

between the DNN's post-activation target and the SNN's time-averaged
output on calibration data, and absorbs it into the layer's ``beta``
(so spikes remain single-amplitude events and the AC-only property is
preserved).  Layers are processed front-to-back; each correction is in
place before the next layer is measured, exactly as in sequential
calibration schemes.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from ..nn import Module, ReLU, ThresholdReLU
from ..snn import SpikingNetwork, SpikingNeuron
from ..tensor import Tensor, no_grad
from .activation_stats import activation_layers


def _dnn_layer_outputs(model: Module, images: np.ndarray) -> List[np.ndarray]:
    """Post-activation outputs of every activation layer, forward order."""
    layers = activation_layers(model)
    outputs: List[np.ndarray] = []
    patched = []
    for layer in layers:
        original = layer.forward

        def recording(x, _orig=original):
            out = _orig(x)
            outputs.append(out.data.copy())
            return out

        object.__setattr__(layer, "forward", recording)
        patched.append((layer, original))
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            model(Tensor(images))
    finally:
        model.train(was_training)
        for layer, original in patched:
            object.__setattr__(layer, "forward", original)
    return outputs


def _snn_average_outputs(snn: SpikingNetwork, images: np.ndarray) -> List[np.ndarray]:
    """Time-averaged spiking outputs of every neuron layer."""
    neurons = snn.spiking_neurons()
    sums: List[np.ndarray] = [None] * len(neurons)
    patched = []
    for index, neuron in enumerate(neurons):
        original = neuron.forward

        def recording(current, _orig=original, _index=index):
            out = _orig(current)
            if sums[_index] is None:
                sums[_index] = out.data.copy()
            else:
                sums[_index] += out.data
            return out

        object.__setattr__(neuron, "forward", recording)
        patched.append((neuron, original))
    was_training = snn.training
    snn.eval()
    try:
        with no_grad():
            snn(images)
    finally:
        snn.train(was_training)
        for neuron, original in patched:
            object.__setattr__(neuron, "forward", original)
    return [
        (total / snn.timesteps if total is not None else None) for total in sums
    ]


def calibrate_snn(
    snn: SpikingNetwork,
    model: Module,
    batches: Iterable[Tuple[np.ndarray, np.ndarray]],
    max_batches: int = 1,
    gain_range: Tuple[float, float] = (0.25, 4.0),
) -> List[float]:
    """Sequentially fit an output gain per spiking layer.

    Parameters
    ----------
    snn:
        The converted network (modified in place: ``beta`` values).
    model:
        The source DNN providing the per-layer activation targets.
    batches:
        Calibration batches; only the first ``max_batches`` are used
        (concatenated).
    gain_range:
        Clamp for the fitted gains — a near-silent layer would
        otherwise produce an unbounded correction.

    Returns the list of applied gains (1.0 where a layer was silent).
    """
    images = []
    for index, (batch, _labels) in enumerate(batches):
        if index >= max_batches:
            break
        images.append(np.asarray(batch))
    if not images:
        raise ValueError("no calibration batches provided")
    images = np.concatenate(images, axis=0)

    targets = _dnn_layer_outputs(model, images)
    neurons = snn.spiking_neurons()
    if len(targets) != len(neurons):
        raise ValueError(
            f"DNN has {len(targets)} activation layers but the SNN has "
            f"{len(neurons)} spiking layers"
        )

    gains: List[float] = []
    low, high = gain_range
    for index, neuron in enumerate(neurons):
        outputs = _snn_average_outputs(snn, images)
        actual = outputs[index]
        target = targets[index]
        if actual is None or not np.any(actual):
            gains.append(1.0)
            continue
        denom = float((actual * actual).sum())
        gain = float((target * actual).sum()) / denom
        gain = float(np.clip(gain, low, high))
        neuron.beta *= gain
        gains.append(gain)
    return gains
