"""DNN-to-SNN conversion pipeline (paper Section III-B).

``convert_dnn_to_snn`` takes a trained DNN built from this library's
layers, calibrates the per-layer pre-activation statistics, computes the
per-layer neuron specs for the chosen strategy (the paper's Algorithm-1
``alpha``/``beta`` scaling by default, or one of the published baseline
rules), and assembles a :class:`~repro.snn.network.SpikingNetwork` twin:

- every Conv2d / Linear / pool / Flatten is copied (weights deep-copied
  so SGL fine-tuning never mutates the source DNN) and applied per step;
- every activation layer becomes a :class:`SpikingNeuron` with
  ``V^th = alpha * mu`` and spike amplitude ``beta * V^th``;
- Dropout becomes :class:`TemporalDropout` (mask fixed across steps);
- ResNet basic blocks become :class:`SpikingResidualBlock`.

``absorb_beta`` folds each neuron's ``beta`` into the next weight layer
(valid for purely sequential topologies), demonstrating the paper's
claim that the output scaling needs no explicit multiplications.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..models.resnet import BasicBlock
from ..obs import metrics as obs_metrics
from ..obs import trace
from ..nn import (
    AvgPool2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
    ThresholdReLU,
)
from ..snn import (
    Encoder,
    SpikingMaxPool,
    SpikingNetwork,
    SpikingNeuron,
    SpikingResidualBlock,
    SpikingSequential,
    StepWrapper,
    TemporalDropout,
)
from .activation_stats import (
    LayerActivationStats,
    activation_layers,
    collect_activation_stats,
)
from .specs import NeuronSpec, build_specs

_STATELESS = (Conv2d, Linear, MaxPool2d, AvgPool2d, GlobalAvgPool2d, Flatten, Identity)


@dataclass
class ConversionConfig:
    """Configuration of one DNN-to-SNN conversion.

    Attributes
    ----------
    timesteps:
        SNN latency ``T``.
    strategy:
        One of :data:`repro.conversion.specs.STRATEGIES`
        (default: the paper's ``"proposed"``).
    surrogate:
        Surrogate-gradient name for subsequent SGL fine-tuning.
    trainable:
        Whether neuron thresholds/leaks are trainable after conversion.
    absorb_beta:
        Fold ``beta`` into downstream weights (sequential models only).
    calibration_batches:
        How many calibration batches to consume for statistics.
    max_samples_per_layer:
        Per-layer reservoir bound during calibration.
    strategy_kwargs:
        Extra arguments forwarded to the strategy function.
    """

    timesteps: int
    strategy: str = "proposed"
    surrogate: str = "boxcar"
    trainable: bool = True
    absorb_beta: bool = False
    calibration_batches: Optional[int] = 4
    max_samples_per_layer: int = 200_000
    strategy_kwargs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.timesteps <= 0:
            raise ValueError("timesteps must be positive")


@dataclass
class ConversionResult:
    """A converted network plus everything the reports need."""

    snn: SpikingNetwork
    stats: List[LayerActivationStats]
    specs: List[NeuronSpec]
    config: ConversionConfig

    def report_rows(self) -> List[dict]:
        """Per-layer summary: mu, d_max, alpha, beta, V^th."""
        rows = []
        for index, (layer_stats, spec) in enumerate(zip(self.stats, self.specs)):
            rows.append(
                {
                    "layer": index,
                    "mu": layer_stats.mu,
                    "d_max": layer_stats.d_max,
                    "alpha": spec.alpha,
                    "beta": spec.beta,
                    "v_threshold": spec.v_threshold,
                }
            )
        return rows

    def render(self) -> str:
        """Aligned text table of the per-layer conversion summary."""
        from ..experiments.reporting import format_table

        rows = self.report_rows()
        return format_table(
            ["layer", "mu", "d_max", "alpha", "beta", "V^th"],
            [
                [r["layer"], r["mu"], r["d_max"], r["alpha"], r["beta"],
                 r["v_threshold"]]
                for r in rows
            ],
            title=(
                f"Conversion report — strategy={self.config.strategy}, "
                f"T={self.config.timesteps}"
            ),
        )


class _SpecCursor:
    """Hands out neuron specs in activation-layer order during the walk."""

    def __init__(self, specs: Sequence[NeuronSpec], config: ConversionConfig) -> None:
        self._specs = list(specs)
        self._index = 0
        self._config = config

    def next_neuron(self) -> SpikingNeuron:
        if self._index >= len(self._specs):
            raise RuntimeError("more activation layers than computed specs")
        spec = self._specs[self._index]
        self._index += 1
        return SpikingNeuron(
            v_threshold=spec.v_threshold,
            beta=spec.beta,
            leak=1.0,
            trainable=self._config.trainable,
            surrogate=self._config.surrogate,
            initial_potential=spec.initial_potential,
        )

    def assert_exhausted(self) -> None:
        if self._index != len(self._specs):
            raise RuntimeError(
                f"conversion used {self._index} of {len(self._specs)} specs; "
                "model structure and calibration order disagree"
            )


def _build_spiking(module: Module, cursor: _SpecCursor) -> Module:
    """Recursively build the spiking twin of ``module``."""
    if isinstance(module, (ThresholdReLU, ReLU)):
        return cursor.next_neuron()
    if isinstance(module, Dropout):
        return TemporalDropout(module.p, rng=np.random.default_rng(0))
    if isinstance(module, MaxPool2d):
        # Rate-gated spiking max pool: binary outputs whose average
        # converges to the max of the input averages (Rueckauer et al.).
        return SpikingMaxPool(module.kernel_size)
    if isinstance(module, BasicBlock):
        conv1 = StepWrapper(copy.deepcopy(module.conv1))
        neuron1 = _build_spiking(module.act1, cursor)
        conv2 = StepWrapper(copy.deepcopy(module.conv2))
        shortcut = StepWrapper(copy.deepcopy(module.shortcut))
        neuron2 = _build_spiking(module.act2, cursor)
        return SpikingResidualBlock(conv1, neuron1, conv2, shortcut, neuron2)
    if isinstance(module, Sequential):
        return SpikingSequential(*[_build_spiking(child, cursor) for child in module])
    if isinstance(module, _STATELESS):
        return StepWrapper(copy.deepcopy(module))
    # Generic container (e.g. VGG, ResNet): map registered children in
    # definition order, which matches forward order for the library's
    # models.
    children = list(module.children())
    if not children:
        raise TypeError(
            f"cannot convert module of type {type(module).__name__}; "
            "add a mapping in repro.conversion.converter"
        )
    return SpikingSequential(*[_build_spiking(child, cursor) for child in children])


def convert_dnn_to_snn(
    model: Module,
    calibration_batches: Iterable[Tuple[np.ndarray, np.ndarray]],
    config: ConversionConfig,
    encoder: Optional[Encoder] = None,
) -> ConversionResult:
    """Convert a trained DNN into a spiking network.

    Parameters
    ----------
    model:
        Trained DNN (VGG / ResNet / any Sequential-composed network
        using this library's layers).
    calibration_batches:
        Iterable of ``(images, labels)`` batches used only for
        activation statistics (labels ignored).
    config:
        Conversion configuration (latency, strategy, ...).
    encoder:
        Input encoder for the SNN (default: direct encoding).
    """
    with trace.span(
        "calibration", batches=config.calibration_batches
    ) as span:
        stats = collect_activation_stats(
            model,
            calibration_batches,
            max_batches=config.calibration_batches,
            max_samples_per_layer=config.max_samples_per_layer,
        )
        span.set(layers=len(stats), samples=sum(s.count for s in stats))
    expected = len(activation_layers(model))
    if len(stats) != expected:
        raise RuntimeError("calibration returned wrong number of layer stats")
    specs = build_specs(
        config.strategy, stats, config.timesteps, **config.strategy_kwargs
    )

    with trace.span(
        "conversion", strategy=config.strategy, timesteps=config.timesteps
    ):
        for index, (layer_stats, spec) in enumerate(zip(stats, specs)):
            obs_metrics.gauge("conversion.mu", layer_stats.mu, layer=index)
            obs_metrics.gauge("conversion.d_max", layer_stats.d_max, layer=index)
            obs_metrics.gauge("conversion.alpha", spec.alpha, layer=index)
            obs_metrics.gauge("conversion.beta", spec.beta, layer=index)
            obs_metrics.gauge(
                "conversion.v_threshold", spec.v_threshold, layer=index
            )
        cursor = _SpecCursor(specs, config)
        body = _build_spiking(model, cursor)
        cursor.assert_exhausted()
        snn = SpikingNetwork(body, timesteps=config.timesteps, encoder=encoder)
        if config.absorb_beta:
            absorb_beta(snn)
    return ConversionResult(snn=snn, stats=stats, specs=specs, config=config)


def _flatten_pipeline(module: Module, out: List[Module]) -> None:
    if isinstance(module, SpikingSequential):
        for child in module:
            _flatten_pipeline(child, out)
    elif isinstance(module, SpikingNetwork):
        _flatten_pipeline(module.body, out)
    else:
        out.append(module)


def absorb_beta(snn: SpikingNetwork) -> None:
    """Fold each neuron's spike-amplitude scale into downstream weights.

    After absorption every spike has amplitude exactly ``V^th`` and the
    next weight layer's weights are multiplied by ``beta`` — the paper's
    observation that the output scaling requires no multiplications at
    inference.  Pooling, flatten and dropout are transparent (max pool
    commutes with a positive scale; the others are linear).

    Only purely sequential pipelines are supported; residual topologies
    keep ``beta`` explicit (a single per-layer constant, so the
    energy model is unaffected) and raise ``NotImplementedError`` here.
    """
    flat: List[Module] = []
    _flatten_pipeline(snn, flat)
    if any(isinstance(m, SpikingResidualBlock) for m in flat):
        raise NotImplementedError(
            "beta absorption across residual blocks is not supported; "
            "keep beta explicit for ResNet-converted SNNs"
        )
    transparent = (MaxPool2d, AvgPool2d, GlobalAvgPool2d, Flatten, Identity)
    for index, module in enumerate(flat):
        if not isinstance(module, SpikingNeuron) or module.beta == 1.0:
            continue
        for downstream in flat[index + 1 :]:
            if isinstance(downstream, (TemporalDropout, SpikingMaxPool)):
                # Both commute with a positive uniform scale of their
                # inputs (the gate's argmax is scale-invariant).
                continue
            if isinstance(downstream, StepWrapper):
                inner = downstream.inner
                if isinstance(inner, transparent):
                    continue
                if isinstance(inner, (Conv2d, Linear)):
                    inner.weight.data *= module.beta
                    module.beta = 1.0
                    break
                raise NotImplementedError(
                    f"cannot absorb beta through {type(inner).__name__}"
                )
            raise NotImplementedError(
                f"cannot absorb beta through {type(downstream).__name__}"
            )
        else:
            raise RuntimeError("neuron with beta != 1 has no downstream weight layer")
