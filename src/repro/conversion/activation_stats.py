"""Collection of per-layer pre-activation statistics from a trained DNN.

Algorithm 1 and the analytical error model both consume the empirical
distribution of each activation layer's inputs.  This module attaches
:class:`~repro.nn.activations.ActivationRecorder` instances to every
activation layer, drives calibration batches through the network, and
summarises each layer into a :class:`LayerActivationStats` (percentiles,
trained threshold ``mu``, observed maximum ``d_max``).

For plain-ReLU networks (the max-pre-activation conversion baseline of
Fig. 2) there is no trained ``mu``; ``mu`` is reported as ``d_max``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..nn import ActivationRecorder, Module, ReLU, ThresholdReLU
from ..tensor import Tensor, no_grad


@dataclass
class LayerActivationStats:
    """Summary of one activation layer's pre-activation distribution.

    Attributes
    ----------
    percentiles:
        101 values: the 0th..100th percentile of the recorded samples.
    mu:
        The layer's trained clipping threshold (``d_max`` for ReLU).
    d_max:
        Maximum observed pre-activation (the outlier the paper warns
        about: >99% of mass typically lies below ``d_max / 3``).
    mean, count:
        Sample mean and number of recorded values.
    """

    percentiles: np.ndarray
    mu: float
    d_max: float
    mean: float
    count: int

    def percentile(self, q: float) -> float:
        """Interpolated percentile ``q`` in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        grid = np.arange(101.0)
        return float(np.interp(q, grid, self.percentiles))

    @property
    def positive_fraction_below(self) -> float:
        """Fraction of the [0, d_max] range below mu — a skew indicator."""
        if self.d_max <= 0:
            return 1.0
        return min(1.0, self.mu / self.d_max)


def activation_layers(model: Module) -> List[Module]:
    """All activation layers of ``model`` in forward (definition) order."""
    return [m for m in model.modules() if isinstance(m, (ThresholdReLU, ReLU))]


class _ReLURecorderShim(Module):
    """Internal: lets a plain ReLU record pre-activations like a
    ThresholdReLU does (used only during calibration)."""


def collect_activation_stats(
    model: Module,
    batches: Iterable[Tuple[np.ndarray, np.ndarray]],
    max_batches: Optional[int] = None,
    max_samples_per_layer: int = 200_000,
) -> List[LayerActivationStats]:
    """Run calibration batches and summarise every activation layer.

    Parameters
    ----------
    model:
        A trained DNN built from this library's layers.
    batches:
        Iterable of ``(images, labels)`` numpy batches (labels unused).
    max_batches:
        Stop after this many batches (None = exhaust the iterable).
    max_samples_per_layer:
        Reservoir bound per layer to cap memory.

    Returns statistics in the same order as :func:`activation_layers`.
    """
    layers = activation_layers(model)
    if not layers:
        raise ValueError("model has no activation layers to calibrate")

    recorders: List[ActivationRecorder] = []
    relu_wrappers = []
    for layer in layers:
        recorder = ActivationRecorder(max_samples=max_samples_per_layer)
        recorders.append(recorder)
        if isinstance(layer, ThresholdReLU):
            layer.recorder = recorder
        else:
            # Monkey-patch a recording forward onto the plain ReLU for
            # the duration of calibration.
            original_forward = layer.forward

            def recording_forward(x: Tensor, _rec=recorder, _orig=original_forward):
                _rec.record(x.data)
                return _orig(x)

            object.__setattr__(layer, "forward", recording_forward)
            relu_wrappers.append((layer, original_forward))

    was_training = model.training
    model.eval()
    try:
        with no_grad():
            for index, (images, _labels) in enumerate(batches):
                if max_batches is not None and index >= max_batches:
                    break
                model(Tensor(np.asarray(images)))
    finally:
        model.train(was_training)
        for layer in layers:
            if isinstance(layer, ThresholdReLU):
                layer.recorder = None
        for layer, original in relu_wrappers:
            object.__setattr__(layer, "forward", original)

    stats: List[LayerActivationStats] = []
    for layer, recorder in zip(layers, recorders):
        values = recorder.values()
        if values.size == 0:
            raise RuntimeError("calibration produced no activation samples")
        percentiles = np.percentile(values, np.arange(101.0))
        d_max = float(values.max())
        if isinstance(layer, ThresholdReLU):
            mu = layer.threshold
        else:
            mu = d_max
        stats.append(
            LayerActivationStats(
                percentiles=percentiles,
                mu=mu,
                d_max=d_max,
                mean=float(values.mean()),
                count=values.size,
            )
        )
        recorder.clear()
    return stats
