"""Algorithm 1 of the paper: layer-wise scaling factors for the SNN
threshold (``alpha``) and post-activation amplitude (``beta``).

Given the empirical percentiles ``P`` of a layer's DNN pre-activations
and the trained threshold ``mu``, the algorithm evaluates the *signed*
sum of DNN-vs-SNN output differences over the percentile grid for a
candidate ``(alpha, beta)`` (``ComputeLoss``), and searches
``alpha in {P[j]/mu : P[j] <= mu}`` x ``beta in [0, 2] step 0.01``
for the pair with the smallest absolute loss (``FindScalingFactors``).

Using percentiles rather than a linear grid concentrates candidates
where the (sharply skewed) distribution actually has mass — the paper's
stated reason the approach beats linear threshold search.

The three loss segments match Fig. 1(b):

- Seg-I  (``0 <= p <= alpha mu``): the DNN output ``p`` sits on
  staircase step ``j`` whose SNN output is ``j alpha beta mu / T``;
- Seg-II (``alpha mu < p <= mu``): the SNN is saturated at
  ``alpha beta mu`` while the DNN still grows linearly;
- Seg-III (``p > mu``): both are saturated, at ``mu`` and
  ``alpha beta mu`` respectively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np


@dataclass
class ScalingFactors:
    """Result of the per-layer search.

    ``alpha`` scales the threshold (``V^th = alpha * mu``), ``beta`` the
    spike amplitude (output ``beta * V^th`` per spike); ``loss`` is the
    signed ComputeLoss value at the optimum; ``evaluations`` counts the
    candidate pairs examined.
    """

    alpha: float
    beta: float
    loss: float
    evaluations: int = 0


def compute_loss(
    percentiles: np.ndarray,
    mu: float,
    alpha: float,
    beta: float,
    timesteps: int,
) -> float:
    """``ComputeLoss`` of Algorithm 1: signed sum of per-percentile
    DNN-minus-SNN output differences under ``(alpha, beta)``.

    Vectorised equivalent of the paper's triple loop: for each
    percentile ``p`` the SNN output is the unshifted staircase with
    threshold ``alpha mu`` and amplitude scale ``beta``; the DNN output
    is ``clip(p, 0, mu)``.
    """
    if mu <= 0:
        raise ValueError("mu must be positive")
    if not 0.0 < alpha <= 1.0:
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if beta < 0.0:
        raise ValueError("beta must be non-negative")
    if timesteps <= 0:
        raise ValueError("timesteps must be positive")

    p = np.asarray(percentiles, dtype=np.float64)
    p = p[p > 0.0]  # negative pre-activations contribute 0 to both outputs
    if p.size == 0:
        return 0.0
    alpha_mu = alpha * mu
    step = alpha_mu / timesteps

    # Seg-I: 0 < p <= alpha mu  ->  SNN on staircase level
    # j = floor(p/step), evaluated just below exact edges to match the
    # strict firing condition of Eq. 3 (see theory.snn_staircase).
    seg1 = p <= alpha_mu
    levels = np.maximum(np.floor(p[seg1] / step - 1e-12), 0.0)
    levels = np.minimum(levels, timesteps)
    loss = float((p[seg1] - levels * beta * step).sum())

    # Seg-II: alpha mu < p <= mu  ->  SNN saturated at alpha beta mu
    seg2 = (p > alpha_mu) & (p <= mu)
    loss += float((p[seg2] - alpha_mu * beta).sum())

    # Seg-III: p > mu  ->  DNN saturated at mu, SNN at alpha beta mu
    seg3 = p > mu
    loss += float(seg3.sum() * mu * (1.0 - alpha * beta))
    return loss


def find_scaling_factors(
    percentiles: np.ndarray,
    mu: float,
    timesteps: int,
    beta_max: float = 2.0,
    beta_step: float = 0.01,
    alpha_candidates: Optional[Sequence[float]] = None,
) -> ScalingFactors:
    """``FindScalingFactors`` of Algorithm 1.

    Parameters
    ----------
    percentiles:
        The layer's pre-activation percentile grid ``P`` (typically 101
        values from :mod:`repro.conversion.activation_stats`).
    mu:
        The layer's trained clipping threshold.
    timesteps:
        Target SNN latency ``T``.
    beta_max, beta_step:
        The ``beta`` grid ``[0, beta_max]`` with the paper's 0.01 step.
    alpha_candidates:
        Override the ``alpha`` grid (defaults to ``P[j]/mu`` for every
        positive percentile not exceeding ``mu`` — the paper's choice).

    Returns the pair minimising ``|ComputeLoss|``, initialised at the
    identity ``(alpha, beta) = (1, 1)`` exactly as in the pseudocode, so
    the search can only improve on the unscaled conversion.
    """
    p = np.asarray(percentiles, dtype=np.float64)
    if alpha_candidates is None:
        valid = p[(p > 0.0) & (p <= mu)]
        alpha_candidates = np.unique(valid / mu)
        # Guard against subnormal percentiles underflowing to alpha = 0.
        alpha_candidates = alpha_candidates[alpha_candidates > 0.0]
    else:
        alpha_candidates = np.asarray(list(alpha_candidates), dtype=np.float64)
        if np.any((alpha_candidates <= 0) | (alpha_candidates > 1)):
            raise ValueError("alpha candidates must lie in (0, 1]")

    best_alpha, best_beta = 1.0, 1.0
    best_loss = compute_loss(p, mu, best_alpha, best_beta, timesteps)
    evaluations = 1
    betas = np.arange(0.0, beta_max + 0.5 * beta_step, beta_step)
    for alpha in alpha_candidates:
        for beta in betas:
            loss = compute_loss(p, mu, float(alpha), float(beta), timesteps)
            evaluations += 1
            if abs(loss) < abs(best_loss):
                best_alpha, best_beta, best_loss = float(alpha), float(beta), loss
    # A zero beta would silence the layer entirely; the pseudocode's grid
    # includes it but a dead layer is never the minimiser in practice.
    if best_beta == 0.0:
        best_beta = beta_step
    return ScalingFactors(
        alpha=best_alpha, beta=best_beta, loss=best_loss, evaluations=evaluations
    )


def _loss_affine_coefficients(
    percentiles: np.ndarray, mu: float, alpha: float, timesteps: int
) -> Tuple[float, float]:
    """Decompose ``compute_loss`` as ``A - beta * B`` for fixed ``alpha``.

    Every segment of the loss is linear in ``beta``:

    - Seg-I:   sum(p) - beta * sum(level_j * alpha mu / T)
    - Seg-II:  sum(p) - beta * n2 * alpha mu
    - Seg-III: n3 * mu - beta * n3 * alpha mu
    """
    p = np.asarray(percentiles, dtype=np.float64)
    p = p[p > 0.0]
    if p.size == 0:
        return 0.0, 0.0
    alpha_mu = alpha * mu
    step = alpha_mu / timesteps

    seg1 = p <= alpha_mu
    levels = np.maximum(np.floor(p[seg1] / step - 1e-12), 0.0)
    levels = np.minimum(levels, timesteps)
    a = float(p[seg1].sum())
    b = float((levels * step).sum())

    seg2 = (p > alpha_mu) & (p <= mu)
    a += float(p[seg2].sum())
    b += float(seg2.sum() * alpha_mu)

    seg3 = p > mu
    a += float(seg3.sum() * mu)
    b += float(seg3.sum() * alpha_mu)
    return a, b


def find_scaling_factors_fast(
    percentiles: np.ndarray,
    mu: float,
    timesteps: int,
    beta_max: float = 2.0,
    beta_step: float = 0.01,
    alpha_candidates: Optional[Sequence[float]] = None,
) -> ScalingFactors:
    """Closed-form accelerated FindScalingFactors.

    ``ComputeLoss`` is affine in ``beta`` (``loss = A - beta B`` with
    ``A, B >= 0``), so for each ``alpha`` candidate the zero-crossing
    ``beta* = A / B`` is exact; snapping it onto the paper's 0.01 grid
    (and clipping to ``[beta_step, beta_max]``) reproduces the grid
    search's minimiser at ~1/200th of the evaluations.  An ablation
    benchmark verifies the equivalence against the faithful search.
    """
    p = np.asarray(percentiles, dtype=np.float64)
    if alpha_candidates is None:
        valid = p[(p > 0.0) & (p <= mu)]
        alpha_candidates = np.unique(valid / mu)
        alpha_candidates = alpha_candidates[alpha_candidates > 0.0]
    else:
        alpha_candidates = np.asarray(list(alpha_candidates), dtype=np.float64)
        if np.any((alpha_candidates <= 0) | (alpha_candidates > 1)):
            raise ValueError("alpha candidates must lie in (0, 1]")

    best_alpha, best_beta = 1.0, 1.0
    best_loss = compute_loss(p, mu, best_alpha, best_beta, timesteps)
    evaluations = 1
    for alpha in alpha_candidates:
        a, b = _loss_affine_coefficients(p, mu, float(alpha), timesteps)
        if b <= 0.0:
            continue
        # Best beta on the grid is one of the two grid points bracketing
        # the exact root (plus the grid ends).
        root = a / b
        candidates = {
            beta_step,
            beta_max,
            min(beta_max, max(beta_step, np.floor(root / beta_step) * beta_step)),
            min(beta_max, max(beta_step, np.ceil(root / beta_step) * beta_step)),
        }
        for beta in candidates:
            loss = a - beta * b
            evaluations += 1
            if abs(loss) < abs(best_loss):
                best_alpha, best_beta, best_loss = float(alpha), float(beta), loss
    return ScalingFactors(
        alpha=best_alpha, beta=best_beta, loss=best_loss, evaluations=evaluations
    )
