"""Per-layer neuron specifications for each conversion strategy.

A :class:`NeuronSpec` is everything the converter needs to instantiate
one layer's spiking neurons: threshold, spike-amplitude scale and
initial membrane potential.  Each strategy maps the per-layer
:class:`~repro.conversion.activation_stats.LayerActivationStats` to a
spec list:

- :func:`proposed_specs` — the paper's Algorithm-1 ``alpha``/``beta``
  scaling (threshold ``alpha mu``, amplitude ``beta V^th``);
- :func:`threshold_relu_specs` — plain conversion with ``V^th = mu``
  (the "threshold ReLU" curve of Fig. 2);
- :func:`max_activation_specs` — classic max-norm threshold balancing
  (``V^th = d_max``; Diehl/Sengupta, and the non-trainable threshold of
  Deng et al. [15]);
- :func:`deng_shift_specs` — [15]'s optimal-shift conversion: the bias
  term ``delta = V^th / 2T`` realised as an initial membrane charge of
  ``V^th / 2``;
- :func:`grid_scaling_specs` — the linear-grid threshold-scaling
  heuristic of Han et al. [24] / Li et al. [16] (no ``beta``), the
  ablation baseline that collapses at ultra-low T.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..obs import metrics as obs_metrics
from ..obs import trace
from .activation_stats import LayerActivationStats
from .algorithm1 import ScalingFactors, compute_loss, find_scaling_factors


@dataclass
class NeuronSpec:
    """Instantiation parameters for one layer of spiking neurons."""

    v_threshold: float
    beta: float = 1.0
    initial_potential: float = 0.0
    alpha: float = 1.0  # retained for reporting/ablation

    def __post_init__(self) -> None:
        if self.v_threshold <= 0:
            raise ValueError("v_threshold must be positive")
        if self.beta <= 0:
            raise ValueError("beta must be positive")


def _algorithm1_task(payload) -> ScalingFactors:
    """Worker-side Algorithm-1 search for one layer (pure function)."""
    percentiles, mu, timesteps, beta_max, beta_step = payload
    return find_scaling_factors(
        np.asarray(percentiles),
        mu,
        timesteps,
        beta_max=beta_max,
        beta_step=beta_step,
    )


def proposed_specs(
    stats: Sequence[LayerActivationStats],
    timesteps: int,
    beta_max: float = 2.0,
    beta_step: float = 0.01,
    executor=None,
) -> List[NeuronSpec]:
    """The paper's conversion: per-layer Algorithm-1 search.

    With ``executor`` (a :class:`repro.exec.ParallelExecutor`, or the
    ambient one installed via :func:`repro.exec.executor_scope`), the
    per-layer searches shard across workers.  ``find_scaling_factors``
    is a pure function of its arguments, and results are assembled by
    layer index, so specs are bitwise identical to the serial loop;
    layers whose parallel task fails (quarantine, pool loss) are
    recomputed serially in-process, which keeps conversion lossless
    under worker failure.
    """
    if executor is None:
        from ..exec import ambient_executor

        executor = ambient_executor()

    all_factors: List[Optional[ScalingFactors]] = [None] * len(stats)
    if executor is not None and executor.workers > 1 and len(stats) > 1:
        payloads = [
            (s.percentiles, s.mu, timesteps, beta_max, beta_step) for s in stats
        ]
        outcome = executor.map(_algorithm1_task, payloads, label="algorithm1")
        all_factors = list(outcome.results)

    specs = []
    for index, layer_stats in enumerate(stats):
        with trace.span("algorithm1", layer=index, mu=layer_stats.mu) as span:
            factors: Optional[ScalingFactors] = all_factors[index]
            if factors is None:
                factors = find_scaling_factors(
                    layer_stats.percentiles,
                    layer_stats.mu,
                    timesteps,
                    beta_max=beta_max,
                    beta_step=beta_step,
                )
            span.set(
                alpha=factors.alpha,
                beta=factors.beta,
                residual=factors.loss,
                evaluations=factors.evaluations,
            )
        # Delta_{alpha beta} residual at the optimum, plus search effort.
        obs_metrics.observe("algorithm1.residual", factors.loss, layer=index)
        obs_metrics.inc("algorithm1.evaluations", factors.evaluations)
        specs.append(
            NeuronSpec(
                v_threshold=factors.alpha * layer_stats.mu,
                beta=factors.beta,
                alpha=factors.alpha,
            )
        )
    return specs


def threshold_relu_specs(
    stats: Sequence[LayerActivationStats],
) -> List[NeuronSpec]:
    """Unscaled conversion with the trained threshold: ``V^th = mu``."""
    return [NeuronSpec(v_threshold=s.mu) for s in stats]


def max_activation_specs(
    stats: Sequence[LayerActivationStats],
    percentile: float = 100.0,
) -> List[NeuronSpec]:
    """Max-norm threshold balancing: ``V^th = d_max`` (or a robust
    percentile of the pre-activations, as in Rueckauer et al.)."""
    specs = []
    for layer_stats in stats:
        v_th = layer_stats.percentile(percentile) if percentile < 100.0 else layer_stats.d_max
        specs.append(NeuronSpec(v_threshold=max(v_th, 1e-6)))
    return specs


def deng_shift_specs(
    stats: Sequence[LayerActivationStats],
    timesteps: int,
    use_max_activation: bool = False,
) -> List[NeuronSpec]:
    """Deng et al. [15] optimal-shift conversion.

    ``V^th`` is the layer threshold (``d_max`` with
    ``use_max_activation=True``, reproducing their non-trainable
    threshold; else the trained ``mu``), plus the bias shift
    ``delta = V^th / 2T`` applied as an initial membrane charge of
    ``V^th / 2`` (which shifts the T-step average staircase left by
    exactly ``delta``).  ``timesteps`` is kept for interface symmetry —
    the initial *charge* realising the shift is T-independent.
    """
    if timesteps <= 0:
        raise ValueError("timesteps must be positive")
    specs = []
    for layer_stats in stats:
        v_th = layer_stats.d_max if use_max_activation else layer_stats.mu
        v_th = max(v_th, 1e-6)
        specs.append(NeuronSpec(v_threshold=v_th, initial_potential=v_th / 2.0))
    return specs


def grid_scaling_specs(
    stats: Sequence[LayerActivationStats],
    timesteps: int,
    scales: Optional[Sequence[float]] = None,
) -> List[NeuronSpec]:
    """Linear-grid threshold scaling (Han et al. / Li et al. heuristic).

    Scales ``V^th = scale * mu`` over a uniform grid and keeps the scale
    minimising the same signed conversion loss — but with *no* output
    scaling (``beta = 1``), which is exactly what the paper ablates:
    without the y-direction degree of freedom the ultra-low-T error
    cannot be compensated.
    """
    if scales is None:
        scales = np.linspace(0.1, 1.0, 10)
    specs = []
    for layer_stats in stats:
        best_scale, best_loss = 1.0, None
        for scale in scales:
            loss = compute_loss(
                layer_stats.percentiles, layer_stats.mu, float(scale), 1.0, timesteps
            )
            if best_loss is None or abs(loss) < abs(best_loss):
                best_scale, best_loss = float(scale), loss
        specs.append(
            NeuronSpec(v_threshold=best_scale * layer_stats.mu, alpha=best_scale)
        )
    return specs


STRATEGIES = {
    "proposed": proposed_specs,
    "threshold_relu": threshold_relu_specs,
    "max_activation": max_activation_specs,
    "deng_shift": deng_shift_specs,
    "grid_scaling": grid_scaling_specs,
}


def build_specs(
    strategy: str,
    stats: Sequence[LayerActivationStats],
    timesteps: int,
    **kwargs,
) -> List[NeuronSpec]:
    """Dispatch to a conversion strategy by name."""
    if strategy == "proposed":
        return proposed_specs(stats, timesteps, **kwargs)
    if strategy == "threshold_relu":
        return threshold_relu_specs(stats, **kwargs)
    if strategy == "max_activation":
        return max_activation_specs(stats, **kwargs)
    if strategy == "deng_shift":
        return deng_shift_specs(stats, timesteps, **kwargs)
    if strategy == "grid_scaling":
        return grid_scaling_specs(stats, timesteps, **kwargs)
    raise KeyError(f"unknown strategy '{strategy}'; available: {sorted(STRATEGIES)}")
