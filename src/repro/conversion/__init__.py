"""DNN-to-SNN conversion: the paper's core contribution.

- :mod:`activation_stats` — per-layer pre-activation percentiles;
- :mod:`algorithm1` — the percentile-driven ``alpha``/``beta`` search;
- :mod:`specs` — neuron specs for the proposed strategy and the
  published baselines (max-norm, Deng optimal shift, grid scaling);
- :mod:`converter` — builds the spiking twin network;
- :mod:`theory` — the analytical error model of Eqs. 5-7.
"""

from .activation_stats import (
    LayerActivationStats,
    activation_layers,
    collect_activation_stats,
)
from .algorithm1 import (
    ScalingFactors,
    compute_loss,
    find_scaling_factors,
    find_scaling_factors_fast,
)
from .calibration import calibrate_snn
from .diagnostics import (
    LayerErrorReport,
    diagnose_conversion,
    render_diagnosis,
    worst_layer,
)
from .converter import (
    ConversionConfig,
    ConversionResult,
    absorb_beta,
    convert_dnn_to_snn,
)
from .specs import (
    STRATEGIES,
    NeuronSpec,
    build_specs,
    deng_shift_specs,
    grid_scaling_specs,
    max_activation_specs,
    proposed_specs,
    threshold_relu_specs,
)
from .theory import (
    dnn_threshold_relu,
    empirical_output_gap,
    expected_difference,
    expected_difference_alpha_beta,
    g_i,
    h_prime_t_mu,
    h_t_mu,
    k_mu,
    snn_staircase,
)

__all__ = [
    "ConversionConfig",
    "ConversionResult",
    "LayerActivationStats",
    "LayerErrorReport",
    "NeuronSpec",
    "STRATEGIES",
    "ScalingFactors",
    "absorb_beta",
    "activation_layers",
    "build_specs",
    "calibrate_snn",
    "collect_activation_stats",
    "compute_loss",
    "convert_dnn_to_snn",
    "deng_shift_specs",
    "diagnose_conversion",
    "dnn_threshold_relu",
    "empirical_output_gap",
    "expected_difference",
    "expected_difference_alpha_beta",
    "find_scaling_factors",
    "find_scaling_factors_fast",
    "g_i",
    "grid_scaling_specs",
    "h_prime_t_mu",
    "h_t_mu",
    "k_mu",
    "max_activation_specs",
    "proposed_specs",
    "render_diagnosis",
    "snn_staircase",
    "threshold_relu_specs",
    "worst_layer",
]
