"""Checkpointing: save/load model parameters as ``.npz`` archives.

Works for any :class:`~repro.nn.Module`, including converted
:class:`~repro.snn.SpikingNetwork` twins (whose thresholds and leaks are
ordinary parameters).  Conversion metadata (per-layer ``beta`` values,
which live outside the parameter set) is stored alongside under
reserved ``__meta__``-prefixed keys.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from ..nn import Module
from ..snn import SpikingNetwork, SpikingNeuron

_META_PREFIX = "__meta__"


def save_checkpoint(model: Module, path: str) -> str:
    """Serialise ``model``'s parameters (and SNN betas) to ``path``.

    Returns the path written (``.npz`` appended if missing).
    """
    payload: Dict[str, np.ndarray] = dict(model.state_dict())
    for key in payload:
        if key.startswith(_META_PREFIX):
            raise ValueError(f"parameter name collides with reserved prefix: {key}")
    if isinstance(model, SpikingNetwork):
        betas = [n.beta for n in model.spiking_neurons()]
        payload[f"{_META_PREFIX}betas"] = np.asarray(betas)
        payload[f"{_META_PREFIX}timesteps"] = np.asarray([model.timesteps])
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    if not path.endswith(".npz"):
        path += ".npz"
    np.savez(path, **payload)
    return path


def load_checkpoint(model: Module, path: str, strict: bool = True) -> None:
    """Load parameters saved by :func:`save_checkpoint` into ``model``.

    For spiking networks the per-neuron ``beta`` values and the time-step
    count are restored too (``timesteps`` must match unless
    ``strict=False``).
    """
    with np.load(path) as archive:
        state = {
            key: archive[key]
            for key in archive.files
            if not key.startswith(_META_PREFIX)
        }
        meta = {
            key[len(_META_PREFIX):]: archive[key]
            for key in archive.files
            if key.startswith(_META_PREFIX)
        }
    model.load_state_dict(state, strict=strict)
    if isinstance(model, SpikingNetwork) and "betas" in meta:
        neurons = model.spiking_neurons()
        betas = meta["betas"]
        if len(neurons) != len(betas):
            raise ValueError(
                f"checkpoint has {len(betas)} neuron betas; model has "
                f"{len(neurons)} spiking layers"
            )
        for neuron, beta in zip(neurons, betas):
            neuron.beta = float(beta)
        if strict and "timesteps" in meta:
            saved_t = int(meta["timesteps"][0])
            if saved_t != model.timesteps:
                raise ValueError(
                    f"checkpoint was built for T={saved_t}, model runs "
                    f"T={model.timesteps} (pass strict=False to override)"
                )
