"""Checkpointing: save/load model parameters as ``.npz`` archives.

Works for any :class:`~repro.nn.Module`, including converted
:class:`~repro.snn.SpikingNetwork` twins (whose thresholds and leaks are
ordinary parameters).  Conversion metadata (per-layer ``beta`` values,
which live outside the parameter set) is stored alongside under
reserved ``__meta__``-prefixed keys.

Robustness contract:

- :func:`save_checkpoint` writes **atomically** — the archive is
  serialised to a temporary file in the target directory and moved into
  place with :func:`os.replace`, so a crash mid-write can never leave a
  truncated ``.npz`` under the checkpoint's name.
- :func:`load_checkpoint` turns every way an archive can be unreadable
  (missing file, truncated/corrupt zip, absent SNN metadata) into a
  :class:`CheckpointError` naming the offending path, instead of a raw
  numpy/zipfile traceback.
"""

from __future__ import annotations

import os
import zipfile
from typing import Dict

import numpy as np

from ..nn import Module
from ..snn import SpikingNetwork, SpikingNeuron
from .interrupts import delay_interrupts

_META_PREFIX = "__meta__"


class CheckpointError(RuntimeError):
    """A checkpoint could not be written or read back."""


def save_checkpoint(model: Module, path: str) -> str:
    """Serialise ``model``'s parameters (and SNN betas) to ``path``.

    Returns the path written (``.npz`` appended if missing).  The write
    is atomic: either the previous archive (if any) or the complete new
    one exists at ``path``, never a partial file.
    """
    payload: Dict[str, np.ndarray] = dict(model.state_dict())
    for key in payload:
        if key.startswith(_META_PREFIX):
            raise ValueError(f"parameter name collides with reserved prefix: {key}")
    if isinstance(model, SpikingNetwork):
        betas = [n.beta for n in model.spiking_neurons()]
        payload[f"{_META_PREFIX}betas"] = np.asarray(betas)
        payload[f"{_META_PREFIX}timesteps"] = np.asarray([model.timesteps])
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    if not path.endswith(".npz"):
        path += ".npz"
    # Temp file in the same directory so os.replace stays one atomic
    # rename (no cross-filesystem copy window).  SIGINT/SIGTERM are
    # deferred across the write+rename so a kill can interrupt either
    # the complete old archive or the complete new one, never a rename
    # raced against cleanup.
    tmp_path = f"{path}.tmp-{os.getpid()}.npz"
    with delay_interrupts():
        try:
            np.savez(tmp_path, **payload)
            os.replace(tmp_path, path)
        finally:
            if os.path.exists(tmp_path):
                os.remove(tmp_path)
    return path


def load_checkpoint(model: Module, path: str, strict: bool = True) -> None:
    """Load parameters saved by :func:`save_checkpoint` into ``model``.

    For spiking networks the per-neuron ``beta`` values and the time-step
    count are restored too (``timesteps`` must match unless
    ``strict=False``).  Unreadable archives raise
    :class:`CheckpointError` naming ``path``.
    """
    if not os.path.exists(path):
        raise CheckpointError(f"no checkpoint at '{path}'")
    try:
        with np.load(path) as archive:
            state = {
                key: archive[key]
                for key in archive.files
                if not key.startswith(_META_PREFIX)
            }
            meta = {
                key[len(_META_PREFIX):]: archive[key]
                for key in archive.files
                if key.startswith(_META_PREFIX)
            }
    except (zipfile.BadZipFile, EOFError, OSError, ValueError) as exc:
        raise CheckpointError(
            f"corrupt or truncated checkpoint at '{path}': {exc}"
        ) from exc
    model.load_state_dict(state, strict=strict)
    if isinstance(model, SpikingNetwork):
        if "betas" not in meta:
            if strict:
                raise CheckpointError(
                    f"checkpoint at '{path}' has no '{_META_PREFIX}betas' "
                    "metadata — it was not saved from a SpikingNetwork "
                    "(pass strict=False to load the raw parameters anyway)"
                )
            return
        neurons = model.spiking_neurons()
        betas = meta["betas"]
        if len(neurons) != len(betas):
            raise ValueError(
                f"checkpoint has {len(betas)} neuron betas; model has "
                f"{len(neurons)} spiking layers"
            )
        for neuron, beta in zip(neurons, betas):
            neuron.beta = float(beta)
        if strict and "timesteps" in meta:
            saved_t = int(meta["timesteps"][0])
            if saved_t != model.timesteps:
                raise ValueError(
                    f"checkpoint was built for T={saved_t}, model runs "
                    f"T={model.timesteps} (pass strict=False to override)"
                )
