"""Utility helpers: checkpointing, seeding."""

from .checkpoint import CheckpointError, load_checkpoint, save_checkpoint

__all__ = ["CheckpointError", "load_checkpoint", "save_checkpoint"]
