"""Utility helpers: checkpointing, seeding, signal deferral."""

from .checkpoint import CheckpointError, load_checkpoint, save_checkpoint
from .interrupts import delay_interrupts

__all__ = [
    "CheckpointError",
    "delay_interrupts",
    "load_checkpoint",
    "save_checkpoint",
]
