"""Deferral of termination signals around critical sections.

``os.replace`` makes each individual checkpoint file atomic, but a
checkpoint is usually a *pair* of artefacts (weights archive + progress
record): SIGTERM or Ctrl-C landing between the two leaves them
describing different epochs, and a later resume silently continues
from inconsistent state.  :func:`delay_interrupts` makes such a
section signal-atomic — SIGINT/SIGTERM arriving inside the block are
buffered and re-raised immediately after it, so the process still
dies (or raises ``KeyboardInterrupt``) as requested, just never with
half a checkpoint on disk.

Signal handlers can only be installed from the main thread; on other
threads the context manager is a no-op (worker threads cannot receive
these signals directly anyway).
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager
from typing import Iterator, Sequence

__all__ = ["delay_interrupts"]

_DEFAULT_SIGNALS = (signal.SIGINT, signal.SIGTERM)


@contextmanager
def delay_interrupts(
    signals: Sequence[signal.Signals] = _DEFAULT_SIGNALS,
) -> Iterator[None]:
    """Buffer ``signals`` for the duration of the block, then re-deliver.

    Re-delivery uses ``signal.raise_signal`` after the original
    handlers are restored, so the deferred signal runs its *original*
    disposition (``KeyboardInterrupt`` for SIGINT, process exit for an
    un-handled SIGTERM) — the only change is *when*.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    pending: list = []
    previous: dict = {}

    def _defer(signum, _frame) -> None:
        if signum not in pending:
            pending.append(signum)

    try:
        for sig in signals:
            previous[sig] = signal.signal(sig, _defer)
    except (ValueError, OSError, RuntimeError):
        # Exotic host (no signal support / embedded interpreter):
        # undo anything partially installed and run unprotected.
        for sig, handler in previous.items():
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError, RuntimeError):
                pass
        yield
        return

    try:
        yield
    finally:
        for sig, handler in previous.items():
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError, RuntimeError):
                pass
        for signum in pending:
            signal.raise_signal(signum)
