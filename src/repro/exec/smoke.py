"""Parallel-executor smoke check (``make exec-smoke``).

A fast, deterministic end-to-end pass over the execution machinery:

1. ``tree_reduce`` combines in a fixed order regardless of input
   length parity, and ``map``/``map_reduce`` return bitwise-identical
   results at workers 1, 2 and 4;
2. a chaos-killed worker (deterministic :class:`~repro.faults.ChaosSpec`)
   changes **nothing** about the results — the in-flight task is
   re-dispatched and the sweep stays bitwise-identical;
3. a poison task (kills every worker that touches it) is quarantined:
   the map completes with ``status == "partial"`` and an explicit
   failure record instead of hanging or crashing the parent;
4. an unavailable start method degrades gracefully to serial with the
   same results;
5. a micro fault sweep is bitwise-identical serial vs parallel, and an
   identical-seed ``repro.obs`` diff of two traced parallel sweeps —
   one clean, one with a chaos worker kill — is clean (exit 0), while
   a cross-worker-count diff carries an *informational*
   ``env:executor.workers`` row without gating.

Exits non-zero with a diagnostic on the first failed check.
"""

from __future__ import annotations

import argparse
import json
import os
from dataclasses import replace

import numpy as np


def _fail(message: str) -> int:
    print(f"EXEC SMOKE FAILED: {message}")
    return 1


def _checksum_task(payload):
    """Seeded dense task: deterministic function of the payload only."""
    index, size = payload
    rng = np.random.default_rng(1000 + index)
    matrix = rng.standard_normal((size, size))
    return float(np.tanh(matrix @ matrix.T).sum())


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec.smoke",
        description="Deterministic parallel-execution and supervision check.",
    )
    parser.add_argument("--run-dir", default=os.path.join("results", "exec_smoke_run"))
    args = parser.parse_args(argv)

    import repro.experiments.config as config_module
    from ..experiments.config import SCALES
    from ..experiments.context import clear_context_cache
    from ..experiments.fault_sweep import run_fault_sweep
    from ..experiments.pipeline import clear_pipeline_cache
    from ..faults import ChaosSpec
    from ..obs import observe
    from ..obs.diff import diff_run_dirs
    from ..obs.registry import registration_enabled
    from . import ParallelExecutor, executor_scope, tree_reduce

    # ------------------------------------------------------------------
    # 1. fixed-order reduction + map determinism across worker counts
    # ------------------------------------------------------------------
    combined = tree_reduce(lambda a, b: f"({a}+{b})", list("abcde"))
    if combined != "(((a+b)+(c+d))+e)":
        return _fail(f"tree_reduce order drifted: {combined}")

    tasks = [(i, 12) for i in range(9)]
    serial = ParallelExecutor(workers=1).map(_checksum_task, tasks, label="smoke")
    if not serial.ok:
        return _fail(f"serial map reported failures: {serial.failures}")
    for workers in (2, 4):
        result = ParallelExecutor(workers=workers).map(
            _checksum_task, tasks, label="smoke"
        )
        if not result.ok:
            return _fail(f"workers={workers} map reported failures: {result.failures}")
        if result.results != serial.results:
            return _fail(f"workers={workers} results differ from serial")
    print(f"exec smoke: map bitwise-identical at workers 1/2/4 over {len(tasks)} tasks")

    # ------------------------------------------------------------------
    # 2. chaos worker kill -> retried, still identical
    # ------------------------------------------------------------------
    chaos = ParallelExecutor(workers=2, chaos=ChaosSpec.kill_task(3, attempts=1))
    chaotic = chaos.map(_checksum_task, tasks, label="smoke-chaos")
    if not chaotic.ok or chaotic.results != serial.results:
        return _fail("chaos-killed map did not recover to identical results")
    if chaotic.stats.crashes < 1 or chaotic.stats.retried < 1:
        return _fail(f"chaos kill not visible in stats: {chaotic.stats}")
    print(
        f"exec smoke: worker kill recovered ({chaotic.stats.crashes} crash, "
        f"{chaotic.stats.retried} retry), results identical"
    )

    # ------------------------------------------------------------------
    # 3. poison task -> quarantined, sweep completes as partial
    # ------------------------------------------------------------------
    poison = ParallelExecutor(
        workers=2,
        poison_threshold=2,
        max_retries=4,
        chaos=ChaosSpec.kill_task(5, attempts=5),
    )
    partial = poison.map(_checksum_task, tasks, label="smoke-poison")
    if partial.status != "partial":
        return _fail(f"poison task not quarantined: status={partial.status}")
    kinds = {f.index: f.kind for f in partial.failures.values()}
    if kinds != {5: "poison"}:
        return _fail(f"unexpected failure set: {kinds}")
    if any(
        value != expected
        for i, (value, expected) in enumerate(zip(partial.results, serial.results))
        if i != 5
    ):
        return _fail("non-poison results perturbed by quarantine")
    print("exec smoke: poison task quarantined, remaining 8/9 tasks identical")

    # ------------------------------------------------------------------
    # 4. unavailable start method -> graceful serial downgrade
    # ------------------------------------------------------------------
    downgraded = ParallelExecutor(workers=4, start_method="no-such-method")
    fallback = downgraded.map(_checksum_task, tasks, label="smoke-downgrade")
    if not fallback.stats.downgraded or fallback.stats.mode != "serial":
        return _fail(f"start-method downgrade not recorded: {fallback.stats}")
    if fallback.results != serial.results:
        return _fail("downgraded serial results differ")
    print("exec smoke: unavailable start method degraded to serial, identical results")

    # ------------------------------------------------------------------
    # 5. micro fault sweep: serial == parallel, traced diff clean
    # ------------------------------------------------------------------
    scale = replace(
        SCALES["tiny"],
        name="smoke",
        image_size=8,
        train_size=60,
        test_size=30,
        width_multiplier=0.125,
        batch_size=30,
        dnn_epochs=2,
        snn_epochs=1,
        calibration_batches=1,
    )
    config_module.SCALES = {**config_module.SCALES, "smoke": scale}
    sweep_kwargs = dict(
        arch="vgg11",
        dataset="cifar10",
        scale_name="smoke",
        timesteps=2,
        fault_kinds=["prune"],
        ladders={"prune": (0.0, 0.2)},
        seed=0,
    )

    def _traced_sweep(run_dir, executor):
        clear_context_cache()
        clear_pipeline_cache()
        for name in ("trace.jsonl", "events.jsonl", "metrics.json",
                     "drift.jsonl", "faults.jsonl", "alerts.jsonl",
                     "worker_telemetry.jsonl"):
            path = os.path.join(run_dir, name)
            if os.path.exists(path):
                os.remove(path)
        # Ambient scope (the CLI's wiring): the run registry fingerprint
        # records the executor config for obs diff's informational rows.
        with executor_scope(executor):
            with observe(run_dir, smoke=True, arch="vgg11", timesteps=2, seed=0):
                return run_fault_sweep(**sweep_kwargs)

    serial_sweep = _traced_sweep(args.run_dir, None)
    parallel_sweep = _traced_sweep(
        f"{args.run_dir}_b", ParallelExecutor(workers=2)
    )
    chaos_sweep = _traced_sweep(
        f"{args.run_dir}_c",
        ParallelExecutor(workers=2, chaos=ChaosSpec.kill_task(1, attempts=1)),
    )
    blobs = [json.dumps(s, sort_keys=True)
             for s in (serial_sweep, parallel_sweep, chaos_sweep)]
    if len(set(blobs)) != 1:
        return _fail("fault sweep payloads differ across serial/parallel/chaos")
    print("exec smoke: fault sweep bitwise-identical serial vs parallel vs chaos")

    diff = diff_run_dirs(f"{args.run_dir}_b", f"{args.run_dir}_c")
    if not diff.ok:
        print(diff.render())
        return _fail(
            f"identical-seed parallel-vs-chaos diff found "
            f"{len(diff.regressions)} regression(s)"
        )
    cross = diff_run_dirs(args.run_dir, f"{args.run_dir}_b")
    if not cross.ok:
        print(cross.render())
        return _fail("cross-worker-count diff gated instead of informational")
    env_rows = [d for d in cross.deltas if d.name.startswith("env:executor")]
    if registration_enabled() and not env_rows:
        return _fail("cross-worker-count diff carried no env:executor row")
    if any(d.significant or d.regressed for d in env_rows):
        return _fail("env:executor rows must stay informational")
    print(
        f"exec smoke: obs diff clean under chaos; cross-worker diff carries "
        f"{len(env_rows)} informational env:executor row(s)"
    )

    print("EXEC SMOKE PASSED")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
