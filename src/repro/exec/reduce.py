"""Fixed-order tree reduction.

Parallel sweeps must produce bitwise-identical results to the serial
path regardless of worker count or completion order.  Floating-point
addition is not associative, so *any* reduction over partial results
has to fix its combination order up front.  ``tree_reduce`` combines a
list pairwise in a deterministic binary-tree shape that depends only on
``len(items)`` — never on which worker finished first.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")

__all__ = ["tree_reduce"]


def tree_reduce(
    combine: Callable[[T, T], T],
    items: Sequence[T],
    *,
    initial: Optional[T] = None,
) -> T:
    """Reduce ``items`` with ``combine`` in a fixed pairwise tree order.

    The tree shape is a pure function of ``len(items)``: level 0 pairs
    ``(items[0], items[1]), (items[2], items[3]), ...``; odd tails are
    carried up unchanged.  Two calls with equal-length inputs therefore
    apply ``combine`` in exactly the same order, which keeps
    non-associative combines (float sums, running means) bitwise
    reproducible across worker counts.

    ``initial`` seeds the reduction as a leading element (index 0).
    Raises ``ValueError`` on an empty reduction with no ``initial``.
    """
    level: List[T] = list(items)
    if initial is not None:
        level = [initial] + level
    if not level:
        raise ValueError("tree_reduce() of empty sequence with no initial value")
    while len(level) > 1:
        nxt: List[T] = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(combine(level[i], level[i + 1]))
        if len(level) % 2 == 1:
            nxt.append(level[-1])
        level = nxt
    return level[0]
