"""Fault-tolerant multi-process task executor.

``ParallelExecutor`` shards an indexed task list over a pool of
``multiprocessing`` workers while preserving the repo's bitwise
determinism contract: results are assembled **by task index**, so the
output of :meth:`ParallelExecutor.map` is identical to serial execution
regardless of worker count, scheduling, retries, or completion order.
Reductions go through :func:`repro.exec.reduce.tree_reduce` for the
same reason.

Robustness is the headline, not raw speed:

* **Supervision** — every worker runs a daemon heartbeat thread; the
  parent detects dead workers (segfault / OOM kill / ``os._exit``),
  stale heartbeats, and per-task wall-clock timeouts, kills the
  offender, and re-dispatches its in-flight task with bounded retries
  and exponential backoff.
* **Poison quarantine** — a task that takes down ``poison_threshold``
  workers in a row is quarantined: recorded as a failure, never
  retried again, and the sweep completes with status ``"partial"``
  instead of hanging or crash-looping.
* **Graceful degradation** — ``workers=1``, an unavailable start
  method, a pool that fails to spawn, or a pool that exhausts its
  restart budget all fall back to the serial path with a logged
  downgrade and the same results.
* **Telemetry** — ``exec.*`` counters/gauges through ``repro.obs``
  (dispatched / retried / quarantined / crashes / restarts / heartbeat
  latency).  These series are excluded from ``obs diff`` gating: two
  runs that differ only in scheduling noise must still diff clean.

Deterministic failure injection for all of the above lives in
:class:`repro.faults.chaos.ChaosSpec` (kill/hang keyed by task index
and attempt number, applied worker-side).
"""

from __future__ import annotations

import heapq
import multiprocessing
import multiprocessing.connection
import os
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs import metrics as obs_metrics
from ..obs.logging import get_logger
from .reduce import tree_reduce

__all__ = [
    "ExecutorError",
    "TaskFailure",
    "ExecStats",
    "MapResult",
    "ParallelExecutor",
    "simulated_sweep_point",
]

_LOG = get_logger("repro.exec")

_POLL_INTERVAL_S = 0.05


class ExecutorError(RuntimeError):
    """Raised when a map that must be complete finished ``partial``."""


@dataclass(frozen=True)
class TaskFailure:
    """Terminal record for a task that could not produce a result."""

    index: int
    kind: str  # "error" | "poison" | "timeout" | "lost"
    message: str
    attempts: int
    worker_crashes: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "kind": self.kind,
            "message": self.message,
            "attempts": self.attempts,
            "worker_crashes": self.worker_crashes,
        }


@dataclass
class ExecStats:
    """Executor-side accounting for one ``map`` call."""

    workers: int
    start_method: str
    mode: str = "serial"  # "serial" | "parallel"
    downgraded: bool = False
    downgrade_reason: str = ""
    tasks: int = 0
    dispatched: int = 0
    completed: int = 0
    retried: int = 0
    errors: int = 0
    crashes: int = 0
    timeouts: int = 0
    restarts: int = 0
    quarantined: int = 0
    failed: int = 0
    serial_fallback_tasks: int = 0
    duration_s: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        return dict(self.__dict__)


@dataclass
class MapResult:
    """Outcome of :meth:`ParallelExecutor.map`.

    ``results[i]`` corresponds to ``tasks[i]``; failed/quarantined
    indices hold ``None`` and are described in ``failures``.
    """

    results: List[Any]
    failures: Dict[int, TaskFailure] = field(default_factory=dict)
    stats: Optional[ExecStats] = None

    @property
    def status(self) -> str:
        return "partial" if self.failures else "ok"

    @property
    def ok(self) -> bool:
        return not self.failures

    def values_or_raise(self) -> List[Any]:
        if self.failures:
            summary = "; ".join(
                f"task {f.index}: {f.kind} ({f.message})"
                for f in sorted(self.failures.values(), key=lambda f: f.index)
            )
            raise ExecutorError(f"parallel map finished partial: {summary}")
        return self.results


class _Worker:
    __slots__ = (
        "slot", "process", "queue", "conn",
        "busy", "dispatched_at", "last_beat", "dead",
    )

    def __init__(self, slot: int, process, queue, conn) -> None:
        self.slot = slot
        self.process = process
        self.queue = queue
        self.conn = conn  # parent end of this worker's private result pipe
        self.busy: Optional[Tuple[int, int]] = None  # (index, attempt)
        self.dispatched_at: float = 0.0
        self.last_beat: float = time.monotonic()
        self.dead = False


def _quiesce_child_observability() -> None:
    """Disable obs sinks and ambient fan-out inherited across fork/spawn.

    Workers must never write to the parent's JSONL sinks (shared file
    offsets after fork would interleave corrupt records) or register
    runs.  Metrics get a fresh registry so no lock inherited mid-hold
    from a parent thread can deadlock the child.  The ambient executor
    is cleared too: a worker re-fanning-out (e.g. Algorithm 1 inside a
    per-seed pipeline task) would try to spawn children of a daemonic
    process.

    This is also the first half of *capture* mode
    (:func:`repro.obs.remote.install_worker_capture` re-enables the
    state on top of the cleaned slate): the inherited health monitor,
    profiler hooks, capture sink and metric journal are all dropped so
    no parent file handle (shared offset!) stays reachable.
    """
    os.environ["REPRO_RUNS_DISABLE"] = "1"
    try:
        import repro.exec as exec_pkg

        exec_pkg._AMBIENT = None
    except Exception:
        pass
    try:
        from ..obs import core as obs_core

        state = obs_core.state()
        state.enabled = False
        for attr in ("_events_fp", "_trace_fp"):
            if hasattr(state, attr):
                setattr(state, attr, None)
        obs_core.set_capture_sink(None)
    except Exception:
        pass
    try:
        obs_metrics.get_registry()._journal = None
        obs_metrics.reset_registry()
    except Exception:
        pass
    try:
        from ..obs import trace as obs_trace

        obs_trace.reset(counter=True)
    except Exception:
        pass
    try:
        from ..obs import health as obs_health

        obs_health.quiesce_forked()
    except Exception:
        pass
    try:
        from ..obs import profile as obs_profile

        obs_profile.quiesce_forked()
    except Exception:
        pass


def _worker_main(
    fn: Callable[[Any], Any],
    slot: int,
    task_queue,
    conn,
    heartbeat_interval_s: float,
    chaos,
    initializer: Optional[Callable[..., None]],
    initargs: Tuple[Any, ...],
    telemetry: Optional[Dict[str, Any]] = None,
) -> None:
    _quiesce_child_observability()
    buffer = None
    if telemetry is not None:
        # The parent run is observed: replace quiescing with capture.
        # Initializer work runs outside any task scope, so per-worker
        # setup never enters the merged telemetry stream.
        try:
            from ..obs import remote as obs_remote

            buffer = obs_remote.install_worker_capture(
                obs_remote.TelemetryEnvelope.from_dict(telemetry), worker_id=slot
            )
        except Exception:
            buffer = None
    if initializer is not None:
        initializer(*initargs)

    # Each worker owns a private result pipe.  A worker dying mid-write
    # (segfault, OOM kill, chaos ``os._exit``) can corrupt *its own*
    # channel only; the supervisor attributes the broken pipe to this
    # worker's in-flight task instead of losing everyone's messages, as
    # a shared result queue would.  The heartbeat thread shares the
    # pipe with the task loop, so sends are serialised by a lock.
    send_lock = threading.Lock()
    stop = threading.Event()

    def _send(message) -> bool:
        try:
            with send_lock:
                conn.send(message)
            return True
        except (BrokenPipeError, OSError):
            return False

    def _beat() -> None:
        while not stop.is_set():
            if not _send(("heartbeat", time.monotonic())):
                return
            stop.wait(heartbeat_interval_s)

    beat_thread = threading.Thread(target=_beat, name="exec-heartbeat", daemon=True)
    beat_thread.start()
    _send(("ready",))

    while True:
        message = task_queue.get()
        if message is None:
            break
        index, attempt, payload = message
        if chaos is not None:
            if chaos.should_kill(index, attempt):
                os._exit(chaos.exit_code)
            if chaos.should_hang(index, attempt):
                time.sleep(chaos.hang_seconds)
        if buffer is not None:
            buffer.begin_task(index, attempt)
        try:
            value = fn(payload)
        except BaseException as exc:  # noqa: BLE001 - forwarded to supervisor
            detail = f"{type(exc).__name__}: {exc}"
            if buffer is not None:
                _send(("telemetry", index, attempt, buffer.end_task("error")))
            if not _send(("error", index, attempt, detail, traceback.format_exc())):
                break
        else:
            if buffer is not None:
                telemetry_payload = buffer.end_task("ok")
                if chaos is not None and chaos.should_kill_after(index, attempt):
                    # Die mid-telemetry-write: torn shard tail, no
                    # piggyback, no result — the merge must recover
                    # this task from the shard's intact prefix.
                    buffer.tear_shard()
                    os._exit(chaos.exit_code)
                _send(("telemetry", index, attempt, telemetry_payload))
            elif chaos is not None and chaos.should_kill_after(index, attempt):
                os._exit(chaos.exit_code)
            if not _send(("result", index, attempt, value)):
                break
    if buffer is not None:
        buffer.close()
    stop.set()
    try:
        conn.close()
    except OSError:
        pass


def simulated_sweep_point(seconds: float) -> float:
    """Latency-bound synthetic sweep point used by the scaling bench.

    Sleeps a fixed wall-clock interval and returns it, modelling a
    sweep point dominated by waiting (I/O, device latency) rather than
    CPU.  On a single-core host this is the honest way to measure
    executor fan-out: compute-bound tasks cannot speed up past 1x
    there, while overlap of fixed-latency tasks can.
    """
    time.sleep(float(seconds))
    return float(seconds)


class ParallelExecutor:
    """Task-sharded map/reduce with worker supervision.

    Parameters
    ----------
    workers:
        Pool size.  ``1`` selects the serial path outright.
    start_method:
        ``multiprocessing`` start method (``fork``/``spawn``/
        ``forkserver``).  ``None`` prefers ``fork`` when available.
        An unavailable method downgrades to serial (logged), it never
        raises.
    max_retries:
        Extra attempts after a task raises an exception (crashes are
        governed by ``poison_threshold`` instead).
    poison_threshold:
        Number of workers a single task may kill (crash or timeout)
        before it is quarantined.
    task_timeout_s:
        Per-task wall-clock budget; ``None`` disables timeout kills.
    heartbeat_timeout_s:
        A worker silent for this long is presumed hung and replaced.
    max_worker_restarts:
        Total replacement workers allowed per ``map`` before the
        executor downgrades the remainder to serial.  Defaults to
        ``3 * workers``.
    chaos:
        Optional :class:`repro.faults.chaos.ChaosSpec` applied inside
        workers (ignored, with a log line, on the serial path).
    telemetry:
        Worker observability capture (:mod:`repro.obs.remote`).
        ``None`` (default) captures exactly when the parent run is
        observed at map time; ``False`` forces the quiesced PR-9
        behaviour even for observed runs; ``True`` behaves like
        ``None`` (capture still requires an observed run to have
        anywhere to merge into).
    """

    def __init__(
        self,
        workers: int = 1,
        *,
        start_method: Optional[str] = None,
        max_retries: int = 2,
        poison_threshold: int = 2,
        task_timeout_s: Optional[float] = None,
        heartbeat_interval_s: float = 0.1,
        heartbeat_timeout_s: float = 30.0,
        backoff_base_s: float = 0.02,
        backoff_max_s: float = 0.5,
        max_worker_restarts: Optional[int] = None,
        chaos=None,
        telemetry: Optional[bool] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if poison_threshold < 1:
            raise ValueError("poison_threshold must be >= 1")
        self.workers = int(workers)
        self.start_method = start_method
        self.max_retries = int(max_retries)
        self.poison_threshold = int(poison_threshold)
        self.task_timeout_s = task_timeout_s
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.heartbeat_timeout_s = float(heartbeat_timeout_s)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_max_s = float(backoff_max_s)
        self.max_worker_restarts = (
            3 * self.workers if max_worker_restarts is None else int(max_worker_restarts)
        )
        self.chaos = chaos
        self.telemetry = telemetry

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def resolved_start_method(self) -> str:
        if self.workers <= 1:
            return "serial"
        available = multiprocessing.get_all_start_methods()
        if self.start_method is not None:
            return self.start_method if self.start_method in available else "serial"
        if "fork" in available:
            return "fork"
        return available[0] if available else "serial"

    def config_dict(self) -> Dict[str, Any]:
        """Executor fingerprint recorded in the run registry."""
        return {
            "workers": self.workers,
            "start_method": self.resolved_start_method(),
            "max_retries": self.max_retries,
            "poison_threshold": self.poison_threshold,
            "telemetry": "auto" if self.telemetry is None else bool(self.telemetry),
        }

    def _telemetry_active(self) -> bool:
        """Capture telemetry for the next map?

        Requires the parent run to be observed, and that this process
        is not *itself* a capturing worker (a nested map inside a task
        already streams through the enclosing task's buffer).
        """
        if self.telemetry is False:
            return False
        from ..obs import core as obs_core

        return obs_core.is_enabled() and obs_core.capture_sink() is None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def map(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        *,
        label: str = "map",
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ) -> MapResult:
        """Apply ``fn`` to every task, preserving task order in results."""
        items = list(tasks)
        stats = ExecStats(
            workers=self.workers,
            start_method=self.resolved_start_method(),
            tasks=len(items),
        )
        plan = None
        if self._telemetry_active():
            from ..obs import remote as obs_remote

            plan = obs_remote.MapTelemetry(label)
        from ..obs import trace as obs_trace

        started = time.monotonic()
        try:
            with obs_trace.span(
                "exec.map", label=label, workers=self.workers, tasks=len(items)
            ) as dispatch_span:
                if plan is not None:
                    plan.set_dispatch(
                        getattr(dispatch_span, "span_id", None),
                        getattr(dispatch_span, "depth", 0),
                    )
                if self.workers <= 1 or len(items) <= 1:
                    result = self._map_serial(
                        fn, items, stats, initializer, initargs, plan
                    )
                else:
                    method = self.resolved_start_method()
                    if method == "serial":
                        self._note_downgrade(
                            stats,
                            f"start method {self.start_method!r} unavailable "
                            f"(have {multiprocessing.get_all_start_methods()})",
                        )
                        result = self._map_serial(
                            fn, items, stats, initializer, initargs, plan
                        )
                    else:
                        result = self._map_parallel(
                            fn, items, stats, method, label, initializer, initargs, plan
                        )
        finally:
            if plan is not None:
                plan.tee_close()
        stats.duration_s = time.monotonic() - started
        if plan is not None:
            merged = plan.merge()
            obs_metrics.inc("exec.telemetry_tasks_merged", merged["tasks"])
            obs_metrics.inc("exec.telemetry_records_merged", merged["records"])
            if merged["recovered"]:
                obs_metrics.inc("exec.telemetry_tasks_recovered", merged["recovered"])
        self._flush_telemetry(stats, label)
        self._surface_health(stats, result, label)
        return result

    def map_reduce(
        self,
        fn: Callable[[Any], Any],
        tasks: Sequence[Any],
        combine: Callable[[Any, Any], Any],
        *,
        label: str = "map_reduce",
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
    ) -> Any:
        """Map then fixed-order tree-reduce; raises on a partial map."""
        outcome = self.map(fn, tasks, label=label, initializer=initializer, initargs=initargs)
        values = outcome.values_or_raise()
        return tree_reduce(combine, values)

    # ------------------------------------------------------------------
    # Serial path
    # ------------------------------------------------------------------
    def _map_serial(
        self,
        fn: Callable[[Any], Any],
        items: List[Any],
        stats: ExecStats,
        initializer: Optional[Callable[..., None]],
        initargs: Tuple[Any, ...],
        plan=None,
    ) -> MapResult:
        stats.mode = "serial"
        if self.chaos is not None and not self.chaos.is_null:
            _LOG.info("exec: chaos schedule ignored on serial path")
        if initializer is not None:
            initializer(*initargs)
        results: List[Any] = [None] * len(items)
        failures: Dict[int, TaskFailure] = {}
        for index, payload in enumerate(items):
            attempts = 0
            while True:
                attempts += 1
                stats.dispatched += 1
                if attempts > 1:
                    stats.retried += 1
                # The tee scope covers exactly fn() — executor
                # bookkeeping stays out of the canonical stream so
                # serial and parallel captures match byte for byte.
                if plan is not None:
                    plan.tee_begin(index, attempts - 1)
                try:
                    results[index] = fn(payload)
                except Exception as exc:  # noqa: BLE001 - mirrored from workers
                    if plan is not None:
                        plan.tee_end("error")
                    stats.errors += 1
                    if attempts > self.max_retries:
                        failures[index] = TaskFailure(
                            index=index,
                            kind="error",
                            message=f"{type(exc).__name__}: {exc}",
                            attempts=attempts,
                        )
                        stats.failed += 1
                        break
                else:
                    if plan is not None:
                        plan.tee_end("ok")
                    stats.completed += 1
                    break
        return MapResult(results=results, failures=failures, stats=stats)

    # ------------------------------------------------------------------
    # Parallel path
    # ------------------------------------------------------------------
    def _map_parallel(
        self,
        fn: Callable[[Any], Any],
        items: List[Any],
        stats: ExecStats,
        method: str,
        label: str,
        initializer: Optional[Callable[..., None]],
        initargs: Tuple[Any, ...],
        plan=None,
    ) -> MapResult:
        stats.mode = "parallel"
        try:
            ctx = multiprocessing.get_context(method)
        except ValueError as exc:
            self._note_downgrade(stats, f"get_context({method!r}) failed: {exc}")
            return self._map_serial(fn, items, stats, initializer, initargs, plan)

        n = len(items)
        pool_size = min(self.workers, n)
        workers: List[_Worker] = []
        envelope = plan.envelope_dict() if plan is not None else None

        def _spawn(slot: int) -> _Worker:
            task_queue = ctx.SimpleQueue()
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            process = ctx.Process(
                target=_worker_main,
                args=(
                    fn,
                    slot,
                    task_queue,
                    child_conn,
                    self.heartbeat_interval_s,
                    self.chaos,
                    initializer,
                    initargs,
                    envelope,
                ),
                daemon=True,
                name=f"repro-exec-{label}-{slot}",
            )
            process.start()
            # Close the child end in the parent so the pipe reports EOF
            # the moment the worker (its only writer) dies.
            child_conn.close()
            return _Worker(slot, process, task_queue, parent_conn)

        try:
            for slot in range(pool_size):
                workers.append(_spawn(slot))
        except Exception as exc:  # noqa: BLE001 - any spawn failure downgrades
            for worker in workers:
                self._kill_worker(worker)
            self._note_downgrade(stats, f"worker spawn failed: {exc}")
            return self._map_serial(fn, items, stats, initializer, initargs, plan)

        results: List[Any] = [None] * n
        done: List[bool] = [False] * n
        failures: Dict[int, TaskFailure] = {}
        attempts = [0] * n  # dispatch count per task
        error_counts = [0] * n
        crash_counts = [0] * n
        task_durations: Dict[Tuple[int, int], float] = {}  # telemetry-reported fn time
        pending = deque(range(n))
        delayed: List[Tuple[float, int]] = []  # (ready_at, index) heap
        restarts_used = 0
        settled = 0  # completed + failed

        def _settle_failure(failure: TaskFailure) -> None:
            nonlocal settled
            failures[failure.index] = failure
            stats.failed += 1
            if failure.kind in ("poison", "timeout"):
                stats.quarantined += 1
                obs_metrics.inc("exec.tasks_quarantined")
            settled += 1

        def _record_result(index: int, value: Any) -> None:
            nonlocal settled
            if done[index] or index in failures:
                return  # stale duplicate from a raced re-dispatch
            results[index] = value
            done[index] = True
            stats.completed += 1
            settled += 1

        def _requeue(index: int) -> None:
            delay = min(
                self.backoff_max_s,
                self.backoff_base_s * (2 ** max(0, attempts[index] - 1)),
            )
            obs_metrics.inc("exec.backoff_total_s", delay)
            heapq.heappush(delayed, (time.monotonic() + delay, index))

        def _handle_worker_loss(worker: _Worker, kind: str, detail: str) -> None:
            nonlocal restarts_used
            if worker.dead:
                return
            worker.dead = True
            self._kill_worker(worker)
            stats.crashes += 1
            obs_metrics.inc("exec.worker_crashes")
            obs_metrics.inc("exec.worker_failures", worker=worker.slot)
            if kind == "timeout":
                stats.timeouts += 1
            in_flight = worker.busy
            worker.busy = None
            if in_flight is not None:
                index = in_flight[0]
                if not done[index] and index not in failures:
                    crash_counts[index] += 1
                    if crash_counts[index] >= self.poison_threshold:
                        _settle_failure(
                            TaskFailure(
                                index=index,
                                kind="poison" if kind == "crash" else kind,
                                message=(
                                    f"task killed {crash_counts[index]} workers in a row; "
                                    f"quarantined ({detail})"
                                ),
                                attempts=attempts[index],
                                worker_crashes=crash_counts[index],
                            )
                        )
                        _LOG.warning(
                            f"exec: quarantined poison task {index} after "
                            f"{crash_counts[index]} worker deaths",
                            label=label,
                        )
                    else:
                        _requeue(index)
            if restarts_used < self.max_worker_restarts:
                restarts_used += 1
                stats.restarts += 1
                obs_metrics.inc("exec.worker_restarts")
                try:
                    replacement = _spawn(worker.slot)
                except Exception as exc:  # noqa: BLE001
                    _LOG.warning(f"exec: worker respawn failed: {exc}", label=label)
                else:
                    workers[workers.index(worker)] = replacement

        deadline_slack = 4 * _POLL_INTERVAL_S
        while settled < n:
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                _, index = heapq.heappop(delayed)
                if not done[index] and index not in failures:
                    pending.append(index)

            for worker in workers:
                if worker.dead or worker.busy is not None or not pending:
                    continue
                index = pending.popleft()
                if done[index] or index in failures:
                    continue
                attempt = attempts[index]
                attempts[index] += 1
                worker.busy = (index, attempt)
                worker.dispatched_at = now
                worker.queue.put((index, attempt, items[index]))
                stats.dispatched += 1
                obs_metrics.inc("exec.tasks_dispatched")
                if attempt > 0:
                    stats.retried += 1
                    obs_metrics.inc("exec.tasks_retried")

            live_conns = {w.conn: w for w in workers if not w.dead}
            try:
                ready = multiprocessing.connection.wait(
                    list(live_conns), timeout=_POLL_INTERVAL_S
                )
            except OSError:
                ready = []
            for conn in ready:
                worker = live_conns[conn]
                # Drain everything buffered on this worker's pipe.  Any
                # failure to read (EOF after death, partial pickle from
                # a kill mid-write) is attributed to *this* worker only.
                while not worker.dead:
                    try:
                        if not conn.poll():
                            break
                        message = conn.recv()
                    except (EOFError, OSError):
                        code = worker.process.exitcode
                        _handle_worker_loss(
                            worker, "crash",
                            f"result channel closed (exit code {code})",
                        )
                        break
                    except Exception as exc:  # noqa: BLE001 - corrupt frame
                        _handle_worker_loss(
                            worker, "crash", f"result channel corrupt: {exc}"
                        )
                        break
                    kind = message[0]
                    if kind == "heartbeat":
                        sent_at = message[1]
                        worker.last_beat = time.monotonic()
                        obs_metrics.observe(
                            "exec.heartbeat_latency_s",
                            max(0.0, time.monotonic() - sent_at),
                        )
                    elif kind == "ready":
                        worker.last_beat = time.monotonic()
                    elif kind == "telemetry":
                        _, index, attempt, telemetry_payload = message
                        if plan is not None:
                            plan.offer(telemetry_payload)
                            if isinstance(telemetry_payload, dict):
                                duration = telemetry_payload.get("duration_s")
                                if isinstance(duration, (int, float)):
                                    task_durations[(index, attempt)] = float(duration)
                    elif kind == "result":
                        _, index, attempt, value = message
                        _record_result(index, value)
                        obs_metrics.inc("exec.tasks_completed")
                        obs_metrics.inc("exec.worker_tasks", worker=worker.slot)
                        duration = task_durations.pop((index, attempt), None)
                        if duration is not None:
                            # Queue wait = time between dispatch and
                            # result arrival not spent inside fn().
                            elapsed = time.monotonic() - worker.dispatched_at
                            obs_metrics.observe(
                                "exec.queue_wait_s", max(0.0, elapsed - duration)
                            )
                            obs_metrics.observe("exec.task_duration_s", duration)
                        if worker.busy == (index, attempt):
                            worker.busy = None
                    elif kind == "error":
                        _, index, attempt, detail, _tb = message
                        task_durations.pop((index, attempt), None)
                        obs_metrics.inc("exec.worker_failures", worker=worker.slot)
                        if worker.busy == (index, attempt):
                            worker.busy = None
                        if not done[index] and index not in failures:
                            error_counts[index] += 1
                            stats.errors += 1
                            obs_metrics.inc("exec.task_errors")
                            if error_counts[index] > self.max_retries:
                                _settle_failure(
                                    TaskFailure(
                                        index=index,
                                        kind="error",
                                        message=detail,
                                        attempts=attempts[index],
                                        worker_crashes=crash_counts[index],
                                    )
                                )
                            else:
                                _requeue(index)

            # --- supervision sweep -----------------------------------
            now = time.monotonic()
            for worker in list(workers):
                if worker.dead:
                    continue
                if not worker.process.is_alive():
                    code = worker.process.exitcode
                    _handle_worker_loss(worker, "crash", f"worker exited with code {code}")
                    continue
                if (
                    self.task_timeout_s is not None
                    and worker.busy is not None
                    and now - worker.dispatched_at > self.task_timeout_s + deadline_slack
                ):
                    _handle_worker_loss(
                        worker,
                        "timeout",
                        f"task exceeded {self.task_timeout_s:.3f}s wall clock",
                    )
                    continue
                if now - worker.last_beat > self.heartbeat_timeout_s:
                    _handle_worker_loss(
                        worker,
                        "timeout" if worker.busy is not None else "crash",
                        f"no heartbeat for {self.heartbeat_timeout_s:.3f}s",
                    )

            if all(w.dead for w in workers):
                # Pool is gone and the restart budget is spent: finish
                # the remainder serially rather than losing the sweep.
                self._note_downgrade(stats, "worker pool exhausted restart budget")
                obs_metrics.inc("exec.serial_fallbacks")
                if initializer is not None:
                    initializer(*initargs)
                for index in range(n):
                    if done[index] or index in failures:
                        continue
                    if crash_counts[index] > 0:
                        # A task that already killed workers is not safe
                        # to run in the parent process.
                        _settle_failure(
                            TaskFailure(
                                index=index,
                                kind="poison",
                                message="crash history; not retried in parent after pool loss",
                                attempts=attempts[index],
                                worker_crashes=crash_counts[index],
                            )
                        )
                        continue
                    stats.serial_fallback_tasks += 1
                    stats.dispatched += 1
                    if plan is not None:
                        plan.tee_begin(index, attempts[index])
                    try:
                        value = fn(items[index])
                    except Exception as exc:  # noqa: BLE001
                        if plan is not None:
                            plan.tee_end("error")
                        stats.errors += 1
                        _settle_failure(
                            TaskFailure(
                                index=index,
                                kind="error",
                                message=f"{type(exc).__name__}: {exc}",
                                attempts=attempts[index] + 1,
                            )
                        )
                    else:
                        if plan is not None:
                            plan.tee_end("ok")
                        _record_result(index, value)
                break

        self._shutdown_pool(workers)
        return MapResult(results=results, failures=failures, stats=stats)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _kill_worker(worker: _Worker) -> None:
        process = worker.process
        try:
            if process.is_alive():
                process.terminate()
                process.join(timeout=0.5)
            if process.is_alive():
                process.kill()
                process.join(timeout=0.5)
        except Exception:
            pass
        try:
            process.close()
        except Exception:
            pass
        try:
            worker.conn.close()
        except Exception:
            pass

    def _shutdown_pool(self, workers: List[_Worker]) -> None:
        for worker in workers:
            if worker.dead:
                continue
            try:
                worker.queue.put(None)
            except Exception:
                pass
        deadline = time.monotonic() + 2.0
        for worker in workers:
            if worker.dead:
                continue
            try:
                worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            except Exception:
                pass
            self._kill_worker(worker)

    def _note_downgrade(self, stats: ExecStats, reason: str) -> None:
        if not stats.downgraded:
            stats.downgraded = True
            stats.downgrade_reason = reason
            obs_metrics.inc("exec.downgrades")
            _LOG.warning(f"exec: downgraded to serial execution: {reason}")

    def _flush_telemetry(self, stats: ExecStats, label: str) -> None:
        try:
            obs_metrics.gauge("exec.workers", stats.workers)
            obs_metrics.gauge("exec.pool_duration_s", stats.duration_s, label=label)
            if stats.mode == "serial":
                obs_metrics.inc("exec.serial_maps")
            else:
                obs_metrics.inc("exec.parallel_maps")
        except Exception:
            pass

    def _surface_health(self, stats: ExecStats, result: MapResult, label: str) -> None:
        """Surface terminal failures/crashes/quarantines as health
        alerts (``alerts.jsonl``) when a monitor is installed — i.e.
        for observed runs.  Once per pathological stretch: a clean map
        under the same label re-arms each rule."""
        try:
            from ..obs import health as obs_health

            monitor = obs_health.active()
            if monitor is None:
                return
            plain_failures = sum(
                1 for f in result.failures.values() if f.kind == "error"
            )
            detail = "; ".join(
                f"task {f.index}: {f.kind} ({f.message})"
                for f in sorted(result.failures.values(), key=lambda f: f.index)[:4]
            )
            monitor.observe_exec(
                label,
                failures=plain_failures,
                crashes=stats.crashes,
                quarantined=stats.quarantined,
                detail=detail or None,
            )
        except Exception:
            pass
