"""Zero-copy model publication over POSIX shared memory.

Sweep fan-out would otherwise pickle the full model into every task
message.  ``ModelStore.publish`` packs all parameter arrays into one
``multiprocessing.shared_memory`` segment and pickles only the model
*structure* (with empty placeholder arrays), returning a small
picklable :class:`ShmModelHandle`.  Workers call :func:`attach_model`
to rebuild the model with its parameters backed directly by the shared
segment — the weights are mapped, not copied.

Two attach modes:

* ``writable=False`` (default) — parameters are **read-only views** of
  the shared buffer.  Any accidental in-place write raises, which
  protects the determinism contract (a worker scribbling on shared
  weights would corrupt every other worker's results).
* ``writable=True`` — each worker makes **one private copy** of the
  buffer at attach time and parameters view that copy.  Required by
  consumers that mutate weights in place (``repro.faults`` injection
  restores exact bits per task, but only within its own process).  The
  copy happens once per worker per handle, not once per task.

Attached models are cached per ``(segment, writable)`` so repeated
tasks in one worker reuse the same rebuild.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["ShmModelHandle", "ModelStore", "attach_model", "clear_attach_cache"]


@dataclass(frozen=True)
class ShmModelHandle:
    """Picklable reference to a model published in shared memory."""

    segment: str
    structure: bytes
    entries: Tuple[Tuple[str, int, Tuple[int, ...], str], ...]
    total_bytes: int

    @property
    def num_parameters(self) -> int:
        return len(self.entries)


def _align(offset: int, alignment: int = 64) -> int:
    return (offset + alignment - 1) // alignment * alignment


class ModelStore:
    """Parent-side owner of shared-memory model segments.

    Context manager: segments are closed **and unlinked** on exit, so
    publish inside a ``with`` block that outlives the executor map.
    """

    def __init__(self) -> None:
        self._segments: List[shared_memory.SharedMemory] = []

    def publish(self, model) -> ShmModelHandle:
        params = list(model.named_parameters())
        arrays = [np.ascontiguousarray(param.data) for _, param in params]
        entries: List[Tuple[str, int, Tuple[int, ...], str]] = []
        offset = 0
        for (name, _), array in zip(params, arrays):
            offset = _align(offset)
            entries.append((name, offset, tuple(array.shape), array.dtype.str))
            offset += array.nbytes
        total = max(offset, 1)
        shm = shared_memory.SharedMemory(create=True, size=total)
        self._segments.append(shm)
        for (_, start, _, _), array in zip(entries, arrays):
            flat = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf, offset=start)
            flat[...] = array

        # Pickle the structure with parameter data (and grads) swapped
        # out for empty placeholders; the real arrays live in ``shm``.
        stash = [(param, param.data, param.grad) for _, param in params]
        try:
            for param, data, _ in stash:
                param.data = np.empty(0, dtype=data.dtype)
                param.grad = None
            structure = pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
        finally:
            for param, data, grad in stash:
                param.data = data
                param.grad = grad
        return ShmModelHandle(
            segment=shm.name,
            structure=structure,
            entries=tuple(entries),
            total_bytes=total,
        )

    def close(self) -> None:
        for shm in self._segments:
            try:
                shm.close()
            except OSError:
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        self._segments = []

    def __enter__(self) -> "ModelStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# Worker-side cache: (segment name, writable) -> (model, keepalive shm).
_ATTACHED: Dict[Tuple[str, bool], Tuple[object, Optional[shared_memory.SharedMemory]]] = {}


def attach_model(handle: ShmModelHandle, *, writable: bool = False):
    """Rebuild the published model in this process (cached per handle)."""
    key = (handle.segment, bool(writable))
    cached = _ATTACHED.get(key)
    if cached is not None:
        return cached[0]

    tracker_shared = _tracker_preexisting()
    shm = shared_memory.SharedMemory(name=handle.segment)
    if not tracker_shared:
        _maybe_unregister_tracker(shm)
    keepalive: Optional[shared_memory.SharedMemory] = shm
    if writable:
        # One private copy per worker; faults injection mutates weights
        # in place and must never touch the shared segment.
        buffer = bytearray(shm.buf[: handle.total_bytes])
        shm.close()
        keepalive = None
    else:
        buffer = shm.buf

    model = pickle.loads(handle.structure)
    params = dict(model.named_parameters())
    for name, offset, shape, dtype in handle.entries:
        if name not in params:
            raise KeyError(f"shared-memory handle names unknown parameter {name!r}")
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=buffer, offset=offset)
        if not writable:
            view.flags.writeable = False
        params[name].data = view
    _ATTACHED[key] = (model, keepalive)
    return model


def clear_attach_cache() -> None:
    """Drop cached attachments (mainly for in-process tests)."""
    for _, keepalive in _ATTACHED.values():
        if keepalive is not None:
            try:
                keepalive.close()
            except (OSError, BufferError):
                pass
    _ATTACHED.clear()


def _tracker_preexisting() -> bool:
    """Was a resource tracker already running before this attach?

    Under ``fork`` the child inherits the parent's tracker connection,
    so the tracker (and its registration of the segment) is *shared*
    with the owning parent — unregistering from the child would strip
    the parent's entry and make the parent's later unlink crash the
    tracker with a KeyError.  Under ``spawn``/``forkserver`` the child
    has no tracker yet; attaching spawns a child-owned one which must
    be told to forget the segment (or it unlinks it at child exit,
    racing the parent).  The pre-existing-fd check distinguishes the
    two cases without knowing the start method.
    """
    try:
        from multiprocessing import resource_tracker

        return resource_tracker._resource_tracker._fd is not None  # type: ignore[attr-defined]
    except Exception:
        return True  # when in doubt, leave the registration alone


def _maybe_unregister_tracker(shm: shared_memory.SharedMemory) -> None:
    """Stop a child-owned resource tracker treating an attach as ownership.

    Child processes that merely attach must not register the segment
    with their own tracker: on Python 3.11 the tracker would unlink it
    (or warn about leaks) when the child exits, racing the parent which
    owns the segment.  Only applies in child processes whose tracker is
    not shared with the parent (see :func:`_tracker_preexisting`) — the
    creating process keeps its registration for crash cleanup.
    """
    import multiprocessing

    if multiprocessing.parent_process() is None:
        return
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:
        pass
