"""Distributed-observability smoke check (``make exec-obs-smoke``).

A fast, deterministic end-to-end pass over the worker-telemetry
machinery (:mod:`repro.obs.remote` + the executor integration):

1. an observed instrumented micro-map produces a schema-valid merged
   ``worker_telemetry.jsonl`` that is **bitwise identical** at workers
   1 (serial tee), 2 and 4;
2. the workers=4 trace is stitched: worker spans parent under the
   ``exec.map`` dispatch span, tagged with their worker lane and task
   index, and the run report renders a "Parallel execution" section;
3. an observed 4-worker micro fault sweep matches a serial observed
   sweep on every aggregate (non-``exec.*``) counter — capture+replay
   is semantically transparent;
4. an identical-seed rerun of the parallel sweep with a chaos worker
   kill *mid-telemetry-write* returns the same payload and the same
   merged-stream bytes — torn shards never corrupt the canonical
   artefact;
5. ``repro.obs`` diffs stay clean: clean-vs-chaos parallel runs diff
   with exit 0, and the serial-vs-parallel diff carries only
   informational ``env:executor`` / ``exec:`` rows without gating.

Exits non-zero with a diagnostic on the first failed check.
"""

from __future__ import annotations

import argparse
import json
import os
from dataclasses import replace
from typing import List, Optional, Tuple


def _fail(message: str) -> int:
    print(f"EXEC OBS SMOKE FAILED: {message}")
    return 1


def _probe_task(payload: Tuple[int, float]) -> float:
    """Instrumented micro-task: spans, metrics and a log event per point."""
    from ..obs import get_logger, metrics, trace

    index, scale = payload
    with trace.span("probe.point", index=index):
        with trace.span("probe.inner"):
            value = float(index) * scale
        metrics.inc("probe.points")
        metrics.observe("probe.value", value)
    # debug sits below the console threshold: captured as an event,
    # no stdout noise.
    get_logger("obs-smoke").debug("probe point", index=index)
    return value


def _read_jsonl(path: str) -> List[dict]:
    if not os.path.exists(path):
        return []
    with open(path, "r", encoding="utf-8") as fp:
        return [json.loads(line) for line in fp if line.strip()]


def _merged_path(run_dir: str) -> str:
    from ..obs import remote as obs_remote

    return os.path.join(run_dir, obs_remote.MERGED_FILENAME)


def _merged_bytes(run_dir: str) -> bytes:
    path = _merged_path(run_dir)
    if not os.path.exists(path):
        return b""
    with open(path, "rb") as fp:
        return fp.read()


def _validate_merged(run_dir: str) -> Optional[str]:
    """Schema check over every merged-stream line; None when valid."""
    from ..obs import remote as obs_remote

    records = _read_jsonl(_merged_path(run_dir))
    if not records:
        return f"{_merged_path(run_dir)} is empty or absent"
    last_seq: dict = {}
    for i, record in enumerate(records):
        if set(record) != {"map", "task", "seq", "kind", "data"}:
            return f"line {i}: unexpected keys {sorted(record)}"
        if record["kind"] not in obs_remote.KINDS:
            return f"line {i}: unknown kind {record['kind']!r}"
        if not isinstance(record["task"], int) or not isinstance(record["seq"], int):
            return f"line {i}: non-integer task/seq"
        if not isinstance(record["data"], dict):
            return f"line {i}: data is not an object"
        volatile = set(record["data"]) & obs_remote._VOLATILE_KEYS
        if volatile:
            return f"line {i}: volatile keys leaked into canonical stream: {volatile}"
        key = (record["map"], record["task"])
        if key in last_seq and record["seq"] <= last_seq[key]:
            return f"line {i}: seq not increasing within task {key}"
        last_seq[key] = record["seq"]
    return None


def _non_exec_counters(run_dir: str) -> dict:
    metrics_path = os.path.join(run_dir, "metrics.json")
    with open(metrics_path, "r", encoding="utf-8") as fp:
        snapshot = json.load(fp)
    return {
        name: value
        for name, value in snapshot.get("counters", {}).items()
        if not name.startswith("exec.")
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.exec.obs_smoke",
        description="Deterministic distributed-observability check.",
    )
    parser.add_argument(
        "--run-dir", default=os.path.join("results", "exec_obs_smoke_run")
    )
    args = parser.parse_args(argv)

    import repro.experiments.config as config_module
    from ..experiments.config import SCALES
    from ..experiments.context import clear_context_cache
    from ..experiments.fault_sweep import run_fault_sweep
    from ..experiments.pipeline import clear_pipeline_cache
    from ..faults import ChaosSpec
    from ..obs import observe
    from ..obs.diff import diff_run_dirs
    from ..obs.registry import registration_enabled
    from ..obs.report import load_run, render_report
    from . import ParallelExecutor, executor_scope

    # ------------------------------------------------------------------
    # 1. canonical stream: schema-valid, bitwise across worker counts
    # ------------------------------------------------------------------
    tasks = [(i, 0.5) for i in range(6)]

    def _probe_run(run_dir: str, workers: int, chaos=None):
        for name in ("trace.jsonl", "events.jsonl", "metrics.json",
                     "alerts.jsonl", "worker_telemetry.jsonl"):
            path = os.path.join(run_dir, name)
            if os.path.exists(path):
                os.remove(path)
        with observe(run_dir, smoke=True, seed=0):
            executor = ParallelExecutor(workers=workers, chaos=chaos)
            return executor.map(_probe_task, tasks, label="obs-smoke")

    probe_dirs = {}
    for workers in (1, 2, 4):
        run_dir = f"{args.run_dir}_w{workers}"
        probe_dirs[workers] = run_dir
        outcome = _probe_run(run_dir, workers)
        if not outcome.ok:
            return _fail(f"workers={workers} probe map failed: {outcome.failures}")
        problem = _validate_merged(run_dir)
        if problem:
            return _fail(f"workers={workers} merged stream invalid: {problem}")
    reference = _merged_bytes(probe_dirs[1])
    for workers in (2, 4):
        if _merged_bytes(probe_dirs[workers]) != reference:
            return _fail(
                f"worker_telemetry.jsonl differs between workers=1 and "
                f"workers={workers}"
            )
    lines = len(reference.splitlines())
    print(
        f"exec obs smoke: merged telemetry schema-valid and bitwise-identical "
        f"at workers 1/2/4 ({lines} canonical records)"
    )

    # ------------------------------------------------------------------
    # 2. stitched trace + report section from the workers=4 run
    # ------------------------------------------------------------------
    spans = _read_jsonl(os.path.join(probe_dirs[4], "trace.jsonl"))
    dispatch = [s for s in spans if s.get("name") == "exec.map"]
    if len(dispatch) != 1:
        return _fail(f"expected one exec.map dispatch span, saw {len(dispatch)}")
    dispatch_id = dispatch[0]["span_id"]
    stitched = [s for s in spans if s.get("name") == "probe.point"]
    if len(stitched) != len(tasks):
        return _fail(f"expected {len(tasks)} stitched probe.point spans, "
                     f"saw {len(stitched)}")
    for span in stitched:
        if span.get("parent_id") != dispatch_id:
            return _fail("worker span not parented under exec.map")
        if "worker" not in span or "task" not in span:
            return _fail("stitched span missing worker/task tags")
    report = render_report(load_run(probe_dirs[4]))
    for needle in ("## Parallel execution", "Worker lanes", "Worker telemetry"):
        if needle not in report:
            return _fail(f"run report missing {needle!r} section")
    print(
        f"exec obs smoke: {len(stitched)} worker spans stitched under exec.map, "
        f"report renders the parallel-execution section"
    )

    # ------------------------------------------------------------------
    # 3. observed fault sweep: parallel aggregates == serial observed run
    # ------------------------------------------------------------------
    scale = replace(
        SCALES["tiny"],
        name="smoke",
        image_size=8,
        train_size=60,
        test_size=30,
        width_multiplier=0.125,
        batch_size=30,
        dnn_epochs=2,
        snn_epochs=1,
        calibration_batches=1,
    )
    config_module.SCALES = {**config_module.SCALES, "smoke": scale}
    sweep_kwargs = dict(
        arch="vgg11",
        dataset="cifar10",
        scale_name="smoke",
        timesteps=2,
        fault_kinds=["prune"],
        ladders={"prune": (0.0, 0.2)},
        seed=0,
    )

    def _observed_sweep(run_dir, executor):
        clear_context_cache()
        clear_pipeline_cache()
        for name in ("trace.jsonl", "events.jsonl", "metrics.json",
                     "drift.jsonl", "faults.jsonl", "alerts.jsonl",
                     "worker_telemetry.jsonl"):
            path = os.path.join(run_dir, name)
            if os.path.exists(path):
                os.remove(path)
        with executor_scope(executor):
            with observe(run_dir, smoke=True, arch="vgg11", timesteps=2, seed=0):
                return run_fault_sweep(**sweep_kwargs)

    serial_dir = f"{args.run_dir}_sweep_serial"
    par_dir = f"{args.run_dir}_sweep_par4"
    chaos_dir = f"{args.run_dir}_sweep_chaos"
    serial_sweep = _observed_sweep(serial_dir, None)
    parallel_sweep = _observed_sweep(par_dir, ParallelExecutor(workers=4))
    if json.dumps(serial_sweep, sort_keys=True) != json.dumps(
        parallel_sweep, sort_keys=True
    ):
        return _fail("sweep payloads differ between serial and 4-worker runs")
    problem = _validate_merged(par_dir)
    if problem:
        return _fail(f"sweep merged stream invalid: {problem}")
    kinds = {r["kind"] for r in _read_jsonl(_merged_path(par_dir))}
    if "fault" not in kinds or "metric" not in kinds:
        return _fail(f"sweep telemetry missing fault/metric records: {kinds}")
    serial_counters = _non_exec_counters(serial_dir)
    parallel_counters = _non_exec_counters(par_dir)
    if serial_counters != parallel_counters:
        drift = {
            name
            for name in set(serial_counters) | set(parallel_counters)
            if serial_counters.get(name) != parallel_counters.get(name)
        }
        return _fail(f"aggregate counters drifted serial vs parallel: {sorted(drift)}")
    print(
        f"exec obs smoke: 4-worker sweep matches serial observed run on all "
        f"{len(serial_counters)} aggregate counters"
    )

    # ------------------------------------------------------------------
    # 4. chaos kill mid-telemetry-write: payload + canonical bytes intact
    # ------------------------------------------------------------------
    chaos_sweep = _observed_sweep(
        chaos_dir,
        ParallelExecutor(workers=4, chaos=ChaosSpec.kill_task_after(1, attempts=1)),
    )
    if json.dumps(chaos_sweep, sort_keys=True) != json.dumps(
        serial_sweep, sort_keys=True
    ):
        return _fail("chaos-killed sweep payload differs")
    if _merged_bytes(chaos_dir) != _merged_bytes(par_dir):
        return _fail(
            "worker kill mid-telemetry-write changed the canonical merged stream"
        )
    with open(os.path.join(chaos_dir, "metrics.json"), encoding="utf-8") as fp:
        chaos_counters = json.load(fp).get("counters", {})
    if chaos_counters.get("exec.worker_crashes", 0) < 1:
        return _fail("chaos worker kill not visible in exec.worker_crashes")
    print(
        "exec obs smoke: identical-seed rerun with a mid-telemetry worker kill "
        "is bitwise-equal on the merged stream"
    )

    # ------------------------------------------------------------------
    # 5. diffs: clean-vs-chaos gates nothing; serial-vs-parallel stays
    #    informational
    # ------------------------------------------------------------------
    diff = diff_run_dirs(par_dir, chaos_dir)
    if not diff.ok:
        print(diff.render())
        return _fail(
            f"clean-vs-chaos parallel diff found {len(diff.regressions)} "
            f"regression(s)"
        )
    cross = diff_run_dirs(serial_dir, par_dir)
    if not cross.ok:
        print(cross.render())
        return _fail("serial-vs-parallel diff gated instead of informational")
    exec_rows = [
        d for d in cross.deltas
        if d.name.startswith("exec:") or d.name.startswith("env:executor")
    ]
    if registration_enabled() and not any(
        d.name == "env:executor.telemetry" or d.name.startswith("exec:")
        for d in exec_rows
    ):
        return _fail("serial-vs-parallel diff carried no telemetry rows")
    if any(d.significant or d.regressed for d in exec_rows):
        return _fail("exec:/env:executor diff rows must stay informational")
    print(
        f"exec obs smoke: diffs clean; serial-vs-parallel carries "
        f"{len(exec_rows)} informational telemetry row(s)"
    )

    print("EXEC OBS SMOKE PASSED")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
