"""``repro.exec`` — fault-tolerant multi-process execution.

Public surface:

* :class:`ParallelExecutor` — supervised ``multiprocessing`` map with
  bitwise-deterministic, task-index-ordered results, bounded retries,
  poison-task quarantine, and graceful serial degradation.
* :func:`tree_reduce` — fixed-order pairwise reduction.
* :class:`ModelStore` / :func:`attach_model` — publish model weights
  once over shared memory instead of pickling them per task.
* :func:`executor_scope` — install an ambient executor that
  ``--workers``-aware call sites (Algorithm 1's percentile search,
  the sweep drivers) pick up without explicit plumbing; the run
  registry records :func:`active_executor_config` in its environment
  fingerprint so cross-worker-count diffs are flagged.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional

from .executor import (
    ExecStats,
    ExecutorError,
    MapResult,
    ParallelExecutor,
    TaskFailure,
    simulated_sweep_point,
)
from .reduce import tree_reduce
from .shm import ModelStore, ShmModelHandle, attach_model, clear_attach_cache

__all__ = [
    "ParallelExecutor",
    "ExecutorError",
    "ExecStats",
    "MapResult",
    "TaskFailure",
    "tree_reduce",
    "ModelStore",
    "ShmModelHandle",
    "attach_model",
    "clear_attach_cache",
    "executor_scope",
    "ambient_executor",
    "active_executor_config",
    "simulated_sweep_point",
]

_AMBIENT: Optional[ParallelExecutor] = None


def ambient_executor() -> Optional[ParallelExecutor]:
    """The executor installed by the innermost :func:`executor_scope`."""
    return _AMBIENT


@contextmanager
def executor_scope(executor: Optional[ParallelExecutor]) -> Iterator[Optional[ParallelExecutor]]:
    """Install ``executor`` as the ambient executor for this block.

    Passing ``None`` (or an executor with ``workers=1``) leaves call
    sites on their serial paths, so the CLI can wrap unconditionally.
    """
    global _AMBIENT
    previous = _AMBIENT
    _AMBIENT = executor
    try:
        yield executor
    finally:
        _AMBIENT = previous


def active_executor_config() -> Optional[Dict[str, Any]]:
    """Fingerprint of the ambient executor, for the run registry."""
    if _AMBIENT is None:
        return None
    return _AMBIENT.config_dict()
