"""Batch-level data transforms (augmentation and normalisation).

Transforms operate on numpy batches of shape ``(N, C, H, W)`` and are
pure functions of ``(batch, rng)`` so pipelines stay deterministic.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np


class Transform:
    """Base transform; subclasses implement ``apply``."""

    def __call__(self, batch: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        if batch.ndim != 4:
            raise ValueError(f"expected (N, C, H, W) batch, got shape {batch.shape}")
        return self.apply(batch, rng or np.random.default_rng())

    def apply(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        raise NotImplementedError


class Compose(Transform):
    """Apply transforms in sequence."""

    def __init__(self, transforms: Sequence[Transform]) -> None:
        self.transforms = list(transforms)

    def apply(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for transform in self.transforms:
            batch = transform(batch, rng)
        return batch


class Normalize(Transform):
    """Per-channel standardisation ``(x - mean) / std``."""

    def __init__(self, mean: np.ndarray, std: np.ndarray) -> None:
        self.mean = np.asarray(mean, dtype=np.float64)
        self.std = np.asarray(std, dtype=np.float64)
        if np.any(self.std <= 0):
            raise ValueError("std must be positive")

    def apply(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return (batch - self.mean[None, :, None, None]) / self.std[None, :, None, None]


class RandomHorizontalFlip(Transform):
    """Flip each image left-right with probability ``p``."""

    def __init__(self, p: float = 0.5) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError("p must be in [0, 1]")
        self.p = p

    def apply(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        flips = rng.random(batch.shape[0]) < self.p
        out = batch.copy()
        out[flips] = out[flips, :, :, ::-1]
        return out


class RandomCrop(Transform):
    """Zero-pad by ``padding`` then crop back to the original size at a
    random offset (the standard CIFAR augmentation)."""

    def __init__(self, padding: int = 4) -> None:
        if padding < 0:
            raise ValueError("padding must be non-negative")
        self.padding = padding

    def apply(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.padding == 0:
            return batch
        n, c, h, w = batch.shape
        p = self.padding
        padded = np.pad(batch, ((0, 0), (0, 0), (p, p), (p, p)))
        rows = rng.integers(0, 2 * p + 1, size=n)
        cols = rng.integers(0, 2 * p + 1, size=n)
        out = np.empty_like(batch)
        for i in range(n):
            out[i] = padded[i, :, rows[i] : rows[i] + h, cols[i] : cols[i] + w]
        return out


class AdditiveGaussianNoise(Transform):
    """Add zero-mean Gaussian pixel noise (used in robustness tests)."""

    def __init__(self, std: float) -> None:
        if std < 0:
            raise ValueError("std must be non-negative")
        self.std = std

    def apply(self, batch: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.std == 0:
            return batch
        return batch + rng.normal(0.0, self.std, size=batch.shape)
