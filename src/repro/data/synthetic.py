"""Synthetic image-classification datasets ("SynthCIFAR").

The paper evaluates on CIFAR-10/100, which cannot be downloaded in this
offline environment.  This module generates a deterministic, in-memory
substitute with the properties the paper's analysis actually depends on:

- natural-image-like statistics: spatially-correlated (low-frequency
  dominated) signals, so trained conv nets develop the *skewed*,
  near-zero-massed post-ReLU pre-activation distributions that drive the
  conversion error analysis of Section III-A;
- a controllable number of classes (10 / 100) with intra-class
  variability, so classification is non-trivial but learnable by the
  same VGG/ResNet architectures;
- full determinism given a seed.

Each class ``c`` owns a prototype built from a small set of random 2-D
Fourier components (class-specific frequencies, amplitudes, phases and
per-channel colour weights).  A sample is the prototype with per-sample
phase jitter, a random gain, a spatial shift, and additive pixel noise —
analogous to pose/illumination variation in natural data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np


@dataclass
class SyntheticImageConfig:
    """Configuration of a synthetic dataset.

    Defaults mirror CIFAR geometry (3x32x32); experiment configs shrink
    ``image_size`` and the sample counts to keep CPU runs fast.
    """

    num_classes: int = 10
    image_size: int = 32
    channels: int = 3
    train_size: int = 2000
    test_size: int = 400
    components: int = 6
    noise_std: float = 0.12
    jitter_std: float = 0.35
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError("need at least 2 classes")
        if self.image_size < 4:
            raise ValueError("image_size must be >= 4")
        if self.channels < 1:
            raise ValueError("channels must be >= 1")
        if self.train_size < self.num_classes or self.test_size < 1:
            raise ValueError("dataset sizes too small")


class SyntheticImageDataset:
    """Deterministic synthetic dataset with CIFAR-like structure.

    Attributes
    ----------
    train_images, test_images:
        Float arrays ``(N, C, H, W)`` in ``[0, 1]``.
    train_labels, test_labels:
        Integer class arrays.
    """

    def __init__(self, config: SyntheticImageConfig) -> None:
        self.config = config
        rng = np.random.default_rng(config.seed)
        self._class_params = self._draw_class_params(rng)
        self.train_images, self.train_labels = self._generate_split(
            config.train_size, np.random.default_rng(config.seed + 1)
        )
        self.test_images, self.test_labels = self._generate_split(
            config.test_size, np.random.default_rng(config.seed + 2)
        )

    # ------------------------------------------------------------------
    def _draw_class_params(self, rng: np.random.Generator) -> dict:
        cfg = self.config
        k = cfg.components
        c = cfg.num_classes
        return {
            # Spatial frequencies in cycles per image, biased low.
            "freq_y": rng.uniform(0.5, 3.5, size=(c, k)),
            "freq_x": rng.uniform(0.5, 3.5, size=(c, k)),
            "phase": rng.uniform(0.0, 2 * np.pi, size=(c, k)),
            "amplitude": rng.uniform(0.4, 1.0, size=(c, k))
            * (0.75 ** np.arange(k))[None, :],
            "colour": rng.uniform(-1.0, 1.0, size=(c, k, cfg.channels)),
            "bias": rng.uniform(0.35, 0.65, size=(c, cfg.channels)),
        }

    def _render(
        self,
        labels: np.ndarray,
        phase_jitter: np.ndarray,
        gains: np.ndarray,
        shifts: np.ndarray,
    ) -> np.ndarray:
        """Render a batch of images (vectorised over samples)."""
        cfg = self.config
        p = self._class_params
        n = labels.size
        size = cfg.image_size
        coords = np.arange(size) / size
        yy, xx = np.meshgrid(coords, coords, indexing="ij")

        freq_y = p["freq_y"][labels]  # (n, k)
        freq_x = p["freq_x"][labels]
        phase = p["phase"][labels] + phase_jitter
        amplitude = p["amplitude"][labels] * gains[:, None]
        colour = p["colour"][labels]  # (n, k, C)
        bias = p["bias"][labels]  # (n, C)

        # Spatial shift as a per-sample phase offset per component.
        shift_phase = 2 * np.pi * (
            freq_y * shifts[:, 0:1] + freq_x * shifts[:, 1:2]
        )
        # waves: (n, k, H, W)
        arg = (
            2 * np.pi
            * (
                freq_y[:, :, None, None] * yy[None, None]
                + freq_x[:, :, None, None] * xx[None, None]
            )
            + (phase + shift_phase)[:, :, None, None]
        )
        waves = np.sin(arg) * amplitude[:, :, None, None]
        # images: (n, C, H, W) = sum_k waves * colour
        images = np.einsum("nkhw,nkc->nchw", waves, colour)
        images = images * 0.18 + bias[:, :, None, None]
        return images

    def _generate_split(
        self, count: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        cfg = self.config
        labels = np.arange(count) % cfg.num_classes
        rng.shuffle(labels)
        phase_jitter = rng.normal(0.0, cfg.jitter_std, size=(count, cfg.components))
        gains = rng.uniform(0.7, 1.3, size=count)
        shifts = rng.uniform(-0.15, 0.15, size=(count, 2))
        images = self._render(labels, phase_jitter, gains, shifts)
        images += rng.normal(0.0, cfg.noise_std, size=images.shape)
        np.clip(images, 0.0, 1.0, out=images)
        return images.astype(np.float64), labels.astype(np.int64)

    # ------------------------------------------------------------------
    @property
    def num_classes(self) -> int:
        return self.config.num_classes

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        cfg = self.config
        return (cfg.channels, cfg.image_size, cfg.image_size)

    def channel_stats(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-channel mean/std of the training split (for Normalize)."""
        mean = self.train_images.mean(axis=(0, 2, 3))
        std = self.train_images.std(axis=(0, 2, 3))
        return mean, np.maximum(std, 1e-6)


def synth_cifar10(
    image_size: int = 32,
    train_size: int = 2000,
    test_size: int = 400,
    seed: int = 0,
) -> SyntheticImageDataset:
    """Synthetic 10-class stand-in for CIFAR-10."""
    return SyntheticImageDataset(
        SyntheticImageConfig(
            num_classes=10,
            image_size=image_size,
            train_size=train_size,
            test_size=test_size,
            seed=seed,
        )
    )


def synth_cifar100(
    image_size: int = 32,
    train_size: int = 5000,
    test_size: int = 1000,
    seed: int = 0,
) -> SyntheticImageDataset:
    """Synthetic 100-class stand-in for CIFAR-100."""
    return SyntheticImageDataset(
        SyntheticImageConfig(
            num_classes=100,
            image_size=image_size,
            train_size=train_size,
            test_size=test_size,
            seed=seed,
        )
    )
