"""Synthetic event-camera (DVS-style) streams.

SNNs' native input domain is asynchronous event data.  The paper's
introduction motivates SNNs with event-driven neuromorphic hardware;
this module provides the matching workload: a deterministic synthetic
stand-in for DVS gesture/motion datasets.

Each class is a motion pattern — an oriented bar translating with a
class-specific direction and speed.  A sample is a ``(T, 2, H, W)``
binary tensor: ON events (channel 0) where brightness increases between
consecutive frames, OFF events (channel 1) where it decreases, plus
Bernoulli background noise.  Direct SNN training consumes these frames
one per time step (no encoding needed — the data *is* spikes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass
class SyntheticEventConfig:
    """Configuration of a synthetic event-stream dataset."""

    num_classes: int = 4
    timesteps: int = 8
    image_size: int = 16
    train_size: int = 200
    test_size: int = 80
    bar_width: int = 3
    noise_rate: float = 0.01
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_classes < 2 or self.num_classes > 8:
            raise ValueError("num_classes must be in [2, 8] (motion directions)")
        if self.timesteps < 2:
            raise ValueError("need at least 2 time steps for motion")
        if not 0.0 <= self.noise_rate < 1.0:
            raise ValueError("noise_rate must be in [0, 1)")


# Eight motion directions (dy, dx) — classes pick the first N.
_DIRECTIONS = [
    (0, 1), (0, -1), (1, 0), (-1, 0),
    (1, 1), (-1, -1), (1, -1), (-1, 1),
]


class SyntheticEventDataset:
    """Deterministic event-stream classification dataset.

    Attributes
    ----------
    train_events, test_events:
        ``(N, T, 2, H, W)`` float arrays of binary events.
    train_labels, test_labels:
        Motion-direction class indices.
    """

    def __init__(self, config: SyntheticEventConfig) -> None:
        self.config = config
        self.train_events, self.train_labels = self._generate(
            config.train_size, np.random.default_rng(config.seed)
        )
        self.test_events, self.test_labels = self._generate(
            config.test_size, np.random.default_rng(config.seed + 1)
        )

    # ------------------------------------------------------------------
    def _render_frame(self, offset: float, orientation: int) -> np.ndarray:
        """A bright bar at ``offset`` along its motion axis."""
        size = self.config.image_size
        frame = np.zeros((size, size))
        center = int(round(offset)) % size
        half = self.config.bar_width // 2
        for delta in range(-half, half + 1):
            index = (center + delta) % size
            if orientation == 0:
                frame[:, index] = 1.0
            else:
                frame[index, :] = 1.0
        return frame

    def _generate(
        self, count: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray]:
        cfg = self.config
        labels = np.arange(count) % cfg.num_classes
        rng.shuffle(labels)
        events = np.zeros(
            (count, cfg.timesteps, 2, cfg.image_size, cfg.image_size)
        )
        for sample, label in enumerate(labels):
            dy, dx = _DIRECTIONS[label]
            # A vertical bar moving horizontally and vice versa; the
            # dominant axis determines the orientation.
            orientation = 0 if dx != 0 else 1
            speed = 1.0 + rng.uniform(0.0, 0.5)
            start = rng.uniform(0, cfg.image_size)
            previous = None
            for t in range(cfg.timesteps):
                step = (dx if orientation == 0 else dy) * speed * t
                frame = self._render_frame(start + step, orientation)
                if previous is not None:
                    increased = (frame > previous).astype(float)
                    decreased = (frame < previous).astype(float)
                    events[sample, t, 0] = increased
                    events[sample, t, 1] = decreased
                previous = frame
            noise = rng.random(events[sample].shape) < cfg.noise_rate
            events[sample] = np.maximum(events[sample], noise.astype(float))
        return events, labels.astype(np.int64)

    # ------------------------------------------------------------------
    @property
    def num_classes(self) -> int:
        return self.config.num_classes

    @property
    def frame_shape(self) -> Tuple[int, int, int]:
        cfg = self.config
        return (2, cfg.image_size, cfg.image_size)


def synth_dvs(
    num_classes: int = 4,
    timesteps: int = 8,
    image_size: int = 16,
    train_size: int = 200,
    test_size: int = 80,
    seed: int = 0,
) -> SyntheticEventDataset:
    """Build a synthetic DVS-style motion-classification dataset."""
    return SyntheticEventDataset(
        SyntheticEventConfig(
            num_classes=num_classes,
            timesteps=timesteps,
            image_size=image_size,
            train_size=train_size,
            test_size=test_size,
            seed=seed,
        )
    )
