"""Data substrate: synthetic CIFAR-like datasets, transforms, loader."""

from .cifar import CIFARDataset, load_cifar10, load_cifar100
from .dataloader import DataLoader
from .events import SyntheticEventConfig, SyntheticEventDataset, synth_dvs
from .synthetic import (
    SyntheticImageConfig,
    SyntheticImageDataset,
    synth_cifar10,
    synth_cifar100,
)
from .transforms import (
    AdditiveGaussianNoise,
    Compose,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    Transform,
)

__all__ = [
    "AdditiveGaussianNoise",
    "CIFARDataset",
    "Compose",
    "DataLoader",
    "Normalize",
    "load_cifar10",
    "load_cifar100",
    "RandomCrop",
    "RandomHorizontalFlip",
    "SyntheticEventConfig",
    "SyntheticEventDataset",
    "SyntheticImageConfig",
    "SyntheticImageDataset",
    "Transform",
    "synth_cifar10",
    "synth_dvs",
    "synth_cifar100",
]
