"""Minibatch iteration over in-memory arrays."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from .transforms import Transform


class DataLoader:
    """Iterate ``(images, labels)`` minibatches with optional shuffling
    and an optional per-batch transform pipeline.

    Iterating twice re-shuffles (the generator state advances), matching
    the usual epoch semantics.
    """

    def __init__(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        batch_size: int,
        shuffle: bool = False,
        transform: Optional[Transform] = None,
        drop_last: bool = False,
        seed: int = 0,
    ) -> None:
        images = np.asarray(images)
        labels = np.asarray(labels)
        if images.shape[0] != labels.shape[0]:
            raise ValueError(
                f"images ({images.shape[0]}) and labels ({labels.shape[0]}) "
                "lengths differ"
            )
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if images.shape[0] == 0:
            raise ValueError(
                "dataset is empty (0 examples) — a DataLoader over it "
                "would silently yield no batches"
            )
        self.images = images
        self.labels = labels
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.transform = transform
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = self.images.shape[0]
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = self.images.shape[0]
        order = np.arange(n)
        if self.shuffle:
            self._rng.shuffle(order)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start : start + self.batch_size]
            batch = self.images[idx]
            if self.transform is not None:
                batch = self.transform(batch, self._rng)
            yield batch, self.labels[idx]
