"""Loader for the real CIFAR-10 / CIFAR-100 python batches.

This reproduction ships synthetic stand-ins because its build
environment is offline, but the loaders below read the *actual*
datasets (the standard ``cifar-10-batches-py`` / ``cifar-100-python``
pickle archives from https://www.cs.toronto.edu/~kriz/cifar.html) into
the same ``(N, 3, 32, 32)`` float-in-[0,1] arrays the rest of the
library consumes — drop the directory in and every experiment runs on
real data.
"""

from __future__ import annotations

import os
import pickle
from typing import List, Tuple

import numpy as np

_CIFAR10_TRAIN_BATCHES = [f"data_batch_{i}" for i in range(1, 6)]
_CIFAR10_TEST_BATCH = "test_batch"


class CIFARDataset:
    """Real CIFAR data with the synthetic datasets' interface."""

    def __init__(
        self,
        train_images: np.ndarray,
        train_labels: np.ndarray,
        test_images: np.ndarray,
        test_labels: np.ndarray,
        num_classes: int,
    ) -> None:
        self.train_images = train_images
        self.train_labels = train_labels
        self.test_images = test_images
        self.test_labels = test_labels
        self._num_classes = num_classes

    @property
    def num_classes(self) -> int:
        return self._num_classes

    @property
    def input_shape(self) -> Tuple[int, int, int]:
        return tuple(self.train_images.shape[1:])

    def channel_stats(self) -> Tuple[np.ndarray, np.ndarray]:
        mean = self.train_images.mean(axis=(0, 2, 3))
        std = self.train_images.std(axis=(0, 2, 3))
        return mean, np.maximum(std, 1e-6)


def _load_pickle(path: str) -> dict:
    with open(path, "rb") as handle:
        return pickle.load(handle, encoding="bytes")


def _to_images(raw: np.ndarray) -> np.ndarray:
    images = np.asarray(raw, dtype=np.float64).reshape(-1, 3, 32, 32)
    return images / 255.0


def load_cifar10(root: str) -> CIFARDataset:
    """Load CIFAR-10 from a ``cifar-10-batches-py`` directory."""
    directory = os.path.join(root, "cifar-10-batches-py")
    if not os.path.isdir(directory):
        directory = root  # allow pointing directly at the batch dir
    train_images_parts: List[np.ndarray] = []
    train_labels_parts: List[np.ndarray] = []
    for name in _CIFAR10_TRAIN_BATCHES:
        path = os.path.join(directory, name)
        if not os.path.exists(path):
            raise FileNotFoundError(
                f"missing CIFAR-10 batch '{name}' under '{directory}'"
            )
        batch = _load_pickle(path)
        train_images_parts.append(_to_images(batch[b"data"]))
        train_labels_parts.append(np.asarray(batch[b"labels"], dtype=np.int64))
    test_batch = _load_pickle(os.path.join(directory, _CIFAR10_TEST_BATCH))
    return CIFARDataset(
        train_images=np.concatenate(train_images_parts, axis=0),
        train_labels=np.concatenate(train_labels_parts, axis=0),
        test_images=_to_images(test_batch[b"data"]),
        test_labels=np.asarray(test_batch[b"labels"], dtype=np.int64),
        num_classes=10,
    )


def load_cifar100(root: str, label_mode: str = "fine") -> CIFARDataset:
    """Load CIFAR-100 from a ``cifar-100-python`` directory.

    ``label_mode`` selects the 100 fine or 20 coarse labels.
    """
    if label_mode not in ("fine", "coarse"):
        raise ValueError("label_mode must be 'fine' or 'coarse'")
    directory = os.path.join(root, "cifar-100-python")
    if not os.path.isdir(directory):
        directory = root
    key = b"fine_labels" if label_mode == "fine" else b"coarse_labels"
    train = _load_pickle(os.path.join(directory, "train"))
    test = _load_pickle(os.path.join(directory, "test"))
    return CIFARDataset(
        train_images=_to_images(train[b"data"]),
        train_labels=np.asarray(train[key], dtype=np.int64),
        test_images=_to_images(test[b"data"]),
        test_labels=np.asarray(test[key], dtype=np.int64),
        num_classes=100 if label_mode == "fine" else 20,
    )
