"""FLOP accounting for DNNs and converted SNNs (paper Section VI-B).

Conventions (matching the paper and the DIET-SNN line of work):

- A DNN layer's FLOP count is its MAC count: for a convolution
  ``out_h * out_w * C_out * C_in * K * K``, for a linear layer
  ``out_features * in_features`` (all per input image).
- A converted SNN's hidden layer performs one *accumulate* per incoming
  spike per outgoing connection, so its FLOP count is the DNN MAC count
  scaled by the input layer's average spike count per neuron per
  inference (summed over the T steps).
- With direct encoding the first weight layer sees the analog image at
  every step, so its count is ``T x`` the DNN MACs — and those are MACs
  (multiplies), not ACs; the energy model prices them accordingly.

Layer shapes are obtained by tracing a dummy forward pass, so the
accounting works for any topology built from this library's layers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..nn import Conv2d, Linear, Module
from ..snn import (
    SpikingNetwork,
    SpikingNeuron,
    SpikingResidualBlock,
    SpikingSequential,
    StepWrapper,
    TemporalDropout,
)
from ..tensor import Tensor, no_grad


@dataclass
class LayerFlops:
    """MAC / accumulate counts for one weight layer (per input image).

    ``macs`` is the dense DNN count; ``snn_ops`` the spike-scaled SNN
    count (populated by :func:`snn_layer_flops`); ``is_mac`` marks
    layers whose SNN operations are true MACs (the direct-encoded first
    layer) rather than ACs.
    """

    name: str
    kind: str
    macs: float
    snn_ops: float = 0.0
    is_mac: bool = False


def _layer_macs(layer: Module, input_shape: Tuple[int, ...], output_shape: Tuple[int, ...]) -> float:
    if isinstance(layer, Conv2d):
        _n, out_c, out_h, out_w = output_shape
        return float(
            out_h * out_w * out_c * layer.in_channels
            * layer.kernel_size * layer.kernel_size
        )
    if isinstance(layer, Linear):
        return float(layer.in_features * layer.out_features)
    raise TypeError(f"not a weight layer: {type(layer).__name__}")


@no_grad()
def trace_weight_layers(
    model: Module, input_shape: Tuple[int, ...]
) -> List[LayerFlops]:
    """Trace a forward pass and return MAC counts per weight layer.

    ``input_shape`` excludes the batch dimension, e.g. ``(3, 32, 32)``.
    """
    records: List[LayerFlops] = []
    patched = []
    index = 0
    for module in model.modules():
        if not isinstance(module, (Conv2d, Linear)):
            continue
        original = module.forward

        def traced(x: Tensor, _mod=module, _orig=original):
            out = _orig(x)
            kind = "conv" if isinstance(_mod, Conv2d) else "linear"
            records.append(
                LayerFlops(
                    name=f"{kind}{len(records)}",
                    kind=kind,
                    macs=_layer_macs(_mod, x.data.shape, out.data.shape),
                )
            )
            return out

        object.__setattr__(module, "forward", traced)
        patched.append((module, original))
        index += 1
    if not patched:
        raise ValueError("model has no Conv2d/Linear layers")

    was_training = model.training
    model.eval()
    try:
        dummy = Tensor(np.zeros((1,) + tuple(input_shape)))
        model(dummy)
    finally:
        model.train(was_training)
        for module, original in patched:
            object.__setattr__(module, "forward", original)
    return records


def dnn_total_flops(model: Module, input_shape: Tuple[int, ...]) -> float:
    """Total dense MAC count of a DNN per input image."""
    return sum(rec.macs for rec in trace_weight_layers(model, input_shape))


# ----------------------------------------------------------------------
# SNN accounting
# ----------------------------------------------------------------------
def _walk_spiking(module: Module, out: List) -> None:
    """Flatten the spiking pipeline into (kind, payload) events.

    Events: ("weight", StepWrapper), ("neuron", SpikingNeuron),
    ("block", SpikingResidualBlock).  Pool / flatten / dropout nodes are
    transparent for rate propagation and skipped.
    """
    if isinstance(module, SpikingSequential):
        for child in module:
            _walk_spiking(child, out)
    elif isinstance(module, SpikingResidualBlock):
        out.append(("block", module))
    elif isinstance(module, StepWrapper):
        if isinstance(module.inner, (Conv2d, Linear)):
            out.append(("weight", module.inner))
    elif isinstance(module, SpikingNeuron):
        out.append(("neuron", module))
    elif isinstance(module, TemporalDropout):
        pass  # transparent for rate propagation
    elif type(module).__name__ == "SpikingMaxPool":
        pass  # binary in, binary out: rate-transparent (selects inputs)
    else:
        for child in module.children():
            _walk_spiking(child, out)


def snn_layer_flops(
    snn: SpikingNetwork,
    input_shape: Tuple[int, ...],
    rates: Optional[dict] = None,
) -> List[LayerFlops]:
    """Spike-scaled operation counts for every weight layer of an SNN.

    Parameters
    ----------
    snn:
        The converted network.
    input_shape:
        Input image shape excluding batch, e.g. ``(3, 32, 32)``.
    rates:
        Mapping ``id(neuron) -> average spikes per neuron per inference``
        (from :func:`repro.energy.spikes.measure_spiking_activity`).
        Required unless the network has had activity recorded already.

    The first weight layer is direct-encoded: its count is ``T x`` its
    dense MACs and is flagged ``is_mac``.  Every other weight layer is
    scaled by its input neuron layer's spike rate.
    """
    if rates is None:
        rates = {
            id(neuron): (
                neuron.spike_count / max(1.0, neuron.neuron_count)
                if neuron.neuron_count
                else 0.0
            )
            for neuron in snn.spiking_neurons()
        }

    dense = trace_weight_layers(snn.body, input_shape)
    events: List = []
    _walk_spiking(snn.body, events)

    # Expand residual blocks into their constituent events, tracking the
    # rate feeding each weight layer.
    results: List[LayerFlops] = []
    dense_iter = iter(dense)
    current_rate = float(snn.timesteps)  # direct encoding: analog input every step
    first = True

    def consume(weight_layer: Module, rate: float, is_first: bool) -> None:
        record = next(dense_iter)
        record.snn_ops = record.macs * (snn.timesteps if is_first else rate)
        record.is_mac = is_first
        results.append(record)

    for kind, payload in events:
        if kind == "weight":
            consume(payload, current_rate, first)
            first = False
        elif kind == "neuron":
            current_rate = rates.get(id(payload), 0.0)
        elif kind == "block":
            block: SpikingResidualBlock = payload
            block_input_rate = current_rate
            # conv1 consumes the block input spikes.
            consume(block.conv1.inner, block_input_rate, first)
            first = False
            rate1 = rates.get(id(block.neuron1), 0.0)
            # NOTE: trace order must match forward order: conv1, conv2,
            # then shortcut (BasicBlock.forward evaluates the branch
            # before the shortcut).
            consume(block.conv2.inner, rate1, False)
            if isinstance(block.shortcut.inner, (Conv2d, Linear)):
                consume(block.shortcut.inner, block_input_rate, False)
            current_rate = rates.get(id(block.neuron2), 0.0)
    remaining = list(dense_iter)
    if remaining:
        raise RuntimeError(
            f"{len(remaining)} traced weight layers were not matched to "
            "pipeline events"
        )
    return results


def snn_total_flops(records: List[LayerFlops]) -> float:
    """Total SNN operation count (ACs + first-layer MACs)."""
    return sum(rec.snn_ops for rec in records)
