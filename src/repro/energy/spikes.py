"""Spiking-activity measurement (paper Section VI-A).

The average spiking activity of layer ``l`` is the total number of
spikes emitted over all ``T`` steps across the layer's neurons, divided
by the number of neurons — i.e. spikes per neuron per inference.  It is
the quantity plotted per layer in Fig. 4(a) and the scale factor of the
SNN FLOP counts in Fig. 4(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from ..snn import SpikingNetwork
from ..tensor import no_grad


@dataclass
class LayerSpikeStats:
    """Per-layer activity over a measurement set."""

    layer: int
    total_spikes: float
    neurons: int
    images: int

    @property
    def spikes_per_neuron(self) -> float:
        """Average spikes per neuron per inference (over all T steps)."""
        if self.neurons == 0 or self.images == 0:
            return 0.0
        return self.total_spikes / (self.neurons * self.images)


@dataclass
class SpikeActivityReport:
    """Activity of every spiking layer plus network-level aggregates."""

    layers: List[LayerSpikeStats]
    timesteps: int
    images: int

    @property
    def average_spikes_per_neuron(self) -> float:
        """Network average of the per-layer spike rates."""
        if not self.layers:
            return 0.0
        return float(np.mean([layer.spikes_per_neuron for layer in self.layers]))

    @property
    def total_spikes_per_image(self) -> float:
        if self.images == 0:
            return 0.0
        return sum(layer.total_spikes for layer in self.layers) / self.images

    def rates_by_neuron_id(self, snn: SpikingNetwork) -> Dict[int, float]:
        """Map ``id(neuron) -> spikes per neuron per inference`` for the
        FLOP accounting in :mod:`repro.energy.flops`."""
        neurons = snn.spiking_neurons()
        if len(neurons) != len(self.layers):
            raise ValueError("report does not match this network")
        return {
            id(neuron): stats.spikes_per_neuron
            for neuron, stats in zip(neurons, self.layers)
        }


@no_grad()
def measure_spiking_activity(
    snn: SpikingNetwork,
    batches: Iterable[Tuple[np.ndarray, np.ndarray]],
    max_batches: int = None,
) -> SpikeActivityReport:
    """Run inference with spike recording and summarise activity."""
    was_training = snn.training
    snn.eval()
    snn.reset_spike_stats()
    snn.set_recording(True)
    images = 0
    try:
        for index, (batch, _labels) in enumerate(batches):
            if max_batches is not None and index >= max_batches:
                break
            snn(np.asarray(batch))
            images += len(batch)
    finally:
        snn.set_recording(False)
        snn.train(was_training)
    if images == 0:
        raise ValueError("no batches provided for spike measurement")

    layers = [
        LayerSpikeStats(
            layer=i,
            total_spikes=neuron.spike_count,
            neurons=neuron.neuron_count,
            images=images,
        )
        for i, neuron in enumerate(snn.spiking_neurons())
    ]
    return SpikeActivityReport(layers=layers, timesteps=snn.timesteps, images=images)
