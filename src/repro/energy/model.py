"""Compute-energy models (paper Section VI-B).

CMOS model — 45 nm at 0.9 V (Horowitz, ISSCC 2014), 32-bit:

    E_MAC = 3.2 pJ  (3.1 pJ multiply + 0.1 pJ add)
    E_AC  = 0.1 pJ

DNN inference energy:  sum_l FL_D^l * E_MAC           (all layers MAC)
SNN inference energy:  FL_S^1 * E_MAC                 (direct encoding)
                       + sum_{l>=2} FL_S^l * E_AC     (spike ACs)

Neuromorphic model — total energy on TrueNorth / SpiNNaker estimated as
``FLOPs * E_compute + T * E_static`` with normalised parameter pairs
(0.4, 0.6) and (0.64, 0.36) respectively (Park et al., T2FSNN). Since
FLOPs for VGG-16 exceed 1e9 while T <= 16, the energy is compute-bound,
which is the paper's argument that GPU-side improvements carry over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from .flops import LayerFlops

PICOJOULE = 1e-12
E_MAC_45NM = 3.2 * PICOJOULE
E_AC_45NM = 0.1 * PICOJOULE

NEUROMORPHIC_PARAMS = {
    "truenorth": (0.4, 0.6),
    "spinnaker": (0.64, 0.36),
}


@dataclass
class EnergyModel:
    """CMOS compute-energy model parameterised by MAC/AC energies."""

    e_mac: float = E_MAC_45NM
    e_ac: float = E_AC_45NM

    def __post_init__(self) -> None:
        if self.e_mac <= 0 or self.e_ac <= 0:
            raise ValueError("energies must be positive")

    def dnn_energy(self, records: List[LayerFlops]) -> float:
        """Energy of the dense DNN: every layer's MACs at ``e_mac``."""
        return sum(rec.macs for rec in records) * self.e_mac

    def snn_energy(self, records: List[LayerFlops]) -> float:
        """Energy of the converted SNN.

        Layers flagged ``is_mac`` (the direct-encoded first layer) are
        priced at ``e_mac``; all spike-driven layers at ``e_ac``.
        """
        total = 0.0
        for rec in records:
            price = self.e_mac if rec.is_mac else self.e_ac
            total += rec.snn_ops * price
        return total

    def improvement(self, records: List[LayerFlops]) -> float:
        """DNN / SNN energy ratio (the paper's headline numbers:
        103.5x on CIFAR-10, 159.2x on CIFAR-100 for VGG-16 at T=2)."""
        snn = self.snn_energy(records)
        if snn == 0:
            raise ZeroDivisionError("SNN energy is zero; measure activity first")
        return self.dnn_energy(records) / snn


def neuromorphic_energy(
    total_flops: float, timesteps: int, platform: str = "truenorth"
) -> float:
    """Normalised total energy on neuromorphic hardware.

    ``FLOPs * E_compute + T * E_static`` with the platform's normalised
    ``(E_compute, E_static)`` pair.
    """
    if platform not in NEUROMORPHIC_PARAMS:
        raise KeyError(
            f"unknown platform '{platform}'; available: {sorted(NEUROMORPHIC_PARAMS)}"
        )
    if total_flops < 0 or timesteps <= 0:
        raise ValueError("invalid flops/timesteps")
    e_compute, e_static = NEUROMORPHIC_PARAMS[platform]
    return total_flops * e_compute + timesteps * e_static
