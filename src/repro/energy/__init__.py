"""Inference-efficiency accounting: spikes, FLOPs, energy (Section VI)."""

from .flops import (
    LayerFlops,
    dnn_total_flops,
    snn_layer_flops,
    snn_total_flops,
    trace_weight_layers,
)
from .model import (
    E_AC_45NM,
    E_MAC_45NM,
    NEUROMORPHIC_PARAMS,
    EnergyModel,
    neuromorphic_energy,
)
from .spikes import LayerSpikeStats, SpikeActivityReport, measure_spiking_activity

__all__ = [
    "E_AC_45NM",
    "E_MAC_45NM",
    "EnergyModel",
    "LayerFlops",
    "LayerSpikeStats",
    "NEUROMORPHIC_PARAMS",
    "SpikeActivityReport",
    "dnn_total_flops",
    "measure_spiking_activity",
    "neuromorphic_energy",
    "snn_layer_flops",
    "snn_total_flops",
    "trace_weight_layers",
]
