"""Optimizers and learning-rate schedulers."""

from .adam import Adam
from .lr_scheduler import CosineLR, LRScheduler, MultiStepLR, StepLR, paper_milestones
from .optimizer import Optimizer
from .sgd import SGD

__all__ = [
    "Adam",
    "CosineLR",
    "LRScheduler",
    "MultiStepLR",
    "Optimizer",
    "SGD",
    "StepLR",
    "paper_milestones",
]
