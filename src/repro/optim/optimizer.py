"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable, List

from ..nn.module import Parameter


class Optimizer:
    """Base class: holds the parameter list and the learning rate.

    Subclasses implement :meth:`step`, reading ``param.grad`` and
    updating ``param.data`` in place.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError
