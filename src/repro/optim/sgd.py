"""Stochastic gradient descent with momentum and weight decay."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer


class SGD(Optimizer):
    """SGD with (optional Nesterov) momentum and L2 weight decay.

    Matches the paper's DNN training recipe when combined with
    :class:`~repro.optim.lr_scheduler.MultiStepLR` at 60/80/90% of the
    epoch budget.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError("weight_decay must be non-negative")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                update = grad + self.momentum * velocity if self.nesterov else velocity
            else:
                update = grad
            param.data -= self.lr * update
