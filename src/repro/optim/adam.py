"""Adam optimizer (used for SNN fine-tuning, which starts from a very
small learning rate per the paper's Section IV-A)."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with decoupled-free L2 weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
