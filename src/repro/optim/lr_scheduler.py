"""Learning-rate schedulers.

The paper decays the LR by 0.1 at 60%, 80% and 90% of the epoch budget
for both DNN and SNN training (Section IV-A);
:func:`paper_milestones` builds exactly that schedule.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from .optimizer import Optimizer


def paper_milestones(total_epochs: int) -> List[int]:
    """Milestones at 60%, 80% and 90% of ``total_epochs`` (paper IV-A)."""
    if total_epochs <= 0:
        raise ValueError("total_epochs must be positive")
    return sorted({
        max(1, int(round(total_epochs * fraction)))
        for fraction in (0.6, 0.8, 0.9)
    })


class LRScheduler:
    """Base: call :meth:`step` once per epoch after the optimizer steps."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.get_lr()


class MultiStepLR(LRScheduler):
    """Multiply LR by ``gamma`` at each milestone epoch."""

    def __init__(
        self, optimizer: Optimizer, milestones: Sequence[int], gamma: float = 0.1
    ) -> None:
        super().__init__(optimizer)
        if any(m <= 0 for m in milestones):
            raise ValueError("milestones must be positive epoch indices")
        self.milestones = sorted(milestones)
        self.gamma = gamma

    def get_lr(self) -> float:
        passed = sum(1 for m in self.milestones if self.epoch >= m)
        return self.base_lr * (self.gamma ** passed)


class StepLR(LRScheduler):
    """Multiply LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * (self.gamma ** (self.epoch // self.step_size))


class CosineLR(LRScheduler):
    """Cosine annealing from base LR to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer: Optimizer, total_epochs: int, min_lr: float = 0.0) -> None:
        super().__init__(optimizer)
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        self.total_epochs = total_epochs
        self.min_lr = min_lr

    def get_lr(self) -> float:
        progress = min(1.0, self.epoch / self.total_epochs)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.base_lr - self.min_lr) * cosine
