"""Memory accounting for training and inference (paper Fig. 3b).

SNN training unrolls the network over ``T`` time steps and must keep
every intermediate activation (plus membrane states) alive for BPTT, so
its training memory grows ~linearly with ``T`` — the reason the paper's
2-3 step SNNs need ~1.44x less GPU memory than the 5-step hybrid
baseline.  Inference memory, in contrast, is dominated by weights and a
single layer's activations, so it is nearly T-independent (as Fig. 3b
shows).

Training memory is *measured*, not modelled: :class:`GraphMemoryMeter`
intercepts every tensor materialised during a forward pass with
gradients enabled, which directly captures the unrolled-BPTT footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from ..nn import Module
from ..snn import SpikingNetwork
from ..tensor import Tensor, add_op_observer, no_grad, remove_op_observer


class _OpObserverPatch:
    """Register an op observer for the duration of a block (the shared
    :func:`repro.tensor.add_op_observer` hook on ``Tensor.from_op``)."""

    def __init__(self, callback: Callable) -> None:
        self._callback = callback

    def __enter__(self):
        add_op_observer(self._callback)
        return self

    def __exit__(self, *exc_info) -> None:
        remove_op_observer(self._callback)


class GraphMemoryMeter:
    """Counts bytes of tensors recorded into the autograd graph (the
    activations BPTT must retain)."""

    def __init__(self) -> None:
        self.bytes_allocated = 0.0
        self.tensors_created = 0
        self._patch = _OpObserverPatch(self._on_tensor)

    def _on_tensor(self, tensor: Tensor, name: str = "op") -> None:
        if tensor._node is not None:
            self.bytes_allocated += tensor.data.nbytes
            self.tensors_created += 1

    def __enter__(self) -> "GraphMemoryMeter":
        self._patch.__enter__()
        return self

    def __exit__(self, *exc_info) -> None:
        self._patch.__exit__(*exc_info)


@dataclass
class MemoryReport:
    """Breakdown of a memory estimate, in bytes."""

    parameters: float
    gradients: float
    optimizer_state: float
    activations: float

    @property
    def total(self) -> float:
        return self.parameters + self.gradients + self.optimizer_state + self.activations

    @property
    def total_megabytes(self) -> float:
        return self.total / (1024.0 * 1024.0)


def parameter_bytes(model: Module) -> float:
    """Total bytes of trainable parameters."""
    return float(sum(p.data.nbytes for p in model.parameters()))


def training_memory(
    model: Module,
    forward_backward: Callable[[], None],
    optimizer_state_copies: int = 1,
) -> MemoryReport:
    """Measure the training-step memory footprint.

    ``forward_backward`` must run one representative forward pass with
    gradients enabled (calling backward is unnecessary — graph tensors
    are counted at creation).  ``optimizer_state_copies`` is 1 for
    momentum-SGD, 2 for Adam.
    """
    params = parameter_bytes(model)
    with GraphMemoryMeter() as meter:
        forward_backward()
    return MemoryReport(
        parameters=params,
        gradients=params,
        optimizer_state=params * optimizer_state_copies,
        activations=float(meter.bytes_allocated),
    )


def _traced_bytes(run: Callable[[], None]) -> List[int]:
    """Actual bytes of every op output materialised by ``run`` — read
    off each tensor's own dtype, so the float32 fast path is not
    double-counted at float64 width."""
    sizes: List[int] = []
    with _OpObserverPatch(lambda t, name="op": sizes.append(t.data.nbytes)):
        run()
    return sizes


def _top_two_bytes(byte_sizes: List[int]) -> float:
    return float(sum(sorted(byte_sizes, reverse=True)[:2]))


def inference_memory(model: Module, input_shape, batch_size: int = 1) -> MemoryReport:
    """Estimate inference memory: weights + the two largest layer
    activations (double-buffering) + membrane state for SNNs.

    For spiking networks only the per-step working set counts — spikes
    of earlier steps are not retained — which is why the estimate is
    nearly independent of ``T`` (the paper's Fig. 3b observation).
    """
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            if isinstance(model, SpikingNetwork):
                dummy = np.zeros((batch_size,) + tuple(input_shape))
                sizes = _traced_bytes(lambda: model(dummy))
                membranes = sum(
                    neuron.membrane.data.nbytes
                    for neuron in model.spiking_neurons()
                    if neuron.membrane is not None
                )
                activations = _top_two_bytes(sizes) + float(membranes)
            else:
                dummy_t = Tensor(np.zeros((batch_size,) + tuple(input_shape)))
                sizes = _traced_bytes(lambda: model(dummy_t))
                activations = _top_two_bytes(sizes)
    finally:
        model.train(was_training)
    return MemoryReport(
        parameters=parameter_bytes(model),
        gradients=0.0,
        optimizer_state=0.0,
        activations=activations,
    )
