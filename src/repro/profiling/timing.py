"""Wall-clock timing utilities (paper Fig. 3a).

The paper reports training and inference time per epoch for its 2/3-step
SNNs against the 5-step hybrid baseline.  On this substrate the same
quantities are measured by timing real epochs; the expected *shape* —
time growing ~linearly with ``T`` because every step replays the whole
layer pipeline — is hardware-independent.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, List


@dataclass
class TimingResult:
    """Statistics of repeated timings, in seconds."""

    samples: List[float]

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def median(self) -> float:
        ordered = sorted(self.samples)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return 0.5 * (ordered[mid - 1] + ordered[mid])

    @property
    def std(self) -> float:
        """Population standard deviation of the samples."""
        mean = self.mean
        return math.sqrt(
            sum((s - mean) ** 2 for s in self.samples) / len(self.samples)
        )

    @property
    def minimum(self) -> float:
        return min(self.samples)

    @property
    def maximum(self) -> float:
        return max(self.samples)

    def percentile(self, q: float) -> float:
        """Linearly interpolated percentile ``q`` in [0, 100]."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        if not self.samples:
            raise ValueError("no timing samples recorded")
        ordered = sorted(self.samples)
        position = (len(ordered) - 1) * q / 100.0
        low = math.floor(position)
        high = math.ceil(position)
        if low == high:
            return ordered[low]
        weight = position - low
        return ordered[low] * (1.0 - weight) + ordered[high] * weight

    @property
    def p95(self) -> float:
        return self.percentile(95.0)

    def summary(self) -> dict:
        """JSON-ready distribution summary (what the bench files store)."""
        return {
            "repeats": len(self.samples),
            "mean_s": self.mean,
            "median_s": self.median,
            "std_s": self.std,
            "min_s": self.minimum,
            "max_s": self.maximum,
            "p95_s": self.p95,
        }


def time_callable(fn: Callable[[], None], repeats: int = 3, warmup: int = 1) -> TimingResult:
    """Time ``fn`` ``repeats`` times after ``warmup`` discarded runs."""
    if repeats <= 0:
        raise ValueError("repeats must be positive")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return TimingResult(samples=samples)


@dataclass
class EpochTimeComparison:
    """Per-approach epoch times, for the Fig. 3a style comparison."""

    labels: List[str]
    train_seconds: List[float]
    inference_seconds: List[float]

    def speedup_vs(self, baseline_label: str) -> List[float]:
        """Training-time speedups of every approach vs ``baseline_label``."""
        if baseline_label not in self.labels:
            raise KeyError(f"no approach labelled '{baseline_label}'")
        base = self.train_seconds[self.labels.index(baseline_label)]
        return [base / t for t in self.train_seconds]
