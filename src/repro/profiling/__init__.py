"""Simulation-time and memory profiling (paper Section V / Fig. 3).

These primitives also serve as the measurement backends of the
observability layer: ``repro.obs.timed`` wraps :func:`time_callable`
and ``repro.obs.measure_training_memory`` / ``measure_inference_memory``
wrap the memory meters, recording their results as metrics and spans.
"""

from .memory import (
    GraphMemoryMeter,
    MemoryReport,
    inference_memory,
    parameter_bytes,
    training_memory,
)
from .timing import EpochTimeComparison, TimingResult, time_callable

__all__ = [
    "EpochTimeComparison",
    "GraphMemoryMeter",
    "MemoryReport",
    "TimingResult",
    "inference_memory",
    "parameter_bytes",
    "time_callable",
    "training_memory",
]
