"""Simulation-time and memory profiling (paper Section V / Fig. 3)."""

from .memory import (
    GraphMemoryMeter,
    MemoryReport,
    inference_memory,
    parameter_bytes,
    training_memory,
)
from .timing import EpochTimeComparison, TimingResult, time_callable

__all__ = [
    "EpochTimeComparison",
    "GraphMemoryMeter",
    "MemoryReport",
    "TimingResult",
    "inference_memory",
    "parameter_bytes",
    "time_callable",
    "training_memory",
]
