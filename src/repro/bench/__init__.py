"""Benchmark baselines: hot-kernel registry, runner and regression gate.

The paper's claim is a latency/compute claim, so this repository keeps
its own performance trajectory machine-readable: ``BENCH_<seq>.json``
files at the repo root record timing distributions (median/std/p95) of
every registered hot-kernel benchmark plus the environment fingerprint
they were measured under, and ``python -m repro.bench compare`` turns
any two of them into a CI exit code.

- :mod:`registry` — ``@register_bench`` and the case registry;
- :mod:`suite`    — the standard kernels (conv2d im2col, IF step,
  surrogate backward, Algorithm 1, full T-step SNN forward);
- :mod:`runner`   — timing + schema-versioned baseline files;
- :mod:`compare`  — median-based regression gating.

The same registered definitions back ``benchmarks/test_microbench.py``
(pytest-benchmark), so a kernel's benchmark is written exactly once.
"""

from .compare import (
    DEFAULT_MIN_DELTA_S,
    DEFAULT_THRESHOLD,
    BenchDelta,
    Comparison,
    compare_reports,
)
from .registry import (
    BenchCase,
    bench_names,
    get_bench,
    iter_benches,
    register_bench,
    unregister_bench,
)
from .runner import (
    ACCEPTED_SCHEMAS,
    SCHEMA,
    SCHEMA_VERSION,
    environment_fingerprint,
    find_baselines,
    load_report,
    next_seq,
    run_benches,
    validate_report,
    write_report,
)

__all__ = [
    "ACCEPTED_SCHEMAS",
    "BenchCase",
    "BenchDelta",
    "Comparison",
    "DEFAULT_MIN_DELTA_S",
    "DEFAULT_THRESHOLD",
    "SCHEMA",
    "SCHEMA_VERSION",
    "bench_names",
    "compare_reports",
    "environment_fingerprint",
    "find_baselines",
    "get_bench",
    "iter_benches",
    "load_report",
    "next_seq",
    "register_bench",
    "run_benches",
    "unregister_bench",
    "validate_report",
    "write_report",
]
