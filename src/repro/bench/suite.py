"""The standard hot-kernel benchmark suite.

Each entry exercises one substrate hot path the paper's cost story
depends on (Figs. 3-4): the im2col convolution, the IF-neuron step and
its surrogate-gradient backward, the Algorithm-1 ``alpha``/``beta``
search (faithful grid and closed-form fast variant), and a full
``T``-step SNN inference pass through a converted network.

Problem sizes mirror ``benchmarks/test_microbench.py`` (which now runs
these same definitions through pytest-benchmark): small enough that the
whole suite runs in seconds, large enough that medians sit well above
timer resolution.
"""

from __future__ import annotations

import numpy as np

from .registry import register_bench


@register_bench("nn.conv2d_forward", group="nn")
def conv2d_forward():
    from ..nn import Conv2d
    from ..tensor import Tensor

    rng = np.random.default_rng(0)
    layer = Conv2d(16, 32, 3, padding=1, rng=rng)
    x = Tensor(rng.normal(size=(8, 16, 16, 16)))

    def run():
        return layer(x)

    assert run().shape == (8, 32, 16, 16)
    return run


@register_bench("nn.conv2d_forward_backward", group="nn")
def conv2d_forward_backward():
    from ..nn import Conv2d
    from ..tensor import Tensor

    rng = np.random.default_rng(0)
    layer = Conv2d(16, 32, 3, padding=1, rng=rng)
    x = Tensor(rng.normal(size=(8, 16, 16, 16)), requires_grad=True)

    def run():
        layer.zero_grad()
        layer(x).sum().backward()

    run()
    assert layer.weight.grad is not None
    return run


@register_bench("snn.if_neuron_step", group="snn")
def if_neuron_step():
    from ..snn import IFNeuron
    from ..tensor import Tensor

    rng = np.random.default_rng(0)
    neuron = IFNeuron(v_threshold=1.0)
    current = Tensor(rng.normal(size=(32, 64, 8, 8)))

    def run():
        neuron.reset_state()
        return neuron(current)

    assert run().shape == current.shape
    return run


@register_bench("snn.surrogate_backward", group="snn")
def surrogate_backward():
    """One IF step forward + boxcar-surrogate backward through it."""
    from ..snn import IFNeuron
    from ..tensor import Tensor

    rng = np.random.default_rng(0)
    neuron = IFNeuron(v_threshold=1.0)
    current = Tensor(rng.normal(size=(32, 64, 8, 8)), requires_grad=True)

    def run():
        neuron.zero_grad()
        current.grad = None
        neuron.reset_state()
        neuron(current).sum().backward()

    run()
    assert current.grad is not None
    return run


def _algorithm1_percentiles() -> np.ndarray:
    rng = np.random.default_rng(0)
    return np.percentile(
        rng.exponential(scale=0.3, size=100_000), np.arange(101.0)
    )


@register_bench("conversion.algorithm1_search", group="conversion")
def algorithm1_search():
    from ..conversion import find_scaling_factors

    percentiles = _algorithm1_percentiles()

    def run():
        return find_scaling_factors(percentiles, 2.0, 2)

    assert 0 < run().alpha <= 1.0
    return run


@register_bench("conversion.algorithm1_search_fast", group="conversion")
def algorithm1_search_fast():
    from ..conversion import find_scaling_factors_fast

    percentiles = _algorithm1_percentiles()

    def run():
        return find_scaling_factors_fast(percentiles, 2.0, 2)

    assert 0 < run().alpha <= 1.0
    return run


def _converted_tiny_vgg(mode: str):
    from ..conversion import ConversionConfig, convert_dnn_to_snn
    from ..data import DataLoader
    from ..models import vgg11

    rng = np.random.default_rng(0)
    model = vgg11(
        num_classes=10, image_size=8, width_multiplier=0.125,
        rng=np.random.default_rng(1),
    )
    loader = DataLoader(rng.random((16, 3, 8, 8)), rng.integers(0, 10, 16), 16)
    snn = convert_dnn_to_snn(model, loader, ConversionConfig(timesteps=2)).snn
    snn.mode = mode
    snn.eval()
    return snn, rng.random((16, 3, 8, 8))


@register_bench("snn.full_forward_t2", group="snn", repeats=9, warmup=2)
def snn_full_forward():
    """Full T=2 inference pass through a converted tiny VGG-11.

    Uses the network's default engine (time-fused, layer-major); the
    ``_stepwise`` twin below pins the classic step-major loop so the
    baseline trajectory keeps both engines honest.
    """
    from ..tensor import no_grad

    snn, images = _converted_tiny_vgg("fused")

    def run():
        with no_grad():
            return snn(images)

    assert run().shape == (16, 10)
    return run


@register_bench("snn.full_forward_t2_stepwise", group="snn", repeats=9, warmup=2)
def snn_full_forward_stepwise():
    """Same converted network, pinned to the step-major engine."""
    from ..tensor import no_grad

    snn, images = _converted_tiny_vgg("stepwise")

    def run():
        with no_grad():
            return snn(images)

    assert run().shape == (16, 10)
    return run


@register_bench("snn.fused_spike_scan_t4", group="snn")
def fused_spike_scan_micro():
    """The vectorised membrane scan alone: T=4 folded IF dynamics."""
    from ..snn import IFNeuron
    from ..tensor import Tensor, no_grad

    rng = np.random.default_rng(0)
    neuron = IFNeuron(v_threshold=1.0)
    current = Tensor(rng.normal(size=(4 * 32, 64, 8, 8)))

    def run():
        neuron.reset_state()
        with no_grad():
            return neuron.forward_fused(current, 4)

    assert run().shape == current.shape
    return run


@register_bench("obs.profile_overhead", group="obs", repeats=9, warmup=2)
def profile_overhead():
    """Disabled-path cost of the op-profiler hook.

    The profiler intercepts ``Tensor.from_op`` only while a profiler is
    entered — with none active the pristine ``from_op`` is installed and
    instrumented code must pay nothing.  This case times the
    ``snn.full_forward_t2`` workload with profiling off and asserts it
    stays within 5% of itself measured before the hook machinery was
    ever exercised (a profiled pass runs in between to prove the
    un-patch really restores the fast path).
    """
    from ..obs.profile import OpProfiler
    from ..profiling import time_callable
    from ..tensor import no_grad
    from ..tensor.tensor import Tensor

    snn, images = _converted_tiny_vgg("fused")

    def run():
        with no_grad():
            return snn(images)

    assert run().shape == (16, 10)
    pristine = Tensor.from_op
    # Tolerance: 5% relative plus a 0.1 ms absolute floor, retried a few
    # times because two back-to-back minima on a busy host still jitter.
    for attempt in range(3):
        before = time_callable(run, repeats=9, warmup=2)
        with OpProfiler() as profiler:
            run()
        assert profiler.records, "profiled pass recorded no ops"
        assert Tensor.from_op is pristine, (
            "OpProfiler exit did not restore the pristine Tensor.from_op"
        )
        after = time_callable(run, repeats=9, warmup=2)
        if after.minimum <= before.minimum * 1.05 + 1e-4:
            break
    else:
        raise AssertionError(
            f"disabled-path overhead gate failed: "
            f"{after.minimum * 1e3:.3f} ms after vs "
            f"{before.minimum * 1e3:.3f} ms before (> 5% + 0.1 ms)"
        )
    return run


@register_bench("obs.streaming_step", group="obs", repeats=9, warmup=2)
def streaming_step():
    """One warm-state stream window through the serving path.

    Times exactly what the streaming runner pays per window: a fused
    forward with membranes carried from the previous window (no
    ``reset_state``) plus the :class:`SloTracker` bookkeeping for the
    resulting latency/staleness/accuracy sample (explicit registry, no
    run directory, so the file sinks stay out of the measurement).
    """
    from ..obs.metrics import MetricsRegistry
    from ..obs.slo import SLOConfig, SloTracker
    from ..tensor import no_grad

    snn, images = _converted_tiny_vgg("fused")
    tracker = SloTracker(
        config=SLOConfig(window=32, latency_target_s=1.0,
                         staleness_target_s=1.0, accuracy_floor=0.0),
        registry=MetricsRegistry(),
        run_dir=None,
    )
    snn.reset_state()
    snn.carry_state = True
    index = 0

    def run():
        nonlocal index
        with no_grad():
            logits = snn(images)
        tracker.observe_window(
            index=index, latency_s=1e-3, staleness_s=1e-3,
            accuracy=0.5, frames=images.shape[0], spikes_per_frame=10.0,
        )
        index += 1
        return logits

    assert run().shape == (16, 10)
    return run


def _synthetic_spike_frame(shape, density, rng):
    """Binary frame with exactly ``round(density * size)`` active units."""
    total = int(np.prod(shape))
    active = max(1, int(round(density * total)))
    flat = np.zeros(total)
    flat[rng.permutation(total)[:active]] = 1.0
    return flat.reshape(shape)


def _crossover_artifact_path():
    """The committed calibration artefact, if present at the repo root."""
    import os

    root = os.path.dirname(  # src/repro/bench -> repo root
        os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))))
    path = os.path.join(root, "CROSSOVER.json")
    return path if os.path.exists(path) else None


@register_bench("snn.sparse_linear_gather", group="snn")
def sparse_linear_gather_micro():
    """Event-gather linear kernel at 0.2% density (512 -> 256).

    Times exactly what the dispatcher pays on a sparse-routed linear:
    CSR packing plus the transposed-gather kernel.  The density sits
    at the bottom of the calibrated sweep for this shape, under its
    break-even, so this number should stay below the dense GEMM's
    (``CROSSOVER.json`` records both sides of that crossover).
    """
    from ..nn import Linear
    from ..tensor import Tensor, no_grad
    from ..tensor.sparse import pack_spikes, sparse_linear_gather

    rng = np.random.default_rng(0)
    layer = Linear(512, 256, bias=False, rng=rng)
    weight = layer.weight.data
    frame = _synthetic_spike_frame((32, 512), 0.002, rng)

    with no_grad():
        dense = layer(Tensor(frame)).data
    sparse = sparse_linear_gather(pack_spikes(frame, amplitude=1.0), weight)
    assert np.allclose(sparse, dense, atol=1e-9)

    def run():
        return sparse_linear_gather(
            pack_spikes(frame, amplitude=1.0), weight
        )

    return run


@register_bench("snn.sparse_conv_gather", group="snn")
def sparse_conv_gather_micro():
    """Event-gather conv kernel at 0.5% density (16ch 8x8 -> 32ch)."""
    from ..nn import Conv2d
    from ..tensor import Tensor, no_grad
    from ..tensor.sparse import (
        pack_conv_weight,
        pack_spikes,
        sparse_conv2d_gather,
    )

    rng = np.random.default_rng(0)
    layer = Conv2d(16, 32, 3, padding=1, bias=False, rng=rng)
    packed = pack_conv_weight(layer.weight.data)
    frame = _synthetic_spike_frame((32, 16, 8, 8), 0.005, rng)

    with no_grad():
        dense = layer(Tensor(frame)).data
    sparse = sparse_conv2d_gather(
        pack_spikes(frame, amplitude=1.0), stride=1, padding=1,
        packed=packed, out_dtype=layer.weight.data.dtype,
    )
    assert np.allclose(sparse, dense, atol=1e-9)

    def run():
        return sparse_conv2d_gather(
            pack_spikes(frame, amplitude=1.0), stride=1, padding=1,
            packed=packed, out_dtype=np.float64,
        )

    return run


@register_bench("snn.full_forward_t2_sparse", group="snn", repeats=9, warmup=2)
def snn_full_forward_sparse():
    """Dispatched T=2 pass through the tiny VGG in a low-activity regime.

    Same converted network as ``snn.full_forward_t2``, fed attenuated
    images so the hidden layers fall well below their calibrated
    crossover densities (the operating point ultra-low-latency
    conversion targets: most layer-steps nearly silent).  The
    activity-adaptive dispatcher routes those layer-forwards through
    the sparse gather kernels, so this median should land *under* the
    dense ``snn.full_forward_t2`` one.  Setup asserts the regime is
    genuine: hidden density <= 10%, a majority of weight-layer
    forwards sparse-routed, and logits identical to the dense engine.
    """
    from ..tensor import no_grad

    snn, images = _converted_tiny_vgg("fused")
    images = images * 0.25

    crossover = _crossover_artifact_path()
    with no_grad():
        reference = snn(images).data
    probe = snn.enable_sparse_dispatch(crossover=crossover, count_ops=True)
    with no_grad():
        routed = snn(images).data
    assert np.allclose(routed, reference, atol=1e-9)
    stats = probe.layer_stats()
    hidden = [s.mean_density for s in stats[1:]]
    assert max(hidden) <= 0.10, f"hidden density too high: {hidden}"
    sparse_runs = sum(s.sparse_runs for s in stats)
    calls = sum(s.calls for s in stats)
    assert sparse_runs * 2 >= calls, (
        f"sparse routing did not dominate: {sparse_runs}/{calls}"
    )
    dispatch = snn.enable_sparse_dispatch(crossover=crossover)

    def run():
        with no_grad():
            return snn(images)

    assert run().shape == (16, 10)
    # Paired back-to-back gate: the dispatched pass must actually beat
    # the dense engine on this workload (minima, retried — cross-case
    # medians on a busy host drift more than the effect size).
    from ..profiling import time_callable

    for attempt in range(3):
        snn._dispatch = None
        dense = time_callable(run, repeats=9, warmup=2)
        snn._dispatch = dispatch
        routed_t = time_callable(run, repeats=9, warmup=2)
        if routed_t.minimum < dense.minimum:
            break
    else:
        raise AssertionError(
            f"sparse-routed pass did not beat dense: "
            f"{routed_t.minimum * 1e3:.3f} ms vs {dense.minimum * 1e3:.3f} ms"
        )
    return run


@register_bench("snn.dispatch_overhead", group="snn", repeats=9, warmup=2)
def dispatch_overhead():
    """Dense-path cost of the activity-adaptive dispatcher.

    At standard bench activity (15-40% hidden density) every weight
    layer stays on the dense GEMM, so an enabled dispatcher only pays
    its routing bookkeeping: the density measurement and threshold
    compare per layer-forward.  This case times the
    ``snn.full_forward_t2`` workload with the dispatcher installed and
    asserts it stays within 5% (plus a 0.1 ms floor, retried a few
    times — two back-to-back minima on a busy host still jitter) of
    the same workload without it.
    """
    from ..profiling import time_callable
    from ..tensor import no_grad

    snn, images = _converted_tiny_vgg("fused")
    crossover = _crossover_artifact_path()

    def run():
        with no_grad():
            return snn(images)

    assert run().shape == (16, 10)
    dispatch = snn.enable_sparse_dispatch(crossover=crossover)
    snn._dispatch = None
    for attempt in range(3):
        snn._dispatch = None
        before = time_callable(run, repeats=9, warmup=2)
        snn._dispatch = dispatch
        after = time_callable(run, repeats=9, warmup=2)
        if after.minimum <= before.minimum * 1.05 + 1e-4:
            break
    else:
        raise AssertionError(
            f"dense-path dispatch overhead gate failed: "
            f"{after.minimum * 1e3:.3f} ms dispatched vs "
            f"{before.minimum * 1e3:.3f} ms plain (> 5% + 0.1 ms)"
        )
    stats = dispatch.layer_stats()
    assert stats and all(s.sparse_runs == 0 for s in stats), (
        "expected the standard-activity workload to stay fully dense"
    )

    def run_dispatched():
        with no_grad():
            return snn(images)

    assert run_dispatched().shape == (16, 10)
    return run_dispatched


@register_bench("snn.sgl_step_t2", group="snn", repeats=5)
def sgl_train_step():
    """One SGL fine-tuning step (fused forward + BPTT backward)."""
    from ..tensor import Tensor

    snn, images = _converted_tiny_vgg("fused")
    snn.train()
    x = Tensor(images)

    def run():
        snn.zero_grad()
        snn(x).sum().backward()

    run()
    assert any(p.grad is not None for p in snn.parameters())
    return run


@register_bench("exec.sweep_serial", group="exec", repeats=3, warmup=1)
def exec_sweep_serial():
    """Serial baseline for the executor scaling pair: 10 sweep points.

    Each point is a fixed 40 ms latency-bound task
    (:func:`repro.exec.simulated_sweep_point`) — the regime real sweep
    points occupy once their compute is memory/I-O bound.  Sleep-based
    points keep the pair honest on a single-core host, where a
    compute-bound task cannot speed up past 1x no matter how many
    workers overlap; what the executor actually buys is overlap of
    fixed-latency work.
    """
    from ..exec import ParallelExecutor, simulated_sweep_point

    points = [0.04] * 10
    executor = ParallelExecutor(workers=1)

    def run():
        outcome = executor.map(simulated_sweep_point, points, label="bench")
        assert outcome.ok

    return run


@register_bench("exec.sweep_parallel4", group="exec", repeats=3, warmup=1)
def exec_sweep_parallel4():
    """The same 10 sweep points fanned out over 4 supervised workers.

    Setup runs a paired back-to-back gate asserting the parallel map
    actually beats serial by >= 1.7x on this workload (minima,
    retried — cross-case medians on a busy host drift more than the
    effect size), so the recorded baseline pair always embodies a real
    speedup.
    """
    from ..exec import ParallelExecutor, simulated_sweep_point
    from ..profiling import time_callable

    points = [0.04] * 10
    serial = ParallelExecutor(workers=1)
    parallel = ParallelExecutor(workers=4)

    def run_serial():
        assert serial.map(simulated_sweep_point, points, label="bench").ok

    def run():
        assert parallel.map(simulated_sweep_point, points, label="bench").ok

    for attempt in range(3):
        serial_t = time_callable(run_serial, repeats=3, warmup=0)
        parallel_t = time_callable(run, repeats=3, warmup=0)
        if parallel_t.minimum * 1.7 <= serial_t.minimum:
            break
    else:
        raise AssertionError(
            f"parallel sweep under 1.7x vs serial: "
            f"{serial_t.minimum:.3f}s / {parallel_t.minimum:.3f}s = "
            f"{serial_t.minimum / parallel_t.minimum:.2f}x"
        )
    return run


def _telemetry_bench_point(payload):
    """Latency-bound sweep point that also emits per-task telemetry."""
    import time

    from ..obs import get_logger, metrics, trace

    index, delay = payload
    with trace.span("bench.point", index=index):
        time.sleep(float(delay))
        metrics.inc("bench.points")
        metrics.observe("bench.value", float(index))
    get_logger("bench-exec").debug("point done", index=index)
    return float(index)


@register_bench("exec.telemetry_overhead", group="exec", repeats=3, warmup=1)
def exec_telemetry_overhead():
    """Observed-map cost of worker telemetry capture + merge.

    Under an observed run every worker records events, metric deltas
    and spans per task and the parent merges them into the canonical
    ``worker_telemetry.jsonl`` (see :mod:`repro.obs.remote`).  Setup
    runs a paired back-to-back gate: the same 10 instrumented 40 ms
    sweep points over 4 workers with capture on must stay within 5% of
    the ``telemetry=False`` quiesced map (minima, retried).  The
    recorded number is the captured variant — the steady-state price
    of distributed observability on a latency-bound sweep.
    """
    import os
    import tempfile

    from ..exec import ParallelExecutor
    from ..obs import observe
    from ..obs.registry import ENV_DISABLE_VAR
    from ..profiling import time_callable

    points = [(i, 0.04) for i in range(10)]
    captured = ParallelExecutor(workers=4)
    quiesced = ParallelExecutor(workers=4, telemetry=False)
    root = tempfile.mkdtemp(prefix="bench_exec_telemetry_")

    def _observed(executor, label):
        run_dir = os.path.join(root, label)

        def run():
            # Scratch observed run per invocation: registry registration
            # off, run dir reused so repeats measure steady-state appends.
            prior = os.environ.get(ENV_DISABLE_VAR)
            os.environ[ENV_DISABLE_VAR] = "1"
            try:
                with observe(run_dir, smoke=True, seed=0):
                    assert executor.map(
                        _telemetry_bench_point, points, label="bench"
                    ).ok
            finally:
                if prior is None:
                    del os.environ[ENV_DISABLE_VAR]
                else:
                    os.environ[ENV_DISABLE_VAR] = prior

        return run

    run_quiesced = _observed(quiesced, "quiesced")
    run = _observed(captured, "captured")
    for attempt in range(3):
        before = time_callable(run_quiesced, repeats=3, warmup=1)
        after = time_callable(run, repeats=3, warmup=1)
        if after.minimum <= before.minimum * 1.05 + 1e-3:
            break
    else:
        raise AssertionError(
            f"worker-telemetry overhead gate failed: "
            f"{after.minimum * 1e3:.1f} ms captured vs "
            f"{before.minimum * 1e3:.1f} ms quiesced (> 5% + 1 ms)"
        )
    return run
