"""Density-crossover calibration for the sparse dispatch path.

``python -m repro.bench crossover`` sweeps synthetic spike densities
through each layer shape, times the dense GEMM against the sparse
gather kernel, and persists the per-shape break-even density as a
schema-versioned artefact (``CROSSOVER.json`` by default) that
:meth:`repro.snn.SpikingNetwork.enable_sparse_dispatch` loads.

The measured quantity is exactly what the dispatcher chooses between:
the layer's dense ``forward`` (Tensor machinery included) versus
``pack_spikes`` + gather kernel on the same frame.  The crossover is
snapped to the largest swept density where sparse still wins, so the
artefact is stable under small timing noise; with an injected
deterministic ``time_fn`` it is bit-reproducible for a fixed seed —
which is how the test-suite pins it.

Layer shapes are described by the same signature strings the
dispatcher keys its stats on (``repro.snn.dispatch.layer_signature``),
so a calibrated entry applies to any layer with that shape.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Callable, Dict, Iterable, List, Optional

import numpy as np

from ..nn.conv import Conv2d
from ..nn.linear import Linear
from ..profiling import time_callable
from ..snn.dispatch import CROSSOVER_SCHEMA, DEFAULT_THRESHOLDS
from ..tensor import Tensor, no_grad
from ..tensor.sparse import (
    pack_conv_weight,
    pack_spikes,
    sparse_conv2d_gather,
    sparse_linear_gather,
)
from .runner import environment_fingerprint

#: Swept activity grid; the break-even on the reference host sits in
#: the low-percent range, so the grid is dense there.
DEFAULT_DENSITIES = (0.002, 0.005, 0.01, 0.02, 0.05, 0.1)

#: Layer shapes of the tiny VGG-11 bench network (T=2 folded batch)
#: plus two larger generic shapes, so the committed artefact covers
#: both the bench suite and mid-size classifiers.
DEFAULT_SIGNATURES = (
    "conv:cin=3,cout=8,k=3,s=1,p=1,h=8,w=8",
    "conv:cin=8,cout=16,k=3,s=1,p=1,h=4,w=4",
    "conv:cin=16,cout=32,k=3,s=1,p=1,h=2,w=2",
    "conv:cin=32,cout=32,k=3,s=1,p=1,h=2,w=2",
    "conv:cin=32,cout=64,k=3,s=1,p=1,h=1,w=1",
    "conv:cin=64,cout=64,k=3,s=1,p=1,h=1,w=1",
    "conv:cin=16,cout=32,k=3,s=1,p=1,h=8,w=8",
    "linear:in=64,out=32",
    "linear:in=32,out=10",
    "linear:in=512,out=256",
)


def parse_signature(signature: str) -> Dict[str, int]:
    """Decode a dispatch signature into its integer geometry fields."""
    kind, _, body = signature.partition(":")
    if kind not in ("conv", "linear") or not body:
        raise ValueError(f"malformed layer signature {signature!r}")
    fields: Dict[str, int] = {"_kind": kind}  # type: ignore[dict-item]
    for item in body.split(","):
        key, _, value = item.partition("=")
        fields[key] = int(value)
    required = (
        ("cin", "cout", "k", "s", "p", "h", "w")
        if kind == "conv"
        else ("in", "out")
    )
    missing = [key for key in required if key not in fields]
    if missing:
        raise ValueError(f"signature {signature!r} missing {missing}")
    return fields


def _build_case(signature: str, batch: int, rng: np.random.Generator):
    """Materialise (layer, input_shape) for one signature."""
    fields = parse_signature(signature)
    if fields["_kind"] == "conv":
        layer = Conv2d(
            fields["cin"], fields["cout"], fields["k"],
            stride=fields["s"], padding=fields["p"], bias=False, rng=rng,
        )
        return layer, (batch, fields["cin"], fields["h"], fields["w"])
    layer = Linear(fields["in"], fields["out"], bias=False, rng=rng)
    return layer, (batch, fields["in"])


def _synthetic_spikes(
    shape, density: float, rng: np.random.Generator
) -> np.ndarray:
    """Binary frame with exactly ``round(density * size)`` active units."""
    total = int(np.prod(shape))
    active = min(total, max(0, int(round(density * total))))
    flat = np.zeros(total)
    if active:
        flat[rng.permutation(total)[:active]] = 1.0
    return flat.reshape(shape)


def _default_time_fn(repeats: int) -> Callable[[Callable[[], None]], float]:
    def timer(fn: Callable[[], None]) -> float:
        return time_callable(fn, repeats=repeats, warmup=1).minimum

    return timer


def calibrate_crossover(
    signatures: Optional[Iterable[str]] = None,
    densities: Iterable[float] = DEFAULT_DENSITIES,
    batch: int = 32,
    repeats: int = 5,
    seed: int = 0,
    time_fn: Optional[Callable[[Callable[[], None]], float]] = None,
    verbose: bool = False,
) -> dict:
    """Measure per-shape dense/sparse break-even densities.

    ``time_fn`` maps a zero-argument callable to a duration in seconds;
    the default times it ``repeats`` times and keeps the minimum.
    Returns the artefact dict (see :data:`CROSSOVER_SCHEMA`).
    """
    signatures = list(signatures or DEFAULT_SIGNATURES)
    densities = sorted(float(d) for d in densities)
    if not densities or densities[0] <= 0 or densities[-1] > 1:
        raise ValueError("densities must lie in (0, 1]")
    timer = time_fn if time_fn is not None else _default_time_fn(repeats)
    entries = []
    for index, signature in enumerate(signatures):
        rng = np.random.default_rng(seed + index)
        layer, in_shape = _build_case(signature, batch, rng)
        kind = "conv" if isinstance(layer, Conv2d) else "linear"
        weight = layer.weight.data
        packed = pack_conv_weight(weight) if kind == "conv" else None
        frames = {d: _synthetic_spikes(in_shape, d, rng) for d in densities}
        probe = Tensor(frames[densities[0]])

        def dense_run():
            with no_grad():
                layer(probe)

        dense_s = timer(dense_run)
        sparse_s: Dict[str, float] = {}
        crossover = 0.0
        for density in densities:
            frame = frames[density]

            if kind == "conv":
                def sparse_run():
                    sparse_conv2d_gather(
                        pack_spikes(frame, amplitude=1.0),
                        stride=layer.stride,
                        padding=layer.padding,
                        packed=packed,
                        out_dtype=weight.dtype,
                    )
            else:
                def sparse_run():
                    sparse_linear_gather(
                        pack_spikes(frame, amplitude=1.0), weight
                    )

            elapsed = timer(sparse_run)
            sparse_s[f"{density:g}"] = elapsed
            if elapsed <= dense_s:
                crossover = density
        entries.append(
            {
                "signature": signature,
                "kind": kind,
                "crossover_density": crossover,
                "dense_s": dense_s,
                "sparse_s": sparse_s,
            }
        )
        if verbose:
            from ..obs import console

            console(
                f"{signature:<44} dense {dense_s * 1e3:8.3f}ms "
                f"crossover {crossover:g}"
            )
    return {
        "schema": CROSSOVER_SCHEMA,
        "seed": int(seed),
        "batch": int(batch),
        "repeats": int(repeats),
        "densities": densities,
        "defaults": dict(DEFAULT_THRESHOLDS),
        "environment": environment_fingerprint(),
        "entries": entries,
    }


def write_artifact(artifact: dict, path: str) -> None:
    """Atomic JSON write (same temp-file discipline as bench reports)."""
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            json.dump(artifact, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
