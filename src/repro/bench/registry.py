"""The benchmark registry: named hot-kernel benchmark definitions.

A bench is registered once and consumed from two harnesses — the
``python -m repro.bench`` runner (machine-readable ``BENCH_*.json``
baselines) and pytest-benchmark (``benchmarks/test_microbench.py``) —
so a kernel's benchmark is defined exactly once.

A registered function is a *factory*: it performs all setup (build the
layer, allocate inputs, convert the network) and returns the zero-arg
callable that the harness times.  Setup cost therefore never pollutes
the timing distribution::

    @register_bench("nn.conv2d_forward", group="nn")
    def conv2d_forward():
        layer, x = ...          # setup, untimed
        def run():
            layer(x)            # the timed kernel
        return run
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional

BenchFn = Callable[[], object]
BenchFactory = Callable[[], BenchFn]


@dataclass(frozen=True)
class BenchCase:
    """One registered benchmark: identity, grouping and timing policy."""

    name: str
    group: str
    factory: BenchFactory
    repeats: int = 5
    warmup: int = 1

    def prepare(self) -> BenchFn:
        """Run the setup; return the callable to time."""
        return self.factory()


_REGISTRY: Dict[str, BenchCase] = {}


def register_bench(
    name: str,
    group: str = "micro",
    repeats: int = 5,
    warmup: int = 1,
) -> Callable[[BenchFactory], BenchFactory]:
    """Decorator registering ``factory`` as the benchmark ``name``."""

    def decorator(factory: BenchFactory) -> BenchFactory:
        if name in _REGISTRY:
            raise ValueError(f"benchmark '{name}' is already registered")
        _REGISTRY[name] = BenchCase(
            name=name, group=group, factory=factory,
            repeats=repeats, warmup=warmup,
        )
        return factory

    return decorator


def get_bench(name: str) -> BenchCase:
    _ensure_suite()
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown benchmark '{name}'; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]


def iter_benches(
    filter_substring: Optional[str] = None,
    group: Optional[str] = None,
) -> Iterator[BenchCase]:
    """Registered benches in name order, optionally filtered."""
    _ensure_suite()
    for name in sorted(_REGISTRY):
        case = _REGISTRY[name]
        if filter_substring is not None and filter_substring not in name:
            continue
        if group is not None and case.group != group:
            continue
        yield case


def bench_names() -> List[str]:
    _ensure_suite()
    return sorted(_REGISTRY)


def unregister_bench(name: str) -> None:
    """Remove one bench (tests register throwaway cases)."""
    _REGISTRY.pop(name, None)


def _ensure_suite() -> None:
    """Import the standard suite on first registry access, so CLI and
    pytest both see the stock benches without an explicit import."""
    from . import suite  # noqa: F401  (import registers the benches)
