"""Baseline comparison with regression gating.

``compare_reports`` diffs two bench reports kernel by kernel.  A gate
that flaps is worse than no gate, and shared/1-core boxes routinely
inflate individual repeats by 2x, so a kernel only counts as regressed
when **three** conditions hold::

    regressed  <=>  median_cur > median_base * (1 + threshold)   # typical run slower
                and min_cur    > median_base * (1 + threshold)   # even the best run slower
                and median_cur - median_base > min_delta_s       # absolute noise floor

The best-of-N minimum is the classic noise-robust timing statistic
(scheduler interference only ever adds time): random spikes raise the
median of 5 repeats easily but almost never all 5, while a real code
regression slows every repeat including the fastest.  The absolute
floor keeps microsecond-scale kernels from tripping on timer jitter.

The CLI (``python -m repro.bench compare``) exits non-zero when any
kernel regresses — that exit code is the CI gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .runner import validate_report

DEFAULT_THRESHOLD = 0.5  # 50% median slowdown trips the gate
DEFAULT_MIN_DELTA_S = 1e-4  # ...but only past 0.1 ms of absolute change


@dataclass
class BenchDelta:
    """One kernel's baseline-vs-current comparison."""

    name: str
    group: str
    baseline_median_s: float
    current_median_s: float
    current_min_s: float
    current_p95_s: float
    regressed: bool

    @property
    def ratio(self) -> float:
        if self.baseline_median_s <= 0:
            return float("inf") if self.current_median_s > 0 else 1.0
        return self.current_median_s / self.baseline_median_s


@dataclass
class Comparison:
    """Full diff of a candidate report against a baseline report."""

    threshold: float
    min_delta_s: float
    deltas: List[BenchDelta] = field(default_factory=list)
    missing: List[str] = field(default_factory=list)  # in baseline only
    added: List[str] = field(default_factory=list)    # in candidate only

    @property
    def regressions(self) -> List[BenchDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        """Human-readable comparison table plus the verdict line."""
        lines = [
            f"{'bench':<36} {'baseline':>12} {'current':>12} "
            f"{'ratio':>8}  status",
            "-" * 80,
        ]
        for delta in self.deltas:
            status = "REGRESSED" if delta.regressed else "ok"
            lines.append(
                f"{delta.name:<36} "
                f"{delta.baseline_median_s * 1e3:>10.3f}ms "
                f"{delta.current_median_s * 1e3:>10.3f}ms "
                f"{delta.ratio:>7.2f}x  {status}"
            )
        for name in self.missing:
            lines.append(f"{name:<36} {'(missing from candidate)':>36}")
        for name in self.added:
            lines.append(f"{name:<36} {'(new, no baseline)':>36}")
        verdict = (
            "OK: no regressions"
            if self.ok
            else f"FAIL: {len(self.regressions)} regression(s) past "
            f"+{self.threshold * 100:.0f}% median threshold"
        )
        lines.append("")
        lines.append(verdict)
        return "\n".join(lines)


def compare_reports(
    baseline: dict,
    candidate: dict,
    threshold: float = DEFAULT_THRESHOLD,
    min_delta_s: float = DEFAULT_MIN_DELTA_S,
) -> Comparison:
    """Diff ``candidate`` against ``baseline``; flag regressions."""
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    if min_delta_s < 0:
        raise ValueError("min_delta_s must be non-negative")
    validate_report(baseline)
    validate_report(candidate)
    base_results = baseline["results"]
    cand_results = candidate["results"]
    comparison = Comparison(threshold=threshold, min_delta_s=min_delta_s)
    for name in sorted(base_results):
        if name not in cand_results:
            comparison.missing.append(name)
            continue
        base_median = float(base_results[name]["median_s"])
        cand_median = float(cand_results[name]["median_s"])
        cand_min = float(cand_results[name].get("min_s", cand_median))
        gate = base_median * (1.0 + threshold)
        regressed = (
            cand_median > gate
            and cand_min > gate
            and cand_median - base_median > min_delta_s
        )
        comparison.deltas.append(
            BenchDelta(
                name=name,
                group=cand_results[name].get("group", "?"),
                baseline_median_s=base_median,
                current_median_s=cand_median,
                current_min_s=cand_min,
                current_p95_s=float(cand_results[name]["p95_s"]),
                regressed=regressed,
            )
        )
    comparison.added = sorted(set(cand_results) - set(base_results))
    return comparison
