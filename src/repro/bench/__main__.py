"""``python -m repro.bench`` — run, compare and list benchmarks.

Subcommands
-----------
``run``
    Time the registered benches and write a schema-versioned baseline.
    By default the output is ``BENCH_<seq>.json`` at the repository
    root, where ``seq`` continues the existing sequence; ``--out``
    redirects it (e.g. to a scratch file for a CI compare).
``compare``
    Diff a candidate report against a baseline and exit 1 when any
    kernel's median regressed past the threshold (the CI gate).
    Defaults: candidate = highest-seq ``BENCH_*.json``, baseline = the
    one before it.
``crossover``
    Calibrate the dense/sparse break-even density per layer shape and
    write the schema-versioned artefact ``SpikingNetwork.
    enable_sparse_dispatch`` loads (default: ``CROSSOVER.json``).
``list``
    Show the registered benches.

Examples::

    python -m repro.bench run
    python -m repro.bench run --out results/bench_current.json
    python -m repro.bench run --run-dir results/bench_run --profile
    python -m repro.bench compare --candidate results/bench_current.json
    python -m repro.bench compare --threshold 0.25
"""

from __future__ import annotations

import argparse
import os
import sys

from ..obs import console, observe
from .compare import DEFAULT_MIN_DELTA_S, DEFAULT_THRESHOLD, compare_reports
from .registry import iter_benches
from .runner import (
    find_baselines,
    load_report,
    next_seq,
    run_benches,
    write_report,
)


def _cmd_run(args) -> int:
    seq = None
    if args.out is None:
        seq = next_seq(args.root)
        out = os.path.join(args.root, f"BENCH_{seq}.json")
    else:
        out = args.out
    kwargs = dict(
        filter_substring=args.filter,
        repeats=args.repeats,
        warmup=args.warmup,
        seq=seq,
        verbose=not args.quiet,
    )
    if args.profile and not args.run_dir:
        raise SystemExit("--profile requires --run-dir (profiles stream "
                         "into the observed run directory)")
    if args.run_dir:
        with observe(args.run_dir, bench=True, profile=args.profile):
            report = run_benches(**kwargs)
    else:
        report = run_benches(**kwargs)
    write_report(report, out)
    console(f"wrote {out} ({len(report['results'])} benches)")
    return 0


def _default_compare_pair(root: str):
    baselines = find_baselines(root)
    if len(baselines) < 2:
        raise SystemExit(
            "compare needs --baseline/--candidate or at least two "
            f"BENCH_*.json files under {root!r} (found {len(baselines)})"
        )
    return baselines[-2][1], baselines[-1][1]


def _cmd_compare(args) -> int:
    baseline_path, candidate_path = args.baseline, args.candidate
    if baseline_path is None and candidate_path is None:
        baseline_path, candidate_path = _default_compare_pair(args.root)
    elif baseline_path is None:
        baselines = find_baselines(args.root)
        if not baselines:
            raise SystemExit(f"no BENCH_*.json baseline under {args.root!r}")
        baseline_path = baselines[-1][1]
    elif candidate_path is None:
        raise SystemExit("--baseline without --candidate makes no sense")
    comparison = compare_reports(
        load_report(baseline_path),
        load_report(candidate_path),
        threshold=args.threshold,
        min_delta_s=args.min_delta,
    )
    console(f"baseline:  {baseline_path}")
    console(f"candidate: {candidate_path}")
    console(comparison.render())
    return 0 if comparison.ok else 1


def _cmd_crossover(args) -> int:
    from .crossover import (
        DEFAULT_DENSITIES,
        DEFAULT_SIGNATURES,
        calibrate_crossover,
        write_artifact,
    )

    densities = (
        [float(d) for d in args.densities.split(",")]
        if args.densities else DEFAULT_DENSITIES
    )
    signatures = (
        [s.strip() for s in args.signatures.split(";") if s.strip()]
        if args.signatures else DEFAULT_SIGNATURES
    )
    artifact = calibrate_crossover(
        signatures=signatures,
        densities=densities,
        batch=args.batch,
        repeats=args.repeats,
        seed=args.seed,
        verbose=not args.quiet,
    )
    out = args.out or os.path.join(args.root, "CROSSOVER.json")
    write_artifact(artifact, out)
    console(f"wrote {out} ({len(artifact['entries'])} shapes)")
    return 0


def _cmd_list(args) -> int:
    for case in iter_benches(args.filter):
        console(
            f"{case.name:<36} group={case.group} "
            f"repeats={case.repeats} warmup={case.warmup}"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Hot-kernel benchmark baselines and regression gating.",
    )
    parser.add_argument(
        "--root", default=".",
        help="repository root holding the BENCH_*.json sequence",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="time the benches, write a baseline")
    run_p.add_argument("--out", default=None,
                       help="output path (default: next BENCH_<seq>.json)")
    run_p.add_argument("--filter", default=None,
                       help="only benches whose name contains this substring")
    run_p.add_argument("--repeats", type=int, default=None,
                       help="override every case's repeat count")
    run_p.add_argument("--warmup", type=int, default=None,
                       help="override every case's warmup count")
    run_p.add_argument("--run-dir", default=None,
                       help="also record spans/metrics to this obs run dir")
    run_p.add_argument("--profile", action="store_true",
                       help="op-profile the benches with per-case "
                            "attribution (requires --run-dir)")
    run_p.add_argument("--quiet", action="store_true",
                       help="suppress per-bench progress lines")
    run_p.set_defaults(fn=_cmd_run)

    cmp_p = sub.add_parser("compare", help="diff two baselines, gate on regressions")
    cmp_p.add_argument("--baseline", default=None,
                       help="baseline report (default: latest-but-one, or "
                            "latest when --candidate is given)")
    cmp_p.add_argument("--candidate", default=None,
                       help="candidate report (default: latest)")
    cmp_p.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                       help="relative median slowdown that fails the gate "
                            "(default: %(default)s = +50%%)")
    cmp_p.add_argument("--min-delta", type=float, default=DEFAULT_MIN_DELTA_S,
                       help="absolute slowdown floor in seconds "
                            "(default: %(default)s)")
    cmp_p.set_defaults(fn=_cmd_compare)

    cross_p = sub.add_parser(
        "crossover",
        help="calibrate dense/sparse break-even densities per layer shape",
    )
    cross_p.add_argument("--out", default=None,
                         help="artefact path (default: <root>/CROSSOVER.json)")
    cross_p.add_argument("--densities", default=None,
                         help="comma-separated density grid to sweep")
    cross_p.add_argument("--signatures", default=None,
                         help="semicolon-separated layer signatures "
                              "(default: tiny-VGG bench shapes)")
    cross_p.add_argument("--batch", type=int, default=32,
                         help="synthetic batch rows (default: %(default)s)")
    cross_p.add_argument("--repeats", type=int, default=5,
                         help="timing repeats per point (default: %(default)s)")
    cross_p.add_argument("--seed", type=int, default=0,
                         help="weight/spike-pattern seed (default: %(default)s)")
    cross_p.add_argument("--quiet", action="store_true",
                         help="suppress per-shape progress lines")
    cross_p.set_defaults(fn=_cmd_crossover)

    list_p = sub.add_parser("list", help="show registered benches")
    list_p.add_argument("--filter", default=None)
    list_p.set_defaults(fn=_cmd_list)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
