"""Benchmark runner: registered benches → schema-versioned baselines.

``run_benches`` times every registered bench through
:func:`repro.obs.instruments.timed` (so an observed run also gets spans
and ``bench.*.seconds`` histograms for free) and assembles one
JSON-ready report::

    {
      "schema": "repro.bench/v2",
      "schema_version": 2,
      "seq": 3,                      # position in the BENCH_* sequence
      "created_at": <unix time>,
      "environment": {...},          # python/numpy/platform fingerprint
      "config": {
        "filter": ...,
        "overrides": {"repeats": ..., "warmup": ...},   # CLI overrides (may be null)
        "cases": {"<bench name>": {"repeats": N, "warmup": N}}  # effective
      },
      "results": {
        "<bench name>": {"group": ..., "median_s": ..., "warmup": N, ...}
      }
    }

Schema v2 persists the *effective* per-case repeats/warmup (v1 recorded
only the raw overrides, so a default run produced an uninformative
``{"repeats": null, "warmup": null}``); readers accept both versions.

Baselines live at the repository root as ``BENCH_<seq>.json``; the
sequence number makes the performance trajectory of the repo itself
machine-readable, one file per recorded point.
"""

from __future__ import annotations

import json
import os
import platform
import re
import time
from typing import List, Optional, Tuple

import numpy as np

from ..obs import get_logger
from ..obs import profile as obs_profile
from ..obs.instruments import timed
from .registry import BenchCase, iter_benches

SCHEMA = "repro.bench/v2"
SCHEMA_VERSION = 2
#: Schema identifiers readers still understand (v1 baselines remain valid).
ACCEPTED_SCHEMAS = ("repro.bench/v1", SCHEMA)
BASELINE_RE = re.compile(r"^BENCH_(\d+)\.json$")

_log = get_logger("bench")


def environment_fingerprint() -> dict:
    """Where these numbers were measured (for cross-host sanity checks)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def run_benches(
    filter_substring: Optional[str] = None,
    repeats: Optional[int] = None,
    warmup: Optional[int] = None,
    seq: Optional[int] = None,
    verbose: bool = True,
) -> dict:
    """Time the (filtered) registered benches; return the report dict.

    ``repeats`` / ``warmup`` override every case's own policy when
    given (useful for quick sanity runs and deterministic tests).
    """
    cases: List[BenchCase] = list(iter_benches(filter_substring))
    if not cases:
        raise ValueError(
            f"no benchmarks match filter {filter_substring!r}"
        )
    results = {}
    effective = {}
    for case in cases:
        fn = case.prepare()
        case_repeats = repeats if repeats is not None else case.repeats
        case_warmup = warmup if warmup is not None else case.warmup
        effective[case.name] = {
            "repeats": case_repeats, "warmup": case_warmup,
        }
        # When the run is op-profiled (``run --profile``), attribute every
        # op a case creates to a ``bench:<name>`` region; a no-op otherwise.
        with obs_profile.region(f"bench:{case.name}"):
            timing = timed(
                f"bench.{case.name}", fn,
                repeats=case_repeats, warmup=case_warmup,
                bench=case.name, group=case.group,
            )
        results[case.name] = {
            "group": case.group, "warmup": case_warmup, **timing.summary()
        }
        if verbose:
            _log.info(
                f"{case.name}: median {timing.median * 1e3:.3f} ms "
                f"(p95 {timing.p95 * 1e3:.3f} ms, n={case_repeats})",
                bench=case.name,
                median_s=timing.median,
                p95_s=timing.p95,
            )
    return {
        "schema": SCHEMA,
        "schema_version": SCHEMA_VERSION,
        "seq": seq,
        "created_at": time.time(),
        "environment": environment_fingerprint(),
        "config": {
            "filter": filter_substring,
            "overrides": {"repeats": repeats, "warmup": warmup},
            "cases": effective,
        },
        "results": results,
    }


def validate_report(report: dict) -> dict:
    """Schema check; returns the report or raises ``ValueError``.

    Accepts every schema in :data:`ACCEPTED_SCHEMAS` — v1 baselines
    (which lack the per-result ``warmup`` and the effective config
    block) stay loadable and comparable.
    """
    if not isinstance(report, dict):
        raise ValueError("bench report must be a JSON object")
    if report.get("schema") not in ACCEPTED_SCHEMAS:
        raise ValueError(
            f"unsupported bench schema {report.get('schema')!r} "
            f"(expected one of {ACCEPTED_SCHEMAS!r})"
        )
    results = report.get("results")
    if not isinstance(results, dict):
        raise ValueError("bench report has no 'results' object")
    required = ("median_s", "mean_s", "std_s", "p95_s", "repeats")
    if report["schema"] == SCHEMA:
        required = required + ("warmup",)
    for name, entry in results.items():
        for key in required:
            if not isinstance(entry.get(key), (int, float)):
                raise ValueError(
                    f"bench result '{name}' is missing numeric '{key}'"
                )
    return report


# ----------------------------------------------------------------------
# Baseline files (BENCH_<seq>.json at the repository root)
# ----------------------------------------------------------------------
def find_baselines(root: str = ".") -> List[Tuple[int, str]]:
    """``(seq, path)`` of every baseline under ``root``, seq-ascending."""
    found = []
    for entry in os.listdir(root):
        match = BASELINE_RE.match(entry)
        if match:
            found.append((int(match.group(1)), os.path.join(root, entry)))
    return sorted(found)


def next_seq(root: str = ".") -> int:
    baselines = find_baselines(root)
    return baselines[-1][0] + 1 if baselines else 0


def load_report(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fp:
        return validate_report(json.load(fp))


def write_report(report: dict, path: str) -> str:
    validate_report(report)
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(report, fp, indent=2, sort_keys=True)
        fp.write("\n")
    return path
