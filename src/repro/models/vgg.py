"""VGG architectures (VGG-11 / VGG-16) in the paper's configuration.

Per Section IV-A of the paper:
- no BatchNorm (conversion drops biases), Dropout as the regulariser;
- max pooling (binary-spike-preserving in the SNN);
- activations are trainable-threshold ReLUs (Eq. 1) — or plain ReLU for
  the max-pre-activation conversion baseline of Fig. 2;
- convolutions without bias so the converted SNN is purely
  accumulate-based beyond the direct-encoded first layer.

``width_multiplier`` and ``image_size`` allow CPU-scale replicas of the
full architectures: pooling stages that would shrink the spatial size
below 1 are skipped automatically, keeping the layer *sequence*
faithful while supporting small synthetic images.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from ..nn import (
    AvgPool2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
    ThresholdReLU,
)
from ..tensor import Tensor

VGG_CONFIGS = {
    "vgg11": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg16": [
        64, 64, "M",
        128, 128, "M",
        256, 256, 256, "M",
        512, 512, 512, "M",
        512, 512, 512, "M",
    ],
}


def _make_activation(kind: str, init_threshold: float) -> Module:
    if kind == "threshold_relu":
        return ThresholdReLU(init_threshold=init_threshold)
    if kind == "relu":
        return ReLU()
    raise ValueError(f"unknown activation kind '{kind}'")


class VGG(Module):
    """VGG backbone + two-layer classifier head.

    Parameters
    ----------
    config:
        Architecture name (``"vgg11"``/``"vgg16"``) or an explicit list
        of channel counts and ``"M"`` pool markers.
    num_classes:
        Output classes.
    in_channels, image_size:
        Input geometry (defaults: 3-channel 32x32, CIFAR-like).
    width_multiplier:
        Scales all channel counts (and the classifier width).
    activation:
        ``"threshold_relu"`` (paper's trainable mu) or ``"relu"``.
    dropout:
        Dropout probability in feature and classifier stages.
    rng:
        Generator for all weight init; required for reproducibility.
    """

    def __init__(
        self,
        config: Union[str, List],
        num_classes: int = 10,
        in_channels: int = 3,
        image_size: int = 32,
        width_multiplier: float = 1.0,
        activation: str = "threshold_relu",
        dropout: float = 0.1,
        classifier_width: int = 256,
        init_threshold: float = 4.0,
        pool: str = "max",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        if pool not in ("max", "avg"):
            raise ValueError(f"pool must be 'max' or 'avg', got '{pool}'")
        self.pool_kind = pool
        if isinstance(config, str):
            if config not in VGG_CONFIGS:
                raise ValueError(f"unknown VGG config '{config}'")
            self.name = config
            config = VGG_CONFIGS[config]
        else:
            self.name = "vgg-custom"
        self.num_classes = num_classes
        self.activation_kind = activation

        layers: List[Module] = []
        channels = in_channels
        spatial = image_size
        for item in config:
            if item == "M":
                if spatial >= 2 and spatial % 2 == 0:
                    layers.append(MaxPool2d(2) if pool == "max" else AvgPool2d(2))
                    spatial //= 2
                continue
            out_channels = max(4, int(round(item * width_multiplier)))
            layers.append(
                Conv2d(channels, out_channels, 3, stride=1, padding=1, bias=False, rng=rng)
            )
            layers.append(_make_activation(activation, init_threshold))
            if dropout > 0:
                layers.append(Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31))))
            channels = out_channels
        self.features = Sequential(*layers)

        flat_features = channels * spatial * spatial
        hidden = max(16, int(round(classifier_width * width_multiplier)))
        classifier_layers: List[Module] = [
            Flatten(),
            Linear(flat_features, hidden, bias=False, rng=rng),
            _make_activation(activation, init_threshold),
        ]
        if dropout > 0:
            classifier_layers.append(
                Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31)))
            )
        classifier_layers.append(Linear(hidden, num_classes, bias=False, rng=rng))
        self.classifier = Sequential(*classifier_layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))

    def threshold_layers(self) -> List[ThresholdReLU]:
        """All trainable-threshold activations, in forward order."""
        return [m for m in self.modules() if isinstance(m, ThresholdReLU)]

    def extra_repr(self) -> str:
        return f"name={self.name}, classes={self.num_classes}"


def vgg11(**kwargs) -> VGG:
    """VGG-11 in the paper's (BN-free, dropout, max-pool) configuration."""
    return VGG("vgg11", **kwargs)


def vgg16(**kwargs) -> VGG:
    """VGG-16 in the paper's (BN-free, dropout, max-pool) configuration."""
    return VGG("vgg16", **kwargs)
