"""Model registry: build architectures by name.

Used by the experiment configs so every table/figure driver can specify
its architecture as a string.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..nn import Module
from .resnet import resnet20
from .vgg import vgg11, vgg16

_REGISTRY: Dict[str, Callable[..., Module]] = {
    "vgg11": vgg11,
    "vgg16": vgg16,
    "resnet20": resnet20,
}


def available_models() -> list:
    """Names accepted by :func:`build_model`."""
    return sorted(_REGISTRY)


def register_model(name: str, factory: Callable[..., Module]) -> None:
    """Register a custom architecture factory under ``name``."""
    if name in _REGISTRY:
        raise ValueError(f"model '{name}' already registered")
    _REGISTRY[name] = factory


def build_model(name: str, **kwargs) -> Module:
    """Instantiate a registered architecture."""
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown model '{name}'; available: {available_models()}"
        )
    return _REGISTRY[name](**kwargs)
