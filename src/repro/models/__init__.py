"""Network architectures: VGG-11/16 and ResNet-20 (paper Section IV)."""

from .registry import available_models, build_model, register_model
from .resnet import BasicBlock, ResNet, resnet20
from .vgg import VGG, VGG_CONFIGS, vgg11, vgg16

__all__ = [
    "BasicBlock",
    "ResNet",
    "VGG",
    "VGG_CONFIGS",
    "available_models",
    "build_model",
    "register_model",
    "resnet20",
    "vgg11",
    "vgg16",
]
