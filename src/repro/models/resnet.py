"""ResNet-20 (CIFAR-style) in the paper's BN-free configuration.

The standard CIFAR ResNet-20 (He et al. 2016): a 3x3 stem, three stages
of three basic blocks with 16/32/64 channels, spatial downsampling by
stride-2 at stage boundaries, global average pooling and a linear
classifier.  As with VGG, BatchNorm is omitted (the paper's conversion
drops biases) and the activations are trainable-threshold ReLUs; plain
ReLU is available for the max-pre-activation conversion baseline.

Residual addition in the converted SNN sums the synaptic currents of the
main branch and the shortcut before the output IF neuron, mirroring how
spiking ResNets integrate skip paths.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..nn import (
    Conv2d,
    Dropout,
    GlobalAvgPool2d,
    Identity,
    Linear,
    Module,
    ReLU,
    Sequential,
    ThresholdReLU,
)
from ..tensor import Tensor
from .vgg import _make_activation


class BasicBlock(Module):
    """Two 3x3 convolutions with an additive shortcut.

    ``out = act2(conv2(act1(conv1(x))) + shortcut(x))``
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        activation: str = "threshold_relu",
        init_threshold: float = 4.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.conv1 = Conv2d(
            in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng
        )
        self.act1 = _make_activation(activation, init_threshold)
        self.conv2 = Conv2d(
            out_channels, out_channels, 3, stride=1, padding=1, bias=False, rng=rng
        )
        if stride != 1 or in_channels != out_channels:
            self.shortcut: Module = Conv2d(
                in_channels, out_channels, 1, stride=stride, padding=0, bias=False, rng=rng
            )
        else:
            self.shortcut = Identity()
        self.act2 = _make_activation(activation, init_threshold)

    def forward(self, x: Tensor) -> Tensor:
        branch = self.conv2(self.act1(self.conv1(x)))
        return self.act2(branch + self.shortcut(x))


class ResNet(Module):
    """CIFAR-style ResNet; ``depth = 6n + 2`` with ``n`` blocks per stage."""

    def __init__(
        self,
        depth: int = 20,
        num_classes: int = 10,
        in_channels: int = 3,
        width_multiplier: float = 1.0,
        activation: str = "threshold_relu",
        init_threshold: float = 4.0,
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if (depth - 2) % 6 != 0:
            raise ValueError(f"depth must be 6n+2, got {depth}")
        rng = rng if rng is not None else np.random.default_rng()
        blocks_per_stage = (depth - 2) // 6
        widths = [max(4, int(round(w * width_multiplier))) for w in (16, 32, 64)]
        self.name = f"resnet{depth}"
        self.num_classes = num_classes
        self.activation_kind = activation

        self.stem = Sequential(
            Conv2d(in_channels, widths[0], 3, stride=1, padding=1, bias=False, rng=rng),
            _make_activation(activation, init_threshold),
        )
        stages: List[Module] = []
        channels = widths[0]
        for stage_index, width in enumerate(widths):
            for block_index in range(blocks_per_stage):
                stride = 2 if (stage_index > 0 and block_index == 0) else 1
                stages.append(
                    BasicBlock(
                        channels,
                        width,
                        stride=stride,
                        activation=activation,
                        init_threshold=init_threshold,
                        rng=rng,
                    )
                )
                channels = width
        self.stages = Sequential(*stages)
        head_layers: List[Module] = [GlobalAvgPool2d()]
        if dropout > 0:
            head_layers.append(Dropout(dropout, rng=np.random.default_rng(rng.integers(2**31))))
        head_layers.append(Linear(channels, num_classes, bias=False, rng=rng))
        self.head = Sequential(*head_layers)

    def forward(self, x: Tensor) -> Tensor:
        return self.head(self.stages(self.stem(x)))

    def threshold_layers(self) -> List[ThresholdReLU]:
        """All trainable-threshold activations, in forward order."""
        return [m for m in self.modules() if isinstance(m, ThresholdReLU)]

    def extra_repr(self) -> str:
        return f"name={self.name}, classes={self.num_classes}"


def resnet20(**kwargs) -> ResNet:
    """ResNet-20 in the paper's BN-free configuration."""
    return ResNet(depth=20, **kwargs)
