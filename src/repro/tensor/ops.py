"""Functional differentiable operations on :class:`~repro.tensor.Tensor`.

These complement the Tensor methods with the nonlinearities and
numerically-stable softmax machinery used by the library.  The most
paper-specific op is :func:`threshold_relu`, the trainable-threshold
clipping activation of Eq. (1):

    Y = clip(X, 0, mu)

whose gradient w.r.t. the threshold ``mu`` is the straight-through
estimate ``1{X >= mu}`` (TCL, Ho & Chang 2021), summed down to the shape
of ``mu``.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor, unbroadcast


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit, ``max(x, 0)``."""
    mask = x.data > 0
    out = np.where(mask, x.data, 0.0)

    def bwd(g):
        return (np.where(mask, g, 0.0),)

    return Tensor.from_op(out, (x,), bwd, "relu")


def threshold_relu(x: Tensor, mu: Tensor) -> Tensor:
    """Trainable-threshold ReLU: ``clip(x, 0, mu)`` (paper Eq. 1).

    Parameters
    ----------
    x:
        Pre-activation tensor.
    mu:
        Trainable clipping threshold; any shape broadcastable against
        ``x`` (typically a scalar per layer).

    Gradients
    ---------
    ``d out / d x = 1`` on ``0 < x < mu`` (else 0);
    ``d out / d mu = 1`` on ``x >= mu`` (else 0), reduced to ``mu``'s
    shape — the standard straight-through rule used to learn clipping
    thresholds.
    """
    mu_b = np.broadcast_to(mu.data, np.broadcast_shapes(x.data.shape, mu.data.shape))
    x_b = np.broadcast_to(x.data, mu_b.shape)
    out = np.clip(x_b, 0.0, mu_b)
    in_band = (x_b > 0.0) & (x_b < mu_b)
    above = x_b >= mu_b

    def bwd(g):
        gx = unbroadcast(np.where(in_band, g, 0.0), x.data.shape)
        gmu = unbroadcast(np.where(above, g, 0.0), mu.data.shape)
        return (gx, gmu)

    return Tensor.from_op(out, (x, mu), bwd, "threshold_relu")


def clip(x: Tensor, low: float, high: float) -> Tensor:
    """Differentiable clip with straight-through gradient inside the band."""
    out = np.clip(x.data, low, high)
    in_band = (x.data > low) & (x.data < high)

    def bwd(g):
        return (np.where(in_band, g, 0.0),)

    return Tensor.from_op(out, (x,), bwd, "clip")


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_norm
    softmax_vals = np.exp(out)

    def bwd(g):
        return (g - softmax_vals * g.sum(axis=axis, keepdims=True),)

    return Tensor.from_op(out, (x,), bwd, "log_softmax")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax along ``axis``."""
    return log_softmax(x, axis=axis).exp()


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero with probability ``p``, scale by 1/(1-p)."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    keep = (rng.random(x.data.shape) >= p).astype(x.data.dtype)
    scale = 1.0 / (1.0 - p)
    out = x.data * keep * scale

    def bwd(g):
        return (g * keep * scale,)

    return Tensor.from_op(out, (x,), bwd, "dropout")


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels -> one-hot float matrix (plain numpy, no grad)."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.min(initial=0) < 0 or (labels.size and labels.max() >= num_classes):
        raise ValueError("labels out of range for num_classes")
    eye = np.zeros((labels.size, num_classes))
    eye[np.arange(labels.size), labels] = 1.0
    return eye
