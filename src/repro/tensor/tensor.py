"""The :class:`Tensor` class — a numpy array with reverse-mode autograd.

Supports broadcasting elementwise arithmetic, matmul, reductions, shape
movement and indexing, all differentiable.  Convolution and pooling live
in :mod:`repro.tensor.conv_ops`; non-method functional ops (relu,
log-softmax, ...) live in :mod:`repro.tensor.ops`.

Only ``float`` tensors participate in autograd.  Boolean / integer
results (comparisons, argmax) are returned as raw numpy arrays since
they are never differentiated through.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from .autograd import GradMode, Node, backward

ArrayLike = Union[np.ndarray, float, int, list, tuple]

DEFAULT_DTYPE = np.float64


def get_default_dtype() -> np.dtype:
    """The dtype new tensors are created with (float64 by default)."""
    return DEFAULT_DTYPE


def set_default_dtype(dtype) -> None:
    """Switch the default tensor dtype (float32 halves memory and
    roughly doubles conv GEMM throughput; float64 is the accuracy-safe
    default used by the test suite's gradient checks)."""
    global DEFAULT_DTYPE
    dtype = np.dtype(dtype)
    if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"unsupported default dtype {dtype}")
    DEFAULT_DTYPE = dtype.type


class default_dtype:
    """Context manager pinning the default dtype within a block."""

    def __init__(self, dtype) -> None:
        self._dtype = dtype
        self._previous = None

    def __enter__(self) -> "default_dtype":
        self._previous = DEFAULT_DTYPE
        set_default_dtype(self._dtype)
        return self

    def __exit__(self, *exc_info) -> None:
        set_default_dtype(self._previous)


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting either prepends axes or stretches size-1 axes; the
    adjoint of both is summation.
    """
    if grad.shape == shape:
        return grad
    # Remove prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Collapse stretched size-1 axes.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A multidimensional array with optional gradient tracking."""

    __slots__ = ("data", "grad", "requires_grad", "_node")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        dtype: Optional[np.dtype] = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=dtype if dtype is not None else DEFAULT_DTYPE)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._node: Optional[Node] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=DEFAULT_DTYPE), requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=DEFAULT_DTYPE), requires_grad)

    @staticmethod
    def full(shape: Sequence[int], value: float, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.full(shape, value, dtype=DEFAULT_DTYPE), requires_grad)

    @staticmethod
    def from_op(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fn: Callable,
        name: str = "op",
    ) -> "Tensor":
        """Create a tensor as the output of a differentiable op.

        This is the extension point used by every op in the library
        (including custom surrogate-gradient spike functions in
        :mod:`repro.snn`).  Gradient recording is skipped when the global
        grad mode is off or no parent requires grad.
        """
        requires = GradMode.is_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._node = Node(parents, backward_fn, name)
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_str = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({self.data!r}{grad_str})"

    def item(self) -> float:
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy, detached view)."""
        return self.data

    # ------------------------------------------------------------------
    # Autograd entry points
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        backward(self, grad)

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Elementwise arithmetic (broadcasting)
    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(other: ArrayLike) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out = self.data + other.data

        def bwd(g):
            return (
                unbroadcast(g, self.data.shape),
                unbroadcast(g, other.data.shape),
            )

        return Tensor.from_op(out, (self, other), bwd, "add")

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out = self.data - other.data

        def bwd(g):
            return (
                unbroadcast(g, self.data.shape),
                unbroadcast(-g, other.data.shape),
            )

        return Tensor.from_op(out, (self, other), bwd, "sub")

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out = self.data * other.data
        a, b = self.data, other.data

        def bwd(g):
            return (
                unbroadcast(g * b, a.shape),
                unbroadcast(g * a, b.shape),
            )

        return Tensor.from_op(out, (self, other), bwd, "mul")

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._coerce(other)
        out = self.data / other.data
        a, b = self.data, other.data

        def bwd(g):
            return (
                unbroadcast(g / b, a.shape),
                unbroadcast(-g * a / (b * b), b.shape),
            )

        return Tensor.from_op(out, (self, other), bwd, "div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._coerce(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        def bwd(g):
            return (-g,)

        return Tensor.from_op(-self.data, (self,), bwd, "neg")

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out = self.data ** exponent
        base = self.data

        def bwd(g):
            return (g * exponent * base ** (exponent - 1),)

        return Tensor.from_op(out, (self,), bwd, "pow")

    # ------------------------------------------------------------------
    # Comparisons (non-differentiable, return numpy arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > self._coerce(other).data

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= self._coerce(other).data

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < self._coerce(other).data

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= self._coerce(other).data

    # ------------------------------------------------------------------
    # Unary math
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out = np.exp(self.data)

        def bwd(g):
            return (g * out,)

        return Tensor.from_op(out, (self,), bwd, "exp")

    def log(self) -> "Tensor":
        data = self.data

        def bwd(g):
            return (g / data,)

        return Tensor.from_op(np.log(data), (self,), bwd, "log")

    def sqrt(self) -> "Tensor":
        out = np.sqrt(self.data)

        def bwd(g):
            return (g * 0.5 / out,)

        return Tensor.from_op(out, (self,), bwd, "sqrt")

    def tanh(self) -> "Tensor":
        out = np.tanh(self.data)

        def bwd(g):
            return (g * (1.0 - out * out),)

        return Tensor.from_op(out, (self,), bwd, "tanh")

    def sigmoid(self) -> "Tensor":
        out = 1.0 / (1.0 + np.exp(-self.data))

        def bwd(g):
            return (g * out * (1.0 - out),)

        return Tensor.from_op(out, (self,), bwd, "sigmoid")

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def bwd(g):
            return (g * sign,)

        return Tensor.from_op(np.abs(self.data), (self,), bwd, "abs")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self.data.sum(axis=axis, keepdims=keepdims)
        shape = self.data.shape

        def bwd(g):
            g = np.asarray(g)
            if axis is None:
                return (np.broadcast_to(g, shape).copy(),)
            axes = axis if isinstance(axis, tuple) else (axis,)
            if not keepdims:
                g = np.expand_dims(g, axes)
            return (np.broadcast_to(g, shape).copy(),)

        return Tensor.from_op(out, (self,), bwd, "sum")

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = (
            self.data.size
            if axis is None
            else np.prod(
                [self.data.shape[a] for a in (axis if isinstance(axis, tuple) else (axis,))]
            )
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out = self.data.max(axis=axis, keepdims=keepdims)
        data, shape = self.data, self.data.shape

        def bwd(g):
            g = np.asarray(g)
            if axis is None:
                expanded = np.broadcast_to(out, shape)
                gex = np.broadcast_to(g, shape)
            else:
                axes = axis if isinstance(axis, tuple) else (axis,)
                out_kd = out if keepdims else np.expand_dims(out, axes)
                g_kd = g if keepdims else np.expand_dims(g, axes)
                expanded = np.broadcast_to(out_kd, shape)
                gex = np.broadcast_to(g_kd, shape)
            mask = (data == expanded).astype(data.dtype)
            # Split gradient equally among ties (deterministic & exact
            # for distinct maxima, which is the overwhelming case).
            denom = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            if axis is not None and not keepdims:
                pass  # denom already keepdims via sum(..., keepdims=True)
            return (gex * mask / np.maximum(denom, 1.0),)

        return Tensor.from_op(out, (self,), bwd, "max")

    def argmax(self, axis=None) -> np.ndarray:
        return self.data.argmax(axis=axis)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other = self._coerce(other)
        a, b = self.data, other.data
        out = a @ b

        def bwd(g):
            if a.ndim == 1 and b.ndim == 1:
                return (g * b, g * a)
            if b.ndim == 1:
                ga = np.expand_dims(g, -1) * b
                gb = unbroadcast((np.swapaxes(a, -1, -2) @ np.expand_dims(g, -1))[..., 0], b.shape)
                return (unbroadcast(ga, a.shape), gb)
            if a.ndim == 1:
                ga = unbroadcast((np.expand_dims(g, -2) @ np.swapaxes(b, -1, -2))[..., 0, :], a.shape)
                gb = np.expand_dims(a, -1) * np.expand_dims(g, -2)
                return (ga, unbroadcast(gb, b.shape))
            ga = g @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ g
            return (unbroadcast(ga, a.shape), unbroadcast(gb, b.shape))

        return Tensor.from_op(out, (self, other), bwd, "matmul")

    __matmul__ = matmul

    # ------------------------------------------------------------------
    # Shape movement
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        out = self.data.reshape(shape)

        def bwd(g):
            return (g.reshape(original),)

        return Tensor.from_op(out, (self,), bwd, "reshape")

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = np.argsort(axes)

        def bwd(g):
            return (g.transpose(inverse),)

        return Tensor.from_op(self.data.transpose(axes), (self,), bwd, "transpose")

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def flatten_batch(self) -> "Tensor":
        """Flatten all but the leading (batch) dimension."""
        return self.reshape(self.data.shape[0], -1)

    def __getitem__(self, index) -> "Tensor":
        out = self.data[index]
        shape = self.data.shape
        dtype = self.data.dtype

        def bwd(g):
            grad = np.zeros(shape, dtype=dtype)
            np.add.at(grad, index, g)
            return (grad,)

        return Tensor.from_op(out, (self,), bwd, "getitem")

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) dimensions symmetrically."""
        if padding == 0:
            return self
        p = int(padding)
        widths = [(0, 0)] * (self.data.ndim - 2) + [(p, p), (p, p)]
        out = np.pad(self.data, widths)

        def bwd(g):
            slices = tuple(
                [slice(None)] * (g.ndim - 2) + [slice(p, -p), slice(p, -p)]
            )
            return (g[slices],)

        return Tensor.from_op(out, (self,), bwd, "pad2d")


# ----------------------------------------------------------------------
# Op observers (profilers and memory meters)
# ----------------------------------------------------------------------
#: The pristine ``from_op`` function, captured before any observer can
#: wrap it (class access on a staticmethod yields the plain function).
_PRISTINE_FROM_OP = Tensor.from_op

_OP_OBSERVERS: list = []


def _dispatching_from_op(
    data: np.ndarray,
    parents: Sequence["Tensor"],
    backward_fn: Callable,
    name: str = "op",
) -> "Tensor":
    out = _PRISTINE_FROM_OP(data, parents, backward_fn, name)
    for observer in _OP_OBSERVERS:
        observer(out, name)
    return out


def add_op_observer(observer: Callable) -> None:
    """Call ``observer(tensor, name)`` after every :meth:`Tensor.from_op`.

    The dispatching wrapper is installed only while at least one
    observer is registered; with none, ``Tensor.from_op`` is the
    original function, so code that never profiles pays nothing.
    Observers fire in registration order and must not raise.
    """
    _OP_OBSERVERS.append(observer)
    if len(_OP_OBSERVERS) == 1:
        Tensor.from_op = staticmethod(_dispatching_from_op)


def remove_op_observer(observer: Callable) -> None:
    """Unregister ``observer``; restores the pristine ``from_op`` when
    the last observer leaves (unknown observers are ignored)."""
    try:
        _OP_OBSERVERS.remove(observer)
    except ValueError:
        return
    if not _OP_OBSERVERS:
        Tensor.from_op = staticmethod(_PRISTINE_FROM_OP)


def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def bwd(g):
        grads = []
        for start, stop in zip(offsets[:-1], offsets[1:]):
            slicer = [slice(None)] * g.ndim
            slicer[axis] = slice(start, stop)
            grads.append(g[tuple(slicer)])
        return tuple(grads)

    return Tensor.from_op(out, tensors, bwd, "concatenate")


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new ``axis``."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out = np.stack([t.data for t in tensors], axis=axis)

    def bwd(g):
        moved = np.moveaxis(g, axis, 0)
        return tuple(moved[i] for i in range(len(tensors)))

    return Tensor.from_op(out, tensors, bwd, "stack")


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable selection: ``condition`` is a boolean numpy mask."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out = np.where(cond, a.data, b.data)

    def bwd(g):
        return (
            unbroadcast(np.where(cond, g, 0.0), a.data.shape),
            unbroadcast(np.where(cond, 0.0, g), b.data.shape),
        )

    return Tensor.from_op(out, (a, b), bwd, "where")


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Differentiable elementwise maximum (ties split 50/50)."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    out = np.maximum(a.data, b.data)
    a_wins = a.data > b.data
    tie = a.data == b.data

    def bwd(g):
        ga = np.where(a_wins, g, np.where(tie, 0.5 * g, 0.0))
        gb = np.where(a_wins, 0.0, np.where(tie, 0.5 * g, g))
        return (unbroadcast(ga, a.data.shape), unbroadcast(gb, b.data.shape))

    return Tensor.from_op(out, (a, b), bwd, "maximum")
