"""Compact spike representation and gather-based sparse kernels.

Converted SNNs at ultra-low latency (T in {1..5}) fire only a small
fraction of their units per step, yet the dense engine multiplies every
zero through full GEMMs.  This module provides the event-driven
alternative: a CSR-style packing of each layer's binary spike output
(:class:`SparseSpikes`) and vectorised gather/segment-sum kernels for
Linear and Conv2d propagation (:func:`sparse_linear_gather`,
:func:`sparse_conv2d_gather`) that touch only the firing units.

Design notes (measured on the reference host):

- ``np.add.at`` is unbuffered and loses to every alternative; segment
  sums use ``np.add.reduceat`` over event runs that are *already
  sorted* by output row, so no scatter is ever needed.
- For Linear the gather runs transposed — ``W.take(cols, axis=1)``
  followed by ``reduceat(axis=1)`` — because reduceat along the last
  axis of a C-contiguous array is several times faster than along the
  first.
- For Conv2d events are sorted once by ``(batch, y, x)``; each kernel
  offset ``(ky, kx)`` then maps them to nondecreasing output rows, so a
  single boundary scan + ``reduceat`` accumulates each offset's
  contribution, and per-offset output rows are unique (plain fancy
  ``+=`` is safe).
- Spike trains are uniform-amplitude (``beta * V^th``); kernels exploit
  this by accumulating unscaled and applying the amplitude once at the
  end.  Non-uniform values (e.g. after average pooling) take a per-event
  scaling path.
- int8 weights (``qweight``/``qpacked`` + ``qscale``) accumulate in
  int32 and dequantize once — the integer-friendly form a neuromorphic
  core would use.  The int path requires uniform amplitudes; per-event
  values fall back to the float weights.

These kernels are inference-only: they return plain ndarrays and
record no autograd graph.  Training keeps the dense path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = [
    "SparseSpikes",
    "pack_spikes",
    "pack_conv_weight",
    "sparse_linear_gather",
    "sparse_conv2d_gather",
]


@dataclass
class SparseSpikes:
    """CSR packing of a batch of spike frames.

    ``indices`` holds, per sample, the flat (C-order) positions of the
    active units within that sample; ``indptr`` (length ``N + 1``)
    delimits each sample's run.  A uniform spike train stores only its
    ``amplitude``; non-uniform trains carry per-event ``values``.
    """

    shape: Tuple[int, ...]
    indices: np.ndarray
    indptr: np.ndarray
    values: Optional[np.ndarray] = None
    amplitude: Optional[float] = None

    @property
    def batch(self) -> int:
        return int(self.shape[0])

    @property
    def nnz(self) -> int:
        return int(self.indices.shape[0])

    @property
    def density(self) -> float:
        size = int(np.prod(self.shape))
        return self.nnz / size if size else 0.0

    @property
    def unit_shape(self) -> Tuple[int, ...]:
        return tuple(self.shape[1:])

    def event_values(self) -> np.ndarray:
        if self.values is not None:
            return self.values
        amp = 1.0 if self.amplitude is None else self.amplitude
        return np.full(self.nnz, amp)

    def to_dense(self, dtype=None) -> np.ndarray:
        dtype = np.float64 if dtype is None else dtype
        flat = np.zeros((self.batch, int(np.prod(self.shape[1:]))), dtype=dtype)
        if self.nnz:
            rows = np.repeat(
                np.arange(self.batch), np.diff(self.indptr)
            )
            flat[rows, self.indices] = self.event_values().astype(dtype)
        return flat.reshape(self.shape)


def pack_spikes(
    data: np.ndarray,
    amplitude: Optional[float] = None,
    detect_uniform: bool = True,
) -> SparseSpikes:
    """Pack a dense spike frame batch into :class:`SparseSpikes`.

    ``amplitude`` asserts a known uniform spike height (the emitting
    neuron's ``beta * V^th``) and skips the value gather entirely;
    otherwise values are gathered and collapsed to an amplitude when
    they turn out uniform (``detect_uniform``).
    """
    data = np.asarray(data)
    n = data.shape[0]
    flat = data.reshape(n, -1)
    rows, cols = np.nonzero(flat)
    counts = np.bincount(rows, minlength=n)
    indptr = np.empty(n + 1, dtype=np.int64)
    indptr[0] = 0
    np.cumsum(counts, out=indptr[1:])
    if amplitude is not None:
        return SparseSpikes(data.shape, cols, indptr, amplitude=float(amplitude))
    values = flat[rows, cols]
    if detect_uniform and values.size:
        lo, hi = values.min(), values.max()
        if lo == hi:
            return SparseSpikes(data.shape, cols, indptr, amplitude=float(lo))
    if values.size == 0:
        return SparseSpikes(data.shape, cols, indptr, amplitude=1.0)
    return SparseSpikes(data.shape, cols, indptr, values=values)


def pack_conv_weight(weight: np.ndarray) -> np.ndarray:
    """Repack ``(C_out, C_in, k, k)`` as contiguous ``(k, k, C_in, C_out)``.

    The sparse conv kernel gathers per-offset weight rows by input
    channel; this layout makes each ``[ky, kx]`` slab a contiguous
    ``(C_in, C_out)`` matrix so the gather is a plain row fetch.
    """
    return np.ascontiguousarray(np.transpose(weight, (2, 3, 1, 0)))


def _resolve_dtype(weight, out_dtype):
    if out_dtype is not None:
        return np.dtype(out_dtype)
    if weight is not None:
        return weight.dtype
    from .tensor import get_default_dtype

    return np.dtype(get_default_dtype())


def sparse_linear_gather(
    sp: SparseSpikes,
    weight: Optional[np.ndarray] = None,
    bias: Optional[np.ndarray] = None,
    qweight: Optional[np.ndarray] = None,
    qscale: Optional[float] = None,
    out_dtype=None,
) -> np.ndarray:
    """Event-driven affine map ``y = S W^T + b`` over packed spikes.

    ``weight`` is the dense ``(out, in)`` matrix; passing ``qweight``
    (int8, same shape) with its dequantization ``qscale`` switches the
    accumulation to int32.  Matches ``x @ W.T + b`` on the dense frame
    to float tolerance (exactly, when per-sample summation order
    coincides).
    """
    if weight is None and qweight is None:
        raise ValueError("need weight or qweight")
    out_features = (weight if weight is not None else qweight).shape[0]
    dtype = _resolve_dtype(weight, out_dtype)
    n = sp.batch
    out = np.zeros((n, out_features), dtype=dtype)
    if sp.nnz:
        cols = sp.indices
        counts = np.diff(sp.indptr)
        nonempty = np.flatnonzero(counts)
        starts = sp.indptr[nonempty]
        use_int = qweight is not None and sp.values is None
        if use_int:
            gathered = qweight.take(cols, axis=1).astype(np.int32)
        else:
            if weight is None:
                raise ValueError("per-event values need the float weight")
            gathered = weight.take(cols, axis=1)
            if sp.values is not None:
                gathered = gathered * sp.values[None, :]
        seg = np.add.reduceat(gathered, starts, axis=1)
        if use_int:
            amp = 1.0 if sp.amplitude is None else sp.amplitude
            out[nonempty] = (seg.T * (float(qscale) * amp)).astype(
                dtype, copy=False
            )
        elif sp.values is None and sp.amplitude not in (None, 1.0):
            out[nonempty] = (seg.T * dtype.type(sp.amplitude)).astype(
                dtype, copy=False
            )
        else:
            out[nonempty] = seg.T
    if bias is not None:
        out += bias.astype(dtype, copy=False)
    return out


def _sorted_events(sp: SparseSpikes, height: int, width: int):
    """Unpack CSR events to ``(b, c, y, x, values)`` sorted by (b, y, x).

    CSR order is (b, c, y, x); re-keying by spatial position first makes
    every kernel offset's output rows nondecreasing, which is what lets
    the conv kernel segment-sum without any scatter.
    """
    counts = np.diff(sp.indptr)
    b = np.repeat(np.arange(sp.batch), counts)
    c, rem = np.divmod(sp.indices, height * width)
    y, x = np.divmod(rem, width)
    key = (b * height + y) * width + x
    order = np.argsort(key, kind="stable")
    vals = sp.values[order] if sp.values is not None else None
    return b[order], c[order], y[order], x[order], vals


#: Below this many (event x offset) pairs the conv kernel expands all
#: kernel offsets in one broadcast batch (single sort + segment sum)
#: instead of looping per offset — the regime where Python-loop fixed
#: costs dominate the gathers.
_FUSED_OFFSET_BUDGET = 16384


def _conv_events_fused(
    sp: SparseSpikes, woff, stride, padding, oh, ow, h, w, use_int, out_flat
) -> None:
    """All-offsets-at-once event accumulation (small event counts).

    Builds the full ``(E, k*k)`` placement grid, keeps the valid
    placements, sorts them by output row once, and segment-sums into
    ``out_flat`` with a single ``reduceat``.
    """
    k = woff.shape[0]
    c_in = woff.shape[2]
    counts = np.diff(sp.indptr)
    b = np.repeat(np.arange(sp.batch), counts)
    c, rem = np.divmod(sp.indices, h * w)
    y, x = np.divmod(rem, w)
    off_y = np.repeat(np.arange(k), k)
    off_x = np.tile(np.arange(k), k)
    i_num = y[:, None] + (padding - off_y)[None, :]
    j_num = x[:, None] + (padding - off_x)[None, :]
    if stride == 1:
        i, j = i_num, j_num
        ok = (i_num >= 0) & (i_num < oh) & (j_num >= 0) & (j_num < ow)
    else:
        i, ri = np.divmod(i_num, stride)
        j, rj = np.divmod(j_num, stride)
        ok = (
            (ri == 0) & (i >= 0) & (i < oh)
            & (rj == 0) & (j >= 0) & (j < ow)
        )
    sel = np.flatnonzero(ok.ravel())
    if not sel.size:
        return
    rows = ((b[:, None] * oh + i) * ow + j).ravel()[sel]
    # Flat gather index into the (k*k*C_in, C_out) weight view: offset
    # slab first, then input channel.
    gidx = (
        np.arange(k * k)[None, :] * c_in + c[:, None]
    ).ravel()[sel]
    order = np.argsort(rows, kind="stable")
    rows = rows[order]
    gathered = woff.reshape(k * k * c_in, -1)[gidx[order]]
    if use_int:
        gathered = gathered.astype(np.int32)
    elif sp.values is not None:
        vals = np.broadcast_to(
            sp.values[:, None], (sp.nnz, k * k)
        ).ravel()[sel][order]
        gathered = gathered * vals[:, None]
    brk = np.flatnonzero(rows[1:] != rows[:-1])
    starts = np.concatenate(([0], brk + 1))
    seg = np.add.reduceat(gathered, starts, axis=0)
    out_flat[rows[starts]] += seg


def sparse_conv2d_gather(
    sp: SparseSpikes,
    weight: Optional[np.ndarray] = None,
    stride: int = 1,
    padding: int = 0,
    bias: Optional[np.ndarray] = None,
    packed: Optional[np.ndarray] = None,
    qpacked: Optional[np.ndarray] = None,
    qscale: Optional[float] = None,
    out_dtype=None,
) -> np.ndarray:
    """Event-driven 2-D convolution over packed spikes.

    ``weight`` is the dense ``(C_out, C_in, k, k)`` kernel; ``packed``
    optionally supplies the :func:`pack_conv_weight` layout to skip the
    per-call repack (the dispatcher caches it).  ``qpacked`` (int8 in
    packed layout) with ``qscale`` runs int32 accumulation.  Matches the
    dense ``conv2d`` to float tolerance.
    """
    if weight is None and packed is None and qpacked is None:
        raise ValueError("need weight, packed or qpacked")
    use_int = qpacked is not None and sp.values is None
    if use_int:
        woff = qpacked
    elif packed is not None:
        woff = packed
    elif weight is not None:
        woff = pack_conv_weight(weight)
    else:
        raise ValueError("per-event values need the float weights")
    k = woff.shape[0]
    c_out = woff.shape[3]
    dtype = _resolve_dtype(weight if weight is not None else packed, out_dtype)
    n, _, h, w = sp.shape
    oh = (h + 2 * padding - k) // stride + 1
    ow = (w + 2 * padding - k) // stride + 1
    acc_dtype = np.int32 if use_int else dtype
    out_flat = np.zeros((n * oh * ow, c_out), dtype=acc_dtype)
    if sp.nnz and sp.nnz * k * k <= _FUSED_OFFSET_BUDGET:
        # Few events: the per-offset loop's k^2 rounds of small-array
        # ops cost more than the work itself.  Expand all offsets at
        # once and pay one sort + one segment sum instead.
        _conv_events_fused(
            sp, woff, stride, padding, oh, ow, h, w, use_int, out_flat
        )
    elif sp.nnz:
        b, c, y, x, vals = _sorted_events(sp, h, w)
        for ky in range(k):
            i_num = y + (padding - ky)
            if stride == 1:
                i = i_num
                i_ok = (i_num >= 0) & (i_num < oh)
            else:
                i, r = np.divmod(i_num, stride)
                i_ok = (r == 0) & (i >= 0) & (i < oh)
            for kx in range(k):
                j_num = x + (padding - kx)
                if stride == 1:
                    j = j_num
                    ok = i_ok & (j_num >= 0) & (j_num < ow)
                else:
                    j, r = np.divmod(j_num, stride)
                    ok = i_ok & (r == 0) & (j >= 0) & (j < ow)
                sel = np.flatnonzero(ok)
                if not sel.size:
                    continue
                rows = (b[sel] * oh + i[sel]) * ow + j[sel]
                gathered = woff[ky, kx][c[sel]]
                if use_int:
                    gathered = gathered.astype(np.int32)
                elif vals is not None:
                    gathered = gathered * vals[sel, None]
                # Rows are sorted within an offset: one boundary scan
                # gives the segments, and each output row appears once.
                brk = np.flatnonzero(rows[1:] != rows[:-1])
                starts = np.concatenate(([0], brk + 1))
                seg = np.add.reduceat(gathered, starts, axis=0)
                out_flat[rows[starts]] += seg
    if use_int:
        amp = 1.0 if sp.amplitude is None else sp.amplitude
        out_flat = (out_flat * (float(qscale) * amp)).astype(dtype, copy=False)
    elif sp.values is None and sp.amplitude not in (None, 1.0):
        out_flat = out_flat * dtype.type(sp.amplitude)
    out = np.ascontiguousarray(
        out_flat.reshape(n, oh, ow, c_out).transpose(0, 3, 1, 2)
    )
    if bias is not None:
        out += bias.astype(dtype, copy=False)[None, :, None, None]
    return out
