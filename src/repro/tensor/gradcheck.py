"""Finite-difference gradient checking for autograd ops.

Used throughout the test suite to validate every differentiable op (and
composite layers) against central differences.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor


def numeric_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    index: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input."""
    target = inputs[index]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).sum().item())
        flat[i] = original - eps
        minus = float(fn(*inputs).sum().item())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> None:
    """Assert analytic gradients of ``sum(fn(*inputs))`` match numeric ones.

    Raises ``AssertionError`` with a per-input report on mismatch.
    Inputs that do not require grad are skipped.
    """
    for tensor in inputs:
        tensor.zero_grad()
    out = fn(*inputs).sum()
    out.backward()
    for i, tensor in enumerate(inputs):
        if not tensor.requires_grad:
            continue
        expected = numeric_gradient(fn, inputs, i, eps=eps)
        actual = tensor.grad if tensor.grad is not None else np.zeros_like(tensor.data)
        if not np.allclose(actual, expected, atol=atol, rtol=rtol):
            max_err = np.abs(actual - expected).max()
            raise AssertionError(
                f"gradient mismatch for input {i}: max abs error {max_err:.3e}\n"
                f"analytic:\n{actual}\nnumeric:\n{expected}"
            )
