"""Reverse-mode automatic differentiation engine.

This module holds the pieces of the autograd machinery that are not the
:class:`~repro.tensor.tensor.Tensor` class itself: the global gradient
mode, the graph node structure recorded during the forward pass, and the
topological backward traversal.

The design mirrors the classic "tape" approach: every differentiable
operation creates a :class:`Node` that remembers its parent tensors and a
``backward_fn`` mapping the incoming output gradient to one gradient per
parent.  ``backward`` walks the graph in reverse topological order and
accumulates gradients into leaf tensors.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np


class GradMode:
    """Global switch for gradient recording (mirrors torch.no_grad)."""

    _enabled: bool = True

    @classmethod
    def is_enabled(cls) -> bool:
        return cls._enabled

    @classmethod
    def set_enabled(cls, enabled: bool) -> None:
        cls._enabled = bool(enabled)


class no_grad:
    """Context manager / decorator that disables gradient recording.

    Example
    -------
    >>> from repro.tensor import Tensor, no_grad
    >>> with no_grad():
    ...     y = Tensor([1.0], requires_grad=True) * 2.0
    >>> y.requires_grad
    False
    """

    def __enter__(self) -> "no_grad":
        self._prev = GradMode.is_enabled()
        GradMode.set_enabled(False)
        return self

    def __exit__(self, *exc_info) -> None:
        GradMode.set_enabled(self._prev)

    def __call__(self, fn: Callable) -> Callable:
        def wrapper(*args, **kwargs):
            with no_grad():
                return fn(*args, **kwargs)

        wrapper.__name__ = getattr(fn, "__name__", "wrapped")
        wrapper.__doc__ = fn.__doc__
        return wrapper


class Node:
    """One recorded operation in the autograd graph.

    Parameters
    ----------
    parents:
        The input tensors of the operation (only those requiring grad
        actually receive gradients).
    backward_fn:
        Maps the gradient w.r.t. the op output to a sequence of gradients,
        one per parent (``None`` allowed for non-differentiable inputs).
    name:
        Human-readable op name, used in error messages and debugging.
    """

    __slots__ = ("parents", "backward_fn", "name")

    def __init__(
        self,
        parents: Sequence["object"],
        backward_fn: Callable[[np.ndarray], Tuple[Optional[np.ndarray], ...]],
        name: str = "op",
    ) -> None:
        self.parents = tuple(parents)
        self.backward_fn = backward_fn
        self.name = name


def _topological_order(root) -> List:
    """Return tensors in topological order ending at ``root``.

    Iterative DFS (deep SNN unrolls can exceed Python's recursion limit).
    """
    order: List = []
    visited = set()
    stack = [(root, False)]
    while stack:
        tensor, processed = stack.pop()
        if processed:
            order.append(tensor)
            continue
        if id(tensor) in visited:
            continue
        visited.add(id(tensor))
        stack.append((tensor, True))
        if tensor._node is not None:
            for parent in tensor._node.parents:
                if parent._node is not None or parent.requires_grad:
                    stack.append((parent, False))
    return order


def backward(root, grad: Optional[np.ndarray] = None) -> None:
    """Run reverse-mode autodiff from ``root``.

    Gradients are accumulated into the ``.grad`` attribute of every leaf
    tensor with ``requires_grad=True`` reachable from ``root``.

    Parameters
    ----------
    root:
        The tensor to differentiate. Must be a scalar unless ``grad`` is
        given explicitly.
    grad:
        Gradient of some downstream scalar w.r.t. ``root``. Defaults to
        ``ones_like(root)`` for scalars.
    """
    if grad is None:
        if root.data.size != 1:
            raise RuntimeError(
                "backward() on a non-scalar tensor requires an explicit "
                f"`grad` argument (got shape {root.data.shape})"
            )
        grad = np.ones_like(root.data)
    grad = np.asarray(grad, dtype=root.data.dtype)
    if grad.shape != root.data.shape:
        raise ValueError(
            f"grad shape {grad.shape} does not match tensor shape "
            f"{root.data.shape}"
        )

    # Gradients flowing along graph edges, keyed by tensor identity.  We
    # key by id() and keep the tensor alive in the dict value.
    flowing = {id(root): grad}
    for tensor in reversed(_topological_order(root)):
        tensor_grad = flowing.pop(id(tensor), None)
        if tensor_grad is None:
            continue
        if tensor.requires_grad and tensor._node is None:
            # Leaf: accumulate.
            if tensor.grad is None:
                tensor.grad = tensor_grad.copy()
            else:
                tensor.grad = tensor.grad + tensor_grad
        node = tensor._node
        if node is None:
            continue
        parent_grads = node.backward_fn(tensor_grad)
        if len(parent_grads) != len(node.parents):
            raise RuntimeError(
                f"op '{node.name}' returned {len(parent_grads)} gradients "
                f"for {len(node.parents)} parents"
            )
        for parent, parent_grad in zip(node.parents, parent_grads):
            if parent_grad is None:
                continue
            if parent_grad.shape != parent.data.shape:
                raise RuntimeError(
                    f"op '{node.name}' produced gradient of shape "
                    f"{parent_grad.shape} for parent of shape "
                    f"{parent.data.shape}"
                )
            key = id(parent)
            if key in flowing:
                flowing[key] = flowing[key] + parent_grad
            else:
                flowing[key] = parent_grad
