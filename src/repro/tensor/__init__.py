"""Autograd tensor substrate: numpy arrays with reverse-mode autodiff.

Public surface:

- :class:`Tensor` — the array type; elementwise ops, matmul, reductions,
  movement, all differentiable.
- :func:`concatenate`, :func:`stack`, :func:`where`, :func:`maximum` —
  differentiable free functions.
- :mod:`ops` — relu / threshold_relu / clip / softmax family / dropout.
- :mod:`conv_ops` — conv2d, max/avg pooling (im2col based).
- :class:`no_grad` — disable graph recording.
- :func:`check_gradients` — finite-difference validation helper.
"""

from .autograd import GradMode, Node, no_grad
from .conv_ops import (
    avg_pool2d,
    conv2d,
    conv2d_output_shape,
    global_avg_pool2d,
    max_pool2d,
)
from .gradcheck import check_gradients, numeric_gradient
from .sparse import (
    SparseSpikes,
    pack_conv_weight,
    pack_spikes,
    sparse_conv2d_gather,
    sparse_linear_gather,
)
from .ops import (
    clip,
    dropout,
    log_softmax,
    one_hot,
    relu,
    softmax,
    threshold_relu,
)
from .tensor import (
    Tensor,
    add_op_observer,
    concatenate,
    default_dtype,
    get_default_dtype,
    maximum,
    remove_op_observer,
    set_default_dtype,
    stack,
    unbroadcast,
    where,
)

__all__ = [
    "GradMode",
    "Node",
    "SparseSpikes",
    "Tensor",
    "pack_conv_weight",
    "pack_spikes",
    "sparse_conv2d_gather",
    "sparse_linear_gather",
    "add_op_observer",
    "avg_pool2d",
    "check_gradients",
    "clip",
    "concatenate",
    "conv2d",
    "conv2d_output_shape",
    "default_dtype",
    "dropout",
    "get_default_dtype",
    "set_default_dtype",
    "global_avg_pool2d",
    "log_softmax",
    "max_pool2d",
    "maximum",
    "no_grad",
    "numeric_gradient",
    "one_hot",
    "relu",
    "remove_op_observer",
    "softmax",
    "stack",
    "threshold_relu",
    "unbroadcast",
    "where",
]
