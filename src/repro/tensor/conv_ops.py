"""Differentiable 2-D convolution and pooling primitives.

Convolution uses the im2col strategy: windows of the (padded) input are
gathered with numpy stride tricks into a matrix, so the convolution
becomes a single GEMM — the standard CPU implementation.  The backward
pass scatters column gradients back with a small KH*KW loop (col2im).

Pooling is restricted to non-overlapping windows (``stride == kernel``),
which covers the VGG (2x2/2 max pool) and ResNet-20 (8x8 global average)
architectures used in the paper, and keeps both passes fully vectorised.
All layouts are NCHW.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from .tensor import Tensor


def conv2d_output_shape(
    height: int, width: int, kernel: int, stride: int, padding: int
) -> Tuple[int, int]:
    """Spatial output size of a conv/pool with square kernel."""
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel {kernel} / stride {stride} / padding {padding} "
            f"produce empty output for input {height}x{width}"
        )
    return out_h, out_w


def _im2col(
    x: np.ndarray, kernel: int, stride: int
) -> Tuple[np.ndarray, int, int]:
    """Gather conv windows of a padded NCHW array.

    Returns ``(cols, out_h, out_w)`` where ``cols`` has shape
    ``(N, out_h, out_w, C, kernel, kernel)`` (a strided view, no copy).
    """
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    # Direct window view: one as_strided call instead of
    # sliding_window_view + stride slicing (the conv hot path is called
    # once per layer per forward, so fixed per-call cost matters).
    sn, sc, sh, sw = x.strides
    windows = as_strided(
        x,
        shape=(n, c, out_h, out_w, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    # (N, C, out_h, out_w, KH, KW) -> (N, out_h, out_w, C, KH, KW)
    cols = windows.transpose(0, 2, 3, 1, 4, 5)
    return cols, out_h, out_w


def _col2im(
    dcols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
) -> np.ndarray:
    """Adjoint of :func:`_im2col`: scatter-add column grads to an image.

    ``dcols`` has shape ``(N, out_h, out_w, C, KH, KW)``; the result has
    ``input_shape`` (the *padded* input shape).
    """
    n, c, h, w = input_shape
    _, out_h, out_w, _, _, _ = dcols.shape
    dx = np.zeros(input_shape, dtype=dcols.dtype)
    # (N, C, KH, KW, out_h, out_w) so each (i, j) offset is a strided slice.
    d = dcols.transpose(0, 3, 4, 5, 1, 2)
    for i in range(kernel):
        row_end = i + stride * out_h
        for j in range(kernel):
            col_end = j + stride * out_w
            dx[:, :, i:row_end:stride, j:col_end:stride] += d[:, :, i, j, :, :]
    return dx


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D cross-correlation (the deep-learning "convolution").

    Parameters
    ----------
    x:
        Input of shape ``(N, C_in, H, W)``.
    weight:
        Filters of shape ``(C_out, C_in, K, K)``.
    bias:
        Optional per-filter bias of shape ``(C_out,)``.
    """
    n, c_in, h, w = x.data.shape
    c_out, c_in_w, kh, kw = weight.data.shape
    if c_in != c_in_w:
        raise ValueError(
            f"input has {c_in} channels but weight expects {c_in_w}"
        )
    if kh != kw:
        raise ValueError("only square kernels are supported")
    kernel = kh

    if padding:
        # Preallocate + slice-assign: cheaper than np.pad's general
        # machinery, and a no-op allocation when padding == 0.
        padded_shape = (n, c_in, h + 2 * padding, w + 2 * padding)
        x_padded = np.zeros(padded_shape, dtype=x.data.dtype)
        x_padded[:, :, padding:padding + h, padding:padding + w] = x.data
    else:
        x_padded = x.data
    cols, out_h, out_w = _im2col(x_padded, kernel, stride)
    # Pack the strided window view into one contiguous buffer; this single
    # copy feeds the forward GEMM and is reused verbatim by the
    # weight-gradient GEMM in backward.
    mat_shape = (n * out_h * out_w, c_in * kernel * kernel)
    cols_mat = np.ascontiguousarray(cols).reshape(mat_shape)
    del cols  # drop the strided view; only the packed buffer stays alive
    w_mat = weight.data.reshape(c_out, -1)
    out = cols_mat @ w_mat.T
    if bias is not None:
        np.add(out, bias.data, out=out)  # GEMM output is fresh: add in place
    out = out.reshape(n, out_h, out_w, c_out).transpose(0, 3, 1, 2)

    padded_shape = x_padded.shape
    parents = (x, weight) if bias is None else (x, weight, bias)

    def bwd(g):
        # g: (N, C_out, out_h, out_w) -> (N*out_h*out_w, C_out)
        g_mat = g.transpose(0, 2, 3, 1).reshape(-1, c_out)
        dw = (g_mat.T @ cols_mat).reshape(weight.data.shape)
        dcols_mat = g_mat @ w_mat
        dcols = dcols_mat.reshape(n, out_h, out_w, c_in, kernel, kernel)
        dx_padded = _col2im(dcols, padded_shape, kernel, stride)
        if padding:
            dx = dx_padded[:, :, padding:-padding, padding:-padding]
        else:
            dx = dx_padded
        if bias is None:
            return (dx, dw)
        db = g_mat.sum(axis=0)
        return (dx, dw, db)

    return Tensor.from_op(out, parents, bwd, "conv2d")


def _check_pool_args(x: Tensor, kernel: int, stride: int) -> None:
    if stride != kernel:
        raise NotImplementedError(
            "pooling supports non-overlapping windows only (stride == kernel)"
        )
    n, c, h, w = x.data.shape
    if h % kernel or w % kernel:
        raise ValueError(
            f"spatial size {h}x{w} not divisible by pool kernel {kernel}"
        )


def max_pool2d(x: Tensor, kernel: int, stride: int = None) -> Tensor:
    """Non-overlapping max pooling over ``kernel x kernel`` windows."""
    stride = kernel if stride is None else stride
    _check_pool_args(x, kernel, stride)
    n, c, h, w = x.data.shape
    out_h, out_w = h // kernel, w // kernel
    windows = x.data.reshape(n, c, out_h, kernel, out_w, kernel)
    out = windows.max(axis=(3, 5))
    mask = windows == out[:, :, :, None, :, None]
    # Break ties: keep only the first max per window so the gradient is
    # routed to exactly one element (matches framework conventions).
    flat = mask.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, out_h, out_w, -1)
    first = flat.cumsum(axis=-1) == 1
    routed = (flat & first).reshape(n, c, out_h, out_w, kernel, kernel)
    routed = routed.transpose(0, 1, 2, 4, 3, 5)

    def bwd(g):
        g_win = g[:, :, :, None, :, None] * routed
        return (g_win.reshape(n, c, h, w),)

    return Tensor.from_op(out, (x,), bwd, "max_pool2d")


def avg_pool2d(x: Tensor, kernel: int, stride: int = None) -> Tensor:
    """Non-overlapping average pooling over ``kernel x kernel`` windows."""
    stride = kernel if stride is None else stride
    _check_pool_args(x, kernel, stride)
    n, c, h, w = x.data.shape
    out_h, out_w = h // kernel, w // kernel
    windows = x.data.reshape(n, c, out_h, kernel, out_w, kernel)
    out = windows.mean(axis=(3, 5))
    inv_area = 1.0 / (kernel * kernel)

    def bwd(g):
        g_win = np.broadcast_to(
            g[:, :, :, None, :, None] * inv_area,
            (n, c, out_h, kernel, out_w, kernel),
        )
        return (g_win.reshape(n, c, h, w).copy(),)

    return Tensor.from_op(out, (x,), bwd, "avg_pool2d")


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over all spatial positions, returning ``(N, C)``."""
    return x.mean(axis=(2, 3))
