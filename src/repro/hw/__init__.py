"""Neuromorphic-hardware deployment models (extends paper Section VI-B)."""

from .mapping import (
    CoreSpec,
    DeploymentReport,
    EnergyCoefficients,
    LayerMapping,
    map_network,
)
from .quantization import (
    QuantizedWeights,
    precision_sweep,
    quantize_array,
    quantize_int8,
    quantize_weights,
)

__all__ = [
    "CoreSpec",
    "DeploymentReport",
    "EnergyCoefficients",
    "LayerMapping",
    "QuantizedWeights",
    "map_network",
    "precision_sweep",
    "quantize_array",
    "quantize_int8",
    "quantize_weights",
]
