"""Mapping converted SNNs onto neuromorphic core grids.

Section VI-B of the paper estimates energy on TrueNorth/SpiNNaker from
FLOP counts alone.  This module models the deployment itself, in the
style of TrueNorth's architecture: a chip is a mesh of cores, each with
a bounded number of neurons and a bounded fan-in (axons) per neuron.
Mapping a layer means tiling its neurons across cores; a synapse whose
source and destination live on different cores sends its spikes over
the mesh.

The estimator reports, per layer and in total:

- cores required (neuron capacity and fan-in limits both bind);
- synaptic memory (crossbar entries actually used);
- expected inter-core spike traffic per inference, given measured
  per-layer spike rates (local traffic is free, as on TrueNorth);
- a deployment-aware energy estimate: compute (one accumulate per
  synaptic event) + mesh hops + per-step static power per core.

All numbers are normalised model units, comparable across mappings —
the same spirit as the paper's normalised (E_compute, E_static) pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..nn import Conv2d, Linear
from ..snn import SpikingNetwork


@dataclass(frozen=True)
class CoreSpec:
    """Capabilities of one neuromorphic core (TrueNorth-like defaults)."""

    neurons_per_core: int = 256
    axons_per_core: int = 256  # distinct pre-synaptic sources per core
    synapses_per_core: int = 256 * 256

    def __post_init__(self) -> None:
        if self.neurons_per_core <= 0 or self.axons_per_core <= 0:
            raise ValueError("core capacities must be positive")


@dataclass(frozen=True)
class EnergyCoefficients:
    """Normalised costs of the deployment model."""

    per_synaptic_event: float = 1.0  # one crossbar accumulate
    per_mesh_hop: float = 2.0  # route one spike one hop
    per_core_per_step: float = 0.5  # static/leakage per active core-step

    def __post_init__(self) -> None:
        if min(self.per_synaptic_event, self.per_mesh_hop, self.per_core_per_step) < 0:
            raise ValueError("energy coefficients must be non-negative")


@dataclass
class LayerMapping:
    """Deployment of one weight layer onto cores."""

    name: str
    neurons: int
    inputs: int
    fan_in: int
    synapses: int
    cores: int
    input_spikes_per_inference: float
    crossing_fraction: float

    @property
    def average_fan_out(self) -> float:
        """Synapses each presynaptic source drives, on average."""
        if self.inputs == 0:
            return 0.0
        return self.synapses / self.inputs

    @property
    def synaptic_events(self) -> float:
        """Accumulates per inference: each input spike triggers one
        accumulate per synapse it drives."""
        return self.input_spikes_per_inference * self.average_fan_out

    @property
    def mesh_messages(self) -> float:
        """Spike deliveries that cross core boundaries per inference.

        Each spike must reach every core slice holding its targets;
        with ``cores`` slices, all but (approximately) one delivery per
        spike traverses the mesh.
        """
        if self.cores <= 1:
            return 0.0
        return self.input_spikes_per_inference * self.crossing_fraction * self.cores


@dataclass
class DeploymentReport:
    """Whole-network deployment summary."""

    layers: List[LayerMapping]
    core_spec: CoreSpec
    timesteps: int

    @property
    def total_cores(self) -> int:
        return sum(layer.cores for layer in self.layers)

    @property
    def total_synapses(self) -> int:
        return sum(layer.synapses for layer in self.layers)

    def energy(self, coefficients: Optional[EnergyCoefficients] = None) -> float:
        c = coefficients or EnergyCoefficients()
        compute = sum(l.synaptic_events for l in self.layers)
        traffic = sum(l.mesh_messages for l in self.layers)
        static = self.total_cores * self.timesteps * c.per_core_per_step
        return (
            compute * c.per_synaptic_event
            + traffic * c.per_mesh_hop
            + static
        )


def _layer_geometry(inner, in_shape) -> Tuple[int, int, int, int, Tuple[int, ...]]:
    """(neurons, inputs, fan_in, synapses, out_shape) of a weight layer."""
    if isinstance(inner, Conv2d):
        channels, height, width = in_shape
        k, s, p = inner.kernel_size, inner.stride, inner.padding
        out_h = (height + 2 * p - k) // s + 1
        out_w = (width + 2 * p - k) // s + 1
        neurons = inner.out_channels * out_h * out_w
        inputs = channels * height * width
        fan_in = inner.in_channels * k * k
        synapses = neurons * fan_in
        return neurons, inputs, fan_in, synapses, (inner.out_channels, out_h, out_w)
    if isinstance(inner, Linear):
        neurons = inner.out_features
        inputs = inner.in_features
        return neurons, inputs, inputs, neurons * inputs, (neurons,)
    raise TypeError(f"not a weight layer: {type(inner).__name__}")


def _cores_for_layer(neurons: int, fan_in: int, spec: CoreSpec) -> int:
    """Cores needed to host a layer under neuron and fan-in limits.

    Output neurons are tiled across cores; if a neuron's fan-in exceeds
    the core's axon count, inputs are split across ``ceil(fan_in /
    axons)`` cores whose partial sums are chained (the standard
    TrueNorth decomposition), multiplying the core count.
    """
    fan_in_splits = max(1, math.ceil(fan_in / spec.axons_per_core))
    neuron_tiles = max(1, math.ceil(neurons / spec.neurons_per_core))
    return neuron_tiles * fan_in_splits


def map_network(
    snn: SpikingNetwork,
    images,
    core_spec: Optional[CoreSpec] = None,
) -> DeploymentReport:
    """Map every weight layer of ``snn`` onto neuromorphic cores.

    The mapping is driven by an exact event-driven measurement run
    (:class:`repro.snn.EventDrivenNetwork`): each layer's geometry
    comes from the shape it actually saw (so pooling / flatten stages
    are handled exactly), and its input spike traffic from the counted
    events — no rate approximations.

    Parameters
    ----------
    snn:
        The converted network.
    images:
        A representative (normalised) input batch; per-inference
        figures are averaged over it.
    core_spec:
        Core capabilities (TrueNorth-like defaults).
    """
    from ..snn import EventDrivenNetwork

    spec = core_spec or CoreSpec()
    runner = EventDrivenNetwork(snn)
    _logits, counts = runner.run(images)
    if not runner.weight_layers:
        raise ValueError("network has no weight layers to map")

    layers: List[LayerMapping] = []
    input_events = counts.input_events_per_image()
    for index, inner in enumerate(runner.weight_layers):
        in_shape = counts.input_shapes[index]
        neurons, inputs, fan_in, synapses, _out_shape = _layer_geometry(
            inner, in_shape
        )
        cores = _cores_for_layer(neurons, fan_in, spec)
        # Fraction of deliveries that cross cores: with one core there
        # is no mesh traffic; with many, approximate all-but-local.
        crossing = 0.0 if cores == 1 else (cores - 1) / cores
        layers.append(
            LayerMapping(
                name=counts.layer_names[index],
                neurons=neurons,
                inputs=inputs,
                fan_in=fan_in,
                synapses=synapses,
                cores=cores,
                input_spikes_per_inference=float(input_events[index]),
                crossing_fraction=crossing,
            )
        )
    return DeploymentReport(layers=layers, core_spec=spec, timesteps=snn.timesteps)
