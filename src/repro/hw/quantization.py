"""Weight quantization for neuromorphic deployment.

The paper's energy constants assume 32-bit arithmetic, but neuromorphic
crossbars store low-precision weights (TrueNorth: effectively a few
bits per synapse).  This module provides symmetric per-layer uniform
quantization of a converted SNN's weights and an accuracy-vs-precision
sweep, quantifying how many bits the ultra-low-latency models actually
need.

Quantization is post-training: each weight layer's values are snapped
to ``round(w / Δ) · Δ`` with ``Δ = max|w| / (2^{bits-1} - 1)``.  Per-
layer scaling means the shared exponent lives outside the crossbar, as
on real hardware.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from ..nn import Conv2d, Linear, Module
from ..snn import SpikingNetwork


def quantize_array(values: np.ndarray, bits: int) -> np.ndarray:
    """Symmetric uniform quantization to ``bits`` (>= 2) bits."""
    if bits < 2:
        raise ValueError("need at least 2 bits (sign + one magnitude)")
    levels = 2 ** (bits - 1) - 1
    max_abs = np.abs(values).max()
    if max_abs == 0:
        return values.copy()
    delta = max_abs / levels
    return np.clip(np.round(values / delta), -levels, levels) * delta


def quantize_weights(model: Module, bits: int) -> Dict[str, float]:
    """Quantize every Conv2d/Linear weight in place.

    Returns the per-layer quantization SNR (dB) for reporting —
    ``10 log10(signal power / error power)``.
    """
    report: Dict[str, float] = {}
    index = 0
    for module in model.modules():
        if not isinstance(module, (Conv2d, Linear)):
            continue
        original = module.weight.data.copy()
        quantized = quantize_array(original, bits)
        module.weight.data[...] = quantized
        error_power = float(((original - quantized) ** 2).mean())
        signal_power = float((original ** 2).mean())
        snr = (
            float("inf")
            if error_power == 0
            else 10.0 * np.log10(signal_power / error_power)
        )
        report[f"{type(module).__name__.lower()}{index}"] = snr
        index += 1
    if not report:
        raise ValueError("model has no weight layers to quantize")
    return report


def precision_sweep(
    make_snn,
    evaluate,
    bit_widths: Iterable[int] = (2, 3, 4, 6, 8),
) -> List[Tuple[int, float]]:
    """Accuracy at each weight precision.

    Parameters
    ----------
    make_snn:
        Zero-argument callable returning a *fresh* converted
        :class:`SpikingNetwork` (quantization is destructive).
    evaluate:
        Callable mapping a network to an accuracy in [0, 1].
    bit_widths:
        Precisions to test.

    Returns ``[(bits, accuracy), ...]`` sorted by bits ascending.
    """
    results: List[Tuple[int, float]] = []
    for bits in sorted(set(int(b) for b in bit_widths)):
        snn = make_snn()
        quantize_weights(snn, bits)
        results.append((bits, float(evaluate(snn))))
    return results
