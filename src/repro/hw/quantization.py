"""Weight quantization for neuromorphic deployment.

The paper's energy constants assume 32-bit arithmetic, but neuromorphic
crossbars store low-precision weights (TrueNorth: effectively a few
bits per synapse).  This module provides symmetric per-layer uniform
quantization of a converted SNN's weights and an accuracy-vs-precision
sweep, quantifying how many bits the ultra-low-latency models actually
need.

Quantization is post-training: each weight layer's values are snapped
to ``round(w / Δ) · Δ`` with ``Δ = max|w| / (2^{bits-1} - 1)``.  Per-
layer scaling means the shared exponent lives outside the crossbar, as
on real hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from ..nn import Conv2d, Linear, Module
from ..snn import SpikingNetwork


def quantize_array(values: np.ndarray, bits: int) -> np.ndarray:
    """Symmetric uniform quantization to ``bits`` (>= 2) bits.

    The dequantized output keeps the input's floating dtype (the
    float32 fast path must not silently upcast snapped weights to
    float64 — ``repro.tensor`` rejects mixed-precision graphs).
    """
    if bits < 2:
        raise ValueError("need at least 2 bits (sign + one magnitude)")
    levels = 2 ** (bits - 1) - 1
    max_abs = np.abs(values).max()
    if max_abs == 0:
        return values.copy()
    delta = max_abs / levels
    snapped = np.clip(np.round(values / delta), -levels, levels) * delta
    return snapped.astype(values.dtype, copy=False)


@dataclass
class QuantizedWeights:
    """Integer weight storage with its shared per-layer scale.

    ``q`` holds the signed integer codes (int8 for ``bits <= 8``);
    ``dequantize()`` reproduces exactly the grid :func:`quantize_array`
    snaps to (``q * scale`` in the source dtype), so an int-accumulating
    kernel and a float kernel over pre-quantized weights agree.
    """

    q: np.ndarray
    scale: float
    bits: int
    source_dtype: np.dtype

    def dequantize(self) -> np.ndarray:
        out = self.q.astype(self.source_dtype) * self.source_dtype.type(
            self.scale
        )
        return out.astype(self.source_dtype, copy=False)


def quantize_int8(values: np.ndarray, bits: int = 8) -> QuantizedWeights:
    """Pack weights as int8 codes plus a per-layer dequantization scale.

    Same symmetric grid as :func:`quantize_array` — ``Δ = max|w| /
    (2^{bits-1} - 1)`` with the shared exponent outside the crossbar —
    but keeping the integer codes, which is what the sparse gather
    kernels accumulate before applying ``Δ`` once.
    """
    if not 2 <= bits <= 8:
        raise ValueError("int8 packing supports 2..8 bits")
    levels = 2 ** (bits - 1) - 1
    max_abs = np.abs(values).max()
    if max_abs == 0:
        return QuantizedWeights(
            q=np.zeros(values.shape, dtype=np.int8),
            scale=1.0,
            bits=bits,
            source_dtype=values.dtype,
        )
    delta = max_abs / levels
    q = np.clip(np.round(values / delta), -levels, levels).astype(np.int8)
    return QuantizedWeights(
        q=q, scale=float(delta), bits=bits, source_dtype=values.dtype
    )


def quantize_weights(model: Module, bits: int) -> Dict[str, float]:
    """Quantize every Conv2d/Linear weight in place.

    Returns the per-layer quantization SNR (dB) for reporting —
    ``10 log10(signal power / error power)``.
    """
    report: Dict[str, float] = {}
    index = 0
    for module in model.modules():
        if not isinstance(module, (Conv2d, Linear)):
            continue
        original = module.weight.data.copy()
        quantized = quantize_array(original, bits)
        module.weight.data[...] = quantized
        error_power = float(((original - quantized) ** 2).mean())
        signal_power = float((original ** 2).mean())
        snr = (
            float("inf")
            if error_power == 0
            else 10.0 * np.log10(signal_power / error_power)
        )
        report[f"{type(module).__name__.lower()}{index}"] = snr
        index += 1
    if not report:
        raise ValueError("model has no weight layers to quantize")
    return report


def precision_sweep(
    make_snn,
    evaluate,
    bit_widths: Iterable[int] = (2, 3, 4, 6, 8),
) -> List[Tuple[int, float]]:
    """Accuracy at each weight precision.

    Parameters
    ----------
    make_snn:
        Zero-argument callable returning a *fresh* converted
        :class:`SpikingNetwork` (quantization is destructive).
    evaluate:
        Callable mapping a network to an accuracy in [0, 1].
    bit_widths:
        Precisions to test.

    Returns ``[(bits, accuracy), ...]`` sorted by bits ascending.
    """
    results: List[Tuple[int, float]] = []
    for bits in sorted(set(int(b) for b in bit_widths)):
        snn = make_snn()
        quantize_weights(snn, bits)
        results.append((bits, float(evaluate(snn))))
    return results
