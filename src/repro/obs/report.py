"""Render an observed run directory as a markdown report.

    python -m repro.obs.report results/run_2/            # to stdout
    python -m repro.obs.report results/run_2/ --out REPORT.md
    python -m repro.obs.report results/run_2/ --json     # machine-readable

Reads the run's ``trace.jsonl`` (spans), ``metrics.json`` (registry
snapshot), ``events.jsonl`` (log records), ``drift.jsonl`` (per-layer
conversion-drift series from :class:`repro.obs.drift.DriftMonitor`),
``faults.jsonl`` (fault-injection events), ``alerts.jsonl``
(training-health alerts/heartbeats), ``profile.jsonl`` /
``profile_summary.json`` (op-level profiler events and their
``repro.obs.profile/v1`` aggregate), ``slo.jsonl`` /
``slo_summary.json`` (streaming SLO windows and breaches from
:class:`repro.obs.slo.SloTracker`), ``canary.json`` (the canary
gate's promote/rollback verdict) and ``worker_telemetry.jsonl`` (the
canonical merged worker-telemetry stream from observed parallel maps,
see :mod:`repro.obs.remote`) — any subset may be missing, in
which case the report degrades to the available artefacts with an
explicit warning line per missing file — and renders the span tree
with durations (errored spans called out with their exception),
counter / gauge / histogram tables, the per-layer conversion-drift
table and the health-alert section.

``--json`` emits the loaded run as one JSON object
(:func:`run_to_json`) so the diff engine (:mod:`repro.obs.diff`) and
external tooling share this module's parser.
"""

from __future__ import annotations

import argparse
import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class RunData:
    """Everything read back from one run directory."""

    run_dir: str
    spans: List[dict] = field(default_factory=list)
    events: List[dict] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    drift: List[dict] = field(default_factory=list)
    faults: List[dict] = field(default_factory=list)
    alerts: List[dict] = field(default_factory=list)
    health: List[dict] = field(default_factory=list)
    profile: List[dict] = field(default_factory=list)
    profile_summary: dict = field(default_factory=dict)
    slo: List[dict] = field(default_factory=list)
    slo_breaches: List[dict] = field(default_factory=list)
    slo_summary: dict = field(default_factory=dict)
    canary: dict = field(default_factory=dict)
    worker_telemetry: List[dict] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)


def _read_jsonl(path: str):
    """All parseable records plus the count of malformed lines (a
    truncated tail from a killed run must not discard the good lines)."""
    records, skipped = [], 0
    with open(path, "r", encoding="utf-8") as fp:
        for line in fp:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if isinstance(record, dict):
                records.append(record)
            else:
                skipped += 1
    return records, skipped


def _load_jsonl(data: RunData, filename: str, what: str) -> List[dict]:
    """Read one JSONL artefact; a missing or unreadable file degrades to
    an empty list — and torn lines to a skip count — plus a warning line
    in the rendered report."""
    path = os.path.join(data.run_dir, filename)
    if not os.path.exists(path):
        data.warnings.append(f"`{filename}` missing — no {what} recorded")
        return []
    try:
        records, skipped = _read_jsonl(path)
    except OSError as exc:
        data.warnings.append(f"`{filename}` unreadable ({exc}) — {what} skipped")
        return []
    if skipped:
        data.warnings.append(
            f"`{filename}`: skipped {skipped} malformed line(s) "
            "(truncated tail?)"
        )
    return records


def _load_json_object(data: RunData, filename: str, what: str) -> dict:
    """Read one optional JSON-object artefact; absence is silent (these
    files only exist for streaming/canary runs), unreadability warns."""
    path = os.path.join(data.run_dir, filename)
    if not os.path.exists(path):
        return {}
    try:
        with open(path, "r", encoding="utf-8") as fp:
            payload = json.load(fp)
    except (json.JSONDecodeError, OSError) as exc:
        data.warnings.append(f"`{filename}` unreadable ({exc}) — {what} skipped")
        return {}
    if not isinstance(payload, dict):
        data.warnings.append(f"`{filename}` is not a JSON object — {what} skipped")
        return {}
    return payload


def load_run(run_dir: str) -> RunData:
    """Load spans, events, drift series and the metrics snapshot from
    ``run_dir``.

    Only a missing run *directory* raises; each missing or unreadable
    artefact file inside it becomes an entry in ``RunData.warnings`` and
    the report renders from whatever is present.
    """
    if not os.path.isdir(run_dir):
        raise FileNotFoundError(f"run directory not found: {run_dir}")
    data = RunData(run_dir=run_dir)
    data.spans = _load_jsonl(data, "trace.jsonl", "spans")
    data.events = _load_jsonl(data, "events.jsonl", "events")
    data.drift = [
        r for r in _load_jsonl(data, "drift.jsonl", "conversion drift")
        if r.get("kind") == "drift"
    ]
    # drift.jsonl only exists for instrumented conversions; its absence
    # is normal and should not alarm.
    if data.warnings and data.warnings[-1].startswith("`drift.jsonl` missing"):
        data.warnings.pop()
    data.faults = [
        r for r in _load_jsonl(data, "faults.jsonl", "fault events")
        if r.get("kind") == "fault"
    ]
    if data.warnings and data.warnings[-1].startswith("`faults.jsonl` missing"):
        data.warnings.pop()
    data.profile = [
        r for r in _load_jsonl(data, "profile.jsonl", "op profile")
        if r.get("kind") == "op"
    ]
    # profile.jsonl only exists for profiled runs; absence is normal.
    if data.warnings and data.warnings[-1].startswith("`profile.jsonl` missing"):
        data.warnings.pop()
    summary_path = os.path.join(run_dir, "profile_summary.json")
    if os.path.exists(summary_path):
        try:
            with open(summary_path, "r", encoding="utf-8") as fp:
                summary = json.load(fp)
            if isinstance(summary, dict):
                data.profile_summary = summary
        except (json.JSONDecodeError, OSError) as exc:
            data.warnings.append(
                f"`profile_summary.json` unreadable ({exc}) — "
                "profile summary skipped"
            )
    slo_records = _load_jsonl(data, "slo.jsonl", "streaming SLO telemetry")
    data.slo = [r for r in slo_records if r.get("kind") == "window"]
    data.slo_breaches = [r for r in slo_records if r.get("kind") == "breach"]
    # slo.jsonl only exists for streaming runs; absence is normal.
    if data.warnings and data.warnings[-1].startswith("`slo.jsonl` missing"):
        data.warnings.pop()
    data.slo_summary = _load_json_object(data, "slo_summary.json", "SLO summary")
    data.canary = _load_json_object(data, "canary.json", "canary verdict")
    data.worker_telemetry = _load_jsonl(
        data, "worker_telemetry.jsonl", "worker telemetry"
    )
    # worker_telemetry.jsonl only exists for observed parallel maps;
    # absence is normal.
    if data.warnings and data.warnings[-1].startswith(
        "`worker_telemetry.jsonl` missing"
    ):
        data.warnings.pop()
    health_records = _load_jsonl(data, "alerts.jsonl", "health telemetry")
    data.alerts = [r for r in health_records if r.get("kind") == "alert"]
    data.health = [r for r in health_records if r.get("kind") == "health"]
    if data.warnings and data.warnings[-1].startswith("`alerts.jsonl` missing"):
        data.warnings.pop()
    metrics_path = os.path.join(run_dir, "metrics.json")
    if os.path.exists(metrics_path):
        try:
            with open(metrics_path, "r", encoding="utf-8") as fp:
                data.metrics = json.load(fp)
        except (json.JSONDecodeError, OSError) as exc:
            data.warnings.append(
                f"`metrics.json` unreadable ({exc}) — metrics skipped"
            )
    else:
        data.warnings.append("`metrics.json` missing — no metrics recorded")
    return data


def run_to_json(data: RunData) -> dict:
    """The loaded run as one JSON-ready object.

    This is the machine-readable twin of :func:`render_report` — the
    diff engine and external tooling consume it so there is exactly one
    parser for run directories (:func:`load_run`).
    """
    return {
        "schema": "repro.obs.run/v1",
        "run_dir": data.run_dir,
        "warnings": list(data.warnings),
        "spans": list(data.spans),
        "events": list(data.events),
        "metrics": dict(data.metrics),
        "drift": list(data.drift),
        "faults": list(data.faults),
        "alerts": list(data.alerts),
        "health": list(data.health),
        "profile": list(data.profile),
        "profile_summary": dict(data.profile_summary),
        "slo": list(data.slo),
        "slo_breaches": list(data.slo_breaches),
        "slo_summary": dict(data.slo_summary),
        "canary": dict(data.canary),
        "worker_telemetry": list(data.worker_telemetry),
    }


def _span_tree_rows(spans: List[dict]) -> List[dict]:
    """Spans in depth-first tree order (they are stored close-ordered)."""
    by_parent: Dict[Optional[int], List[dict]] = {}
    for span in spans:
        by_parent.setdefault(span.get("parent_id"), []).append(span)
    for children in by_parent.values():
        children.sort(key=lambda s: s.get("started_at", 0.0))

    ordered: List[dict] = []

    def visit(parent_id: Optional[int]) -> None:
        for span in by_parent.get(parent_id, []):
            ordered.append(span)
            span_id = span.get("span_id")
            # A degraded record without a span_id would alias the root
            # sentinel and recurse forever — treat it as a leaf.
            if span_id is not None:
                visit(span_id)

    visit(None)
    # Orphans (parent span never closed, e.g. crashed run) go last.
    seen = {id(s) for s in ordered}
    ordered.extend(s for s in spans if id(s) not in seen)
    return ordered


def _format_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


def _fields_cell(span: dict) -> str:
    fields = span.get("fields") or {}
    parts = []
    for key, value in fields.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    return ", ".join(parts)


def _fmt(value, spec: str = ".4g") -> str:
    return format(value, spec) if isinstance(value, (int, float)) else "-"


def _render_drift(data: RunData, lines: List[str]) -> None:
    """The "Conversion drift" section: per-layer table of the latest
    snapshot plus the worst-layer callout and the phase trajectory."""
    lines.append(f"## Conversion drift ({len(data.drift)} records)")
    lines.append("")
    latest = max(r.get("snapshot", 0) for r in data.drift)
    snapshots = sorted(
        {(r.get("snapshot", 0), r.get("phase", "?")) for r in data.drift}
    )
    lines.append(
        "snapshots: "
        + ", ".join(f"{index}:{phase}" for index, phase in snapshots)
    )
    lines.append("")
    current = sorted(
        (r for r in data.drift if r.get("snapshot", 0) == latest),
        key=lambda r: r.get("layer", 0),
    )
    phase = current[0].get("phase", "?") if current else "?"
    lines.append(f"### Per-layer gaps — snapshot {latest} (`{phase}`)")
    lines.append("")
    lines.append(
        "| layer | mu | alpha | beta | K(mu) | h(T,mu) "
        "| predicted gap | measured gap | relative gap |"
    )
    lines.append("| ---: | ---: | ---: | ---: | ---: | ---: | ---: | ---: | ---: |")
    for record in current:
        lines.append(
            f"| {record.get('layer', '?')} | {_fmt(record.get('mu'))} "
            f"| {_fmt(record.get('alpha'))} | {_fmt(record.get('beta'))} "
            f"| {_fmt(record.get('k_mu'))} | {_fmt(record.get('h_t_mu'))} "
            f"| {_fmt(record.get('predicted_gap'))} "
            f"| {_fmt(record.get('measured_gap'))} "
            f"| {_fmt(record.get('relative_gap'))} |"
        )
    lines.append("")
    worst = max(
        current,
        key=lambda r: abs(r.get("measured_gap") or 0.0),
        default=None,
    )
    if worst is not None:
        lines.append(
            f"**Worst layer: {worst.get('layer', '?')}** — measured gap "
            f"{_fmt(worst.get('measured_gap'))} "
            f"(predicted {_fmt(worst.get('predicted_gap'))}, "
            f"relative {_fmt(worst.get('relative_gap'))})"
        )
        lines.append("")


def _dispatch_rows(gauges: Dict[str, dict]) -> List[dict]:
    """Collect ``dispatch.*{layer=N}`` gauges into per-layer rows."""
    rows: Dict[int, dict] = {}
    for name, payload in gauges.items():
        if not name.startswith("dispatch.") or "{layer=" not in name:
            continue
        field, label = name.split("{layer=", 1)
        try:
            layer = int(label.rstrip("}"))
        except ValueError:
            continue
        rows.setdefault(layer, {})[field[len("dispatch."):]] = payload.get("value")
    return [dict(row, layer=layer) for layer, row in sorted(rows.items())]


def _render_dispatch(data: RunData, lines: List[str]) -> None:
    """The "Sparse dispatch" section: per-layer density vs crossover
    threshold, the chosen path mix, and exact accumulate counts."""
    rows = _dispatch_rows(data.metrics.get("gauges", {}))
    if not rows:
        return
    sparse_total = sum(r.get("sparse_runs") or 0 for r in rows)
    dense_total = sum(r.get("dense_runs") or 0 for r in rows)
    lines.append(
        f"## Sparse dispatch ({sparse_total:g} sparse / "
        f"{dense_total:g} dense layer-forwards)"
    )
    lines.append("")
    lines.append(
        "| layer | density | threshold | path | sparse | dense | accumulates |"
    )
    lines.append("| ---: | ---: | ---: | --- | ---: | ---: | ---: |")
    for row in rows:
        frac = row.get("sparse_fraction") or 0.0
        path = "sparse" if frac >= 1.0 else "dense" if frac <= 0.0 else "mixed"
        lines.append(
            f"| {row['layer']} | {_fmt(row.get('density'))} "
            f"| {_fmt(row.get('threshold'))} | {path} "
            f"| {row.get('sparse_runs') or 0:g} "
            f"| {row.get('dense_runs') or 0:g} "
            f"| {row.get('accumulates') or 0:g} |"
        )
    lines.append("")


def _worker_rows(counters: Dict[str, float]) -> List[dict]:
    """Collect ``exec.worker_*{worker=N}`` counters into per-worker rows."""
    rows: Dict[int, dict] = {}
    for field_name in ("worker_tasks", "worker_failures"):
        prefix = f"exec.{field_name}{{worker="
        for name, value in counters.items():
            if not name.startswith(prefix):
                continue
            try:
                worker = int(name[len(prefix):].rstrip("}"))
            except ValueError:
                continue
            rows.setdefault(worker, {})[field_name] = value
    return [dict(row, worker=worker) for worker, row in sorted(rows.items())]


def _render_exec(data: RunData, lines: List[str]) -> None:
    """The "Parallel execution" section: dispatch/retry/failure counters,
    scheduling latency histograms, per-worker lanes and the merged
    worker-telemetry stream — from the ``exec.*`` metric family."""
    counters = data.metrics.get("counters", {})
    histograms = data.metrics.get("histograms", {})
    exec_counters = {k: v for k, v in counters.items() if k.startswith("exec.")}
    if not exec_counters and not data.worker_telemetry:
        return

    def count(name: str) -> float:
        return float(exec_counters.get(name, 0) or 0)

    dispatched = count("exec.tasks_dispatched")
    completed = count("exec.tasks_completed")
    lines.append(
        f"## Parallel execution ({dispatched:g} dispatched, "
        f"{completed:g} completed)"
    )
    lines.append("")
    summary = [
        ("maps (serial/parallel)",
         f"{count('exec.serial_maps'):g}/{count('exec.parallel_maps'):g}"),
        ("retries", f"{count('exec.tasks_retried'):g}"),
        ("task errors", f"{count('exec.task_errors'):g}"),
        ("quarantined", f"{count('exec.tasks_quarantined'):g}"),
        ("worker crashes", f"{count('exec.worker_crashes'):g}"),
        ("worker restarts", f"{count('exec.worker_restarts'):g}"),
        ("backoff total", _format_duration(count("exec.backoff_total_s"))),
        ("serial downgrades", f"{count('exec.downgrades'):g}"),
    ]
    lines.append("| | |")
    lines.append("| --- | ---: |")
    for label, cell in summary:
        lines.append(f"| {label} | {cell} |")
    lines.append("")

    latency_rows = []
    for name in ("exec.queue_wait_s", "exec.task_duration_s",
                 "exec.heartbeat_latency_s"):
        payload = histograms.get(name)
        if payload:
            latency_rows.append((name, payload))
    if latency_rows:
        lines.append("| latency | count | mean | p50 | p95 | max |")
        lines.append("| --- | ---: | ---: | ---: | ---: | ---: |")
        for name, payload in latency_rows:
            lines.append(
                f"| {name[len('exec.'):]} | {payload.get('count', 0)} "
                f"| {_format_duration(payload.get('mean'))} "
                f"| {_format_duration(payload.get('p50'))} "
                f"| {_format_duration(payload.get('p95'))} "
                f"| {_format_duration(payload.get('max'))} |"
            )
        lines.append("")

    worker_rows = _worker_rows(exec_counters)
    if worker_rows:
        lines.append("### Worker lanes")
        lines.append("")
        lines.append("| worker | tasks | failures |")
        lines.append("| ---: | ---: | ---: |")
        for row in worker_rows:
            lines.append(
                f"| {row['worker']} | {row.get('worker_tasks', 0) or 0:g} "
                f"| {row.get('worker_failures', 0) or 0:g} |"
            )
        lines.append("")

    if data.worker_telemetry:
        by_kind: Dict[str, int] = {}
        tasks = set()
        for record in data.worker_telemetry:
            by_kind[record.get("kind", "?")] = (
                by_kind.get(record.get("kind", "?"), 0) + 1
            )
            tasks.add((record.get("map"), record.get("task")))
        recovered = count("exec.telemetry_tasks_recovered")
        tail = f", {recovered:g} recovered from shards" if recovered else ""
        lines.append(
            f"### Worker telemetry ({len(data.worker_telemetry)} records, "
            f"{len(tasks)} tasks{tail})"
        )
        lines.append("")
        lines.append(
            ", ".join(f"{kind}: {n}" for kind, n in sorted(by_kind.items()))
        )
        lines.append("")


def _render_profile(data: RunData, lines: List[str]) -> None:
    """The "Hot ops" section: top-k op-kind table plus per-layer
    attribution, from the persisted summary or re-aggregated events."""
    from .profile import UNATTRIBUTED, aggregate, format_bytes

    summary = data.profile_summary or aggregate(data.profile)
    total_s = float(summary.get("total_s") or 0.0)
    lines.append(
        f"## Hot ops ({summary.get('ops', 0)} ops, "
        f"{_format_duration(total_s)} attributed, "
        f"{format_bytes(summary.get('bytes_total') or 0)} allocated)"
    )
    lines.append("")
    if summary.get("dropped"):
        lines.append(
            f"> ⚠ {summary['dropped']} op event(s) dropped past the "
            "profiler's record cap"
        )
        lines.append("")
    top = summary.get("top") or []
    if top:
        lines.append("| op | count | total | median | bytes | % of run |")
        lines.append("| --- | ---: | ---: | ---: | ---: | ---: |")
        for entry in top:
            lines.append(
                f"| `{entry.get('op', '?')}` | {entry.get('count', 0)} "
                f"| {_format_duration(entry.get('total_s'))} "
                f"| {_format_duration(entry.get('median_s'))} "
                f"| {format_bytes(entry.get('bytes') or 0)} "
                f"| {float(entry.get('pct') or 0.0):.1f}% |"
            )
        lines.append("")
    by_layer = summary.get("by_layer") or {}
    attributed = {k: v for k, v in by_layer.items() if k != UNATTRIBUTED}
    if attributed:
        ranked = sorted(
            by_layer.items(),
            key=lambda item: (-(item[1].get("total_s") or 0.0), item[0]),
        )
        lines.append("### Per-layer attribution (top 10)")
        lines.append("")
        lines.append("| layer | ops | total | bytes | % of run |")
        lines.append("| --- | ---: | ---: | ---: | ---: |")
        for name, entry in ranked[:10]:
            lines.append(
                f"| `{name}` | {entry.get('count', 0)} "
                f"| {_format_duration(entry.get('total_s'))} "
                f"| {format_bytes(entry.get('bytes') or 0)} "
                f"| {float(entry.get('pct') or 0.0):.1f}% |"
            )
        lines.append("")


def _render_canary(data: RunData, lines: List[str]) -> None:
    """The "Canary verdict" section — rendered first because the
    promote/rollback decision is what a release reader opens the report
    for."""
    canary = data.canary
    verdict = canary.get("verdict", "?")
    icon = {"promote": "✅", "rollback": "❌"}.get(verdict, "❓")
    lines.append(f"## Canary verdict: {icon} {verdict.upper()}")
    lines.append("")
    candidate = canary.get("candidate") or {}
    baseline = canary.get("baseline") or {}
    lines.append(f"- candidate: `{candidate.get('source', '?')}` "
                 f"(replay `{candidate.get('replay_dir', '?')}`)")
    lines.append(f"- baseline: `{baseline.get('source', '?')}` "
                 f"(replay `{baseline.get('replay_dir', '?')}`)")
    stream = canary.get("stream") or {}
    if stream:
        lines.append(
            f"- stream: seed {stream.get('seed', '?')}, "
            f"{stream.get('num_windows', '?')} windows × "
            f"{stream.get('window_size', '?')} frames"
        )
    regressions = canary.get("regressions") or []
    if regressions:
        lines.append(f"- {len(regressions)} gated regression(s):")
        for entry in regressions[:10]:
            lines.append(
                f"  - `{entry.get('name', '?')}`: "
                f"{_fmt(entry.get('baseline'))} → {_fmt(entry.get('candidate'))}"
            )
    else:
        lines.append("- no gated regressions against the baseline replay")
    lines.append("")


def _render_slo(data: RunData, lines: List[str]) -> None:
    """The "Streaming SLO" section: objective stats vs. targets, breach
    counts and the tail of the breach log."""
    summary = data.slo_summary or {}
    windows = summary.get("windows", len(data.slo))
    frames = summary.get("frames", "?")
    lines.append(f"## Streaming SLO ({windows} windows, {frames} frames)")
    lines.append("")
    targets = summary.get("targets") or {}
    stats = {
        "latency_s": summary.get("latency_s"),
        "staleness_s": summary.get("staleness_s"),
        "accuracy": summary.get("accuracy"),
        "spikes_per_frame": summary.get("spikes_per_frame"),
    }
    target_cells = {
        "latency_s": targets.get("latency_s"),
        "staleness_s": targets.get("staleness_s"),
        "accuracy": targets.get("accuracy_floor"),
    }
    if any(stats.values()):
        lines.append("| objective | target | mean | p50 | p95 | p99 | max |")
        lines.append("| --- | ---: | ---: | ---: | ---: | ---: | ---: |")
        for name, payload in stats.items():
            if not payload:
                continue
            lines.append(
                f"| {name} | {_fmt(target_cells.get(name))} "
                f"| {_fmt(payload.get('mean'))} | {_fmt(payload.get('p50'))} "
                f"| {_fmt(payload.get('p95'))} | {_fmt(payload.get('p99'))} "
                f"| {_fmt(payload.get('max'))} |"
            )
        lines.append("")
    sliding = summary.get("sliding_accuracy")
    if isinstance(sliding, (int, float)):
        lines.append(f"final sliding accuracy: {sliding:.4g}")
        lines.append("")
    breaches = summary.get("breaches") or {}
    total = summary.get("breaches_total", sum(breaches.values()))
    if total:
        lines.append(
            f"**{total} SLO breach window(s)** — "
            + ", ".join(f"{k}: {v}" for k, v in sorted(breaches.items()))
        )
        lines.append("")
        if data.slo_breaches:
            lines.append("### Breach log (last 10)")
            lines.append("")
            for record in data.slo_breaches[-10:]:
                lines.append(
                    f"- window {record.get('window', '?')}: "
                    f"`{record.get('objective', '?')}` "
                    f"{_fmt(record.get('value'))} vs target "
                    f"{_fmt(record.get('target'))}"
                )
            lines.append("")
    else:
        lines.append("no SLO breaches recorded")
        lines.append("")


def render_report(data: RunData) -> str:
    """The full markdown report of one run."""
    lines = [f"# Run report — `{data.run_dir}`", ""]

    for warning in data.warnings:
        lines.append(f"> ⚠ {warning}")
    if data.warnings:
        lines.append("")

    if data.canary:
        _render_canary(data, lines)

    lines.append(f"## Spans ({len(data.spans)})")
    lines.append("")
    if data.spans:
        lines.append("| span | duration | status | fields |")
        lines.append("| --- | ---: | --- | --- |")
        for span in _span_tree_rows(data.spans):
            indent = "&nbsp;&nbsp;" * int(span.get("depth", 0))
            name = f"{indent}{span.get('name', '?')}"
            lines.append(
                f"| {name} | {_format_duration(span.get('duration_s'))} "
                f"| {span.get('status', '?')} | {_fields_cell(span)} |"
            )
    else:
        lines.append("_no spans recorded_")
    lines.append("")

    errored = [s for s in data.spans if s.get("status") == "error"]
    if errored:
        lines.append(f"### Errored spans ({len(errored)})")
        lines.append("")
        for span in errored:
            error = span.get("error") or {}
            lines.append(
                f"- `{span.get('name', '?')}`: "
                f"**{error.get('type', 'unknown error')}** "
                f"{error.get('message', '')}".rstrip()
            )
        lines.append("")

    counters = data.metrics.get("counters", {})
    gauges = data.metrics.get("gauges", {})
    histograms = data.metrics.get("histograms", {})

    lines.append("## Metrics")
    lines.append("")
    if counters:
        lines.append("### Counters")
        lines.append("")
        lines.append("| counter | value |")
        lines.append("| --- | ---: |")
        for name, value in counters.items():
            lines.append(f"| {name} | {value:g} |")
        lines.append("")
    if gauges:
        lines.append("### Gauges")
        lines.append("")
        lines.append("| gauge | last | writes |")
        lines.append("| --- | ---: | ---: |")
        for name, payload in gauges.items():
            value = payload.get("value")
            value_text = f"{value:.6g}" if isinstance(value, (int, float)) else "-"
            lines.append(
                f"| {name} | {value_text} | {len(payload.get('trajectory', []))} |"
            )
        lines.append("")
    if histograms:
        lines.append("### Histograms")
        lines.append("")
        lines.append("| histogram | count | mean | std | min | p50 | p95 | max |")
        lines.append("| --- | ---: | ---: | ---: | ---: | ---: | ---: | ---: |")
        for name, payload in histograms.items():
            def cell(key):
                value = payload.get(key)
                return f"{value:.4g}" if isinstance(value, (int, float)) else "-"

            lines.append(
                f"| {name} | {payload.get('count', 0)} | {cell('mean')} "
                f"| {cell('std')} | {cell('min')} | {cell('p50')} "
                f"| {cell('p95')} | {cell('max')} |"
            )
        lines.append("")
    if not (counters or gauges or histograms):
        lines.append("_no metrics recorded_")
        lines.append("")

    if data.drift:
        _render_drift(data, lines)

    _render_dispatch(data, lines)

    _render_exec(data, lines)

    if data.profile or data.profile_summary:
        _render_profile(data, lines)

    if data.slo or data.slo_summary:
        _render_slo(data, lines)

    if data.alerts:
        lines.append(f"## Health alerts ({len(data.alerts)})")
        lines.append("")
        by_rule: Dict[str, int] = {}
        for alert in data.alerts:
            rule = alert.get("rule", "?")
            by_rule[rule] = by_rule.get(rule, 0) + 1
        lines.append(
            ", ".join(f"{rule}: {count}" for rule, count in sorted(by_rule.items()))
        )
        lines.append("")
        for alert in data.alerts[-10:]:
            severity = alert.get("severity", "warning")
            lines.append(
                f"- [{severity}] `{alert.get('rule', '?')}` — "
                f"{alert.get('message', '')}"
            )
        lines.append("")

    if data.faults:
        lines.append(f"## Fault events ({len(data.faults)})")
        lines.append("")
        by_fault: Dict[str, int] = {}
        for fault in data.faults:
            name = fault.get("fault", "?")
            by_fault[name] = by_fault.get(name, 0) + 1
        lines.append(
            ", ".join(f"{name}: {count}" for name, count in sorted(by_fault.items()))
        )
        lines.append("")

    log_events = [e for e in data.events if e.get("kind") == "log"]
    lines.append(f"## Events ({len(data.events)} total, {len(log_events)} log)")
    lines.append("")
    by_level: Dict[str, int] = {}
    for event in log_events:
        level = event.get("level", "?")
        by_level[level] = by_level.get(level, 0) + 1
    if by_level:
        lines.append(
            ", ".join(f"{level}: {count}" for level, count in sorted(by_level.items()))
        )
        lines.append("")
    errors = [e for e in log_events if e.get("level") == "error"]
    if errors:
        lines.append("### Errors")
        lines.append("")
        for event in errors[-10:]:
            lines.append(f"- `{event.get('logger', '?')}`: {event.get('message', '')}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarise an observed run directory as markdown.",
    )
    parser.add_argument("run_dir", help="directory written by repro.obs.configure")
    parser.add_argument("--out", default=None, help="write to this file (default: stdout)")
    parser.add_argument("--json", action="store_true",
                        help="emit the loaded run as machine-readable JSON "
                             "instead of markdown")
    args = parser.parse_args(argv)

    try:
        data = load_run(args.run_dir)
    except FileNotFoundError as exc:
        parser.error(str(exc))
    if args.json:
        report = json.dumps(run_to_json(data), indent=2, sort_keys=True) + "\n"
    else:
        report = render_report(data)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fp:
            fp.write(report)
        print(f"wrote {args.out}")
    else:
        print(report, end="")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
