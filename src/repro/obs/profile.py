"""Op-level profiler with per-layer performance attribution.

Why
---
The paper's latency/energy story (Figs. 3-4) is about *where* time and
memory go inside the network, but span timing only resolves whole
phases.  This module hooks :meth:`Tensor.from_op` — the one creation
point every differentiable op funnels through, the same interception
point :class:`repro.profiling.GraphMemoryMeter` uses — and records one
event per primitive op: wall time, output bytes, shape, dtype, and the
enclosing layer / trace span.  It works identically in the fused and
stepwise temporal engines because both ultimately materialise their
tensors through ``from_op``.

Timing model
------------
``from_op`` fires *after* an op's numpy compute, so each event's
``dt_s`` is the wall-clock delta since the previous event (or since the
profiler was entered).  Deltas therefore tile the profiled interval:
their sum equals the time from profiler entry to the last op created,
and nothing between two ops is ever lost — compute that produces no
intermediate tensor is attributed to the next op downstream of it.

Layer attribution
-----------------
The profiler installs a probe into :mod:`repro.snn.network` whose
temporal loops wrap each layer application in a labelled region
(``L3:Conv2d`` ...); nested regions join with ``/``.  Arbitrary code can
open its own regions via :func:`region` (a no-op when no profiler is
active) — the bench runner labels each case ``bench:<name>`` and the
trainers label epoch phases.

Artefacts
---------
Inside an observed run (``observe(run_dir, profile=True)`` or the
``--profile`` CLI flags) the profiler streams ``profile.jsonl`` (one
event per line) and writes a ``repro.obs.profile/v1`` aggregate to
``profile_summary.json`` at shutdown; both register in the run
registry's artefact inventory.  ``python -m repro.obs profile RUN_DIR``
renders the hot-path tables and ``--chrome-trace out.json`` exports a
``chrome://tracing`` / Perfetto loadable trace.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import IO, List, Optional

from ..tensor.tensor import add_op_observer, remove_op_observer
from . import trace

PROFILE_SCHEMA = "repro.obs.profile/v1"
PROFILE_SCHEMA_VERSION = 1
PROFILE_FILENAME = "profile.jsonl"
SUMMARY_FILENAME = "profile_summary.json"
#: Aggregation bucket for ops created outside any labelled region.
UNATTRIBUTED = "(unattributed)"

_ACTIVE: Optional["OpProfiler"] = None


def active() -> Optional["OpProfiler"]:
    """The currently entered profiler, or ``None``."""
    return _ACTIVE


class _NullRegion:
    """Shared no-op returned by :func:`region` while no profiler runs."""

    __slots__ = ()

    def __enter__(self) -> "_NullRegion":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False


NULL_REGION = _NullRegion()


def region(label: str):
    """A labelled attribution region on the active profiler (no-op when
    profiling is off — one global read, no allocation)."""
    profiler = _ACTIVE
    if profiler is None:
        return NULL_REGION
    return profiler.region(label)


class _Region:
    """Pushes ``label`` onto the profiler's region stack for a block."""

    __slots__ = ("_profiler", "_label")

    def __init__(self, profiler: "OpProfiler", label: str) -> None:
        self._profiler = profiler
        self._label = label

    def __enter__(self) -> "_Region":
        self._profiler._regions.append(self._label)
        return self

    def __exit__(self, *exc_info) -> bool:
        stack = self._profiler._regions
        if stack and stack[-1] == self._label:
            stack.pop()
        return False


class OpProfiler:
    """Records one timed event per primitive op while entered.

    Parameters
    ----------
    path:
        Optional JSONL file the events stream to (buffered; flushed on
        exit).  Events are always also kept in ``self.records`` up to
        ``max_records`` — overflow is counted in ``self.dropped`` and
        reported in the aggregate, never silently truncated.
    """

    def __init__(self, path: Optional[str] = None, max_records: int = 1_000_000) -> None:
        self.path = path
        self.max_records = max_records
        self.records: List[dict] = []
        self.dropped = 0
        self._regions: List[str] = []
        self._fp: Optional[IO[str]] = None
        self._seq = 0
        self._t0 = 0.0
        self._last = 0.0

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "OpProfiler":
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("an OpProfiler is already active")
        if self.path is not None:
            os.makedirs(os.path.dirname(self.path) or ".", exist_ok=True)
            self._fp = open(self.path, "a", encoding="utf-8")
        add_op_observer(self._on_op)
        from ..snn import network as _snn_network

        _snn_network.set_layer_probe(self.region)
        _ACTIVE = self
        self._t0 = self._last = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        global _ACTIVE
        from ..snn import network as _snn_network

        _snn_network.set_layer_probe(None)
        remove_op_observer(self._on_op)
        _ACTIVE = None
        self._regions.clear()
        if self._fp is not None:
            self._fp.flush()
            self._fp.close()
            self._fp = None
        return False

    def region(self, label: str) -> _Region:
        """A context manager labelling ops created inside it."""
        return _Region(self, label)

    # -- recording -----------------------------------------------------
    def _on_op(self, out, name: str) -> None:
        now = time.perf_counter()
        record = {
            "kind": "op",
            "seq": self._seq,
            "op": name,
            "t_s": now - self._t0,
            "dt_s": now - self._last,
            "bytes": int(out.data.nbytes),
            "shape": list(out.data.shape),
            "dtype": str(out.data.dtype),
            "graph": out._node is not None,
        }
        self._seq += 1
        self._last = now
        if self._regions:
            record["layer"] = "/".join(self._regions)
        span = trace.current_span()
        if span is not None:
            record["span"] = span.name
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(record)
        if self._fp is not None:
            self._fp.write(json.dumps(record) + "\n")

    # -- results -------------------------------------------------------
    def aggregate(self, top_k: int = 10) -> dict:
        """The ``repro.obs.profile/v1`` summary of this profiler's events."""
        return aggregate(self.records, top_k=top_k, dropped=self.dropped)


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
def _table(groups: dict, total_s: float) -> dict:
    """Per-group stats table; keys sorted so the output is deterministic
    for deterministic workloads."""
    table = {}
    for name in sorted(groups):
        samples = groups[name]
        durations = sorted(dt for dt, _ in samples)
        count = len(durations)
        mid = count // 2
        median = (
            durations[mid]
            if count % 2
            else 0.5 * (durations[mid - 1] + durations[mid])
        )
        total = sum(durations)
        table[name] = {
            "count": count,
            "total_s": total,
            "median_s": median,
            "bytes": sum(b for _, b in samples),
            "pct": 100.0 * total / total_s if total_s > 0 else 0.0,
        }
    return table


def aggregate(records: List[dict], top_k: int = 10, dropped: int = 0) -> dict:
    """Fold op events into per-op-kind and per-layer hot-path tables."""
    by_op: dict = {}
    by_layer: dict = {}
    total_s = 0.0
    bytes_total = 0
    count = 0
    for record in records:
        if record.get("kind") != "op":
            continue
        dt = record.get("dt_s")
        if not isinstance(dt, (int, float)):
            continue
        nbytes = record.get("bytes")
        nbytes = int(nbytes) if isinstance(nbytes, (int, float)) else 0
        sample = (float(dt), nbytes)
        by_op.setdefault(str(record.get("op", "?")), []).append(sample)
        by_layer.setdefault(
            str(record.get("layer") or UNATTRIBUTED), []
        ).append(sample)
        total_s += float(dt)
        bytes_total += nbytes
        count += 1
    op_table = _table(by_op, total_s)
    ranked = sorted(
        op_table.items(), key=lambda item: (-item[1]["total_s"], item[0])
    )
    summary = {
        "schema": PROFILE_SCHEMA,
        "schema_version": PROFILE_SCHEMA_VERSION,
        "ops": count,
        "total_s": total_s,
        "bytes_total": bytes_total,
        "dropped": dropped,
        "by_op": op_table,
        "by_layer": _table(by_layer, total_s),
        "top": [{"op": name, **entry} for name, entry in ranked[:top_k]],
    }
    return summary


def chrome_trace(records: List[dict]) -> dict:
    """The events as a ``chrome://tracing`` / Perfetto trace object.

    Each op becomes a complete (``"ph": "X"``) event; timestamps are
    microseconds since the profiler was entered, and the layer / span /
    shape metadata rides along in ``args``.  Ops recorded by the parent
    process occupy pid 1; ops merged back from executor workers (they
    carry a ``worker`` field) each get their own process lane, so a
    parallel sweep renders as one aligned multi-process timeline.
    """

    def _lane(record: dict) -> int:
        worker = record.get("worker")
        return 2 + int(worker) if isinstance(worker, int) and worker >= 0 else 1

    lanes = {1: "repro op profile"}
    for record in records:
        if record.get("kind") != "op":
            continue
        pid = _lane(record)
        if pid != 1:
            lanes[pid] = f"repro worker {record['worker']}"
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 1,
            "args": {"name": name},
        }
        for pid, name in sorted(lanes.items())
    ]
    for record in records:
        if record.get("kind") != "op":
            continue
        dt = record.get("dt_s")
        end = record.get("t_s")
        if not isinstance(dt, (int, float)) or not isinstance(end, (int, float)):
            continue
        args = {
            key: record[key]
            for key in ("layer", "span", "shape", "dtype", "bytes", "task")
            if record.get(key) is not None
        }
        events.append({
            "name": str(record.get("op", "op")),
            "cat": "op",
            "ph": "X",
            "ts": (float(end) - float(dt)) * 1e6,
            "dur": float(dt) * 1e6,
            "pid": _lane(record),
            "tid": 1,
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# Session wiring (repro.obs.core calls these)
# ----------------------------------------------------------------------
_SESSION: Optional[OpProfiler] = None
_SESSION_DIR: Optional[str] = None


def start_session(run_dir: str) -> OpProfiler:
    """Start the run-scoped profiler streaming into ``run_dir``
    (``configure(run_dir, profile=True)`` calls this)."""
    global _SESSION, _SESSION_DIR
    if _SESSION is not None:
        end_session()
    profiler = OpProfiler(path=os.path.join(run_dir, PROFILE_FILENAME))
    profiler.__enter__()
    _SESSION = profiler
    _SESSION_DIR = run_dir
    return profiler


def session_active() -> bool:
    """Is a run-scoped profiler session currently recording?"""
    return _SESSION is not None


def ingest_records(records: List[dict]) -> int:
    """Append externally captured op events to the active session.

    The worker-telemetry merge feeds a child process's (opt-in)
    profiler events through here in deterministic order; they join the
    session's ``profile.jsonl`` stream and its end-of-run aggregate.
    Returns the number of events adopted (0 when no session is active).
    """
    session = _SESSION
    if session is None:
        return 0
    adopted = 0
    for record in records:
        if not isinstance(record, dict) or record.get("kind") != "op":
            continue
        if len(session.records) >= session.max_records:
            session.dropped += 1
            continue
        session.records.append(record)
        if session._fp is not None:
            session._fp.write(json.dumps(record) + "\n")
        adopted += 1
    if session._fp is not None:
        session._fp.flush()
    return adopted


def quiesce_forked() -> None:
    """Detach profiler state inherited across ``fork``.

    A worker forked from a profiled run inherits the parent's op
    observer and its open ``profile.jsonl`` handle (shared file
    offset); the child must unhook the observer and forget the handle
    *without* closing or flushing it.  Worker capture then installs its
    own memory-backed profiler when profiling is requested.
    """
    global _ACTIVE, _SESSION, _SESSION_DIR
    profiler = _ACTIVE
    if profiler is not None:
        try:
            remove_op_observer(profiler._on_op)
        except Exception:
            pass
        try:
            from ..snn import network as _snn_network

            _snn_network.set_layer_probe(None)
        except Exception:
            pass
        profiler._fp = None
    _ACTIVE = None
    _SESSION = None
    _SESSION_DIR = None


def end_session() -> Optional[str]:
    """Close the run-scoped profiler and write ``profile_summary.json``;
    returns the summary path (``None`` when no session was active)."""
    global _SESSION, _SESSION_DIR
    if _SESSION is None:
        return None
    profiler, run_dir = _SESSION, _SESSION_DIR
    _SESSION = None
    _SESSION_DIR = None
    profiler.__exit__(None, None, None)
    path = os.path.join(run_dir, SUMMARY_FILENAME)
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(profiler.aggregate(), fp, indent=2, sort_keys=True)
        fp.write("\n")
    return path


# ----------------------------------------------------------------------
# Reading back / CLI
# ----------------------------------------------------------------------
def load_records(run_dir: str) -> List[dict]:
    """Op events from ``run_dir/profile.jsonl`` (missing file → empty;
    torn/corrupt lines skipped, matching ``load_run``'s tolerance)."""
    path = os.path.join(run_dir, PROFILE_FILENAME)
    if not os.path.exists(path):
        return []
    from .report import _read_jsonl

    records, _ = _read_jsonl(path)
    return [r for r in records if r.get("kind") == "op"]


def load_summary(run_dir: str) -> Optional[dict]:
    """The persisted summary, or ``None`` when absent/unreadable."""
    path = os.path.join(run_dir, SUMMARY_FILENAME)
    try:
        with open(path, "r", encoding="utf-8") as fp:
            summary = json.load(fp)
    except (OSError, json.JSONDecodeError):
        return None
    return summary if isinstance(summary, dict) else None


def format_bytes(nbytes: float) -> str:
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{value:.0f} B"
        value /= 1024.0
    return f"{value:.1f} GiB"


def _format_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds:.3f} s"


def render_tables(summary: dict, top: int = 10) -> str:
    """Plain-text hot-path tables (``python -m repro.obs profile``)."""
    lines = [
        f"profile: {summary.get('ops', 0)} ops, "
        f"{_format_seconds(float(summary.get('total_s') or 0.0))} attributed, "
        f"{format_bytes(summary.get('bytes_total') or 0)} allocated"
    ]
    if summary.get("dropped"):
        lines.append(f"(dropped {summary['dropped']} events past the record cap)")
    lines.append("")
    lines.append(f"hot ops (top {top} by total time)")
    lines.append(
        f"{'op':<24} {'count':>7} {'total':>11} {'median':>11} "
        f"{'bytes':>11} {'%':>6}"
    )
    lines.append("-" * 76)
    for entry in (summary.get("top") or [])[:top]:
        lines.append(
            f"{str(entry.get('op', '?'))[:24]:<24} {entry.get('count', 0):>7} "
            f"{_format_seconds(float(entry.get('total_s') or 0.0)):>11} "
            f"{_format_seconds(float(entry.get('median_s') or 0.0)):>11} "
            f"{format_bytes(entry.get('bytes') or 0):>11} "
            f"{float(entry.get('pct') or 0.0):>5.1f}%"
        )
    by_layer = summary.get("by_layer") or {}
    ranked = sorted(
        by_layer.items(), key=lambda item: (-(item[1].get("total_s") or 0.0), item[0])
    )
    lines.append("")
    lines.append(f"hot layers (top {top} by total time)")
    lines.append(f"{'layer':<44} {'ops':>7} {'total':>11} {'bytes':>11} {'%':>6}")
    lines.append("-" * 84)
    for name, entry in ranked[:top]:
        lines.append(
            f"{name[:44]:<44} {entry.get('count', 0):>7} "
            f"{_format_seconds(float(entry.get('total_s') or 0.0)):>11} "
            f"{format_bytes(entry.get('bytes') or 0):>11} "
            f"{float(entry.get('pct') or 0.0):>5.1f}%"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    """CLI body shared with ``python -m repro.obs profile``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs profile",
        description="Hot-path tables and Chrome-trace export for a "
                    "profiled run directory.",
    )
    parser.add_argument("run_dir", help="run directory holding profile.jsonl")
    parser.add_argument("--top", type=int, default=10,
                        help="rows per hot-path table (default: %(default)s)")
    parser.add_argument("--json", action="store_true",
                        help="emit the aggregate summary as JSON")
    parser.add_argument("--chrome-trace", metavar="OUT",
                        help="write a chrome://tracing-loadable trace JSON "
                             "built from profile.jsonl")
    args = parser.parse_args(argv)

    if not os.path.isdir(args.run_dir):
        parser.error(f"run directory not found: {args.run_dir}")
    records = load_records(args.run_dir)
    if args.chrome_trace:
        if not records:
            parser.error(
                f"no op events in {os.path.join(args.run_dir, PROFILE_FILENAME)}"
                " — was the run profiled?"
            )
        with open(args.chrome_trace, "w", encoding="utf-8") as fp:
            json.dump(chrome_trace(records), fp)
            fp.write("\n")
        print(f"wrote {args.chrome_trace} ({len(records)} events)")
        return 0
    # Prefer recomputing from the raw events (covers torn summaries);
    # fall back to the persisted aggregate when only it survives.
    summary = aggregate(records, top_k=args.top) if records else load_summary(args.run_dir)
    if summary is None:
        parser.error(
            f"{args.run_dir} holds neither {PROFILE_FILENAME} nor "
            f"{SUMMARY_FILENAME} — was the run profiled?"
        )
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(render_tables(summary, top=args.top))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
