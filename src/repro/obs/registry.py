"""Run registry: an append-only index of every observed run.

The paper's claims are comparative (accuracy vs. T, training cost,
spiking activity), so runs only become useful once they are *findable*
and *comparable*.  Every :func:`repro.obs.configure` run that has a run
directory auto-registers here: one schema-versioned JSONL record is
appended to ``<root>/index.jsonl`` when the run starts (``status:
"running"``) and another when it ends (``"completed"`` / ``"error"``,
plus the artefact inventory of the run directory).  Readers fold the
append-only stream by run id — the last record wins field-by-field — so
a crash mid-run degrades to a visible ``running`` entry, never a
corrupt index.

The registry root resolves from the ``REPRO_RUNS_ROOT`` environment
variable (the test suite points it at a scratch directory) and defaults
to ``runs/`` under the current working directory.

Each start record carries:

- ``run_id``          — the observed run's id;
- ``run_dir``         — absolute path of the artefact directory;
- ``tags``            — the run-scoped context fields (arch / T / seed);
- ``config_fingerprint`` — stable hash of those tags;
- ``environment``     — the host fingerprint reused from
  :func:`repro.bench.environment_fingerprint`.

End records add ``status`` and ``artifacts`` (name → size in bytes of
every known artefact present).  ``kind: "baseline"`` marker records tag
one run as the comparison baseline for ``repro.obs diff --baseline``.

CLI::

    python -m repro.obs runs list
    python -m repro.obs runs show RUN_ID
    python -m repro.obs runs gc --keep 20
    python -m repro.obs runs tag-baseline RUN_ID
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from typing import Dict, List, Optional

RUNS_SCHEMA = "repro.obs.runs/v1"
RUNS_SCHEMA_VERSION = 1
INDEX_FILENAME = "index.jsonl"
ENV_ROOT_VAR = "REPRO_RUNS_ROOT"
ENV_DISABLE_VAR = "REPRO_RUNS_DISABLE"
DEFAULT_ROOT = "runs"

#: Artefact files a run directory may contain (the inventory scan).
#: Entries containing ``*`` are glob patterns — ``worker-<id>.jsonl``
#: are the per-worker telemetry shards a parallel observed run leaves
#: beside the merged ``worker_telemetry.jsonl`` stream.
KNOWN_ARTIFACTS = (
    "events.jsonl",
    "trace.jsonl",
    "metrics.json",
    "drift.jsonl",
    "faults.jsonl",
    "alerts.jsonl",
    "profile.jsonl",
    "profile_summary.json",
    "slo.jsonl",
    "slo_summary.json",
    "stream_meta.json",
    "model.npz",
    "canary.json",
    "worker_telemetry.jsonl",
    "worker-*.jsonl",
)


class BaselineError(LookupError):
    """The registry's baseline tag cannot serve a comparison.

    Raised with an actionable message (no tag, unknown run, or a tag
    left dangling after the run directory was deleted/gc'd) so
    ``diff --baseline`` and ``repro.stream canary`` fail cleanly
    instead of stack-tracing on a dead path.
    """


def runs_root() -> str:
    """The registry root directory (``REPRO_RUNS_ROOT`` or ``runs/``)."""
    return os.environ.get(ENV_ROOT_VAR) or DEFAULT_ROOT


def registration_enabled() -> bool:
    """Auto-registration kill switch (``REPRO_RUNS_DISABLE=1``)."""
    return os.environ.get(ENV_DISABLE_VAR, "") not in ("1", "true", "yes")


def config_fingerprint(mapping: dict) -> str:
    """Stable short hash of a configuration mapping.

    Non-JSON values stringify via ``repr``; key order never matters.
    """
    canonical = json.dumps(mapping, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def artifact_inventory(run_dir: str) -> Dict[str, int]:
    """``{artefact filename: size in bytes}`` for known files present."""
    import fnmatch

    inventory: Dict[str, int] = {}
    patterns = [name for name in KNOWN_ARTIFACTS if "*" in name]
    for name in KNOWN_ARTIFACTS:
        if "*" in name:
            continue
        path = os.path.join(run_dir, name)
        try:
            inventory[name] = os.path.getsize(path)
        except OSError:
            continue
    if patterns:
        try:
            entries = sorted(os.listdir(run_dir))
        except OSError:
            entries = []
        for entry in entries:
            if entry in inventory:
                continue
            if any(fnmatch.fnmatch(entry, pattern) for pattern in patterns):
                try:
                    inventory[entry] = os.path.getsize(os.path.join(run_dir, entry))
                except OSError:
                    continue
    return inventory


def _environment_fingerprint() -> dict:
    # Reused from the bench harness so registry entries and BENCH_*
    # baselines describe hosts identically.  Imported lazily: bench
    # imports repro.obs and eager cross-imports would cycle.
    from ..bench import environment_fingerprint

    env = environment_fingerprint()
    # Record the ambient parallel-executor config (worker count, start
    # method) so obs diff can flag cross-worker-count comparisons as
    # informational.  Results are bitwise worker-count-independent, but
    # traces/telemetry legitimately differ between serial and parallel
    # runs of the same experiment.
    try:
        from ..exec import active_executor_config

        executor = active_executor_config()
        if executor is not None:
            env = {**env, "executor": executor}
    except Exception:
        pass
    return env


class RunRegistry:
    """Reader/writer for one ``index.jsonl`` registry."""

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root if root is not None else runs_root()
        self.index_path = os.path.join(self.root, INDEX_FILENAME)

    # -- writing -------------------------------------------------------
    def append(self, record: dict) -> None:
        os.makedirs(self.root, exist_ok=True)
        with open(self.index_path, "a", encoding="utf-8") as fp:
            fp.write(json.dumps(record, sort_keys=True, default=repr) + "\n")

    def register_start(self, run_id: str, run_dir: str, tags: dict) -> dict:
        record = {
            "schema": RUNS_SCHEMA,
            "schema_version": RUNS_SCHEMA_VERSION,
            "kind": "run",
            "run_id": run_id,
            "ts": time.time(),
            "status": "running",
            "run_dir": os.path.abspath(run_dir),
            "tags": dict(tags),
            "config_fingerprint": config_fingerprint(tags),
            "environment": _environment_fingerprint(),
        }
        self.append(record)
        return record

    def register_end(
        self, run_id: str, run_dir: str, status: str = "completed"
    ) -> dict:
        record = {
            "schema": RUNS_SCHEMA,
            "schema_version": RUNS_SCHEMA_VERSION,
            "kind": "run",
            "run_id": run_id,
            "ts": time.time(),
            "status": status,
            "artifacts": artifact_inventory(run_dir),
        }
        self.append(record)
        return record

    def set_baseline(self, run_id: str) -> dict:
        """Tag ``run_id`` as the registry baseline (last marker wins)."""
        resolved = self.get(run_id)
        if resolved is None:
            raise KeyError(f"run '{run_id}' is not in the registry")
        record = {
            "schema": RUNS_SCHEMA,
            "kind": "baseline",
            "run_id": resolved["run_id"],
            "ts": time.time(),
        }
        self.append(record)
        return record

    # -- reading -------------------------------------------------------
    def records(self) -> List[dict]:
        """Raw index records in append order (bad lines skipped)."""
        if not os.path.exists(self.index_path):
            return []
        records = []
        with open(self.index_path, "r", encoding="utf-8") as fp:
            for line in fp:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # a torn/corrupt line never poisons the index
                if isinstance(record, dict):
                    records.append(record)
        return records

    def runs(self) -> List[dict]:
        """Folded run entries, oldest first (last record wins per field)."""
        folded: Dict[str, dict] = {}
        order: List[str] = []
        for record in self.records():
            if record.get("kind") != "run" or "run_id" not in record:
                continue
            run_id = record["run_id"]
            if run_id not in folded:
                folded[run_id] = {"first_ts": record.get("ts")}
                order.append(run_id)
            merged = folded[run_id]
            for key, value in record.items():
                if key == "ts":
                    merged["ts"] = value
                else:
                    merged[key] = value
        return [folded[run_id] for run_id in order]

    def get(self, run_id: str) -> Optional[dict]:
        """Folded entry for ``run_id`` (exact match, then unique prefix)."""
        runs = self.runs()
        for run in runs:
            if run["run_id"] == run_id:
                return run
        matches = [r for r in runs if r["run_id"].startswith(run_id)]
        if len(matches) == 1:
            return matches[0]
        return None

    def baseline_id(self) -> Optional[str]:
        """Run id of the last ``baseline`` marker, or ``None``."""
        marked = None
        for record in self.records():
            if record.get("kind") == "baseline" and record.get("run_id"):
                marked = record["run_id"]
        return marked

    def baseline(self) -> Optional[dict]:
        """Folded entry of the tagged baseline run, or ``None``."""
        run_id = self.baseline_id()
        return self.get(run_id) if run_id else None

    def require_baseline(self) -> dict:
        """The tagged baseline entry, guaranteed usable for comparison.

        Raises :class:`BaselineError` with an actionable message when no
        baseline is tagged, the tag names an unknown run, or the tag is
        *dangling* — its run directory was deleted or gc'd out from
        under it.
        """
        run_id = self.baseline_id()
        if run_id is None:
            raise BaselineError(
                "no baseline run tagged in the registry (use "
                "`python -m repro.obs runs tag-baseline RUN_ID`)"
            )
        run = self.get(run_id)
        if run is None:
            raise BaselineError(
                f"baseline tag points at unknown run '{run_id}' — re-tag "
                "with `python -m repro.obs runs tag-baseline RUN_ID`"
            )
        run_dir = run.get("run_dir")
        if not run_dir or not os.path.isdir(run_dir):
            raise BaselineError(
                f"baseline run '{run_id}' points at a missing directory "
                f"({run_dir or 'no run_dir recorded'}) — the tag is "
                "dangling; run `python -m repro.obs runs gc` to clear it, "
                "then tag a live run"
            )
        return run

    # -- retention -----------------------------------------------------
    def gc(
        self,
        keep: Optional[int] = None,
        drop_missing: bool = True,
        delete_dirs: bool = False,
    ) -> dict:
        """Compact the index: fold records, prune stale runs.

        - ``drop_missing`` removes entries whose run directory no longer
          exists on disk — including the tagged baseline, whose tag is
          then *cleared* (a tag pointing at a dead path would make every
          later ``diff --baseline`` / ``canary`` fail);
        - ``keep`` retains only the newest N surviving runs (by last
          timestamp); a live tagged baseline run is always retained;
        - ``delete_dirs`` additionally deletes the pruned runs' artefact
          directories (never the baseline's).

        The index is rewritten atomically (one folded record per
        surviving run plus the baseline marker).  Returns a summary
        ``{"kept": ..., "dropped": ..., "dirs_deleted": ...,
        "baseline_cleared": ...}``.
        """
        if keep is not None and keep < 0:
            raise ValueError("keep must be non-negative")
        runs = self.runs()
        baseline_id = self.baseline_id()
        baseline_cleared = False
        survivors, dropped = [], []
        for run in runs:
            run_dir = run.get("run_dir")
            missing = not (run_dir and os.path.isdir(run_dir))
            if drop_missing and missing:
                if run["run_id"] == baseline_id:
                    baseline_cleared = True
                dropped.append(run)
            else:
                survivors.append(run)
        if baseline_cleared:
            baseline_id = None
        if keep is not None and len(survivors) > keep:
            survivors.sort(key=lambda r: r.get("ts") or 0.0)
            pruned = []
            while len(survivors) > keep and survivors:
                victim = None
                for candidate in survivors:
                    if candidate["run_id"] != baseline_id:
                        victim = candidate
                        break
                if victim is None:
                    break  # only the baseline left
                survivors.remove(victim)
                pruned.append(victim)
            dropped.extend(pruned)
        dirs_deleted = 0
        if delete_dirs:
            for run in dropped:
                run_dir = run.get("run_dir")
                if run_dir and os.path.isdir(run_dir):
                    shutil.rmtree(run_dir, ignore_errors=True)
                    dirs_deleted += 1
        survivors.sort(key=lambda r: r.get("first_ts") or 0.0)
        self._rewrite(survivors, baseline_id)
        return {
            "kept": len(survivors),
            "dropped": len(dropped),
            "dirs_deleted": dirs_deleted,
            "baseline_cleared": baseline_cleared,
        }

    def _rewrite(self, runs: List[dict], baseline_id: Optional[str]) -> None:
        os.makedirs(self.root, exist_ok=True)
        tmp_path = f"{self.index_path}.tmp-{os.getpid()}"
        surviving_ids = set()
        with open(tmp_path, "w", encoding="utf-8") as fp:
            for run in runs:
                record = {k: v for k, v in run.items() if k != "first_ts"}
                record.setdefault("kind", "run")
                fp.write(json.dumps(record, sort_keys=True, default=repr) + "\n")
                surviving_ids.add(run["run_id"])
            if baseline_id and baseline_id in surviving_ids:
                fp.write(json.dumps({
                    "schema": RUNS_SCHEMA,
                    "kind": "baseline",
                    "run_id": baseline_id,
                    "ts": time.time(),
                }, sort_keys=True) + "\n")
        os.replace(tmp_path, self.index_path)


# ----------------------------------------------------------------------
# Auto-registration hooks (called by repro.obs.core)
# ----------------------------------------------------------------------
def register_run_start(run_id: str, run_dir: str, tags: dict) -> None:
    """Best-effort start registration; never breaks the observed run."""
    if not registration_enabled():
        return
    try:
        RunRegistry().register_start(run_id, run_dir, tags)
    except OSError:
        pass


def register_run_end(run_id: str, run_dir: str, status: str) -> None:
    """Best-effort end registration; never breaks the observed run."""
    if not registration_enabled():
        return
    try:
        RunRegistry().register_end(run_id, run_dir, status=status)
    except OSError:
        pass


def render_runs_table(runs: List[dict], baseline_id: Optional[str] = None) -> str:
    """Fixed-width listing for ``python -m repro.obs runs list``."""
    lines = [
        f"{'run id':<24} {'status':<10} {'arch':<9} {'T':>3} {'seed':>5} "
        f"{'artefacts':>9}  run dir",
        "-" * 96,
    ]
    for run in runs:
        tags = run.get("tags") or {}
        marker = "*" if run["run_id"] == baseline_id else " "
        lines.append(
            f"{marker}{run['run_id']:<23} {run.get('status', '?'):<10} "
            f"{str(tags.get('arch', '-')):<9} "
            f"{str(tags.get('timesteps', tags.get('T', '-'))):>3} "
            f"{str(tags.get('seed', '-')):>5} "
            f"{len(run.get('artifacts') or {}):>9}  {run.get('run_dir', '-')}"
        )
    if baseline_id:
        lines.append("")
        lines.append(f"* baseline: {baseline_id}")
    return "\n".join(lines)
