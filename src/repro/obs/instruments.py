"""SNN-specific instruments and profiling-backed measurement helpers.

Spiking instrumentation builds on the network's existing recording
surface (``set_recording`` / ``reset_spike_stats`` on
:class:`~repro.snn.network.SpikingNetwork`): :class:`StepMonitor`
attaches to the network's per-timestep hook and, at every step, turns
the neurons' running spike counters into per-layer spike-*rate*
histogram samples and membrane-potential statistics in the global
metrics registry.

The measurement helpers fold :mod:`repro.profiling` into the
observability layer as backends: :func:`timed` runs
``profiling.timing.time_callable`` under a span and histograms the
samples; :func:`measure_training_memory` / :func:`measure_inference_memory`
delegate to ``profiling.memory`` and gauge the report fields.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, List, Optional

import numpy as np

from ..profiling.memory import MemoryReport, inference_memory, training_memory
from ..profiling.timing import TimingResult, time_callable
from . import metrics as obs_metrics
from . import trace
from .core import is_enabled
from .metrics import MetricsRegistry


class StepMonitor:
    """Per-timestep spike-rate and membrane-potential monitor.

    Attach via :func:`monitored` (or ``snn.attach_monitor``); the
    network calls :meth:`on_step` after each simulated time step.
    Neuron ``recording`` must be on for spike counters to advance.
    """

    def __init__(
        self,
        snn,
        prefix: str = "snn",
        registry: Optional[MetricsRegistry] = None,
        membranes: bool = True,
    ) -> None:
        self.prefix = prefix
        self.registry = registry if registry is not None else obs_metrics.get_registry()
        self.membranes = membranes
        # The module-tree walk is too slow for a per-step callback;
        # freeze the neuron list at attach time.
        self._neurons = snn.spiking_neurons()
        self._last_counts = [neuron.spike_count for neuron in self._neurons]
        self.steps_seen = 0

    def on_step(self, step: int, network) -> None:
        self.steps_seen += 1
        for index, neuron in enumerate(self._neurons):
            membrane = neuron.membrane
            units = None
            if membrane is not None:
                units = float(np.prod(membrane.data.shape))
                if self.membranes:
                    self.registry.observe(
                        f"{self.prefix}.membrane_mean",
                        float(membrane.data.mean()),
                        layer=index,
                    )
            delta = neuron.spike_count - self._last_counts[index]
            self._last_counts[index] = neuron.spike_count
            if units:
                self.registry.observe(
                    f"{self.prefix}.spike_rate",
                    delta / units,
                    layer=index,
                )
            self.registry.inc(
                f"{self.prefix}.spikes", delta, layer=index
            )

    def summary(self) -> dict:
        """Per-layer totals accumulated so far (counter values)."""
        totals = {}
        for index in range(len(self._neurons)):
            counter = self.registry.counter(
                f"{self.prefix}.spikes", layer=index
            )
            totals[index] = counter.value
        return totals


@contextmanager
def monitored(
    snn,
    prefix: str = "snn",
    registry: Optional[MetricsRegistry] = None,
    membranes: bool = True,
):
    """Monitor ``snn`` for the duration of the block.

    Enables spike recording, attaches a :class:`StepMonitor` to the
    network's per-timestep hook, and restores the previous recording
    state afterwards.  When observability is disabled the block runs
    completely uninstrumented (yields ``None``).
    """
    if not is_enabled() and registry is None:
        yield None
        return
    previous_recording = [n.recording for n in snn.spiking_neurons()]
    snn.reset_spike_stats()
    snn.set_recording(True)
    monitor = StepMonitor(snn, prefix=prefix, registry=registry, membranes=membranes)
    snn.attach_monitor(monitor)
    try:
        yield monitor
    finally:
        snn.detach_monitor()
        for neuron, was_recording in zip(snn.spiking_neurons(), previous_recording):
            neuron.recording = was_recording


def record_spike_profile(
    snn,
    prefix: str = "snn",
    registry: Optional[MetricsRegistry] = None,
) -> List[float]:
    """Summarise the network's accumulated spike statistics into gauges.

    Reads the counters populated by a recorded run (``set_recording``)
    and gauges one average per-neuron-per-step firing rate per layer.
    Returns the per-layer rates.
    """
    registry = registry if registry is not None else obs_metrics.get_registry()
    rates: List[float] = []
    for index, neuron in enumerate(snn.spiking_neurons()):
        denom = neuron.neuron_count * neuron.step_count
        rate = neuron.spike_count / denom if denom else 0.0
        rates.append(rate)
        registry.set_gauge(f"{prefix}.layer_spike_rate", rate, layer=index)
    return rates


def record_energy_profile(
    snn,
    batches,
    input_shape,
    max_batches: Optional[int] = None,
    prefix: str = "energy",
    registry: Optional[MetricsRegistry] = None,
) -> dict:
    """Run :mod:`repro.energy` accounting and publish ``energy.*`` gauges.

    Measures spiking activity of ``snn`` over ``batches`` (Section VI
    of the paper), prices the spike-scaled operation counts with the
    45 nm CMOS :class:`~repro.energy.EnergyModel`, and gauges:

    - per layer: ``energy.spikes_per_neuron``, ``energy.snn_ops``,
      ``energy.dnn_macs`` (labelled ``layer=``);
    - totals: ``energy.snn_total_flops``, ``energy.dnn_total_flops``,
      ``energy.snn_joules``, ``energy.dnn_joules``,
      ``energy.improvement`` (the DNN/SNN energy ratio).

    When the network runs with sparse dispatch enabled (and op counting
    on), the rate-based per-layer ``snn_ops`` estimates are replaced by
    the dispatcher's *exact* accumulate counts measured during the same
    activity pass, and ``energy.measured_counts`` gauges 1.

    Returns the summary dict (also attached to the enclosing span).
    The energy package is imported lazily so the observability core
    never drags the accounting machinery in.
    """
    from ..energy import (
        EnergyModel,
        measure_spiking_activity,
        snn_layer_flops,
        snn_total_flops,
    )

    registry = registry if registry is not None else obs_metrics.get_registry()
    record = is_enabled() or registry is not obs_metrics.get_registry()
    with trace.span("energy_profile", timesteps=snn.timesteps) as sp:
        dispatch = getattr(snn, "sparse_dispatch", None)
        if dispatch is not None and dispatch.count_ops:
            dispatch.reset_stats()
        activity = measure_spiking_activity(snn, batches, max_batches=max_batches)
        rates = activity.rates_by_neuron_id(snn)
        records = snn_layer_flops(snn, input_shape, rates)
        measured = _measured_snn_ops(
            dispatch, records, activity.images, activity.timesteps
        )
        if measured is not None:
            for rec, ops in zip(records, measured):
                rec.snn_ops = ops
        model = EnergyModel()
        snn_joules = model.snn_energy(records)
        dnn_joules = model.dnn_energy(records)
        summary = {
            "timesteps": activity.timesteps,
            "images": activity.images,
            "avg_spikes_per_neuron": activity.average_spikes_per_neuron,
            "snn_total_flops": snn_total_flops(records),
            "dnn_total_flops": sum(rec.macs for rec in records),
            "snn_joules": snn_joules,
            "dnn_joules": dnn_joules,
            # A fully silent network has zero SNN energy; report 0 rather
            # than raising mid-run.
            "improvement": dnn_joules / snn_joules if snn_joules else 0.0,
            "measured_counts": measured is not None,
        }
        sp.set(**summary)
    if record:
        for layer, stats in enumerate(activity.layers):
            registry.set_gauge(
                f"{prefix}.spikes_per_neuron", stats.spikes_per_neuron, layer=layer
            )
        for layer, rec in enumerate(records):
            registry.set_gauge(f"{prefix}.snn_ops", rec.snn_ops, layer=layer)
            registry.set_gauge(f"{prefix}.dnn_macs", rec.macs, layer=layer)
        for key in ("snn_total_flops", "dnn_total_flops", "snn_joules",
                    "dnn_joules", "improvement", "avg_spikes_per_neuron"):
            registry.set_gauge(f"{prefix}.{key}", summary[key])
        registry.set_gauge(
            f"{prefix}.measured_counts", float(summary["measured_counts"])
        )
    return summary


def _measured_snn_ops(dispatch, records, images, timesteps):
    """Per-image exact accumulate counts from the dispatcher, if usable.

    The dispatcher records one stats entry per weight layer in execution
    order — the same order the structural FLOP walk yields.  The
    hardware pays ``timesteps`` presentations per image at every layer,
    but the simulator may have run a layer on fewer frames (the fused
    engine's direct-encoding prefix computes once per forward; a folded
    layer covers all steps in one ``(T*N)`` call) — each layer's summed
    input batch says exactly how many frames it did see, so scaling by
    ``timesteps * images / batch_sum`` recovers the per-presentation
    count for every engine.
    """
    if dispatch is None or not dispatch.count_ops:
        return None
    stats = dispatch.layer_stats()
    if len(stats) != len(records) or not images or not timesteps:
        return None
    if any(st.batch_sum <= 0 for st in stats):
        return None
    return [
        st.accumulates * timesteps / st.batch_sum
        for st in stats
    ]


def record_dispatch_profile(
    snn,
    prefix: str = "dispatch",
    registry: Optional[MetricsRegistry] = None,
) -> List[dict]:
    """Publish the sparse dispatcher's per-layer telemetry as gauges.

    For each weight layer (labelled ``layer=<index>`` in execution
    order): ``dispatch.density`` (mean input spike density),
    ``dispatch.threshold`` (its crossover), ``dispatch.sparse_fraction``
    (share of forwards routed sparse), ``dispatch.sparse_runs`` /
    ``dispatch.dense_runs``, and ``dispatch.accumulates`` (exact
    synaptic ops).  Returns the stats as dicts (execution order); empty
    when the network has no dispatcher or it has not run yet.
    """
    registry = registry if registry is not None else obs_metrics.get_registry()
    dispatch = getattr(snn, "sparse_dispatch", None)
    if dispatch is None:
        return []
    rows = []
    for layer, st in enumerate(dispatch.layer_stats()):
        registry.set_gauge(f"{prefix}.density", st.mean_density, layer=layer)
        registry.set_gauge(f"{prefix}.threshold", st.threshold, layer=layer)
        registry.set_gauge(
            f"{prefix}.sparse_fraction", st.sparse_fraction, layer=layer
        )
        registry.set_gauge(f"{prefix}.sparse_runs", st.sparse_runs, layer=layer)
        registry.set_gauge(f"{prefix}.dense_runs", st.dense_runs, layer=layer)
        registry.set_gauge(f"{prefix}.accumulates", st.accumulates, layer=layer)
        rows.append(dict(st.as_dict(), layer=layer))
    return rows


# ----------------------------------------------------------------------
# profiling/ as measurement backends
# ----------------------------------------------------------------------
def timed(
    name: str,
    fn: Callable[[], None],
    repeats: int = 3,
    warmup: int = 1,
    registry: Optional[MetricsRegistry] = None,
    **labels,
) -> TimingResult:
    """Time ``fn`` (via :func:`repro.profiling.time_callable`) under a
    span, recording every sample into the ``<name>.seconds`` histogram."""
    registry = registry if registry is not None else obs_metrics.get_registry()
    with trace.span(f"timed:{name}", repeats=repeats, warmup=warmup):
        result = time_callable(fn, repeats=repeats, warmup=warmup)
    if is_enabled() or registry is not obs_metrics.get_registry():
        for sample in result.samples:
            registry.observe(f"{name}.seconds", sample, **labels)
    return result


def measure_training_memory(
    model,
    forward_backward: Callable[[], None],
    optimizer_state_copies: int = 1,
    name: str = "training_memory",
    registry: Optional[MetricsRegistry] = None,
) -> MemoryReport:
    """:func:`repro.profiling.training_memory` + gauges of the report."""
    with trace.span(f"memory:{name}"):
        report = training_memory(
            model, forward_backward, optimizer_state_copies=optimizer_state_copies
        )
    _gauge_memory_report(report, name, registry)
    return report


def measure_inference_memory(
    model,
    input_shape,
    batch_size: int = 1,
    name: str = "inference_memory",
    registry: Optional[MetricsRegistry] = None,
) -> MemoryReport:
    """:func:`repro.profiling.inference_memory` + gauges of the report."""
    with trace.span(f"memory:{name}"):
        report = inference_memory(model, input_shape, batch_size=batch_size)
    _gauge_memory_report(report, name, registry)
    return report


def _gauge_memory_report(
    report: MemoryReport, name: str, registry: Optional[MetricsRegistry]
) -> None:
    if registry is None:
        if not is_enabled():
            return
        registry = obs_metrics.get_registry()
    registry.set_gauge(f"{name}.parameters_bytes", report.parameters)
    registry.set_gauge(f"{name}.activations_bytes", report.activations)
    registry.set_gauge(f"{name}.total_bytes", report.total)
