"""Metrics registry: counters, gauges and histograms with labels.

A :class:`MetricsRegistry` is a standalone aggregation container (tests
instantiate their own); the module also hosts one process-global
registry that the convenience functions :func:`inc` / :func:`gauge` /
:func:`observe` write into *only while observability is enabled* — so
instrumented hot paths cost a single boolean check when it is off.

Typical instrument points in this repository:

- per-layer spike counts and spike rates (``snn.spike_rate{layer=i}``);
- Algorithm-1 residuals ``Delta_alpha_beta`` and search effort;
- per-layer threshold ``mu`` / ``alpha`` / ``beta`` trajectories;
- epoch wall-clock and loss/accuracy curves.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from .core import _STATE

_MAX_SAMPLES = 65_536

#: Default sample capacity of a sliding-window metric.
DEFAULT_WINDOW_SIZE = 64


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Gauge:
    """Last-written value plus the full written trajectory."""

    __slots__ = ("value", "trajectory")

    def __init__(self) -> None:
        self.value: Optional[float] = None
        self.trajectory: List[float] = []

    def set(self, value: float) -> None:
        self.value = float(value)
        if len(self.trajectory) < _MAX_SAMPLES:
            self.trajectory.append(self.value)


class Histogram:
    """Sample distribution with count/sum kept exact and a bounded
    sample reservoir for the percentile estimates."""

    __slots__ = ("count", "total", "minimum", "maximum", "samples")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        if len(self.samples) < _MAX_SAMPLES:
            self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        if not self.samples:
            return 0.0
        mean = sum(self.samples) / len(self.samples)
        return math.sqrt(
            sum((s - mean) ** 2 for s in self.samples) / len(self.samples)
        )

    def percentile(self, q: float) -> float:
        """Linearly interpolated percentile ``q`` in [0, 100].

        Raises :class:`ValueError` on an empty histogram — a percentile
        of nothing is a caller bug, not a zero.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        if not self.samples:
            raise ValueError(
                "cannot take a percentile of an empty histogram "
                "(no samples observed)"
            )
        ordered = sorted(self.samples)
        position = (len(ordered) - 1) * q / 100.0
        low = int(math.floor(position))
        high = int(math.ceil(position))
        if low == high:
            return ordered[low]
        weight = position - low
        return ordered[low] * (1.0 - weight) + ordered[high] * weight

    @property
    def median(self) -> float:
        return self.percentile(50.0)


class SlidingWindow:
    """Distribution over the most recent N samples (SLO aggregation).

    Unlike :class:`Histogram`, which accumulates a run-lifetime
    distribution, a sliding window forgets: quantiles and means describe
    only the last ``size`` observations, which is what a streaming SLO
    ("p95 latency over the recent past") means.  The lifetime sample
    count is kept exact so rates can still be derived.
    """

    __slots__ = ("size", "samples", "total_count")

    def __init__(self, size: int = DEFAULT_WINDOW_SIZE) -> None:
        if size <= 0:
            raise ValueError("window size must be positive")
        self.size = size
        self.samples: Deque[float] = deque(maxlen=size)
        self.total_count = 0

    def observe(self, value: float) -> None:
        self.samples.append(float(value))
        self.total_count += 1

    @property
    def count(self) -> int:
        """Samples currently inside the window."""
        return len(self.samples)

    @property
    def last(self) -> Optional[float]:
        return self.samples[-1] if self.samples else None

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else 0.0

    def percentile(self, q: float) -> float:
        """Linearly interpolated percentile over the current window."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("q must be in [0, 100]")
        if not self.samples:
            raise ValueError(
                "cannot take a percentile of an empty window "
                "(no samples observed)"
            )
        ordered = sorted(self.samples)
        position = (len(ordered) - 1) * q / 100.0
        low = int(math.floor(position))
        high = int(math.ceil(position))
        if low == high:
            return ordered[low]
        weight = position - low
        return ordered[low] * (1.0 - weight) + ordered[high] * weight


MetricKey = Tuple[str, Tuple[Tuple[str, object], ...]]


def _key(name: str, labels: dict) -> MetricKey:
    return (name, tuple(sorted(labels.items())))


def _render_key(key: MetricKey) -> str:
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Aggregates named, labelled metrics of the three kinds.

    ``_journal``, when set to a callable, receives one deterministic op
    record per successful write (``{"op", "name", "value", "labels"}``,
    plus ``"size"`` for windows).  The cross-process telemetry layer
    (:mod:`repro.obs.remote`) uses it to replay a worker's metric
    deltas into the parent registry; it costs one attribute check per
    write when unset.
    """

    def __init__(self) -> None:
        self._counters: Dict[MetricKey, Counter] = {}
        self._gauges: Dict[MetricKey, Gauge] = {}
        self._histograms: Dict[MetricKey, Histogram] = {}
        self._windows: Dict[MetricKey, SlidingWindow] = {}
        self._journal = None

    # -- accessors (create on first use) -------------------------------
    def counter(self, name: str, **labels) -> Counter:
        return self._counters.setdefault(_key(name, labels), Counter())

    def gauge(self, name: str, **labels) -> Gauge:
        return self._gauges.setdefault(_key(name, labels), Gauge())

    def histogram(self, name: str, **labels) -> Histogram:
        return self._histograms.setdefault(_key(name, labels), Histogram())

    def window(
        self, name: str, size: int = DEFAULT_WINDOW_SIZE, **labels
    ) -> SlidingWindow:
        """Sliding-window metric; ``size`` applies on first creation."""
        return self._windows.setdefault(_key(name, labels), SlidingWindow(size))

    # -- write-style shorthands ----------------------------------------
    def inc(self, name: str, amount: float = 1.0, **labels) -> None:
        self.counter(name, **labels).inc(amount)
        if self._journal is not None:
            self._journal(
                {"op": "inc", "name": name, "value": float(amount), "labels": labels}
            )

    def set_gauge(self, name: str, value: float, **labels) -> None:
        self.gauge(name, **labels).set(value)
        if self._journal is not None:
            self._journal(
                {"op": "gauge", "name": name, "value": float(value), "labels": labels}
            )

    def observe(self, name: str, value: float, **labels) -> None:
        self.histogram(name, **labels).observe(value)
        if self._journal is not None:
            self._journal(
                {"op": "observe", "name": name, "value": float(value), "labels": labels}
            )

    def observe_window(
        self, name: str, value: float, size: int = DEFAULT_WINDOW_SIZE, **labels
    ) -> None:
        self.window(name, size, **labels).observe(value)
        if self._journal is not None:
            self._journal(
                {
                    "op": "window",
                    "name": name,
                    "value": float(value),
                    "size": int(size),
                    "labels": labels,
                }
            )

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._windows.clear()

    def __len__(self) -> int:
        return (
            len(self._counters)
            + len(self._gauges)
            + len(self._histograms)
            + len(self._windows)
        )

    def snapshot(self) -> dict:
        """JSON-ready summary of every metric."""
        return {
            "counters": {
                _render_key(k): c.value for k, c in sorted(self._counters.items())
            },
            "gauges": {
                _render_key(k): {
                    "value": g.value,
                    "trajectory": list(g.trajectory),
                }
                for k, g in sorted(self._gauges.items())
            },
            "histograms": {
                _render_key(k): {
                    "count": h.count,
                    "mean": h.mean,
                    "std": h.std,
                    "min": h.minimum if h.count else None,
                    "max": h.maximum if h.count else None,
                    "p50": h.median if h.samples else None,
                    "p95": h.percentile(95.0) if h.samples else None,
                }
                for k, h in sorted(self._histograms.items())
            },
            "windows": {
                _render_key(k): {
                    "size": w.size,
                    "count": w.count,
                    "total_count": w.total_count,
                    "mean": w.mean,
                    "last": w.last,
                    "min": min(w.samples) if w.samples else None,
                    "max": max(w.samples) if w.samples else None,
                    "p50": w.percentile(50.0) if w.samples else None,
                    "p95": w.percentile(95.0) if w.samples else None,
                    "p99": w.percentile(99.0) if w.samples else None,
                }
                for k, w in sorted(self._windows.items())
            },
        }


_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry the convenience writers target."""
    return _GLOBAL


def reset_registry() -> None:
    _GLOBAL.reset()


def apply_metric_op(registry: MetricsRegistry, op: dict) -> None:
    """Replay one journalled write into ``registry``.

    Inverse of the ``_journal`` records: the worker-telemetry merge
    applies a child process's metric deltas to the parent registry in
    deterministic ``(task_index, seq)`` order.  Unknown/garbled ops are
    ignored (degraded shards must not break a merge).
    """
    name = op.get("name")
    if not isinstance(name, str):
        return
    labels = op.get("labels") or {}
    if not isinstance(labels, dict):
        return
    labels = {str(k): v for k, v in labels.items()}
    try:
        value = float(op.get("value", 0.0))
    except (TypeError, ValueError):
        return
    kind = op.get("op")
    if kind == "inc":
        registry.inc(name, value, **labels)
    elif kind == "gauge":
        registry.set_gauge(name, value, **labels)
    elif kind == "observe":
        registry.observe(name, value, **labels)
    elif kind == "window":
        try:
            size = int(op.get("size", DEFAULT_WINDOW_SIZE))
        except (TypeError, ValueError):
            size = DEFAULT_WINDOW_SIZE
        registry.observe_window(name, value, size, **labels)


# ----------------------------------------------------------------------
# Hot-path writers: single enabled-check, then delegate.
# ----------------------------------------------------------------------
def inc(name: str, amount: float = 1.0, **labels) -> None:
    if _STATE.enabled:
        _GLOBAL.inc(name, amount, **labels)


def gauge(name: str, value: float, **labels) -> None:
    if _STATE.enabled:
        _GLOBAL.set_gauge(name, value, **labels)


def observe(name: str, value: float, **labels) -> None:
    if _STATE.enabled:
        _GLOBAL.observe(name, value, **labels)


def observe_window(
    name: str, value: float, size: int = DEFAULT_WINDOW_SIZE, **labels
) -> None:
    if _STATE.enabled:
        _GLOBAL.observe_window(name, value, size, **labels)
