"""Run-diff engine: align two observed runs and gate on regressions.

``python -m repro.obs diff RUN_A RUN_B`` loads both run directories
through the one shared parser (:func:`repro.obs.report.load_run`),
aligns their quantitative series by name, computes deltas under
configurable relative/absolute tolerances, and exits non-zero when any
delta regresses — the same exit-code contract as
``repro.bench compare``, so the diff can gate CI directly.  With
``--baseline`` the second run resolves to the run registry's tagged
baseline (:mod:`repro.obs.registry`).

Aligned series
--------------
- metric **counters** (value), **gauges** (last value) and
  **histograms** (count and mean) from ``metrics.json``;
- per-layer **conversion drift** (``measured_gap`` / ``predicted_gap``
  at each run's latest snapshot) from ``drift.jsonl``;
- **fault events** per fault type from ``faults.jsonl``;
- **health alerts** per rule from ``alerts.jsonl``;
- **span timings** aggregated per span name from ``trace.jsonl`` —
  reported for context but *never* gated: wall-clock differs between
  bit-identical runs, and a gate that flaps on scheduler noise is worse
  than no gate (``repro.bench`` owns timing regressions);
- **op-profile aggregates** (per-op totals/counts, per-layer totals)
  from the run's ``repro.obs.profile/v1`` summary — informational like
  span timings, never gated;
- **sliding-window metrics** and the **streaming SLO summary**
  (``slo_summary.json``): windowed/overall accuracy and SLO **breach
  counts** gate direction-aware, while the latency / staleness /
  throughput families are wall-clock-valued and never gate (same
  contract as span timings — ``repro.bench`` owns perf).

Direction semantics
-------------------
Each aligned quantity has a direction inferred from its name:
``accuracy``-like metrics regress when they *drop*, ``loss`` / ``gap``
/ fault / alert counts when they *rise*, and everything else (spike
counts, thresholds, energy estimates, ...) when it *changes* at all —
two same-seed runs of this deterministic substrate must agree exactly,
so any significant unexplained difference is a finding.  A delta is
significant when ``|delta| > atol + rtol * |baseline value|``.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .report import RunData, load_run

DEFAULT_RTOL = 0.01
DEFAULT_ATOL = 1e-9

#: Direction of badness: "up" = higher is better (drop regresses),
#: "down" = lower is better (rise regresses), "both" = any significant
#: change regresses, "skip" = informational only (never gated).
_UP_RE = re.compile(r"accuracy|improvement")
_DOWN_RE = re.compile(
    r"loss|gap|residual|faults\.|fault:|alerts|error|spikes_dropped|retries"
)
# Wall-clock-valued series never gate: latency / staleness / throughput
# (the streaming SLO series) vary between bit-identical replays just
# like span timings do, so they align for context only — the *breach
# counts* and sliding accuracy those SLOs produce are what gates.
# ``exec.*`` executor telemetry (dispatch/retry/crash/restart counts,
# pool timings) is scheduling noise by design: a chaos run that killed
# and replaced a worker must still diff clean against an undisturbed
# run, because the *results* are bitwise identical.  The same goes for
# the ``exec:`` worker-telemetry stream series and the ``exec_*``
# health-alert rules the executor raises.  The informational
# env:executor.* rows (from the run registry's environment fingerprint)
# flag cross-worker-count comparisons instead.
_SKIP_RE = re.compile(
    r"seconds|duration_s|\.ts$|wall|span:|bench\.|memory|bytes|profile:"
    r"|latency|staleness|throughput|exec[.:_]"
)


def metric_direction(name: str) -> str:
    """Infer gating semantics from a metric/series name."""
    # Breach counts gate "down" before any other rule fires: they are
    # counts, not wall-clock values, even when named after the latency
    # objective ("slo:breaches.latency") or an up-gated one
    # ("slo:breaches.accuracy").
    if "breach" in name:
        return "down"
    if _SKIP_RE.search(name):
        return "skip"
    if _UP_RE.search(name):
        return "up"
    if _DOWN_RE.search(name):
        return "down"
    return "both"


@dataclass
class Delta:
    """One aligned quantity's baseline-vs-candidate comparison."""

    name: str
    kind: str  # counter | gauge | histogram | drift | fault | alert | span
    baseline: Optional[float]
    candidate: Optional[float]
    direction: str
    significant: bool
    regressed: bool
    note: str = ""  # "added" / "missing" / ""

    @property
    def delta(self) -> Optional[float]:
        if self.baseline is None or self.candidate is None:
            return None
        return self.candidate - self.baseline


@dataclass
class RunDiff:
    """Full diff of a candidate run against a baseline run."""

    baseline_dir: str
    candidate_dir: str
    rtol: float
    atol: float
    deltas: List[Delta] = field(default_factory=list)

    @property
    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def changed(self) -> List[Delta]:
        return [d for d in self.deltas if d.significant]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def as_dict(self) -> dict:
        return {
            "schema": "repro.obs.diff/v1",
            "baseline": self.baseline_dir,
            "candidate": self.candidate_dir,
            "rtol": self.rtol,
            "atol": self.atol,
            "ok": self.ok,
            "regressions": len(self.regressions),
            "deltas": [
                {
                    "name": d.name,
                    "kind": d.kind,
                    "baseline": d.baseline,
                    "candidate": d.candidate,
                    "delta": d.delta,
                    "direction": d.direction,
                    "significant": d.significant,
                    "regressed": d.regressed,
                    "note": d.note,
                }
                for d in self.deltas
            ],
        }

    def render(self, show_unchanged: bool = False) -> str:
        """Comparison table (changed rows by default) plus the verdict."""

        def fmt(value: Optional[float]) -> str:
            return f"{value:.6g}" if value is not None else "-"

        lines = [
            f"baseline : {self.baseline_dir}",
            f"candidate: {self.candidate_dir}",
            f"tolerance: rtol={self.rtol:g} atol={self.atol:g}",
            "",
            f"{'series':<52} {'baseline':>12} {'candidate':>12}  status",
            "-" * 92,
        ]
        shown = 0
        for delta in self.deltas:
            interesting = delta.significant or delta.note
            if not interesting and not show_unchanged:
                continue
            if delta.regressed:
                status = "REGRESSED"
            elif delta.note:
                status = delta.note
            elif delta.significant:
                status = "changed"
            else:
                status = "ok"
            name = delta.name if len(delta.name) <= 52 else delta.name[:49] + "..."
            lines.append(
                f"{name:<52} {fmt(delta.baseline):>12} "
                f"{fmt(delta.candidate):>12}  {status}"
            )
            shown += 1
        if shown == 0:
            lines.append("(no significant differences)")
        lines.append("")
        gated = [d for d in self.deltas if d.direction != "skip"]
        verdict = (
            f"OK: no regressions across {len(gated)} gated series "
            f"({len(self.deltas)} aligned)"
            if self.ok
            else f"FAIL: {len(self.regressions)} regression(s) across "
            f"{len(gated)} gated series"
        )
        lines.append(verdict)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Series extraction — flatten one run into {name: (kind, value)}
# ----------------------------------------------------------------------
def extract_series(data: RunData) -> Dict[str, Tuple[str, float]]:
    """Flatten one loaded run into comparable named scalars."""
    series: Dict[str, Tuple[str, float]] = {}
    metrics = data.metrics or {}
    for name, value in (metrics.get("counters") or {}).items():
        if isinstance(value, (int, float)):
            series[f"counter:{name}"] = ("counter", float(value))
    for name, payload in (metrics.get("gauges") or {}).items():
        value = (payload or {}).get("value")
        if isinstance(value, (int, float)):
            series[f"gauge:{name}"] = ("gauge", float(value))
    for name, payload in (metrics.get("histograms") or {}).items():
        payload = payload or {}
        count = payload.get("count")
        mean = payload.get("mean")
        if isinstance(count, (int, float)):
            series[f"histogram:{name}.count"] = ("histogram", float(count))
        if isinstance(mean, (int, float)):
            series[f"histogram:{name}.mean"] = ("histogram", float(mean))
    # Sliding-window metrics (the streaming SLO aggregates): mean and
    # lifetime count align; the latency/staleness/throughput families
    # stay informational via _SKIP_RE while windowed accuracy gates.
    for name, payload in (metrics.get("windows") or {}).items():
        payload = payload or {}
        for key in ("mean", "total_count"):
            value = payload.get(key)
            if isinstance(value, (int, float)):
                series[f"window:{name}.{key}"] = ("window", float(value))

    # Latest-snapshot per-layer drift.
    if data.drift:
        latest = max(r.get("snapshot", 0) for r in data.drift)
        for record in data.drift:
            if record.get("snapshot", 0) != latest:
                continue
            layer = record.get("layer", "?")
            for key in ("measured_gap", "predicted_gap"):
                value = record.get(key)
                if isinstance(value, (int, float)):
                    series[f"drift:{key}{{layer={layer}}}"] = ("drift", float(value))

    by_fault: Dict[str, int] = {}
    for fault in data.faults:
        name = str(fault.get("fault", "?"))
        by_fault[name] = by_fault.get(name, 0) + 1
    for name, count in by_fault.items():
        series[f"fault:{name}.events"] = ("fault", float(count))

    by_rule: Dict[str, int] = {}
    for alert in data.alerts:
        rule = str(alert.get("rule", "?"))
        by_rule[rule] = by_rule.get(rule, 0) + 1
    for rule, count in by_rule.items():
        series[f"alerts:{rule}"] = ("alert", float(count))

    # Profile aggregates: per-op totals/counts and per-layer totals.
    # Timing-valued and therefore informational only — the `profile:`
    # prefix matches _SKIP_RE, so these align but never gate (the op
    # *counts* are deterministic, but one knob for the family keeps the
    # contract simple: repro.bench owns perf gating).
    profile_summary = data.profile_summary
    if not profile_summary and data.profile:
        from .profile import aggregate as _aggregate

        profile_summary = _aggregate(data.profile)
    for name, entry in (profile_summary.get("by_op") or {}).items():
        for key in ("count", "total_s"):
            value = (entry or {}).get(key)
            if isinstance(value, (int, float)):
                series[f"profile:op.{name}.{key}"] = ("profile", float(value))
    for name, entry in (profile_summary.get("by_layer") or {}).items():
        value = (entry or {}).get("total_s")
        if isinstance(value, (int, float)):
            series[f"profile:layer.{name}.total_s"] = ("profile", float(value))

    # Streaming SLO summary: breach counts (lower is better) and
    # accuracy statistics (higher is better) gate via their names;
    # latency / staleness percentiles align but stay informational.
    slo_summary = data.slo_summary or {}
    for key in ("windows", "frames"):
        value = slo_summary.get(key)
        if isinstance(value, (int, float)):
            series[f"slo:{key}"] = ("slo", float(value))
    for family in ("latency_s", "staleness_s", "accuracy"):
        entry = slo_summary.get(family) or {}
        for key in ("mean", "p50", "p95", "p99"):
            value = entry.get(key)
            if isinstance(value, (int, float)):
                series[f"slo:{family}.{key}"] = ("slo", float(value))
    value = slo_summary.get("sliding_accuracy")
    if isinstance(value, (int, float)):
        series["slo:sliding_accuracy"] = ("slo", float(value))
    for objective, count in (slo_summary.get("breaches") or {}).items():
        if isinstance(count, (int, float)):
            series[f"slo:breaches.{objective}"] = ("slo", float(count))
    value = slo_summary.get("breaches_total")
    if isinstance(value, (int, float)):
        series["slo:breaches_total"] = ("slo", float(value))

    by_span: Dict[str, float] = {}
    for span in data.spans:
        duration = span.get("duration_s")
        if isinstance(duration, (int, float)):
            name = str(span.get("name", "?"))
            by_span[name] = by_span.get(name, 0.0) + float(duration)
    for name, total in by_span.items():
        series[f"span:{name}.total_s"] = ("span", total)

    # Worker-telemetry stream shape: per-kind record counts from the
    # canonical merged ``worker_telemetry.jsonl``.  The ``exec:`` prefix
    # matches _SKIP_RE, so these align but never gate — executor
    # scheduling (and whether telemetry capture was on at all)
    # legitimately varies between otherwise-identical runs.
    by_kind: Dict[str, int] = {}
    for record in getattr(data, "worker_telemetry", []) or []:
        kind = str(record.get("kind", "?"))
        by_kind[kind] = by_kind.get(kind, 0) + 1
    for kind, count in by_kind.items():
        series[f"exec:telemetry.{kind}.records"] = ("exec", float(count))
    if by_kind:
        series["exec:telemetry.records"] = (
            "exec", float(sum(by_kind.values()))
        )
    return series


def diff_runs(
    baseline: RunData,
    candidate: RunData,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
) -> RunDiff:
    """Align ``candidate`` against ``baseline`` and flag regressions."""
    if rtol < 0 or atol < 0:
        raise ValueError("tolerances must be non-negative")
    base_series = extract_series(baseline)
    cand_series = extract_series(candidate)
    diff = RunDiff(
        baseline_dir=baseline.run_dir,
        candidate_dir=candidate.run_dir,
        rtol=rtol,
        atol=atol,
    )
    for name in sorted(set(base_series) | set(cand_series)):
        in_base = name in base_series
        in_cand = name in cand_series
        kind = (base_series.get(name) or cand_series.get(name))[0]
        direction = metric_direction(name)
        if in_base and in_cand:
            base_value = base_series[name][1]
            cand_value = cand_series[name][1]
            change = cand_value - base_value
            significant = abs(change) > atol + rtol * abs(base_value)
            if direction == "skip" or not significant:
                regressed = False
            elif direction == "up":
                regressed = change < 0
            elif direction == "down":
                regressed = change > 0
            else:  # "both"
                regressed = True
            diff.deltas.append(Delta(
                name=name, kind=kind,
                baseline=base_value, candidate=cand_value,
                direction=direction, significant=significant,
                regressed=regressed,
            ))
        elif in_cand:
            # New series.  A new lower-is-better series with a non-zero
            # value (fault events, alerts) is a regression; anything
            # else is new instrumentation and stays informational.
            value = cand_series[name][1]
            regressed = direction == "down" and abs(value) > atol
            diff.deltas.append(Delta(
                name=name, kind=kind, baseline=None, candidate=value,
                direction=direction, significant=regressed,
                regressed=regressed, note="added",
            ))
        else:
            # Vanished series.  A disappeared higher-is-better metric
            # (accuracy stopped being recorded) gates; the rest is
            # dropped instrumentation.
            value = base_series[name][1]
            regressed = direction == "up"
            diff.deltas.append(Delta(
                name=name, kind=kind, baseline=value, candidate=None,
                direction=direction, significant=regressed,
                regressed=regressed, note="missing",
            ))
    return diff


def _registered_executor_config(run_dir: str) -> Optional[dict]:
    """Best-effort registry lookup of a run's executor fingerprint."""
    import os

    try:
        from .registry import RunRegistry

        target = os.path.abspath(run_dir)
        for run in reversed(RunRegistry().runs()):
            if run.get("run_dir") == target:
                environment = run.get("environment") or {}
                executor = environment.get("executor")
                return dict(executor) if isinstance(executor, dict) else {}
    except Exception:
        pass
    return None


def _executor_env_deltas(baseline_dir: str, candidate_dir: str) -> List[Delta]:
    """Informational rows when the runs used different executor configs.

    Results are worker-count-independent by contract, but traces and
    telemetry legitimately differ between serial and parallel runs —
    so a cross-worker-count comparison deserves a visible (never
    gating) flag rather than a silent alignment.
    """
    base = _registered_executor_config(baseline_dir)
    cand = _registered_executor_config(candidate_dir)
    if base is None and cand is None:
        return []
    base = base or {}
    cand = cand or {}
    deltas: List[Delta] = []
    defaults = {"workers": 1, "start_method": "serial", "telemetry": "auto"}
    for key in ("workers", "start_method", "telemetry"):
        base_value = base.get(key, defaults[key])
        cand_value = cand.get(key, defaults[key])
        if base_value == cand_value:
            continue
        numeric = isinstance(base_value, (int, float)) and isinstance(
            cand_value, (int, float)
        )
        deltas.append(Delta(
            name=f"env:executor.{key}",
            kind="env",
            baseline=float(base_value) if numeric else None,
            candidate=float(cand_value) if numeric else None,
            direction="skip",
            significant=False,
            regressed=False,
            note=f"informational: {base_value} vs {cand_value}",
        ))
    return deltas


def diff_run_dirs(
    baseline_dir: str,
    candidate_dir: str,
    rtol: float = DEFAULT_RTOL,
    atol: float = DEFAULT_ATOL,
) -> RunDiff:
    """Load two run directories and diff them.

    On top of the series alignment, cross-worker-count comparisons
    (detected from the run registry's environment fingerprint) add
    informational ``env:executor.*`` rows that never gate.
    """
    diff = diff_runs(
        load_run(baseline_dir), load_run(candidate_dir), rtol=rtol, atol=atol
    )
    diff.deltas.extend(_executor_env_deltas(baseline_dir, candidate_dir))
    return diff


def main(argv=None) -> int:
    """CLI body shared with ``python -m repro.obs diff``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs diff",
        description="Diff two observed run directories; exit 1 on regression.",
    )
    parser.add_argument(
        "run_a",
        help="baseline run directory (or the candidate with --baseline)",
    )
    parser.add_argument(
        "run_b", nargs="?", default=None,
        help="candidate run directory (omit with --baseline)",
    )
    parser.add_argument(
        "--baseline", dest="use_registry_baseline", action="store_true",
        help="diff RUN_A against the run registry's tagged baseline run",
    )
    parser.add_argument("--rtol", type=float, default=DEFAULT_RTOL)
    parser.add_argument("--atol", type=float, default=DEFAULT_ATOL)
    parser.add_argument("--json", action="store_true",
                        help="emit the diff as JSON instead of a table")
    parser.add_argument("--all", action="store_true",
                        help="show unchanged series too")
    args = parser.parse_args(argv)

    if args.use_registry_baseline:
        if args.run_b is not None:
            parser.error("give either two run directories or --baseline, not both")
        from .registry import BaselineError, RunRegistry

        try:
            tagged = RunRegistry().require_baseline()
        except BaselineError as exc:
            parser.error(str(exc))
        baseline_dir, candidate_dir = tagged["run_dir"], args.run_a
    elif args.run_b is None:
        parser.error("candidate run directory required (or pass --baseline)")
    else:
        baseline_dir, candidate_dir = args.run_a, args.run_b

    try:
        diff = diff_run_dirs(
            baseline_dir, candidate_dir, rtol=args.rtol, atol=args.atol
        )
    except FileNotFoundError as exc:
        parser.error(str(exc))
    if args.json:
        print(json.dumps(diff.as_dict(), indent=2, sort_keys=True))
    else:
        print(diff.render(show_unchanged=args.all))
    return 0 if diff.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
