"""Observability: structured logging, tracing spans, metrics, monitors.

Disabled by default — until :func:`configure` (or ``with observe(...)``)
starts a run, every instrument in the library short-circuits on a single
boolean check.  One observed run writes three artefacts into its run
directory:

- ``events.jsonl``  — structured log records and captured CLI output;
- ``trace.jsonl``   — closed tracing spans (a nested timeline);
- ``metrics.json``  — counters / gauges / histograms snapshot;
- ``drift.jsonl``   — per-layer conversion-drift series
  (:class:`DriftMonitor`), when a conversion was instrumented;
- ``profile.jsonl`` / ``profile_summary.json`` — op-level performance
  profile (:class:`OpProfiler`), when ``configure(profile=True)``;
- ``slo.jsonl`` / ``slo_summary.json`` — streaming SLO windows and
  breaches (:class:`SloTracker`), when a stream run is tracked.

Quick start::

    from repro.obs import observe, trace, metrics, get_logger

    with observe("results/run_1", arch="vgg16"):
        with trace.span("convert", timesteps=2):
            ...
        metrics.observe("snn.spike_rate", 0.12, layer=3)
        get_logger("demo").info("done")

then ``python -m repro.obs.report results/run_1`` renders the run.
"""

from . import health, metrics, profile, trace
from .core import (
    configure,
    flush_metrics,
    is_enabled,
    observe,
    shutdown,
    state,
)
from .drift import DriftMonitor
from .health import HealthConfig, HealthMonitor
from .instruments import (
    StepMonitor,
    measure_inference_memory,
    measure_training_memory,
    monitored,
    record_dispatch_profile,
    record_energy_profile,
    record_spike_profile,
    timed,
)
from .logging import Logger, console, get_logger, set_console_level
from .metrics import MetricsRegistry, get_registry, reset_registry
from .profile import OpProfiler
from .registry import BaselineError, RunRegistry
from .slo import SLOConfig, SloTracker


def load_run(run_dir):
    """Lazy alias for :func:`repro.obs.report.load_run` (kept out of the
    eager imports so ``python -m repro.obs.report`` stays warning-free)."""
    from .report import load_run as _load_run

    return _load_run(run_dir)


def render_report(data):
    """Lazy alias for :func:`repro.obs.report.render_report`."""
    from .report import render_report as _render_report

    return _render_report(data)


def run_to_json(data):
    """Lazy alias for :func:`repro.obs.report.run_to_json`."""
    from .report import run_to_json as _run_to_json

    return _run_to_json(data)


def diff_runs(baseline, candidate, **kwargs):
    """Lazy alias for :func:`repro.obs.diff.diff_runs` (the diff module
    imports :mod:`repro.obs.report`, kept out of the eager imports for
    the same reason as :func:`load_run`)."""
    from .diff import diff_runs as _diff_runs

    return _diff_runs(baseline, candidate, **kwargs)


def diff_run_dirs(baseline_dir, candidate_dir, **kwargs):
    """Lazy alias for :func:`repro.obs.diff.diff_run_dirs`."""
    from .diff import diff_run_dirs as _diff_run_dirs

    return _diff_run_dirs(baseline_dir, candidate_dir, **kwargs)


__all__ = [
    "BaselineError",
    "DriftMonitor",
    "HealthConfig",
    "HealthMonitor",
    "Logger",
    "MetricsRegistry",
    "OpProfiler",
    "RunRegistry",
    "SLOConfig",
    "SloTracker",
    "StepMonitor",
    "configure",
    "console",
    "diff_run_dirs",
    "diff_runs",
    "flush_metrics",
    "get_logger",
    "get_registry",
    "health",
    "is_enabled",
    "load_run",
    "measure_inference_memory",
    "measure_training_memory",
    "metrics",
    "monitored",
    "observe",
    "profile",
    "record_dispatch_profile",
    "record_energy_profile",
    "record_spike_profile",
    "render_report",
    "reset_registry",
    "run_to_json",
    "set_console_level",
    "shutdown",
    "state",
    "timed",
    "trace",
]
