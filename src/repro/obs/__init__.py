"""Observability: structured logging, tracing spans, metrics, monitors.

Disabled by default — until :func:`configure` (or ``with observe(...)``)
starts a run, every instrument in the library short-circuits on a single
boolean check.  One observed run writes three artefacts into its run
directory:

- ``events.jsonl``  — structured log records and captured CLI output;
- ``trace.jsonl``   — closed tracing spans (a nested timeline);
- ``metrics.json``  — counters / gauges / histograms snapshot;
- ``drift.jsonl``   — per-layer conversion-drift series
  (:class:`DriftMonitor`), when a conversion was instrumented.

Quick start::

    from repro.obs import observe, trace, metrics, get_logger

    with observe("results/run_1", arch="vgg16"):
        with trace.span("convert", timesteps=2):
            ...
        metrics.observe("snn.spike_rate", 0.12, layer=3)
        get_logger("demo").info("done")

then ``python -m repro.obs.report results/run_1`` renders the run.
"""

from . import metrics, trace
from .core import (
    configure,
    flush_metrics,
    is_enabled,
    observe,
    shutdown,
    state,
)
from .drift import DriftMonitor
from .instruments import (
    StepMonitor,
    measure_inference_memory,
    measure_training_memory,
    monitored,
    record_spike_profile,
    timed,
)
from .logging import Logger, console, get_logger, set_console_level
from .metrics import MetricsRegistry, get_registry, reset_registry


def load_run(run_dir):
    """Lazy alias for :func:`repro.obs.report.load_run` (kept out of the
    eager imports so ``python -m repro.obs.report`` stays warning-free)."""
    from .report import load_run as _load_run

    return _load_run(run_dir)


def render_report(data):
    """Lazy alias for :func:`repro.obs.report.render_report`."""
    from .report import render_report as _render_report

    return _render_report(data)


__all__ = [
    "DriftMonitor",
    "Logger",
    "MetricsRegistry",
    "StepMonitor",
    "configure",
    "console",
    "flush_metrics",
    "get_logger",
    "get_registry",
    "is_enabled",
    "load_run",
    "measure_inference_memory",
    "measure_training_memory",
    "metrics",
    "monitored",
    "observe",
    "record_spike_profile",
    "render_report",
    "reset_registry",
    "set_console_level",
    "shutdown",
    "state",
    "timed",
    "trace",
]
