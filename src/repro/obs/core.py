"""Run-scoped observability state.

One process hosts at most one *observed run* at a time: a run directory
(optional), a run id, and run-scoped context fields that are merged
into every emitted event.  The whole subsystem is **disabled by
default** — every hot-path entry point checks a single attribute read
(:func:`is_enabled`) and returns immediately, so instrumented code pays
essentially nothing when observability is off.

Sinks
-----
With a ``run_dir`` configured, events stream to JSONL files as they
happen (one JSON object per line, crash-safe because each line is
flushed):

- ``events.jsonl`` — structured log records (:mod:`repro.obs.logging`);
- ``trace.jsonl``  — completed spans (:mod:`repro.obs.trace`);
- ``metrics.json`` — the metrics registry snapshot, written by
  :func:`shutdown` / :func:`flush_metrics`.

Without a ``run_dir`` the same records accumulate in memory
(``state.events`` / ``state.spans``), which is what the tests use.
"""

from __future__ import annotations

import json
import os
import time
from typing import IO, Callable, List, Optional

_RUN_COUNTER = 0

# ----------------------------------------------------------------------
# Capture sink (cross-process telemetry, :mod:`repro.obs.remote`)
# ----------------------------------------------------------------------
# When a sink is installed, every record produced by this module (and by
# the other channels that route through :func:`capture` — health alerts,
# fault events) is offered to it *before* the normal path.  The sink
# returns ``True`` to consume the record (executor workers, which must
# never touch the parent's files) or ``False`` to let it continue down
# the normal path (the serial tee, which only mirrors records into the
# canonical worker-telemetry stream).
_SINK: Optional[Callable[[str, dict], bool]] = None
_SUSPENDED = 0


def set_capture_sink(sink: Optional[Callable[[str, dict], bool]]) -> None:
    """Install (or with ``None`` remove) the telemetry capture sink."""
    global _SINK
    _SINK = sink


def capture_sink() -> Optional[Callable[[str, dict], bool]]:
    """The installed capture sink, or ``None``."""
    return _SINK


def capture(kind: str, record: dict) -> bool:
    """Offer ``record`` to the capture sink; ``True`` means consumed."""
    if _SINK is None or _SUSPENDED:
        return False
    return bool(_SINK(kind, record))


def capture_suspended() -> bool:
    """Is capture temporarily paused (:class:`suspend_capture`)?"""
    return _SUSPENDED > 0


class suspend_capture:
    """Exclude a block from telemetry capture (re-entrant).

    Used around per-worker environment setup (e.g. a worker's lazy
    dataset build) whose telemetry would otherwise make the merged
    stream depend on the worker count: serial execution sets up once,
    N workers set up N times.  Records emitted under suspension follow
    the process-local path only and never reach the merged artefacts,
    so suspended blocks should not write run-level metrics.
    """

    def __enter__(self) -> "suspend_capture":
        global _SUSPENDED
        _SUSPENDED += 1
        return self

    def __exit__(self, *exc_info) -> None:
        global _SUSPENDED
        _SUSPENDED -= 1


class ObsState:
    """Mutable global observability state (one instance per process)."""

    def __init__(self) -> None:
        self.enabled: bool = False
        self.run_dir: Optional[str] = None
        self.run_id: Optional[str] = None
        self.context: dict = {}
        # In-memory sinks (always populated when enabled; mirrors files).
        self.events: List[dict] = []
        self.spans: List[dict] = []
        # Keep the in-memory mirrors bounded for long runs.
        self.max_buffered: int = 100_000
        self._events_fp: Optional[IO[str]] = None
        self._trace_fp: Optional[IO[str]] = None


_STATE = ObsState()


def state() -> ObsState:
    """The process-global observability state (mostly for tests)."""
    return _STATE


def is_enabled() -> bool:
    """Cheap hot-path check: is an observed run active?"""
    return _STATE.enabled


def configure(
    run_dir: Optional[str] = None,
    enabled: bool = True,
    profile: bool = False,
    **context,
) -> ObsState:
    """Start an observed run.

    Parameters
    ----------
    run_dir:
        Directory for the JSONL sinks (created if missing).  ``None``
        keeps everything in memory.
    enabled:
        Master switch; ``configure(enabled=False)`` is equivalent to
        :func:`shutdown`.
    profile:
        Also record an op-level performance profile
        (:mod:`repro.obs.profile`) into ``run_dir`` — ``profile.jsonl``
        plus ``profile_summary.json`` at shutdown.  Requires a run
        directory.
    context:
        Run-scoped fields merged into every event (e.g. ``arch=...``).
    """
    global _RUN_COUNTER
    if profile and enabled and run_dir is None:
        raise ValueError("profile=True requires a run_dir")
    shutdown()
    if not enabled:
        return _STATE
    _RUN_COUNTER += 1
    # A run's metrics.json must describe *that* run: successive observed
    # runs in one process must not accumulate into each other's
    # snapshots (the diff engine compares them).
    from .metrics import reset_registry

    reset_registry()
    _STATE.run_id = f"run-{os.getpid()}-{_RUN_COUNTER}"
    _STATE.context = dict(context)
    _STATE.run_dir = run_dir
    _STATE.events = []
    _STATE.spans = []
    if run_dir is not None:
        os.makedirs(run_dir, exist_ok=True)
        _STATE._events_fp = open(
            os.path.join(run_dir, "events.jsonl"), "a", encoding="utf-8"
        )
        _STATE._trace_fp = open(
            os.path.join(run_dir, "trace.jsonl"), "a", encoding="utf-8"
        )
    _STATE.enabled = True
    emit_event(
        {"kind": "run_start", "ts": time.time(), "run_id": _STATE.run_id}
    )
    if run_dir is not None:
        # Runs with artefacts are worth finding later: index them and
        # watch their training health by default.  Lazy imports — both
        # modules import this one.
        from . import health, registry

        registry.register_run_start(_STATE.run_id, run_dir, _STATE.context)
        health.install(health.HealthMonitor(run_dir=run_dir))
    if profile:
        from . import profile as profile_mod

        profile_mod.start_session(run_dir)
    return _STATE


def shutdown(status: str = "completed") -> None:
    """End the observed run: dump metrics, close sinks, disable.

    ``status`` lands in the run registry's terminal record
    (``"completed"`` / ``"error"``).
    """
    run_id, run_dir = _STATE.run_id, _STATE.run_dir
    was_enabled = _STATE.enabled
    if was_enabled:
        from . import health, profile as profile_mod

        health.uninstall()
        # Before the registry end-record below: the profiler's summary
        # must exist on disk when the artefact inventory is scanned.
        profile_mod.end_session()
        emit_event(
            {
                "kind": "run_end",
                "ts": time.time(),
                "run_id": run_id,
                "status": status,
            }
        )
        flush_metrics()
    for name in ("_events_fp", "_trace_fp"):
        fp = getattr(_STATE, name)
        if fp is not None:
            fp.close()
            setattr(_STATE, name, None)
    # The in-memory mirrors survive shutdown so a finished run stays
    # inspectable; the next configure() starts them fresh.
    _STATE.enabled = False
    _STATE.run_dir = None
    _STATE.run_id = None
    _STATE.context = {}
    if was_enabled and run_dir is not None:
        # After the sinks close, so the artefact inventory sees final sizes.
        from . import registry

        registry.register_run_end(run_id, run_dir, status)


def flush_metrics() -> Optional[str]:
    """Write the global metrics registry snapshot to ``metrics.json``.

    Returns the path written, or ``None`` when no run directory is
    configured (the in-memory registry remains queryable either way).
    """
    if not _STATE.enabled or _STATE.run_dir is None:
        return None
    from .metrics import get_registry

    path = os.path.join(_STATE.run_dir, "metrics.json")
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(get_registry().snapshot(), fp, indent=2, sort_keys=True)
    return path


class observe:
    """Context manager sugar: ``with observe(run_dir): ...``."""

    def __init__(self, run_dir: Optional[str] = None, **context) -> None:
        self._run_dir = run_dir
        self._context = context

    def __enter__(self) -> ObsState:
        return configure(run_dir=self._run_dir, **self._context)

    def __exit__(self, exc_type, exc, tb) -> None:
        shutdown(status="error" if exc_type is not None else "completed")


def _write_line(fp: Optional[IO[str]], record: dict) -> None:
    if fp is not None:
        fp.write(json.dumps(record, default=_json_default) + "\n")
        fp.flush()


def _json_default(value):
    """Fallback encoder: numpy scalars/arrays and arbitrary objects."""
    if hasattr(value, "item") and not hasattr(value, "__len__"):
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    return repr(value)


def _buffer(buffer: List[dict], record: dict) -> None:
    buffer.append(record)
    if len(buffer) > _STATE.max_buffered:
        del buffer[: len(buffer) // 2]


def emit_event(record: dict) -> None:
    """Record one log/console event (no-op when disabled)."""
    if not _STATE.enabled:
        return
    if _STATE.context:
        record = {**_STATE.context, **record}
    if capture("event", record):
        return
    _buffer(_STATE.events, record)
    _write_line(_STATE._events_fp, record)


def emit_span(record: dict) -> None:
    """Record one completed span (no-op when disabled)."""
    if not _STATE.enabled:
        return
    if _STATE.context:
        record = {**_STATE.context, **record}
    if capture("span", record):
        return
    _buffer(_STATE.spans, record)
    _write_line(_STATE._trace_fp, record)
