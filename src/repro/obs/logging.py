"""Structured logger with levels, named loggers and JSONL events.

``get_logger("dnn").info("epoch done", epoch=3, loss=0.41)`` does two
independent things:

- prints a human-readable line (``[dnn] epoch done epoch=3 loss=0.41``)
  to stdout when the record's level clears the console threshold;
- appends a structured JSON record to the run's ``events.jsonl`` when
  observability is enabled.

The console threshold defaults to INFO and is independent of the
enabled switch, so library code that logs at DEBUG stays silent on the
console (but is still captured in the run's event stream), matching the
old behaviour where progress lines only appeared under ``verbose=True``.

:func:`console` is the replacement for CLI ``print()`` calls: it writes
its text to stdout verbatim *and* records it as a ``console`` event, so
a traced CLI run keeps a copy of everything it showed the user.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, Optional

from .core import _STATE, emit_event

DEBUG, INFO, WARNING, ERROR = 10, 20, 30, 40
LEVEL_NAMES = {DEBUG: "debug", INFO: "info", WARNING: "warning", ERROR: "error"}
_LEVELS = {name: value for value, name in LEVEL_NAMES.items()}

_console_level = INFO
_loggers: Dict[str, "Logger"] = {}


def level_value(level) -> int:
    """Accept either a numeric level or a name like ``"info"``."""
    if isinstance(level, str):
        try:
            return _LEVELS[level.lower()]
        except KeyError:
            raise ValueError(
                f"unknown log level '{level}'; one of {sorted(_LEVELS)}"
            ) from None
    return int(level)


def set_console_level(level) -> None:
    """Threshold for human-readable console output (default INFO)."""
    global _console_level
    _console_level = level_value(level)


def get_console_level() -> int:
    return _console_level


class Logger:
    """A named structured logger."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def log(self, level, message: str, **fields) -> None:
        level = level_value(level)
        if level >= _console_level:
            print(f"[{self.name}] {message}", file=sys.stdout)
        if _STATE.enabled:
            emit_event(
                {
                    "kind": "log",
                    "ts": time.time(),
                    "level": LEVEL_NAMES.get(level, str(level)),
                    "logger": self.name,
                    "message": message,
                    **({"fields": fields} if fields else {}),
                }
            )

    def debug(self, message: str, **fields) -> None:
        self.log(DEBUG, message, **fields)

    def info(self, message: str, **fields) -> None:
        self.log(INFO, message, **fields)

    def warning(self, message: str, **fields) -> None:
        self.log(WARNING, message, **fields)

    def error(self, message: str, **fields) -> None:
        self.log(ERROR, message, **fields)


def get_logger(name: str) -> Logger:
    """Fetch (or create) the logger registered under ``name``."""
    logger = _loggers.get(name)
    if logger is None:
        logger = _loggers[name] = Logger(name)
    return logger


def console(text: str = "", logger: Optional[str] = None) -> None:
    """CLI output: print ``text`` verbatim and record it as an event."""
    print(text)
    if _STATE.enabled:
        emit_event(
            {
                "kind": "console",
                "ts": time.time(),
                **({"logger": logger} if logger else {}),
                "text": text,
            }
        )
