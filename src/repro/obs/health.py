"""Streaming training-health monitors: detect pathologies *during* SGL.

Conversion failure at ultra-low T rarely announces itself as a final
accuracy number — it shows up mid-training as layers falling silent
(spike-rate collapse), thresholds pinned at their clamp floor, leaks
saturating, gradient norms exploding just before the
:class:`~repro.train.NonFiniteGuard` trips, or the loss flat-lining.
:class:`HealthMonitor` evaluates those rules against a per-epoch stream
fed by the trainers (:meth:`observe_epoch`) and emits:

- one JSONL record per alert into the run directory's ``alerts.jsonl``
  (``kind: "alert"``), plus a ``kind: "health"`` heartbeat per epoch so
  the live dashboard can tail loss/accuracy/spike rates;
- ``health.*`` gauges and an ``health.alerts`` counter in the metrics
  registry (global registry only while observability is enabled, an
  explicit registry always — the library-wide contract).

An observed run installs a default monitor automatically
(:func:`repro.obs.configure`); the trainers talk to it through the
module-level :func:`observe_epoch`, which is a no-op when no monitor is
installed — the disabled path costs one ``None`` check per epoch.

Rules fire once per pathological stretch (re-arming when the condition
clears), so a layer silent for fifty epochs yields one alert, not fifty.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import IO, Dict, List, Optional, Sequence

import numpy as np

from . import metrics as obs_metrics
from .core import _STATE, capture, is_enabled
from .metrics import MetricsRegistry

ALERTS_FILENAME = "alerts.jsonl"

_MAX_RECORDS = 65_536


@dataclass
class HealthConfig:
    """Thresholds for the streaming health rules.

    - ``collapse_rate`` / ``collapse_epochs``: a layer whose spike rate
      stays below ``collapse_rate`` for ``collapse_epochs`` consecutive
      epochs has collapsed — but only at ultra-low latency
      (``timesteps <= collapse_max_timesteps``), where silence is the
      known conversion pathology rather than sparsity working;
    - ``saturation_fraction``: alert when at least this fraction of a
      layer's thresholds sit at the clamp floor or of its leaks at the
      [0, 1] bounds;
    - ``grad_norm_limit`` / ``grad_growth_factor``: absolute explosion
      bound and epoch-over-epoch growth bound on the gradient norm
      (caught *before* the NonFiniteGuard sees NaN/Inf);
    - ``plateau_epochs`` / ``plateau_rtol``: the loss has plateaued when
      its range over the last ``plateau_epochs`` epochs is below
      ``plateau_rtol`` relative to its magnitude.
    """

    collapse_rate: float = 1e-3
    collapse_epochs: int = 2
    collapse_max_timesteps: int = 3
    saturation_fraction: float = 0.5
    grad_norm_limit: float = 1e3
    grad_growth_factor: float = 100.0
    plateau_epochs: int = 4
    plateau_rtol: float = 1e-3

    def __post_init__(self) -> None:
        if self.collapse_epochs < 1 or self.plateau_epochs < 2:
            raise ValueError("rule windows must cover at least one step")
        if not 0.0 < self.saturation_fraction <= 1.0:
            raise ValueError("saturation_fraction must lie in (0, 1]")


class HealthMonitor:
    """Evaluates the health rules over one training run's epoch stream.

    Parameters follow the telemetry convention (:class:`DriftMonitor`,
    :class:`FaultTelemetry`): ``registry`` defaults to the global one
    (which only records while observability is enabled), ``run_dir``
    defaults to the active observed run's directory.  ``alerts.jsonl``
    is opened lazily on the first record, so a healthy run leaves no
    empty file behind.
    """

    def __init__(
        self,
        config: Optional[HealthConfig] = None,
        registry: Optional[MetricsRegistry] = None,
        run_dir: Optional[str] = None,
        prefix: str = "health",
    ) -> None:
        self.config = config if config is not None else HealthConfig()
        self.prefix = prefix
        self.registry = registry if registry is not None else obs_metrics.get_registry()
        self._global_registry = registry is None
        if run_dir is None:
            run_dir = _STATE.run_dir
        self.run_dir = run_dir
        self._fp: Optional[IO[str]] = None
        self.alerts: List[dict] = []
        self.records: List[dict] = []
        # Rule state, keyed per (kind, layer) where relevant.
        self._losses: Dict[str, List[float]] = {}
        self._grad_norms: Dict[str, List[float]] = {}
        self._silent_epochs: Dict[int, int] = {}
        self._collapsed: Dict[int, bool] = {}
        self._plateau_active: Dict[str, bool] = {}
        self._saturated: Dict[str, bool] = {}
        self._exploded: Dict[str, bool] = {}
        self._exec_active: Dict[str, bool] = {}

    # ------------------------------------------------------------------
    def _record_metrics(self) -> bool:
        return not self._global_registry or is_enabled()

    def _write(self, record: dict) -> None:
        if len(self.records) < _MAX_RECORDS:
            self.records.append(record)
        if capture("alert", record):
            return
        if self._fp is None and self.run_dir is not None:
            os.makedirs(self.run_dir, exist_ok=True)
            self._fp = open(
                os.path.join(self.run_dir, ALERTS_FILENAME), "a", encoding="utf-8"
            )
        if self._fp is not None:
            self._fp.write(json.dumps(record, default=repr) + "\n")
            self._fp.flush()

    def alert(
        self, rule: str, message: str, severity: str = "warning", **fields
    ) -> dict:
        """Emit one structured alert (JSONL + counter + in-memory)."""
        record = {
            "kind": "alert",
            "ts": time.time(),
            "rule": rule,
            "severity": severity,
            "message": message,
            **fields,
        }
        if len(self.alerts) < _MAX_RECORDS:
            self.alerts.append(record)
        self._write(record)
        if self._record_metrics():
            self.registry.inc(f"{self.prefix}.alerts", 1.0, rule=rule)
        return record

    def ingest(self, record: dict) -> None:
        """Adopt an externally captured alert/health record.

        The worker-telemetry merge routes a child process's alert
        stream through here: the record lands in ``alerts.jsonl`` and
        the in-memory mirrors, but the ``health.alerts`` counter is
        *not* bumped — that increment already travelled as a metric
        delta and is replayed separately (double counting otherwise).
        """
        if record.get("kind") == "alert" and len(self.alerts) < _MAX_RECORDS:
            self.alerts.append(record)
        self._write(record)

    def observe_exec(
        self,
        label: str,
        failures: int = 0,
        crashes: int = 0,
        quarantined: int = 0,
        detail: Optional[str] = None,
    ) -> List[dict]:
        """Surface parallel-executor pathologies as alerts.

        Called by :meth:`repro.exec.ParallelExecutor.map` after each
        observed map with that map's terminal counts.  Like the
        training rules, each rule fires once per pathological stretch:
        a map under ``label`` with (say) task failures arms the rule,
        and only a clean map under the same label re-arms it — a sweep
        retried across twenty maps yields one alert, not twenty.
        """
        alerts: List[dict] = []
        for rule, count, severity, message in (
            (
                "exec_task_failures",
                failures,
                "error",
                f"{failures} task(s) failed permanently in map '{label}'",
            ),
            (
                "exec_worker_crashes",
                crashes,
                "warning",
                f"{crashes} worker(s) died during map '{label}'",
            ),
            (
                "exec_quarantine",
                quarantined,
                "error",
                f"{quarantined} poison task(s) quarantined in map '{label}'",
            ),
        ):
            key = f"{rule}:{label}"
            if count > 0:
                if not self._exec_active.get(key, False):
                    self._exec_active[key] = True
                    fields = {"label": label, "count": count}
                    if detail:
                        fields["detail"] = detail
                    alerts.append(self.alert(rule, message, severity=severity, **fields))
            else:
                self._exec_active[key] = False
        return alerts

    # ------------------------------------------------------------------
    def observe_epoch(
        self,
        kind: str,
        epoch: int,
        loss: float,
        accuracy: Optional[float] = None,
        grad_norm: Optional[float] = None,
        model=None,
        timesteps: Optional[int] = None,
        layer_rates: Optional[Sequence[float]] = None,
    ) -> List[dict]:
        """Feed one epoch of training telemetry; returns new alerts.

        ``kind`` separates streams (``"dnn"`` / ``"snn"``); ``model`` is
        scanned for threshold/leak saturation when it exposes
        ``spiking_neurons()``; ``layer_rates`` are average per-layer
        spike rates measured this epoch.
        """
        new_alerts: List[dict] = []

        def fired(record: Optional[dict]) -> None:
            if record is not None:
                new_alerts.append(record)

        fired(self._check_grad_norm(kind, epoch, grad_norm))
        fired(self._check_plateau(kind, epoch, loss))
        for record in self._check_collapse(epoch, timesteps, layer_rates):
            new_alerts.append(record)
        for record in self._check_saturation(kind, epoch, model):
            new_alerts.append(record)

        heartbeat = {
            "kind": "health",
            "ts": time.time(),
            "stream": kind,
            "epoch": epoch,
            "loss": None if loss is None else float(loss),
        }
        if accuracy is not None and np.isfinite(accuracy):
            heartbeat["accuracy"] = float(accuracy)
        if grad_norm is not None:
            heartbeat["grad_norm"] = float(grad_norm)
        if layer_rates is not None:
            heartbeat["layer_rates"] = [float(r) for r in layer_rates]
        if timesteps is not None:
            heartbeat["timesteps"] = int(timesteps)
        self._write(heartbeat)

        if self._record_metrics():
            if loss is not None:
                self.registry.set_gauge(f"{self.prefix}.loss", float(loss), stream=kind)
            if grad_norm is not None:
                self.registry.set_gauge(
                    f"{self.prefix}.grad_norm", float(grad_norm), stream=kind
                )
            if layer_rates is not None:
                for index, rate in enumerate(layer_rates):
                    self.registry.set_gauge(
                        f"{self.prefix}.spike_rate", float(rate), layer=index
                    )
        return new_alerts

    # -- individual rules ----------------------------------------------
    def _check_grad_norm(
        self, kind: str, epoch: int, grad_norm: Optional[float]
    ) -> Optional[dict]:
        if grad_norm is None:
            return None
        cfg = self.config
        history = self._grad_norms.setdefault(kind, [])
        previous = history[-1] if history else None
        history.append(float(grad_norm))
        exploded = (
            not np.isfinite(grad_norm)
            or grad_norm > cfg.grad_norm_limit
            or (
                previous is not None
                and previous > 0
                and grad_norm > cfg.grad_growth_factor * previous
            )
        )
        if not exploded:
            self._exploded[kind] = False
            return None
        if self._exploded.get(kind):
            return None  # still in the same explosion stretch
        self._exploded[kind] = True
        return self.alert(
            "grad_explosion",
            f"gradient norm {grad_norm:.3g} exploded at epoch {epoch} "
            f"(limit {cfg.grad_norm_limit:.3g})",
            severity="critical",
            stream=kind,
            epoch=epoch,
            grad_norm=float(grad_norm),
        )

    def _check_plateau(self, kind: str, epoch: int, loss) -> Optional[dict]:
        if loss is None or not np.isfinite(loss):
            return None
        cfg = self.config
        history = self._losses.setdefault(kind, [])
        history.append(float(loss))
        if len(history) < cfg.plateau_epochs:
            return None
        window = history[-cfg.plateau_epochs:]
        scale = max(abs(float(np.mean(window))), 1e-12)
        plateaued = (max(window) - min(window)) <= cfg.plateau_rtol * scale
        if not plateaued:
            self._plateau_active[kind] = False
            return None
        if self._plateau_active.get(kind):
            return None
        self._plateau_active[kind] = True
        return self.alert(
            "loss_plateau",
            f"loss flat at {window[-1]:.4g} over the last "
            f"{cfg.plateau_epochs} epochs (epoch {epoch})",
            stream=kind,
            epoch=epoch,
            loss=window[-1],
            window=cfg.plateau_epochs,
        )

    def _check_collapse(
        self,
        epoch: int,
        timesteps: Optional[int],
        layer_rates: Optional[Sequence[float]],
    ) -> List[dict]:
        cfg = self.config
        if layer_rates is None:
            return []
        if timesteps is None or timesteps > cfg.collapse_max_timesteps:
            return []
        alerts = []
        for layer, rate in enumerate(layer_rates):
            if rate < cfg.collapse_rate:
                self._silent_epochs[layer] = self._silent_epochs.get(layer, 0) + 1
            else:
                self._silent_epochs[layer] = 0
                self._collapsed[layer] = False
            if (
                self._silent_epochs[layer] >= cfg.collapse_epochs
                and not self._collapsed.get(layer)
            ):
                self._collapsed[layer] = True
                alerts.append(self.alert(
                    "spike_collapse",
                    f"layer {layer} silent (rate {rate:.2g} < "
                    f"{cfg.collapse_rate:.2g}) for "
                    f"{self._silent_epochs[layer]} consecutive epochs "
                    f"at T={timesteps}",
                    severity="critical",
                    layer=layer,
                    epoch=epoch,
                    rate=float(rate),
                    timesteps=int(timesteps),
                ))
        return alerts

    def _check_saturation(self, kind: str, epoch: int, model) -> List[dict]:
        cfg = self.config
        if model is None or not hasattr(model, "spiking_neurons"):
            return []
        from ..train.trainer import MIN_THRESHOLD

        alerts = []
        for layer, neuron in enumerate(model.spiking_neurons()):
            thresholds = neuron.v_threshold.data
            leaks = neuron.leak.data
            # The trainer clamps to exactly MIN_THRESHOLD / the leak
            # bounds, so a tiny tolerance identifies pinned parameters.
            thr_frac = float(np.mean(thresholds <= MIN_THRESHOLD * (1 + 1e-6)))
            leak_frac = float(np.mean((leaks <= 1e-6) | (leaks >= 1.0 - 1e-6)))
            for what, frac in (("threshold", thr_frac), ("leak", leak_frac)):
                key = f"{kind}:{layer}:{what}"
                if frac < cfg.saturation_fraction:
                    self._saturated[key] = False
                    continue
                if self._saturated.get(key):
                    continue
                self._saturated[key] = True
                alerts.append(self.alert(
                    f"{what}_saturation",
                    f"{frac:.0%} of layer {layer} {what}s pinned at their "
                    f"bound (epoch {epoch})",
                    layer=layer,
                    epoch=epoch,
                    fraction=frac,
                    stream=kind,
                ))
        return alerts

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._fp is not None:
            self._fp.close()
            self._fp = None

    def __enter__(self) -> "HealthMonitor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Module-level hook the trainers talk to
# ----------------------------------------------------------------------
_ACTIVE: Optional[HealthMonitor] = None


def install(monitor: HealthMonitor) -> HealthMonitor:
    """Make ``monitor`` the active sink for trainer health telemetry."""
    global _ACTIVE
    _ACTIVE = monitor
    return monitor


def uninstall() -> None:
    """Remove (and close) the active monitor."""
    global _ACTIVE
    if _ACTIVE is not None:
        _ACTIVE.close()
    _ACTIVE = None


def active() -> Optional[HealthMonitor]:
    """The installed monitor, or ``None`` (the trainers' cheap check)."""
    return _ACTIVE


def observe_epoch(kind: str, epoch: int, loss: float, **kwargs) -> List[dict]:
    """Forward one epoch of telemetry to the active monitor (no-op
    when none is installed)."""
    if _ACTIVE is None:
        return []
    return _ACTIVE.observe_epoch(kind, epoch, loss, **kwargs)


def observe_exec(label: str, **counts) -> List[dict]:
    """Forward executor failure counts to the active monitor (no-op
    when none is installed)."""
    if _ACTIVE is None:
        return []
    return _ACTIVE.observe_exec(label, **counts)


def quiesce_forked() -> None:
    """Drop a monitor inherited across ``fork`` without closing it.

    An executor worker inherits the parent's monitor — including its
    open ``alerts.jsonl`` handle, whose file offset is shared with the
    parent.  The child must simply forget the monitor (worker capture
    installs its own, memory-backed one); closing it would flush
    through the shared offset.
    """
    global _ACTIVE
    _ACTIVE = None


def gradient_sq_norm(model) -> float:
    """Sum of squared gradient entries over all parameters (the
    trainers accumulate ``sqrt`` of the per-epoch max of this)."""
    total = 0.0
    for param in model.parameters():
        grad = param.grad
        if grad is not None:
            total += float(np.sum(np.square(grad)))
    return total
